/**
 * @file
 * Implementation of the edge-list histogram.
 */

#include "util/histogram.hpp"

#include <algorithm>
#include <sstream>

#include "util/logging.hpp"

namespace leakbound::util {

Histogram::Histogram(std::vector<std::uint64_t> edges)
    : Histogram(EdgeIndex::make(std::move(edges)))
{
}

Histogram::Histogram(std::shared_ptr<const EdgeIndex> index)
    : index_(std::move(index))
{
    LEAKBOUND_ASSERT(index_ != nullptr, "histogram needs an edge index");
    // One bin per edge: bin i = [edges[i], edges[i+1]); last bin is
    // the overflow bin [edges.back(), +inf).  Samples below edges[0]
    // are clamped into bin 0 (callers are expected to pass edge 0).
    bins_.resize(index_->num_bins());
}

void
Histogram::merge(const Histogram &other)
{
    LEAKBOUND_ASSERT(index_ == other.index_ || edges() == other.edges(),
                     "merging histograms with different edges");
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        bins_[i].count += other.bins_[i].count;
        bins_[i].sum += other.bins_[i].sum;
    }
}

void
Histogram::add_scaled_diff(const Histogram &b, const Histogram &a,
                           std::uint64_t k)
{
    LEAKBOUND_ASSERT(index_ == b.index_ || edges() == b.edges(),
                     "scaled diff over different edges");
    LEAKBOUND_ASSERT(index_ == a.index_ || edges() == a.edges(),
                     "scaled diff over different edges");
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        // Read both operands before writing: b may alias *this.
        const std::uint64_t dcount = b.bins_[i].count - a.bins_[i].count;
        const std::uint64_t dsum = b.bins_[i].sum - a.bins_[i].sum;
        bins_[i].count += k * dcount;
        bins_[i].sum += k * dsum;
    }
}

std::uint64_t
Histogram::lower_edge(std::size_t i) const
{
    LEAKBOUND_ASSERT(i < bins_.size(), "bin index out of range");
    return edges()[i];
}

std::uint64_t
Histogram::upper_edge(std::size_t i) const
{
    LEAKBOUND_ASSERT(i < bins_.size(), "bin index out of range");
    return i + 1 < bins_.size() ? edges()[i + 1]
                                : ~static_cast<std::uint64_t>(0);
}

const HistBin &
Histogram::bin(std::size_t i) const
{
    LEAKBOUND_ASSERT(i < bins_.size(), "bin index out of range");
    return bins_[i];
}

std::uint64_t
Histogram::total_count() const
{
    std::uint64_t total = 0;
    for (const auto &b : bins_)
        total += b.count;
    return total;
}

std::uint64_t
Histogram::total_sum() const
{
    std::uint64_t total = 0;
    for (const auto &b : bins_)
        total += b.sum;
    return total;
}

std::string
Histogram::dump() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        if (bins_[i].count == 0)
            continue;
        os << '[' << lower_edge(i) << ", ";
        if (i + 1 < bins_.size())
            os << upper_edge(i);
        else
            os << "inf";
        os << "): count=" << bins_[i].count << " sum=" << bins_[i].sum
           << '\n';
    }
    return os.str();
}

void
Histogram::write_bins(BinaryWriter &w) const
{
    w.put_u64(bins_.size());
    for (const HistBin &b : bins_) {
        w.put_u64(b.count);
        w.put_u64(b.sum);
    }
}

bool
Histogram::read_bins(BinaryReader &r)
{
    const std::uint64_t n = r.get_u64();
    if (r.failed() || n != bins_.size())
        return false;
    for (HistBin &b : bins_) {
        b.count = r.get_u64();
        b.sum = r.get_u64();
    }
    return !r.failed();
}

std::vector<std::uint64_t>
Histogram::log2_edges(std::uint64_t max_value)
{
    std::vector<std::uint64_t> edges{0, 1};
    for (std::uint64_t e = 2; e < max_value && e != 0; e <<= 1)
        edges.push_back(e);
    edges.push_back(max_value);
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

} // namespace leakbound::util
