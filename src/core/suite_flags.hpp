/**
 * @file
 * The shared `--instructions/--jobs/--json/--csv-dir/--cache-dir/
 * --suite-passes` flag family, extracted from the bench harness so
 * every front end that runs suites — the 17 bench binaries,
 * `leakboundd`, `leakbound-client` — registers the same names with the
 * same help text and the same semantics, instead of each binary
 * re-declaring its own drifting copy.
 */

#ifndef LEAKBOUND_CORE_SUITE_FLAGS_HPP
#define LEAKBOUND_CORE_SUITE_FLAGS_HPP

#include <cstdint>

#include "core/experiment.hpp"
#include "util/cli.hpp"

namespace leakbound::core {

/**
 * Which of the family to register (front ends differ: a bench wants
 * all six, the daemon has no --json tables, the client has no
 * --cache-dir because caching is server-side).
 */
struct SuiteFlagSpec
{
    bool instructions = true;
    bool jobs = true;
    bool json = true;
    bool csv_dir = true;
    bool cache_dir = true;
    bool suite_passes = true;
    bool engine = true;
    /** Default per-benchmark instruction budget. */
    std::uint64_t default_instructions = 4'000'000;
};

/** Register the selected flags on @p cli with the canonical help text. */
void register_suite_flags(util::Cli &cli, const SuiteFlagSpec &spec = {});

/**
 * The --jobs request resolved against the hardware (0 = all threads).
 * Requires the "jobs" flag to be registered.
 */
unsigned suite_jobs(const util::Cli &cli);

/**
 * Apply --instructions, --jobs, --cache-dir and --engine to @p config
 * (cache-dir resolves through $LEAKBOUND_CACHE_DIR when the flag is
 * empty; a bad --engine value is fatal).  Requires those flags to be
 * registered.
 */
void apply_suite_flags(ExperimentConfig &config, const util::Cli &cli);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_SUITE_FLAGS_HPP
