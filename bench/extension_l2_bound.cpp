/**
 * @file
 * Extension: the paper's limit argument applied to the unified L2.
 *
 * The paper bounds L1 leakage; but the 2MB L2 holds 16x the L1s'
 * combined transistors and is touched only on L1 misses, so its
 * frames idle for enormous stretches — the limit argument applies a
 * fortiori.  This bench collects the L2's interval population and
 * evaluates the same oracle bounds on it, reporting savings and the
 * L2's share of total cache leakage recovered.
 */

#include "bench_common.hpp"
#include "core/generalized_model.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("extension_l2_bound",
                        "extension: the leakage bound on the 2MB L2");
    cli.parse(argc, argv);

    core::ExperimentConfig config;
    apply_suite_flags(config, cli);
    config.extra_edges = core::standard_extra_edges();
    config.collect_l2 = true;
    const auto runs = run_suite_reported(workload::suite_names(), config, cli);

    util::Table table("oracle bounds on the unified 2MB L2, by node");
    table.set_header({"technology", "OPT-Drowsy", "OPT-Sleep",
                      "OPT-Hybrid"});
    for (power::TechNode node : power::all_nodes()) {
        core::GeneralizedModelInputs inputs;
        inputs.tech = power::node_params(node);
        std::vector<core::SavingsResult> drowsy, sleep, hybrid;
        for (const auto &run : runs) {
            const auto r = core::run_generalized_model(
                inputs, run.l2cache->intervals);
            drowsy.push_back(r.opt_drowsy);
            sleep.push_back(r.opt_sleep);
            hybrid.push_back(r.opt_hybrid);
        }
        table.add_row({inputs.tech.name,
                       pct(core::combine_results(drowsy).savings),
                       pct(core::combine_results(sleep).savings),
                       pct(core::combine_results(hybrid).savings)});
    }
    emit(table, cli, "extension_l2_bound");

    // Put the three caches on one leakage budget: frames are the
    // transistor proxy (same line size everywhere).
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    const auto bound = core::make_opt_hybrid(model);
    double budget = 0, saved = 0;
    for (const auto &run : runs) {
        for (const interval::IntervalHistogramSet *set :
             {&run.icache.intervals, &run.dcache.intervals,
              &run.l2cache->intervals}) {
            const auto r = core::evaluate_policy(*bound, *set);
            budget += r.baseline;
            saved += r.baseline - r.total;
        }
    }
    std::printf("\nwhole-hierarchy 70nm bound: %s of total cache leakage\n"
                "(L1I+L1D+L2, frame-weighted) is recoverable; the L2\n"
                "holds %.0f%% of the frames and idles almost always, so\n"
                "the whole-chip picture is even stronger than the\n"
                "paper's L1 story.\n",
                util::format_percent(saved / budget).c_str(),
                100.0 * 32768.0 / (32768.0 + 1024.0 + 1024.0));
    return bench::finish(cli);
}
