/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in leakbound (synthetic workloads, random
 * replacement, jitter) flows through Xoshiro256StarStar seeded via
 * SplitMix64, so every experiment is exactly reproducible from a seed.
 * We do not use std::mt19937 because its state is large and its
 * cross-platform distribution guarantees are weaker than doing the
 * range reduction ourselves.
 */

#ifndef LEAKBOUND_UTIL_RANDOM_HPP
#define LEAKBOUND_UTIL_RANDOM_HPP

#include <array>
#include <cstdint>

#include "util/logging.hpp"

namespace leakbound::util {

/** SplitMix64 step; used to expand a 64-bit seed into generator state. */
inline std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * xoshiro256** 1.0 by Blackman & Vigna: fast, high-quality, 256-bit state.
 */
class Rng
{
  public:
    /** Construct from a single 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x1eafb01dULL)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitmix64(sm);
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next_u64()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform draw in [0, bound); bound must be nonzero. */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        LEAKBOUND_ASSERT(bound != 0, "next_below(0)");
        // Lemire-style rejection-free-ish reduction with a single retry
        // loop to remove modulo bias.
        const std::uint64_t threshold = (~bound + 1) % bound;
        for (;;) {
            const std::uint64_t r = next_u64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform draw in the closed range [lo, hi]. */
    std::uint64_t
    next_in(std::uint64_t lo, std::uint64_t hi)
    {
        LEAKBOUND_ASSERT(lo <= hi, "next_in: lo > hi");
        return lo + next_below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool
    next_bool(double p)
    {
        return next_double() < p;
    }

    /**
     * Geometric-ish draw: number of failures before a success with
     * success probability p (clamped to at least 1e-9).
     */
    std::uint64_t
    next_geometric(double p)
    {
        if (p >= 1.0)
            return 0;
        if (p < 1e-9)
            p = 1e-9;
        std::uint64_t n = 0;
        while (!next_bool(p) && n < 1u << 20)
            ++n;
        return n;
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng
    split()
    {
        return Rng(next_u64() ^ 0xd3c5d1f9ad1cba57ULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_RANDOM_HPP
