/**
 * @file
 * Exact histogram representation of an interval population.
 *
 * All per-interval energies in the paper's model are linear in the
 * interval length L (DESIGN.md §2), so a histogram whose cells record
 * (count, ΣL) evaluates any policy *exactly* — provided no cell
 * straddles a policy decision threshold.  IntervalHistogramSet
 * therefore partitions intervals by (kind, prefetch class, reuse flag)
 * and bins lengths with an edge list that includes every threshold the
 * experiments use (see default_edges()).
 */

#ifndef LEAKBOUND_INTERVAL_INTERVAL_HISTOGRAM_HPP
#define LEAKBOUND_INTERVAL_INTERVAL_HISTOGRAM_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "interval/interval.hpp"
#include "util/binary_io.hpp"
#include "util/histogram.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace leakbound::interval {

/** Identity of one histogram cell during iteration. */
struct CellRef
{
    IntervalKind kind;   ///< interval kind
    PrefetchClass pf;    ///< prefetch class (Inner only; NP otherwise)
    bool ends_in_reuse;  ///< reuse flag (Inner only; false otherwise)
    Cycles lower;        ///< inclusive lower length bound
    Cycles upper;        ///< exclusive upper length bound (UINT64_MAX=inf)
    std::uint64_t count; ///< intervals in the cell
    std::uint64_t sum;   ///< summed lengths of those intervals
};

/**
 * The full interval population of one cache over one run, stored as
 * per-(kind, pf, reuse) histograms plus the frame/cycle totals needed
 * to normalize savings.
 */
class IntervalHistogramSet
{
  public:
    /** Construct with explicit bin edges (must include 0). */
    explicit IntervalHistogramSet(std::vector<std::uint64_t> edges);

    /** Construct with default_edges(extra_thresholds). */
    static IntervalHistogramSet
    with_default_edges(const std::vector<Cycles> &extra_thresholds = {});

    /** Record one interval (inline — the simulation kernel's sink). */
    void
    add(const Interval &iv)
    {
        hists_[slot(iv.kind, iv.pf, iv.ends_in_reuse)].add(iv.length);
    }

    /** Merge a set with identical edges. */
    void merge(const IntervalHistogramSet &other);

    /**
     * Add @p k copies of the per-histogram difference (b - a) into this
     * set: for every slot, `hist += k * (b.hist - a.hist)`.  Used by
     * the analytic fast path to replay k detected periods at once; the
     * run info (frames / cycles) is untouched — finalize overwrites it.
     * @p b may alias `this`.
     */
    void add_scaled_diff(const IntervalHistogramSet &b,
                         const IntervalHistogramSet &a, std::uint64_t k);

    /** Set denominator metadata (frames in the cache, run length). */
    void set_run_info(std::uint64_t num_frames, Cycles total_cycles);

    /** Number of physical frames in the observed cache. */
    std::uint64_t num_frames() const { return num_frames_; }

    /** Length of the observed run in cycles. */
    Cycles total_cycles() const { return total_cycles_; }

    /**
     * Baseline leakage energy of the all-active cache:
     * num_frames * total_cycles * P_A, with P_A = 1 LU/cycle.
     */
    Energy baseline_energy() const;

    /** Visit every non-empty cell. */
    void for_each_cell(const std::function<void(const CellRef &)> &fn) const;

    /** Total number of recorded intervals. */
    std::uint64_t total_intervals() const;

    /** Total number of recorded Inner intervals. */
    std::uint64_t total_inner_intervals() const;

    /** Summed length of all recorded intervals. */
    std::uint64_t total_length() const;

    /** Count of Inner intervals in [lo, hi) for one prefetch class. */
    std::uint64_t inner_count_in(PrefetchClass pf, Cycles lo,
                                 Cycles hi) const;

    /** Count of Inner intervals in [lo, hi) across all classes. */
    std::uint64_t inner_count_in(Cycles lo, Cycles hi) const;

    /** The edge list in use. */
    const std::vector<std::uint64_t> &edges() const
    {
        return index_->edges();
    }

    /**
     * Append the full set — edge list, every histogram's bins, and the
     * run info — to @p w in the stable little-endian layout the
     * artifact cache persists (see core::ArtifactCache).  The output
     * is a pure function of the set's contents, so two observably
     * equal sets serialize to identical bytes.
     */
    void serialize(util::BinaryWriter &w) const;

    /**
     * Rebuild a set from bytes written by serialize().  Every field is
     * bounds-checked and the edge list re-validated (non-empty, sorted,
     * unique, starting at 0); @return nullopt on any inconsistency
     * rather than trusting the input.
     */
    static std::optional<IntervalHistogramSet>
    deserialize(util::BinaryReader &r);

    /**
     * Build the standard edge list: fine-grained 0..64, log2-spaced
     * up to 2^40, the paper's inflection points and sweep thresholds
     * (plus T+1 and T+overhead boundaries, with the transition
     * overheads taken from every power::TechNode), and any @p extra
     * values.
     */
    static std::vector<std::uint64_t>
    default_edges(const std::vector<Cycles> &extra_thresholds = {});

  private:
    /**
     * Histogram slot index for (kind, pf, reuse): Inner intervals use
     * slots pf * 2 + reuse, then Leading / Trailing / Untouched.
     */
    static std::size_t
    slot(IntervalKind kind, PrefetchClass pf, bool reuse)
    {
        switch (kind) {
          case IntervalKind::Inner:
            return static_cast<std::size_t>(pf) * 2 + (reuse ? 1 : 0);
          case IntervalKind::Leading:
            return kNumPrefetchClasses * 2;
          case IntervalKind::Trailing:
            return kNumPrefetchClasses * 2 + 1;
          case IntervalKind::Untouched:
            return kNumPrefetchClasses * 2 + 2;
        }
        LEAKBOUND_PANIC("unreachable: bad IntervalKind");
    }

    /** One O(1) edge index shared by all nine histograms. */
    std::shared_ptr<const util::EdgeIndex> index_;
    /**
     * Inner intervals use slots [0, 6) = pf * 2 + reuse; Leading,
     * Trailing, Untouched use slots 6, 7, 8.
     */
    std::vector<util::Histogram> hists_;
    std::uint64_t num_frames_ = 0;
    Cycles total_cycles_ = 0;
};

} // namespace leakbound::interval

#endif // LEAKBOUND_INTERVAL_INTERVAL_HISTOGRAM_HPP
