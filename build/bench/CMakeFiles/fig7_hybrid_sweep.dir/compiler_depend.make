# Empty compiler generated dependencies file for fig7_hybrid_sweep.
# This may be replaced when dependencies are built.
