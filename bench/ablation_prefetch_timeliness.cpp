/**
 * @file
 * Ablation: next-line prefetch timeliness.
 *
 * The paper counts an interval as next-line prefetchable whenever the
 * previous line is touched anywhere inside it, regardless of whether
 * the prefetch could complete before the covered access (Section 5.2).
 * This bench re-runs the classification with a lead-time requirement —
 * the trigger must precede the covered access by at least the wakeup
 * path (s3+s4 = 7 cycles) or a full memory round trip — and shows how
 * much of the paper's prefetchability survives.
 */

#include "bench_common.hpp"
#include "core/inflection.hpp"
#include "prefetch/prefetchability.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_prefetch_timeliness",
                        "ablation: NL coverage lead-time requirement");
    cli.parse(argc, argv);

    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    const auto points = core::compute_inflection(model);
    using interval::PrefetchClass;
    const std::vector<PrefetchClass> icls = {PrefetchClass::NextLine};
    const std::vector<PrefetchClass> dcls = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};

    util::Table table("NL timeliness ablation, 70nm (suite average)");
    table.set_header({"required lead", "I NL coverage", "D NL coverage",
                      "Prefetch-B I", "Prefetch-B D"});

    for (Cycles lead : {Cycles{0}, Cycles{7}, Cycles{100}}) {
        core::ExperimentConfig config;
        apply_suite_flags(config, cli);
        config.extra_edges = core::standard_extra_edges();
        config.nl_lead_time = lead;
        const auto runs =
            run_suite_reported(workload::suite_names(), config, cli);

        double i_nl = 0, d_nl = 0;
        for (const auto &run : runs) {
            i_nl += prefetch::analyze_prefetchability(
                        run.icache.intervals, points)
                        .next_line_fraction;
            d_nl += prefetch::analyze_prefetchability(
                        run.dcache.intervals, points)
                        .next_line_fraction;
        }
        i_nl /= static_cast<double>(runs.size());
        d_nl /= static_cast<double>(runs.size());

        const auto pb_i =
            core::make_prefetch(model, core::PrefetchVariant::B, icls);
        const auto pb_d =
            core::make_prefetch(model, core::PrefetchVariant::B, dcls);
        table.add_row(
            {lead == 0 ? "0 (paper)" : std::to_string(lead) + " cycles",
             util::format_percent(i_nl), util::format_percent(d_nl),
             pct(suite_average(*pb_i, runs, CacheSide::Instruction)
                     .savings),
             pct(suite_average(*pb_d, runs, CacheSide::Data).savings)});
    }
    emit(table, cli, "prefetch_timeliness");

    std::printf("requiring realistic lead time trims coverage only\n"
                "slightly (triggers usually precede the covered access\n"
                "by far more than the wakeup path), supporting the\n"
                "paper's simplification.\n");
    return bench::finish(cli);
}
