/**
 * @file
 * Implementation of exact policy evaluation.
 */

#include "core/savings.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace leakbound::core {

using interval::CellRef;
using interval::Interval;
using interval::IntervalHistogramSet;
using interval::IntervalKind;

namespace {

/** Verify every policy threshold is a bin edge of @p set. */
void
check_thresholds(const Policy &policy, const IntervalHistogramSet &set)
{
    const auto &edges = set.edges();
    for (Cycles t : policy.thresholds()) {
        if (!std::binary_search(edges.begin(), edges.end(), t)) {
            LEAKBOUND_PANIC(
                "histogram edges miss threshold ", t, " of policy '",
                policy.name(),
                "'; build the IntervalHistogramSet with this policy's "
                "thresholds as extra edges");
        }
    }
}

/** Tally shared by both evaluators. */
void
account(SavingsResult &r, const Policy &policy, Cycles rep_length,
        IntervalKind kind, interval::PrefetchClass pf, bool reuse,
        std::uint64_t count, double length_sum)
{
    const Mode mode = policy.dominant_mode(rep_length, kind, pf, reuse);
    switch (mode) {
      case Mode::Active:
        r.active_intervals += count;
        r.active_cycles += length_sum;
        break;
      case Mode::Drowsy:
        r.drowsy_intervals += count;
        r.drowsy_cycles += length_sum;
        break;
      case Mode::Sleep:
        r.sleep_intervals += count;
        r.sleep_cycles += length_sum;
        if (kind == IntervalKind::Inner && reuse)
            r.induced_misses += count;
        break;
    }
}

void
finish(SavingsResult &r, const Policy &policy, std::uint64_t num_frames,
       Cycles total_cycles)
{
    r.policy = policy.name();
    r.baseline = static_cast<Energy>(num_frames) *
                 static_cast<Energy>(total_cycles);
    r.overhead = policy.standing_overhead() * r.baseline;
    r.total += r.overhead;
    r.savings = r.baseline > 0.0 ? 1.0 - r.total / r.baseline : 0.0;
}

} // namespace

SavingsResult
evaluate_policy(const Policy &policy, const IntervalHistogramSet &set)
{
    check_thresholds(policy, set);

    SavingsResult r;
    set.for_each_cell([&](const CellRef &cell) {
        // Within a cell the policy energy is linear in length, so the
        // cell total is intercept*count + slope*sum.  Recover the line
        // from two sample points (or one for unit-width cells).
        const Energy f0 = policy.interval_energy(cell.lower, cell.kind,
                                                 cell.pf,
                                                 cell.ends_in_reuse);
        Energy cell_total;
        if (cell.upper == cell.lower + 1) {
            cell_total = f0 * static_cast<double>(cell.count);
        } else {
            const Energy f1 = policy.interval_energy(
                cell.lower + 1, cell.kind, cell.pf, cell.ends_in_reuse);
            const double slope = f1 - f0;
            const double intercept =
                f0 - slope * static_cast<double>(cell.lower);
            cell_total = intercept * static_cast<double>(cell.count) +
                         slope * static_cast<double>(cell.sum);
        }
        r.total += cell_total;

        account(r, policy, cell.lower, cell.kind, cell.pf,
                cell.ends_in_reuse, cell.count,
                static_cast<double>(cell.sum));
    });

    finish(r, policy, set.num_frames(), set.total_cycles());
    return r;
}

SavingsResult
evaluate_policy_raw(const Policy &policy, const std::vector<Interval> &raw,
                    std::uint64_t num_frames, Cycles total_cycles)
{
    SavingsResult r;
    for (const Interval &iv : raw) {
        r.total += policy.interval_energy(iv.length, iv.kind, iv.pf,
                                          iv.ends_in_reuse);
        account(r, policy, iv.length, iv.kind, iv.pf, iv.ends_in_reuse, 1,
                static_cast<double>(iv.length));
    }
    finish(r, policy, num_frames, total_cycles);
    return r;
}

SavingsResult
combine_results(const std::vector<SavingsResult> &results)
{
    LEAKBOUND_ASSERT(!results.empty(), "combining zero results");
    SavingsResult out;
    out.policy = results.front().policy;
    for (const auto &r : results) {
        LEAKBOUND_ASSERT(r.policy == out.policy,
                         "combining results of different policies: ",
                         r.policy, " vs ", out.policy);
        out.baseline += r.baseline;
        out.total += r.total;
        out.overhead += r.overhead;
        out.induced_misses += r.induced_misses;
        out.active_intervals += r.active_intervals;
        out.drowsy_intervals += r.drowsy_intervals;
        out.sleep_intervals += r.sleep_intervals;
        out.active_cycles += r.active_cycles;
        out.drowsy_cycles += r.drowsy_cycles;
        out.sleep_cycles += r.sleep_cycles;
    }
    out.savings = out.baseline > 0.0 ? 1.0 - out.total / out.baseline : 0.0;
    return out;
}

GridOutcome
evaluate_policy_grid_isolated(
    const std::vector<const Policy *> &policies,
    const std::vector<const interval::IntervalHistogramSet *> &sets,
    unsigned jobs)
{
    for (const Policy *policy : policies)
        LEAKBOUND_ASSERT(policy != nullptr, "null policy in grid");
    for (const IntervalHistogramSet *set : sets)
        LEAKBOUND_ASSERT(set != nullptr, "null population in grid");

    // Failures cross the worker boundary as data, never as escaping
    // exceptions, so one poisoned cell cannot abandon the rest of the
    // grid mid-flight.
    struct Cell
    {
        std::optional<SavingsResult> result;
        util::ErrorKind kind = util::ErrorKind::Internal;
        std::string message;
    };

    const std::size_t cols = sets.size();
    std::vector<Cell> cells = util::parallel_map_ordered(
        policies.size() * cols, jobs, [&](std::size_t i) {
            Cell cell;
            try {
                cell.result =
                    evaluate_policy(*policies[i / cols], *sets[i % cols]);
            } catch (const util::StatusError &e) {
                cell.kind = e.status().kind();
                cell.message = e.status().message();
            } catch (const std::exception &e) {
                cell.message = e.what();
            }
            return cell;
        });

    GridOutcome outcome;
    outcome.cells.resize(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].result) {
            outcome.cells[i] = std::move(cells[i].result);
            continue;
        }
        outcome.failures.push_back(
            GridFailure{i, policies[i / cols]->name(), cells[i].kind,
                        std::move(cells[i].message)});
    }
    return outcome;
}

std::vector<SavingsResult>
evaluate_policy_grid(
    const std::vector<const Policy *> &policies,
    const std::vector<const interval::IntervalHistogramSet *> &sets,
    unsigned jobs)
{
    GridOutcome outcome =
        evaluate_policy_grid_isolated(policies, sets, jobs);
    if (!outcome.failures.empty()) {
        const GridFailure &first = outcome.failures.front();
        throw util::StatusError(util::Status(
            first.kind, "grid cell for policy '" + first.policy +
                            "' failed: " + first.message));
    }
    std::vector<SavingsResult> results;
    results.reserve(outcome.cells.size());
    for (auto &cell : outcome.cells)
        results.push_back(std::move(*cell));
    return results;
}

} // namespace leakbound::core
