/**
 * @file
 * Client side of the leakboundd protocol: connect, build request
 * frames, call the daemon, and drive load-generation runs.
 *
 * Every helper returns typed util::Status failures — a dead daemon, a
 * truncated frame or a server-side rejection (Overloaded,
 * ShuttingDown) all surface as the matching ErrorKind, rebuilt from
 * the error frame's "kind" member, so callers branch on taxonomy
 * instead of string-matching messages.
 */

#ifndef LEAKBOUND_SERVE_CLIENT_HPP
#define LEAKBOUND_SERVE_CLIENT_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/net.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Where the daemon lives (unix path wins when both are set). */
struct Endpoint
{
    std::string unix_path;
    std::string tcp_host = "127.0.0.1";
    std::uint16_t tcp_port = 0;
};

/** Connect to @p endpoint (one fresh connection per call). */
util::Expected<util::net::Socket> connect_endpoint(const Endpoint &endpoint);

/** The client-facing shape of a "run" request. */
struct RunRequest
{
    std::vector<std::string> benchmarks;
    std::uint64_t instructions = 200'000;
    std::uint64_t nl_lead_time = 0;
    bool collect_l2 = false;
    bool standard_edges = true;
    std::vector<std::uint64_t> extra_edges;
    bool want_payload = false;
    /** Execution engine ("auto" | "analytic" | "sim"); "auto" is the
     *  server default and is omitted from the wire request. */
    std::string engine = "auto";
};

/** Render @p request as the wire JSON. */
std::string build_run_request(const RunRequest &request);

/** Render the one-member utility requests. */
std::string build_stats_request();
std::string build_ping_request();

/**
 * One request/response round trip on @p socket: send @p request_json
 * as a frame, receive and parse the response.  A response frame whose
 * "status" is "error" is converted back into its typed Status; the
 * parsed document is returned only for "ok" responses.  When
 * @p raw_frame is non-null it receives the exact response bytes (the
 * load generator hashes these to verify dedup byte-identity).
 */
util::Expected<util::JsonValue>
call(const util::net::Socket &socket, const std::string &request_json,
     std::size_t max_frame = kDefaultMaxFrameBytes,
     std::string *raw_frame = nullptr);

/** connect_endpoint + call on a throwaway connection. */
util::Expected<util::JsonValue>
call_endpoint(const Endpoint &endpoint, const std::string &request_json,
              std::size_t max_frame = kDefaultMaxFrameBytes,
              std::string *raw_frame = nullptr);

/** What a load-generation run observed (the client prints this). */
struct LoadReport
{
    std::uint64_t sent = 0;
    std::uint64_t ok = 0;
    std::uint64_t overloaded = 0;
    std::uint64_t shutting_down = 0;
    std::uint64_t other_errors = 0;
    /** Distinct request_fingerprint values seen across ok responses. */
    std::uint64_t distinct_fingerprints = 0;
    /** Distinct full response bodies seen across ok responses (dedup
     *  byte-identity check: identical requests must make this 1). */
    std::uint64_t distinct_responses = 0;
    util::LatencyRecorder latency_ms;
    double wall_seconds = 0.0;
};

/**
 * Fire @p total identical copies of @p request at @p endpoint from
 * @p concurrency client threads (one connection per in-flight
 * request) and fold what came back into a LoadReport.  Identical
 * requests are exactly what exercises the daemon's dedup path; the
 * report's distinct_responses says whether the dedup group really was
 * byte-identical.
 */
LoadReport run_load(const Endpoint &endpoint, const RunRequest &request,
                    std::uint64_t total, unsigned concurrency,
                    std::size_t max_frame = kDefaultMaxFrameBytes);

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_CLIENT_HPP
