# Empty compiler generated dependencies file for ablation_drowsy_ratio.
# This may be replaced when dependencies are built.
