/**
 * @file
 * Implementation of the composite (multi-phase) workload.
 */

#include "workload/workload.hpp"

#include "util/logging.hpp"

namespace leakbound::workload {

CompositeWorkload::CompositeWorkload(std::string name,
                                     std::vector<Phase> phases)
    : name_(std::move(name)), phases_(std::move(phases))
{
    LEAKBOUND_ASSERT(!phases_.empty(), "composite needs phases");
    for (const Phase &p : phases_) {
        LEAKBOUND_ASSERT(p.child != nullptr, "composite phase is null");
        LEAKBOUND_ASSERT(p.quantum > 0, "composite quantum must be > 0");
    }
}

bool
CompositeWorkload::next(trace::MicroOp &op)
{
    // Rotate to the next phase once the quantum is exhausted; skip
    // phases whose child has (unusually) run dry.
    for (std::size_t attempts = 0; attempts <= phases_.size();
         ++attempts) {
        Phase &phase = phases_[current_];
        if (executed_in_phase_ >= phase.quantum) {
            current_ = (current_ + 1) % phases_.size();
            executed_in_phase_ = 0;
            continue;
        }
        if (phase.child->next(op)) {
            ++executed_in_phase_;
            return true;
        }
        current_ = (current_ + 1) % phases_.size();
        executed_in_phase_ = 0;
    }
    return false;
}

void
CompositeWorkload::reset()
{
    for (Phase &p : phases_)
        p.child->reset();
    current_ = 0;
    executed_in_phase_ = 0;
}

} // namespace leakbound::workload
