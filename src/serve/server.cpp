/**
 * @file
 * Implementation of the leakboundd server.
 */

#include "serve/server.hpp"

#include <cstdio>

#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace leakbound::serve {

Server::Server(ServerConfig config) : config_(std::move(config))
{
    scheduler_ = std::make_unique<Scheduler>(config_.scheduler);
    started_at_ = std::chrono::steady_clock::now();
}

Server::~Server()
{
    // serve() normally runs the full drain; this covers start()-only
    // lifetimes (tests that never serve).
    scheduler_->drain();
    if (!config_.unix_path.empty())
        std::remove(config_.unix_path.c_str());
}

util::Status
Server::start()
{
    if (config_.unix_path.empty() && !config_.listen_tcp) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "no listener configured: need a socket "
                            "path or a TCP port");
    }
    if (!config_.unix_path.empty()) {
        auto listener = util::net::listen_unix(config_.unix_path);
        if (!listener)
            return listener.status();
        unix_listener_ = listener.take();
    }
    if (config_.listen_tcp) {
        auto listener =
            util::net::listen_tcp(config_.tcp_host, config_.tcp_port);
        if (!listener)
            return listener.status();
        tcp_listener_ = listener.take();
        tcp_port_ = util::net::local_port(tcp_listener_);
    }
    started_ = true;
    return util::Status();
}

util::Status
Server::serve()
{
    if (!started_) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "serve() before start()");
    }

    std::vector<const util::net::Socket *> listeners;
    if (unix_listener_.valid())
        listeners.push_back(&unix_listener_);
    if (tcp_listener_.valid())
        listeners.push_back(&tcp_listener_);

    while (!drain_requested_.load() && !util::interrupt_requested()) {
        // Reap on every iteration, not just on poll timeout: under
        // sustained arrival the poll never times out, and the session
        // limit must count live sessions, not finished ones.
        reap_finished_sessions();

        const int ready =
            util::net::wait_any_readable(listeners,
                                         config_.poll_interval_ms);
        if (ready == -2) {
            return util::Status(util::ErrorKind::IoError,
                                "poll on the listeners failed");
        }
        if (ready < 0)
            continue;

        auto accepted = util::net::accept_connection(*listeners[
            static_cast<std::size_t>(ready)]);
        if (!accepted) {
            // Transient accept trouble (aborted handshake, fd
            // pressure, the net_accept fault seam): log and keep
            // serving.
            util::warn("accept failed: ", accepted.status().to_string());
            continue;
        }

        util::net::Socket socket = accepted.take();
        bool overloaded = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ++sessions_accepted_;
            if (sessions_.size() >= config_.max_sessions) {
                ++sessions_rejected_;
                overloaded = true;
            } else {
                sessions_.emplace_back();
                Session &session = sessions_.back();
                session.socket = std::move(socket);
                session.thread = std::thread(
                    [this, &session] { run_session(&session); });
            }
        }
        if (overloaded) {
            // Shed the connection explicitly: one error frame, then
            // close.  The client sees a typed Overloaded, not a hang.
            // The (blocking) send happens outside mutex_ so a slow
            // shed peer cannot stall the accept loop or sessions.
            (void)reply(socket,
                        render_error(util::Status(
                            util::ErrorKind::Overloaded,
                            "session limit reached (" +
                                std::to_string(config_.max_sessions) +
                                "); retry later")));
        }
    }

    // Drain: no new connections; in-flight experiments finish and
    // their waiters are answered; queued experiments fail typed.
    scheduler_->drain();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (Session &session : sessions_)
            session.socket.shutdown_read(); // idle recvs see EOF
    }
    for (Session &session : sessions_)
        if (session.thread.joinable())
            session.thread.join();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        sessions_.clear();
    }
    unix_listener_.close();
    tcp_listener_.close();
    if (!config_.unix_path.empty())
        std::remove(config_.unix_path.c_str());
    return util::Status();
}

void
Server::run_session(Session *session)
{
    for (;;) {
        auto frame =
            recv_frame(session->socket, config_.max_frame_bytes);
        if (!frame) {
            if (frame.status().kind() !=
                util::ErrorKind::ConnectionClosed) {
                // Truncated frame, oversized prefix, read fault: the
                // stream is desynced — answer typed, then hang up.
                note_protocol_error();
                (void)reply(session->socket,
                            render_error(frame.status()));
            }
            break;
        }
        if (!handle_frame(session->socket, frame.value()))
            break;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    session->finished = true;
}

bool
Server::handle_frame(const util::net::Socket &socket,
                     const std::string &frame)
{
    auto parsed = util::json_parse(frame);
    if (!parsed) {
        // Garbage JSON inside an intact frame: the framing is still in
        // sync, so answer the error and keep the session alive.
        note_protocol_error();
        return reply(socket, render_error(parsed.status())).ok();
    }
    const util::JsonValue &request = parsed.value();
    if (!request.is_object()) {
        note_protocol_error();
        return reply(socket,
                     render_error(util::Status(
                         util::ErrorKind::InvalidArgument,
                         "request must be a JSON object")))
            .ok();
    }
    const util::JsonValue *type = request.find("type");
    if (type == nullptr || !type->is_string()) {
        note_protocol_error();
        return reply(socket,
                     render_error(util::Status(
                         util::ErrorKind::InvalidArgument,
                         "request needs a string \"type\" member")))
            .ok();
    }

    const std::string &kind = type->string_value();
    if (kind == "ping")
        return reply(socket, render_pong()).ok();
    if (kind == "stats")
        return reply(socket, render_stats(stats())).ok();
    if (kind == "run") {
        auto decoded = core::decode_experiment_request(
            request, config_.max_instructions);
        if (!decoded) {
            note_protocol_error();
            return reply(socket, render_error(decoded.status())).ok();
        }
        const auto begun = std::chrono::steady_clock::now();
        auto response = scheduler_->submit(decoded.take());
        if (!response)
            return reply(socket, render_error(response.status())).ok();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            latency_ms_.add(std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - begun)
                                .count());
        }
        return reply(socket, *response.value()).ok();
    }

    note_protocol_error();
    return reply(socket, render_error(util::Status(
                             util::ErrorKind::InvalidArgument,
                             "unknown request type \"" + kind + "\"")))
        .ok();
}

util::Status
Server::reply(const util::net::Socket &socket, const std::string &payload)
{
    return send_frame(socket, payload, config_.max_frame_bytes);
}

void
Server::reap_finished_sessions()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if (it->finished) {
            if (it->thread.joinable())
                it->thread.join();
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::note_protocol_error()
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++protocol_errors_;
}

StatsSnapshot
Server::stats() const
{
    const SchedulerCounters counters = scheduler_->counters();
    StatsSnapshot snapshot;
    snapshot.requests_served = counters.served;
    snapshot.dedup_hits = counters.dedup_hits;
    snapshot.cache_hits = counters.cache_hits;
    snapshot.analytic_runs = counters.analytic_runs;
    snapshot.sim_runs = counters.sim_runs;
    snapshot.rejected_overloaded = counters.rejected_overloaded;
    snapshot.rejected_shutting_down = counters.rejected_shutting_down;
    snapshot.queue_depth = counters.queue_depth;
    snapshot.running = counters.running;
    snapshot.uptime_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      started_at_)
            .count();
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.rejected_overloaded += sessions_rejected_;
    snapshot.protocol_errors = protocol_errors_;
    snapshot.sessions_accepted = sessions_accepted_;
    snapshot.latency_p50_ms = latency_ms_.p50();
    snapshot.latency_p99_ms = latency_ms_.p99();
    return snapshot;
}

} // namespace leakbound::serve
