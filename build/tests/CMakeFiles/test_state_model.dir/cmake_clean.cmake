file(REMOVE_RECURSE
  "CMakeFiles/test_state_model.dir/test_state_model.cpp.o"
  "CMakeFiles/test_state_model.dir/test_state_model.cpp.o.d"
  "test_state_model"
  "test_state_model.pdb"
  "test_state_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
