/**
 * @file
 * Implementation of offline Belady-MIN simulation.
 */

#include "sim/belady.hpp"

#include <limits>

#include "util/flat_map.hpp"
#include "util/logging.hpp"

namespace leakbound::sim {

namespace {

constexpr std::uint64_t kNeverUsed =
    std::numeric_limits<std::uint64_t>::max();

} // namespace

BeladyResult
simulate_belady(const CacheConfig &config,
                const std::vector<Addr> &addresses)
{
    config.validate();
    const std::size_t n = addresses.size();

    // Backward pass: next_use[i] = index of the next access to the
    // same block after i (kNeverUsed if none).
    std::vector<std::uint64_t> next_use(n, kNeverUsed);
    {
        util::FlatMap last_seen(1 << 16);
        for (std::size_t i = n; i-- > 0;) {
            const Addr block = config.block_of(addresses[i]);
            next_use[i] = last_seen.get_or(block, kNeverUsed);
            last_seen.put(block, i);
        }
    }

    // Forward pass: per-set resident (block, next_use) arrays.
    const std::uint64_t sets = config.num_sets();
    const std::uint32_t ways = config.associativity;
    struct Frame
    {
        Addr block = kInvalidAddr;
        std::uint64_t next = kNeverUsed;
        bool valid = false;
    };
    std::vector<Frame> frames(sets * ways);

    BeladyResult result;
    result.hits.resize(n, false);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr block = config.block_of(addresses[i]);
        const std::uint64_t set = config.set_of_block(block);
        const std::uint64_t base = set * ways;
        ++result.stats.accesses;

        // Hit path.
        bool hit = false;
        for (std::uint32_t w = 0; w < ways && !hit; ++w) {
            Frame &f = frames[base + w];
            if (f.valid && f.block == block) {
                f.next = next_use[i];
                ++result.stats.hits;
                result.hits[i] = true;
                hit = true;
            }
        }
        if (hit)
            continue;

        // Miss: prefer an invalid way; otherwise evict the block whose
        // next use is farthest in the future (MIN).
        ++result.stats.misses;
        std::uint32_t victim = ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!frames[base + w].valid) {
                victim = w;
                break;
            }
        }
        if (victim == ways) {
            std::uint64_t farthest = 0;
            victim = 0;
            for (std::uint32_t w = 0; w < ways; ++w) {
                if (frames[base + w].next >= farthest) {
                    farthest = frames[base + w].next;
                    victim = w;
                }
            }
            ++result.stats.evictions;
        }
        Frame &f = frames[base + victim];
        // A block never used again is not worth caching, but MIN still
        // fills it (allocate-on-miss, matching the online model).
        f.valid = true;
        f.block = block;
        f.next = next_use[i];
    }
    return result;
}

} // namespace leakbound::sim
