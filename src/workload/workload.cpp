/**
 * @file
 * Implementation of the composite (multi-phase) workload.
 */

#include "workload/workload.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace leakbound::workload {

CompositeWorkload::CompositeWorkload(std::string name,
                                     std::vector<Phase> phases)
    : name_(std::move(name)), phases_(std::move(phases))
{
    LEAKBOUND_ASSERT(!phases_.empty(), "composite needs phases");
    for (const Phase &p : phases_) {
        LEAKBOUND_ASSERT(p.child != nullptr, "composite phase is null");
        LEAKBOUND_ASSERT(p.quantum > 0, "composite quantum must be > 0");
    }
}

bool
CompositeWorkload::next(trace::MicroOp &op)
{
    // Rotate to the next phase once the quantum is exhausted; skip
    // phases whose child has (unusually) run dry.
    for (std::size_t attempts = 0; attempts <= phases_.size();
         ++attempts) {
        Phase &phase = phases_[current_];
        if (executed_in_phase_ >= phase.quantum) {
            current_ = (current_ + 1) % phases_.size();
            executed_in_phase_ = 0;
            continue;
        }
        if (phase.child->next(op)) {
            ++executed_in_phase_;
            return true;
        }
        current_ = (current_ + 1) % phases_.size();
        executed_in_phase_ = 0;
    }
    return false;
}

std::size_t
CompositeWorkload::next_batch(trace::MicroOp *out, std::size_t max)
{
    // Chunked form of next(): take ops from the current phase in runs
    // bounded by its remaining quantum, rotating on exhaustion exactly
    // where the one-op path would.  `dry` counts consecutive phases
    // that produced nothing, mirroring next()'s give-up bound.
    std::size_t got = 0;
    std::size_t dry = 0;
    while (got < max && dry <= phases_.size()) {
        Phase &phase = phases_[current_];
        if (executed_in_phase_ >= phase.quantum) {
            current_ = (current_ + 1) % phases_.size();
            executed_in_phase_ = 0;
            continue;
        }
        const std::size_t want = static_cast<std::size_t>(
            std::min<std::uint64_t>(max - got,
                                    phase.quantum - executed_in_phase_));
        const std::size_t g = phase.child->next_batch(out + got, want);
        executed_in_phase_ += g;
        got += g;
        if (g == 0) {
            current_ = (current_ + 1) % phases_.size();
            executed_in_phase_ = 0;
            ++dry;
        } else {
            dry = 0;
        }
    }
    return got;
}

void
CompositeWorkload::reset()
{
    for (Phase &p : phases_)
        p.child->reset();
    current_ = 0;
    executed_in_phase_ = 0;
}

} // namespace leakbound::workload
