/**
 * @file
 * Implementation of binary trace IO.
 */

#include "trace/trace_io.hpp"

#include <array>
#include <cstring>

#include "util/logging.hpp"

namespace leakbound::trace {

namespace {

constexpr char kMagic[8] = {'l', 'k', 'b', 't', 'r', 'c', '0', '1'};

/** On-disk record layout (little-endian, packed by hand). */
struct DiskRecord
{
    std::uint64_t cycle;
    std::uint64_t pc;
    std::uint64_t addr;
    std::uint8_t kind;
    std::uint8_t pad[7];
};
static_assert(sizeof(DiskRecord) == 32, "trace record layout drifted");

} // namespace

TraceWriter::TraceWriter(const std::string &path)
    : file_(std::fopen(path.c_str(), "wb"))
{
    if (!file_)
        util::fatal("cannot create trace file: ", path);
    if (std::fwrite(kMagic, 1, sizeof(kMagic), file_) != sizeof(kMagic))
        util::fatal("cannot write trace header: ", path);
}

TraceWriter::~TraceWriter()
{
    if (file_)
        std::fclose(file_);
}

void
TraceWriter::write(const TimedAccess &rec)
{
    DiskRecord disk{};
    disk.cycle = rec.cycle;
    disk.pc = rec.pc;
    disk.addr = rec.addr;
    disk.kind = static_cast<std::uint8_t>(rec.kind);
    if (std::fwrite(&disk, sizeof(disk), 1, file_) != 1)
        util::fatal("short write to trace file");
    ++count_;
}

TraceReader::TraceReader(const std::string &path)
    : file_(std::fopen(path.c_str(), "rb"))
{
    if (!file_)
        util::fatal("cannot open trace file: ", path);
    char magic[sizeof(kMagic)];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
        util::fatal("not a leakbound trace file: ", path);
    }
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::next(TimedAccess &rec)
{
    DiskRecord disk;
    if (std::fread(&disk, sizeof(disk), 1, file_) != 1)
        return false;
    rec.cycle = disk.cycle;
    rec.pc = disk.pc;
    rec.addr = disk.addr;
    rec.kind = static_cast<InstrKind>(disk.kind);
    ++count_;
    return true;
}

} // namespace leakbound::trace
