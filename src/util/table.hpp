/**
 * @file
 * ASCII table rendering for bench output.  Every bench binary prints the
 * rows/series the paper reports through this printer so outputs share a
 * uniform, diffable format.
 */

#ifndef LEAKBOUND_UTIL_TABLE_HPP
#define LEAKBOUND_UTIL_TABLE_HPP

#include <string>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util {

/**
 * Column-aligned text table with a title, a header row, and data rows.
 * Cells are strings; numeric formatting is the caller's job (see
 * string_utils.hpp helpers).
 */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row (defines the column count). */
    void set_header(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void add_row(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void add_separator();

    /** Render the full table as a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /**
     * Mirror the table (header + data rows; separators dropped) to a
     * CSV file so plotting scripts can regenerate the figure.  Returns
     * the writer's Status so bench reports can record — rather than die
     * on — an unwritable --csv-dir.
     */
    Status write_csv(const std::string &path) const;

    /** Number of data rows added so far. */
    std::size_t num_rows() const { return rows_.size(); }

    /** The caption passed at construction. */
    const std::string &title() const { return title_; }

    /** The header row. */
    const std::vector<std::string> &header() const { return header_; }

    /**
     * All rows in insertion order; separators appear as empty vectors
     * (the JSON reporter skips them, the renderer draws rules).
     */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    /** Separator rows are encoded as empty vectors. */
    std::vector<std::vector<std::string>> rows_;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_TABLE_HPP
