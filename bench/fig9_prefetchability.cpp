/**
 * @file
 * Reproduces paper Figure 9: prefetchability of cache access intervals
 * by length bucket — (0,6], (6,1057], (1057,inf) at 70nm — split into
 * next-line-coverable, stride-coverable and non-prefetchable, for both
 * L1 caches (suite aggregate).
 *
 * Paper reference: I-cache next-line prefetchability 23%;
 * D-cache next-line 16.3% + stride 5.1% = 21.4% of all intervals.
 */

#include "bench_common.hpp"
#include "core/inflection.hpp"
#include "prefetch/prefetchability.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("fig9_prefetchability",
                        "Figure 9: interval prefetchability");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const auto points = core::compute_inflection(
        power::node_params(power::TechNode::Nm70));

    for (CacheSide side : {CacheSide::Instruction, CacheSide::Data}) {
        const bool icache = side == CacheSide::Instruction;

        // Aggregate bucket counts across the suite.
        prefetch::PrefetchabilityReport total;
        std::uint64_t all = 0, nl = 0, stride = 0;
        auto fold = [](prefetch::BucketBreakdown &into,
                       const prefetch::BucketBreakdown &from) {
            into.next_line += from.next_line;
            into.stride += from.stride;
            into.non_prefetchable += from.non_prefetchable;
        };
        for (const auto &run : runs) {
            const auto r = prefetch::analyze_prefetchability(
                population(run, side), points);
            fold(total.short_bucket, r.short_bucket);
            fold(total.drowsy_bucket, r.drowsy_bucket);
            fold(total.sleep_bucket, r.sleep_bucket);
        }
        all = total.short_bucket.total() + total.drowsy_bucket.total() +
              total.sleep_bucket.total();
        nl = total.drowsy_bucket.next_line + total.sleep_bucket.next_line;
        stride =
            total.drowsy_bucket.stride + total.sleep_bucket.stride;

        util::Table table(
            icache ? "Figure 9(a) Instruction Cache: prefetchability by "
                     "interval length"
                   : "Figure 9(b) Data Cache: prefetchability by "
                     "interval length");
        table.set_header({"bucket", "intervals", "P-NL", "P-stride",
                          "NP", "share of all"});
        auto emit = [&](const char *name,
                        const prefetch::BucketBreakdown &b) {
            table.add_row(
                {name, util::format_commas(b.total()),
                 util::format_commas(b.next_line),
                 util::format_commas(b.stride),
                 util::format_commas(b.non_prefetchable),
                 util::format_percent(
                     all ? static_cast<double>(b.total()) /
                               static_cast<double>(all)
                         : 0.0)});
        };
        emit("(0, 6]   (always active)", total.short_bucket);
        emit("(6, 1057] (drowsy range)", total.drowsy_bucket);
        emit("(1057, inf) (sleep range)", total.sleep_bucket);
        // Qualified: the row-building lambda above shadows bench::emit.
        bench::emit(table, cli,
                    icache ? "fig9a_icache" : "fig9b_dcache");

        const double nl_frac =
            all ? static_cast<double>(nl) / static_cast<double>(all) : 0;
        const double st_frac =
            all ? static_cast<double>(stride) / static_cast<double>(all)
                : 0;
        std::printf("total prefetchability: next-line %s + stride %s = "
                    "%s of all intervals\n",
                    util::format_percent(nl_frac).c_str(),
                    util::format_percent(st_frac).c_str(),
                    util::format_percent(nl_frac + st_frac).c_str());
        std::printf("paper: %s\n\n",
                    icache ? "next-line 23% (I-cache total 23%)"
                           : "next-line 16.3% + stride 5.1% = 21.4%");
    }
    return bench::finish(cli);
}
