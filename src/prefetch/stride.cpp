/**
 * @file
 * Implementation of the stride predictor.
 */

#include "prefetch/stride.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace leakbound::prefetch {

StridePredictor::StridePredictor(const StrideConfig &config)
    : config_(config)
{
    if (config_.table_entries == 0) {
        // Unbounded mode starts empty and grows on demand (handled in
        // slot_for via chaining on the vector); reserve a little.
        table_.reserve(1 << 12);
    } else {
        LEAKBOUND_ASSERT(
            (config_.table_entries & (config_.table_entries - 1)) == 0,
            "stride table entries must be a power of two");
        table_.resize(config_.table_entries);
    }
}

void
StridePredictor::append_state(std::vector<std::uint64_t> &out) const
{
    // Bounded tables have a fixed layout; the unbounded table's order
    // is the (deterministic) first-touch order of the PCs, so the raw
    // layout is already canonical for a deterministic stream.
    out.push_back(table_.size());
    for (const Entry &e : table_) {
        out.push_back(e.valid ? 1 : 0);
        out.push_back(e.tag);
        out.push_back(e.last_addr);
        out.push_back(static_cast<std::uint64_t>(e.stride));
        // Confidence influences behavior only through the
        // `confidence >= confirmations` test (a repeat increments, a
        // break resets to 1 regardless of the old value), so values at
        // or above the threshold are behaviorally interchangeable.
        // Clamping keeps a steadily-confirming entry from aging the
        // signature apart forever.
        out.push_back(std::min<std::uint64_t>(e.confidence,
                                              config_.confirmations));
    }
}

void
StridePredictor::reset()
{
    const StrideConfig config = config_;
    *this = StridePredictor(config);
}

} // namespace leakbound::prefetch
