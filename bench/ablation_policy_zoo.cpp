/**
 * @file
 * Ablation: the literature policy zoo against the bound.
 *
 * Places the non-oracle schemes the paper discusses in Section 2 —
 * Kaxiras-style cache decay (Sleep(T)) and the Flautner/Kim periodic
 * drowsy cache (Drowsy(W)) — on one axis against the oracle limits,
 * quantifying the paper's motivating observation: realizable policies
 * leave a large gap to the bound, and no tuning closes it.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_policy_zoo",
                        "ablation: literature policies vs the bound");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    util::Table table("policy zoo at 70nm (suite average)");
    table.set_header({"policy", "oracle?", "I-cache", "D-cache"});

    std::vector<core::PolicyPtr> zoo;
    zoo.push_back(core::make_always_active(model));
    // Periodic drowsy at the windows Flautner et al. explored.
    zoo.push_back(core::make_periodic_drowsy(model, 2000));
    zoo.push_back(core::make_periodic_drowsy(model, 4000));
    zoo.push_back(core::make_periodic_drowsy(model, 32000));
    // Cache decay at its usual settings.
    zoo.push_back(core::make_decay_sleep(model, 8000));
    zoo.push_back(core::make_decay_sleep(model, 10'000));
    zoo.push_back(core::make_decay_sleep(model, 64'000));
    const std::size_t zoo_count = zoo.size();
    // The oracle ladder.
    zoo.push_back(core::make_opt_drowsy(model));
    zoo.push_back(core::make_opt_sleep(model, 1057));
    zoo.push_back(core::make_opt_hybrid(model));

    // One pooled pass per cache over the whole zoo.
    std::vector<const core::Policy *> policies;
    for (const auto &p : zoo)
        policies.push_back(p.get());
    const GridEvaluation igrid =
        evaluate_grid(policies, runs, CacheSide::Instruction, cli);
    const GridEvaluation dgrid =
        evaluate_grid(policies, runs, CacheSide::Data, cli);

    for (std::size_t p = 0; p < zoo.size(); ++p) {
        if (p == zoo_count)
            table.add_separator();
        table.add_row({zoo[p]->name(), zoo[p]->is_oracle() ? "yes" : "no",
                       pct(igrid.averages[p].savings),
                       pct(dgrid.averages[p].savings)});
    }
    emit(table, cli, "policy_zoo");

    std::printf(
        "periodic drowsy caps out near the drowsy asymptote (66.7%%)\n"
        "minus its boundary-wait losses; decay trades induced misses\n"
        "for sleep time; only the oracle hybrid reaches the bound —\n"
        "the headroom the paper quantifies.\n");
    return bench::finish(cli);
}
