/**
 * @file
 * Implementation of the leakboundd client helpers.
 */

#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <thread>

#include "core/experiment_request.hpp"
#include "util/fingerprint.hpp"
#include "util/random.hpp"

namespace leakbound::serve {

util::Expected<util::net::Socket>
connect_endpoint(const Endpoint &endpoint)
{
    if (!endpoint.unix_path.empty())
        return util::net::connect_unix(endpoint.unix_path);
    if (endpoint.tcp_port != 0)
        return util::net::connect_tcp(endpoint.tcp_host,
                                      endpoint.tcp_port);
    return util::Status(util::ErrorKind::InvalidArgument,
                        "endpoint needs a socket path or a TCP port");
}

Endpoint
shard_endpoint(const Endpoint &base, unsigned shard)
{
    Endpoint endpoint = base;
    if (!endpoint.unix_path.empty()) {
        endpoint.unix_path += "." + std::to_string(shard);
        return endpoint;
    }
    endpoint.tcp_port =
        static_cast<std::uint16_t>(base.tcp_port + 1 + shard);
    return endpoint;
}

std::vector<Endpoint>
fleet_endpoints(const Endpoint &base, unsigned shards)
{
    std::vector<Endpoint> fleet;
    fleet.reserve(shards);
    for (unsigned shard = 0; shard < shards; ++shard)
        fleet.push_back(shard_endpoint(base, shard));
    return fleet;
}

std::string
build_run_request(const RunRequest &request)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("run");
    w.key("benchmarks").value(request.benchmarks);
    w.key("instructions").value(request.instructions);
    if (request.nl_lead_time != 0)
        w.key("nl_lead_time").value(request.nl_lead_time);
    if (request.collect_l2)
        w.key("collect_l2").value(true);
    if (!request.standard_edges)
        w.key("standard_edges").value(false);
    if (!request.extra_edges.empty()) {
        w.key("extra_edges").begin_array();
        for (const std::uint64_t edge : request.extra_edges)
            w.value(edge);
        w.end_array();
    }
    if (request.want_payload)
        w.key("payload").value(true);
    if (request.engine != "auto")
        w.key("engine").value(request.engine);
    if (request.deadline_ms != 0)
        w.key("deadline_ms").value(request.deadline_ms);
    if (request.core_count != 1)
        w.key("core_count").value(
            static_cast<std::uint64_t>(request.core_count));
    if (!request.workload_mix.empty())
        w.key("workload_mix").value(request.workload_mix);
    w.end_object();
    return w.str();
}

std::string
build_stats_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("stats");
    w.end_object();
    return w.str();
}

std::string
build_ping_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("ping");
    w.end_object();
    return w.str();
}

std::string
build_health_request()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("type").value("health");
    w.end_object();
    return w.str();
}

util::Expected<std::uint64_t>
fingerprint_run_request(const RunRequest &request)
{
    // Round-trip through the wire codec rather than fingerprinting the
    // RunRequest directly: the decoder normalizes (standard-edge
    // absorption, defaults), and routing must key on the normalized
    // form the server fingerprints, not on what the client typed.
    auto parsed = util::json_parse(build_run_request(request));
    if (!parsed)
        return parsed.status();
    auto decoded = core::decode_experiment_request(
        parsed.value(),
        std::max(request.instructions,
                 core::kDefaultMaxRequestInstructions));
    if (!decoded)
        return decoded.status();
    return core::fingerprint_request(decoded.value());
}

util::Expected<util::JsonValue>
call(const util::net::Socket &socket, const std::string &request_json,
     std::size_t max_frame, std::string *raw_frame)
{
    if (util::Status sent = send_frame(socket, request_json, max_frame);
        !sent.ok())
        return sent;
    auto frame = recv_frame(socket, max_frame);
    if (!frame)
        return frame.status();
    if (raw_frame != nullptr)
        *raw_frame = frame.value();
    auto parsed = util::json_parse(frame.value());
    if (!parsed)
        return parsed.status();
    util::JsonValue response = parsed.take();
    if (!response.is_object()) {
        return util::Status(util::ErrorKind::CorruptData,
                            "response is not a JSON object");
    }
    const util::JsonValue *status = response.find("status");
    if (status == nullptr || !status->is_string()) {
        return util::Status(util::ErrorKind::CorruptData,
                            "response lacks a string \"status\"");
    }
    if (status->string_value() == "ok")
        return response;

    // An error frame: rebuild the typed Status the server serialized.
    const util::JsonValue *kind = response.find("kind");
    const util::JsonValue *message = response.find("message");
    util::ErrorKind decoded = util::ErrorKind::Internal;
    if (kind != nullptr && kind->is_string()) {
        if (auto known =
                util::error_kind_from_name(kind->string_value());
            known && *known != util::ErrorKind::None)
            decoded = *known;
    }
    return util::Status(decoded,
                        message != nullptr && message->is_string()
                            ? message->string_value()
                            : "server-side error");
}

util::Expected<util::JsonValue>
call_endpoint(const Endpoint &endpoint, const std::string &request_json,
              std::size_t max_frame, std::string *raw_frame)
{
    auto socket = connect_endpoint(endpoint);
    if (!socket)
        return socket.status();
    return call(socket.value(), request_json, max_frame, raw_frame);
}

bool
failover_worthy(const util::Status &status)
{
    switch (status.kind()) {
      case util::ErrorKind::ConnectionClosed: // refused / peer vanished
      case util::ErrorKind::IoError:          // connect/read/write failed
      case util::ErrorKind::CorruptData:      // truncated mid-frame
      case util::ErrorKind::ShuttingDown:     // orderly shard drain
      case util::ErrorKind::FaultInjected:    // chaos seam on this path
        return true;
      default:
        return false;
    }
}

util::Expected<util::JsonValue>
call_fleet(const std::vector<Endpoint> &fleet, const RunRequest &request,
           const FailoverPolicy &policy, std::size_t max_frame,
           std::string *raw_frame, std::uint64_t *failovers)
{
    if (fleet.empty()) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "call_fleet needs at least one endpoint");
    }
    auto fingerprint = fingerprint_run_request(request);
    if (!fingerprint)
        return fingerprint.status();
    const unsigned home = core::route_shard(
        fingerprint.value(), static_cast<unsigned>(fleet.size()));
    const std::string request_json = build_run_request(request);

    const unsigned attempts =
        policy.max_attempts != 0
            ? policy.max_attempts
            : 2 * static_cast<unsigned>(fleet.size());
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(std::max(policy.budget_ms, 0));
    // Jitter keyed by the request: two clients retrying the same dead
    // shard desynchronize, but a rerun of one client is reproducible.
    util::Rng jitter(policy.jitter_seed ^ fingerprint.value());
    std::uint64_t backoff =
        static_cast<std::uint64_t>(std::max(policy.backoff_initial_ms, 1));
    const std::uint64_t cap =
        static_cast<std::uint64_t>(std::max(policy.backoff_cap_ms, 1));

    util::Status last(util::ErrorKind::IoError, "no attempt was made");
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        const Endpoint &endpoint = fleet[(home + attempt) % fleet.size()];
        auto response =
            call_endpoint(endpoint, request_json, max_frame, raw_frame);
        if (response)
            return response;
        last = response.status();
        if (!failover_worthy(last))
            return last;
        if (attempt + 1 >= attempts ||
            std::chrono::steady_clock::now() >= deadline)
            break;
        if (failovers != nullptr)
            ++*failovers;
        const std::uint64_t sleep_ms =
            backoff + jitter.next_below(backoff / 2 + 1);
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        backoff = std::min(backoff * 2, cap);
    }
    return last;
}

LoadReport
run_load(const Endpoint &endpoint, const RunRequest &request,
         const LoadOptions &options)
{
    const std::string request_json = build_run_request(request);
    LoadReport report;
    std::mutex mutex;
    std::set<std::string> fingerprints;
    std::set<std::uint64_t> response_digests;
    std::uint64_t next = 0;

    /** What one distinct response body means, parsed exactly once. */
    struct BodyClass
    {
        bool ok = false;
        util::ErrorKind kind = util::ErrorKind::Internal;
    };
    std::map<std::uint64_t, BodyClass> body_classes;
    // Classify a raw response frame, memoized by digest: the warm load
    // is overwhelmingly byte-identical bodies, so the JSON parse cost
    // is paid once per distinct body, not once per response.  Call
    // with `mutex` held.
    auto classify = [&](std::uint64_t digest,
                        const std::string &raw) -> const BodyClass & {
        auto it = body_classes.find(digest);
        if (it != body_classes.end())
            return it->second;
        BodyClass parsed;
        if (auto body = util::json_parse(raw);
            body && body.value().is_object()) {
            const util::JsonValue *status = body.value().find("status");
            parsed.ok = status != nullptr && status->is_string() &&
                        status->string_value() == "ok";
            if (parsed.ok) {
                if (const util::JsonValue *fp =
                        body.value().find("request_fingerprint");
                    fp != nullptr && fp->is_string())
                    fingerprints.insert(fp->string_value());
            } else if (const util::JsonValue *kind =
                           body.value().find("kind");
                       kind != nullptr && kind->is_string()) {
                if (auto known = util::error_kind_from_name(
                        kind->string_value());
                    known && *known != util::ErrorKind::None)
                    parsed.kind = *known;
            }
        }
        return body_classes.emplace(digest, parsed).first->second;
    };

    // Held-open idle sockets: opened before the first request, closed
    // after the last response.  Their only job is to exist — the
    // daemon must serve the load loop at full speed while carrying
    // them.
    std::vector<util::net::Socket> idle;
    idle.reserve(options.idle_connections);
    for (unsigned i = 0; i < options.idle_connections; ++i) {
        // Fleet mode spreads the idle herd round-robin across shards.
        auto socket = connect_endpoint(
            options.fleet.empty()
                ? endpoint
                : options.fleet[i % options.fleet.size()]);
        if (!socket)
            break; // fd limit or listener backlog: hold what we got
        idle.push_back(socket.take());
    }
    report.idle_connections_held = idle.size();

    // Fleet mode: requests start at the fingerprint's home shard, so
    // the dedup map and response LRU that already know this request
    // are the ones that see it.
    const bool fleet_mode = !options.fleet.empty();
    const unsigned fleet_size =
        fleet_mode ? static_cast<unsigned>(options.fleet.size()) : 1;
    unsigned home = 0;
    if (fleet_mode) {
        if (auto fingerprint = fingerprint_run_request(request))
            home = core::route_shard(fingerprint.value(), fleet_size);
    }

    const auto begun = std::chrono::steady_clock::now();

    // Batched pipelining: claim up to `pipeline` requests, push them
    // down one connection as a single write, then read the responses
    // back in order.  Exercises the daemon's per-connection reply
    // queue and amortizes syscalls on both sides of the wire.  In
    // fleet mode the connection pins to one shard (home first) and
    // rotates to the next shard only when it fails or drains — the
    // unanswered tail of the batch is re-sent there, which is safe
    // because identical run requests are idempotent by construction.
    auto pipelined_worker = [&] {
        // One frame, prebuilt: 4-byte LE length prefix + payload.
        std::string framed;
        const std::uint32_t size =
            static_cast<std::uint32_t>(request_json.size());
        framed.push_back(static_cast<char>(size & 0xff));
        framed.push_back(static_cast<char>((size >> 8) & 0xff));
        framed.push_back(static_cast<char>((size >> 16) & 0xff));
        framed.push_back(static_cast<char>((size >> 24) & 0xff));
        framed.append(request_json);

        unsigned rotation = 0; ///< offset from the home shard
        util::net::Socket connection;
        for (;;) {
            std::uint64_t batch;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (next >= options.total)
                    return;
                batch = std::min<std::uint64_t>(options.pipeline,
                                                options.total - next);
                next += batch;
            }
            std::uint64_t remaining = batch;
            unsigned tries = fleet_mode ? 2 * fleet_size : 1;
            while (remaining > 0) {
                bool broke = false; ///< this connection is done for
                if (!connection.valid()) {
                    const Endpoint &target =
                        fleet_mode ? options.fleet[(home + rotation) %
                                                   fleet_size]
                                   : endpoint;
                    auto fresh = connect_endpoint(target);
                    if (!fresh)
                        broke = true;
                    else
                        connection = fresh.take();
                }
                auto sent_at = std::chrono::steady_clock::now();
                if (!broke) {
                    std::string wire;
                    wire.reserve(framed.size() * remaining);
                    for (std::uint64_t i = 0; i < remaining; ++i)
                        wire.append(framed);
                    sent_at = std::chrono::steady_clock::now();
                    if (util::Status pushed = util::net::send_all(
                            connection, wire.data(), wire.size());
                        !pushed.ok()) {
                        connection.close();
                        broke = true;
                    }
                }
                while (!broke && remaining > 0) {
                    auto frame =
                        recv_frame(connection, options.max_frame);
                    const double ms =
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - sent_at)
                            .count();
                    if (!frame) {
                        // The unanswered tail is gone with the stream.
                        connection.close();
                        broke = true;
                        break;
                    }
                    const std::uint64_t digest = util::fnv1a(
                        frame.value().data(), frame.value().size());
                    std::lock_guard<std::mutex> lock(mutex);
                    const BodyClass &body =
                        classify(digest, frame.value());
                    if (fleet_mode && !body.ok &&
                        body.kind == util::ErrorKind::ShuttingDown) {
                        // Orderly shard drain: this request and the
                        // rest of the batch belong on the next shard.
                        connection.close();
                        broke = true;
                        break;
                    }
                    ++report.sent;
                    report.latency_ms.add(ms);
                    --remaining;
                    if (body.ok) {
                        ++report.ok;
                        response_digests.insert(digest);
                    } else if (body.kind ==
                               util::ErrorKind::Overloaded) {
                        ++report.overloaded;
                    } else if (body.kind ==
                               util::ErrorKind::ShuttingDown) {
                        ++report.shutting_down;
                    } else {
                        ++report.other_errors;
                    }
                }
                if (!broke)
                    break; // batch fully answered
                if (--tries == 0) {
                    std::lock_guard<std::mutex> lock(mutex);
                    report.sent += remaining;
                    report.other_errors += remaining;
                    break;
                }
                if (fleet_mode) {
                    ++rotation;
                    {
                        std::lock_guard<std::mutex> lock(mutex);
                        ++report.failovers;
                    }
                    // Breathe between reroutes so a restart-storm
                    // window (every shard briefly down) is survived
                    // rather than burned through in microseconds.
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(std::max(
                            options.failover.backoff_initial_ms, 1)));
                }
            }
        }
    };

    auto worker = [&] {
        util::net::Socket persistent;
        for (;;) {
            std::uint64_t k;
            {
                std::lock_guard<std::mutex> lock(mutex);
                if (next >= options.total)
                    return;
                k = next++;
            }
            if (options.open_loop_rps > 0.0) {
                // Open loop: request k is due at begun + k/rate, no
                // matter how the server is doing.
                const auto due =
                    begun + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double>(
                                    static_cast<double>(k) /
                                    options.open_loop_rps));
                std::this_thread::sleep_until(due);
            }
            const auto sent_at = std::chrono::steady_clock::now();
            std::string raw;
            std::uint64_t reroutes = 0;
            util::Expected<util::JsonValue> response =
                util::Status(util::ErrorKind::IoError, "not sent");
            if (fleet_mode) {
                // Fresh connection per request, routed to the home
                // shard with failover (persistent connections in
                // fleet mode are the pipelined worker's job).
                response = call_fleet(options.fleet, request,
                                      options.failover,
                                      options.max_frame, &raw,
                                      &reroutes);
            } else if (options.persistent) {
                if (!persistent.valid()) {
                    if (auto fresh = connect_endpoint(endpoint))
                        persistent = fresh.take();
                }
                if (persistent.valid()) {
                    response = call(persistent, request_json,
                                    options.max_frame, &raw);
                    if (!response)
                        persistent.close(); // reconnect next round
                } else {
                    response = util::Status(
                        util::ErrorKind::IoError,
                        "cannot connect to the daemon");
                }
            } else {
                response = call_endpoint(endpoint, request_json,
                                         options.max_frame, &raw);
            }
            const double ms =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - sent_at)
                    .count();

            std::lock_guard<std::mutex> lock(mutex);
            ++report.sent;
            report.failovers += reroutes;
            report.latency_ms.add(ms);
            if (!response) {
                switch (response.status().kind()) {
                  case util::ErrorKind::Overloaded:
                    ++report.overloaded;
                    break;
                  case util::ErrorKind::ShuttingDown:
                    ++report.shutting_down;
                    break;
                  default:
                    ++report.other_errors;
                }
                continue;
            }
            ++report.ok;
            const util::JsonValue &body = response.value();
            if (const util::JsonValue *fp =
                    body.find("request_fingerprint");
                fp != nullptr && fp->is_string())
                fingerprints.insert(fp->string_value());
            response_digests.insert(
                util::fnv1a(raw.data(), raw.size()));
        }
    };

    std::vector<std::thread> threads;
    const unsigned workers =
        options.concurrency == 0 ? 1 : options.concurrency;
    const bool pipelined = options.persistent &&
                           options.pipeline > 1 &&
                           options.open_loop_rps <= 0.0;
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i) {
        if (pipelined)
            threads.emplace_back(pipelined_worker);
        else
            threads.emplace_back(worker);
    }
    for (std::thread &thread : threads)
        thread.join();

    report.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      begun)
            .count();
    report.distinct_fingerprints = fingerprints.size();
    report.distinct_responses = response_digests.size();
    return report;
}

LoadReport
run_load(const Endpoint &endpoint, const RunRequest &request,
         std::uint64_t total, unsigned concurrency,
         std::size_t max_frame)
{
    LoadOptions options;
    options.total = total;
    options.concurrency = concurrency;
    options.max_frame = max_frame;
    return run_load(endpoint, request, options);
}

} // namespace leakbound::serve
