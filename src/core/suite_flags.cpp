/**
 * @file
 * Implementation of the shared suite flag family.
 */

#include "core/suite_flags.hpp"

#include <string>

#include "core/artifact_cache.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace leakbound::core {

void
register_suite_flags(util::Cli &cli, const SuiteFlagSpec &spec)
{
    if (spec.instructions) {
        cli.add_flag("instructions", "dynamic instructions per benchmark",
                     std::to_string(spec.default_instructions));
    }
    if (spec.jobs) {
        cli.add_flag("jobs",
                     "worker threads for suite simulation (0 = all "
                     "hardware threads); results are merged in suite "
                     "order, so output is identical for every value",
                     "0");
    }
    if (spec.json) {
        cli.add_flag("json",
                     "also write tables + wall-clock/per-benchmark "
                     "timings to this JSON file (empty = off)",
                     "");
    }
    if (spec.csv_dir) {
        cli.add_flag("csv-dir",
                     "also mirror each table to CSV files in this "
                     "directory (empty = off)",
                     "");
    }
    if (spec.cache_dir) {
        cli.add_flag("cache-dir",
                     "persist/reuse per-benchmark simulation artifacts "
                     "in this directory (empty = $LEAKBOUND_CACHE_DIR, "
                     "or off); cached results are byte-identical to "
                     "fresh simulation",
                     "");
    }
    if (spec.suite_passes) {
        cli.add_flag("suite-passes",
                     "run the suite this many times in-process; with "
                     "--cache-dir the first pass is cold and later "
                     "passes are warm loads, each timed in the JSON "
                     "report",
                     "1");
    }
    if (spec.engine) {
        cli.add_flag("engine",
                     "execution engine: auto (analytic fast path where "
                     "eligible), analytic, or sim; results are "
                     "byte-identical for every choice",
                     "auto");
    }
}

unsigned
suite_jobs(const util::Cli &cli)
{
    return util::ThreadPool::effective_jobs(
        static_cast<unsigned>(cli.get_u64("jobs")));
}

void
apply_suite_flags(ExperimentConfig &config, const util::Cli &cli)
{
    config.instructions = cli.get_u64("instructions");
    config.jobs = suite_jobs(cli);
    config.cache_dir = resolve_cache_dir(cli.get("cache-dir"));
    const std::string engine = cli.get("engine");
    const auto parsed = parse_engine(engine);
    if (!parsed) {
        util::fatal("--engine must be auto, analytic or sim (got \"",
                    engine, "\")");
    }
    config.engine = *parsed;
}

} // namespace leakbound::core
