# Empty compiler generated dependencies file for test_inflection.
# This may be replaced when dependencies are built.
