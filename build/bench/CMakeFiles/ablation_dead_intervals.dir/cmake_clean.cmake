file(REMOVE_RECURSE
  "CMakeFiles/ablation_dead_intervals.dir/ablation_dead_intervals.cpp.o"
  "CMakeFiles/ablation_dead_intervals.dir/ablation_dead_intervals.cpp.o.d"
  "ablation_dead_intervals"
  "ablation_dead_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dead_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
