/**
 * @file
 * Reproduces paper Table 3: the Prefetch-A / Prefetch-B method matrix
 * (which mode each method applies per interval class), plus the
 * measured savings each method achieves against the oracle bound.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("table3_prefetch_methods",
                        "Table 3: Prefetch-A/B method definitions");
    cli.parse(argc, argv);

    // The definition matrix (paper Table 3).
    util::Table def("Table 3: mode applied per interval class, 70nm");
    def.set_header({"interval class", "Prefetch-A (performance)",
                    "Prefetch-B (power)"});
    def.add_row({"prefetchable, length in (6, 1057]", "drowsy", "drowsy"});
    def.add_row({"prefetchable, length > 1057", "sleep", "sleep"});
    def.add_row({"non-prefetchable, length > 6", "active", "drowsy"});
    def.add_row({"length <= 6", "active", "active"});
    emit(def, cli, "table3_definitions");

    // Measured effect on the suite.
    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    using interval::PrefetchClass;
    const std::vector<PrefetchClass> icls = {PrefetchClass::NextLine};
    const std::vector<PrefetchClass> dcls = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};

    util::Table meas("measured suite-average savings at 70nm");
    meas.set_header({"scheme", "I-cache", "D-cache"});
    auto add = [&](const char *name, const core::PolicyPtr &pi,
                   const core::PolicyPtr &pd) {
        meas.add_row(
            {name,
             pct(suite_average(*pi, runs, CacheSide::Instruction)
                     .savings),
             pct(suite_average(*pd, runs, CacheSide::Data).savings)});
    };
    add("Prefetch-A",
        core::make_prefetch(model, core::PrefetchVariant::A, icls),
        core::make_prefetch(model, core::PrefetchVariant::A, dcls));
    add("Prefetch-B",
        core::make_prefetch(model, core::PrefetchVariant::B, icls),
        core::make_prefetch(model, core::PrefetchVariant::B, dcls));
    add("OPT-Hybrid (bound)", core::make_opt_hybrid(model),
        core::make_opt_hybrid(model));
    emit(meas, cli, "table3_measured");

    std::printf("paper: Prefetch-B approaches the bound within 5.3\n"
                "points (I-cache) / 6.7 points (D-cache); the A-B gap is\n"
                "the non-prefetchable intervals beyond 1057 cycles.\n");
    return bench::finish(cli);
}
