/**
 * @file
 * Tests of binary trace IO: round-tripping, magic validation, and
 * error handling for missing/corrupt files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "trace/trace_io.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

using namespace leakbound;
using namespace leakbound::trace;

namespace {

std::string
temp_path(const char *name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(TraceIo, RoundTripsRecords)
{
    const std::string path = temp_path("lb_trace_roundtrip.bin");
    util::Rng rng(4);
    std::vector<TimedAccess> expected;
    {
        TraceWriter w(path);
        for (int i = 0; i < 1000; ++i) {
            TimedAccess rec;
            rec.cycle = i * 3;
            rec.pc = 0x400000 + rng.next_below(1 << 20);
            rec.addr = rng.next_u64() >> 16;
            rec.kind = static_cast<InstrKind>(rng.next_below(3));
            w.write(rec);
            expected.push_back(rec);
        }
        EXPECT_EQ(w.count(), 1000u);
    }
    TraceReader r(path);
    TimedAccess rec;
    for (const TimedAccess &want : expected) {
        ASSERT_TRUE(r.next(rec));
        EXPECT_EQ(rec.cycle, want.cycle);
        EXPECT_EQ(rec.pc, want.pc);
        EXPECT_EQ(rec.addr, want.addr);
        EXPECT_EQ(rec.kind, want.kind);
    }
    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.count(), 1000u);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceReadsNothing)
{
    const std::string path = temp_path("lb_trace_empty.bin");
    { TraceWriter w(path); }
    TraceReader r(path);
    TimedAccess rec;
    EXPECT_FALSE(r.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsTypedNotFound)
{
    TraceReader reader("/nonexistent/path/trace.bin");
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().kind(), util::ErrorKind::NotFound);
    EXPECT_NE(reader.status().message().find("no such trace file"),
              std::string::npos);
    TimedAccess rec;
    EXPECT_FALSE(reader.next(rec));
}

TEST(TraceIo, BadMagicIsTypedCorruptData)
{
    const std::string path = temp_path("lb_trace_bad.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all";
    }
    TraceReader reader(path);
    EXPECT_FALSE(reader.ok());
    EXPECT_EQ(reader.status().kind(), util::ErrorKind::CorruptData);
    EXPECT_NE(reader.status().message().find("not a leakbound trace"),
              std::string::npos);
    TimedAccess rec;
    EXPECT_FALSE(reader.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIo, UnwritablePathIsTypedIoError)
{
    TraceWriter writer("/nonexistent/dir/trace.bin");
    EXPECT_FALSE(writer.ok());
    EXPECT_EQ(writer.status().kind(), util::ErrorKind::IoError);
    EXPECT_NE(writer.status().message().find("cannot create"),
              std::string::npos);
    // Writes to a dead writer are swallowed, and flush reports the
    // original latched status instead of inventing a new one.
    writer.write(TimedAccess{});
    EXPECT_EQ(writer.count(), 0u);
    EXPECT_EQ(writer.flush().kind(), util::ErrorKind::IoError);
}

namespace {

/**
 * Draw one fuzzed record: mostly uniform-random fields, with the edge
 * values the on-disk format must not mangle (0, the maximum cycle,
 * kInvalidAddr) oversampled.
 */
TimedAccess
fuzz_record(util::Rng &rng)
{
    auto fuzz_u64 = [&rng]() -> std::uint64_t {
        switch (rng.next_below(8)) {
          case 0: return 0;
          case 1: return ~static_cast<std::uint64_t>(0); // max / invalid
          case 2: return 1;
          default: return rng.next_u64();
        }
    };
    TimedAccess rec;
    rec.cycle = fuzz_u64();
    rec.pc = fuzz_u64();
    rec.addr = fuzz_u64();
    rec.kind = static_cast<InstrKind>(rng.next_below(3));
    return rec;
}

} // namespace

TEST(TraceIo, FuzzedStreamsRoundTripExactly)
{
    // Seeded fuzz over many independent streams: every record —
    // including edge values and runs of duplicates — must survive
    // write -> read -> compare bit-exactly.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        const std::string path = temp_path("lb_trace_fuzz.bin");
        util::Rng rng(seed * 0x9e37'79b9);
        std::vector<TimedAccess> expected;
        const std::size_t n = 200 + rng.next_below(1800);
        {
            TraceWriter w(path);
            for (std::size_t i = 0; i < n; ++i) {
                TimedAccess rec;
                if (!expected.empty() && rng.next_bool(0.15))
                    rec = expected.back(); // duplicate frames/records
                else
                    rec = fuzz_record(rng);
                w.write(rec);
                expected.push_back(rec);
            }
            EXPECT_EQ(w.count(), n);
        }

        TraceReader r(path);
        TimedAccess rec;
        for (std::size_t i = 0; i < expected.size(); ++i) {
            ASSERT_TRUE(r.next(rec)) << "seed " << seed << " record " << i;
            EXPECT_EQ(rec.cycle, expected[i].cycle) << "seed " << seed;
            EXPECT_EQ(rec.pc, expected[i].pc) << "seed " << seed;
            EXPECT_EQ(rec.addr, expected[i].addr) << "seed " << seed;
            EXPECT_EQ(rec.kind, expected[i].kind) << "seed " << seed;
        }
        EXPECT_FALSE(r.next(rec));
        EXPECT_EQ(r.count(), n);
        std::remove(path.c_str());
    }
}

TEST(TraceIo, BlockBoundaryCountsRoundTrip)
{
    // The block-buffered IO path has its interesting states exactly
    // around multiples of kBlockRecords: empty buffer, one record, a
    // partially filled block, an exactly full block (flush with no
    // remainder), one spill-over record, and several blocks plus a
    // tail.  Each count must round-trip bit-exactly and then hit EOF.
    const std::size_t counts[] = {0,
                                  1,
                                  kBlockRecords - 1,
                                  kBlockRecords,
                                  kBlockRecords + 1,
                                  2 * kBlockRecords + 3};
    for (const std::size_t n : counts) {
        const std::string path = temp_path("lb_trace_block.bin");
        util::Rng rng(0xb10cULL ^ n);
        std::vector<TimedAccess> expected;
        {
            TraceWriter w(path);
            for (std::size_t i = 0; i < n; ++i) {
                const TimedAccess rec = fuzz_record(rng);
                w.write(rec);
                expected.push_back(rec);
            }
            EXPECT_EQ(w.count(), n);
        }
        TraceReader r(path);
        TimedAccess rec;
        for (std::size_t i = 0; i < n; ++i) {
            ASSERT_TRUE(r.next(rec)) << "count " << n << " record " << i;
            EXPECT_EQ(rec.cycle, expected[i].cycle) << "count " << n;
            EXPECT_EQ(rec.pc, expected[i].pc) << "count " << n;
            EXPECT_EQ(rec.addr, expected[i].addr) << "count " << n;
            EXPECT_EQ(rec.kind, expected[i].kind) << "count " << n;
        }
        EXPECT_FALSE(r.next(rec)) << "count " << n;
        EXPECT_EQ(r.count(), n);
        std::remove(path.c_str());
    }
}

TEST(TraceIo, MidStreamFlushKeepsFormatIdentical)
{
    // Explicit flushes between records must not change the byte stream:
    // a file written with flushes after every record equals one written
    // with pure block buffering.
    const std::string path_a = temp_path("lb_trace_flush_a.bin");
    const std::string path_b = temp_path("lb_trace_flush_b.bin");
    util::Rng rng(0xf105ULL);
    std::vector<TimedAccess> records;
    for (int i = 0; i < 300; ++i)
        records.push_back(fuzz_record(rng));
    {
        TraceWriter a(path_a);
        TraceWriter b(path_b);
        for (const TimedAccess &rec : records) {
            a.write(rec);
            a.flush();
            b.write(rec);
        }
    }
    std::ifstream fa(path_a, std::ios::binary);
    std::ifstream fb(path_b, std::ios::binary);
    const std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                              std::istreambuf_iterator<char>());
    const std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                              std::istreambuf_iterator<char>());
    EXPECT_EQ(bytes_a, bytes_b);
    EXPECT_EQ(bytes_a.size(),
              sizeof(kTraceMagic) + records.size() * kTraceRecordBytes);
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(TraceIo, TruncatedTrailingRecordReadsAsEof)
{
    // A file cut mid-record (e.g. a crashed writer) yields exactly the
    // complete records and then EOF — matching the historical
    // record-at-a-time behaviour the block reader replaced.
    const std::string path = temp_path("lb_trace_trunc.bin");
    util::Rng rng(0x7777);
    std::vector<TimedAccess> records;
    for (std::size_t i = 0; i < kBlockRecords + 10; ++i)
        records.push_back(fuzz_record(rng));
    {
        TraceWriter w(path);
        for (const TimedAccess &rec : records)
            w.write(rec);
    }
    // Chop 7 bytes off the final record.
    const std::size_t full =
        sizeof(kTraceMagic) + records.size() * kTraceRecordBytes;
    ASSERT_EQ(std::filesystem::file_size(path), full);
    std::filesystem::resize_file(path, full - 7);

    TraceReader r(path);
    TimedAccess rec;
    for (std::size_t i = 0; i + 1 < records.size(); ++i) {
        ASSERT_TRUE(r.next(rec)) << "record " << i;
        EXPECT_EQ(rec.addr, records[i].addr);
    }
    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.count(), records.size() - 1);
    std::remove(path.c_str());
}

TEST(TraceIo, ExtremeValuesRoundTrip)
{
    const std::string path = temp_path("lb_trace_extreme.bin");
    const std::uint64_t max64 = ~static_cast<std::uint64_t>(0);
    const std::vector<TimedAccess> expected = {
        {0, 0, 0, InstrKind::Op},
        {max64, max64, max64, InstrKind::Store},  // max cycle
        {max64, max64, max64, InstrKind::Store},  // exact duplicate
        {0, 0, kInvalidAddr, InstrKind::Load},    // sentinel address
        {1, max64 - 1, 1, InstrKind::Load},
    };
    {
        TraceWriter w(path);
        for (const TimedAccess &rec : expected)
            w.write(rec);
    }
    TraceReader r(path);
    TimedAccess rec;
    for (const TimedAccess &want : expected) {
        ASSERT_TRUE(r.next(rec));
        EXPECT_EQ(rec.cycle, want.cycle);
        EXPECT_EQ(rec.pc, want.pc);
        EXPECT_EQ(rec.addr, want.addr);
        EXPECT_EQ(rec.kind, want.kind);
    }
    EXPECT_FALSE(r.next(rec));
    std::remove(path.c_str());
}
