/**
 * @file
 * Fundamental scalar types shared by every leakbound module.
 *
 * The simulator measures time in CPU cycles and addresses in bytes.
 * Energy is measured in "leakage units" (LU): the leakage energy one
 * active cache line dissipates in one cycle is exactly 1 LU, which is
 * the normalization used throughout the paper's equations (Eq. 1-3).
 */

#ifndef LEAKBOUND_UTIL_TYPES_HPP
#define LEAKBOUND_UTIL_TYPES_HPP

#include <cstdint>

namespace leakbound {

/** Byte address in the simulated address space. */
using Addr = std::uint64_t;

/** Absolute simulation time, in CPU cycles. */
using Cycle = std::uint64_t;

/** A span of simulation time, in CPU cycles. */
using Cycles = std::uint64_t;

/** Program counter of a static instruction. */
using Pc = std::uint64_t;

/**
 * Energy in leakage units (LU·cycles).  1 LU·cycle is the leakage energy
 * of one fully-active cache line over one cycle.
 */
using Energy = double;

/** Power in LU/cycle (fraction of one active line's leakage power). */
using Power = double;

/** Index of a physical cache frame (set * ways + way). */
using FrameId = std::uint32_t;

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = ~static_cast<Addr>(0);

/** Sentinel for "no frame". */
inline constexpr FrameId kInvalidFrame = ~static_cast<FrameId>(0);

} // namespace leakbound

#endif // LEAKBOUND_UTIL_TYPES_HPP
