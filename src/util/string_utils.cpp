/**
 * @file
 * Implementation of string formatting helpers.
 */

#include "util/string_utils.hpp"

#include <cctype>
#include <cstdio>

namespace leakbound::util {

std::string
format_percent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
format_fixed(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

std::string
format_commas(std::uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    std::size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (std::size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i + 3 - lead) % 3 == 0)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
format_bytes(std::uint64_t bytes)
{
    static const char *suffixes[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    std::size_t idx = 0;
    std::uint64_t value = bytes;
    while (value >= 1024 && value % 1024 == 0 && idx + 1 < 5) {
        value /= 1024;
        ++idx;
    }
    return std::to_string(value) + suffixes[idx];
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::string
trim(std::string_view text)
{
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

bool
starts_with(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

std::string
to_lower(std::string_view text)
{
    std::string out(text);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

} // namespace leakbound::util
