/**
 * @file
 * Name tables for interval enums.
 */

#include "interval/interval.hpp"

namespace leakbound::interval {

const char *
kind_name(IntervalKind kind)
{
    switch (kind) {
      case IntervalKind::Inner:
        return "inner";
      case IntervalKind::Leading:
        return "leading";
      case IntervalKind::Trailing:
        return "trailing";
      case IntervalKind::Untouched:
        return "untouched";
    }
    return "?";
}

const char *
prefetch_class_name(PrefetchClass pf)
{
    switch (pf) {
      case PrefetchClass::NonPrefetchable:
        return "non-prefetchable";
      case PrefetchClass::NextLine:
        return "next-line";
      case PrefetchClass::Stride:
        return "stride";
    }
    return "?";
}

} // namespace leakbound::interval
