/**
 * @file
 * Three-level memory hierarchy: split L1 (I/D) over a unified L2 over
 * flat memory, with the paper's latencies (Section 4.1).
 *
 * The access paths are defined inline so that, together with the
 * cache's kernel access path, one hierarchy access compiles into a
 * single straight-line routine inside the simulation loop.
 */

#ifndef LEAKBOUND_SIM_HIERARCHY_HPP
#define LEAKBOUND_SIM_HIERARCHY_HPP

#include <memory>

#include "sim/cache.hpp"

namespace leakbound::sim {

/** Full hierarchy configuration. */
struct HierarchyConfig
{
    CacheConfig l1i = CacheConfig::alpha_l1i();
    CacheConfig l1d = CacheConfig::alpha_l1d();
    CacheConfig l2 = CacheConfig::alpha_l2();
    Cycles memory_latency = 100; ///< L2 miss service time

    /** Validate all levels. */
    void validate() const;
};

/** Outcome of one hierarchy access. */
struct HierarchyResult
{
    AccessResult l1;       ///< the L1-level outcome (frame etc.)
    bool l2_hit = false;   ///< meaningful only when !l1.hit
    /** The L2-level outcome; valid only when the L1 missed
     *  (l2.frame == kInvalidFrame otherwise). */
    AccessResult l2;
    Cycles latency = 0;    ///< total service latency in cycles
};

/**
 * The simulated memory system.  Instruction fetches go to L1I, data
 * accesses to L1D; both miss into the shared L2 and then memory.
 */
class Hierarchy
{
  public:
    /**
     * @param mode decision-logic selection forwarded to all three
     *        caches (byte-identical either way; see SimMode).
     */
    explicit Hierarchy(const HierarchyConfig &config,
                       SimMode mode = SimMode::Kernel);

    /**
     * A private-L1 node over an externally owned shared L2 (the
     * multicore hierarchy, src/multicore): this instance builds only
     * the two L1s and routes their misses into @p shared_l2, which
     * must outlive it.  The L1 seeds are derived from @p requester so
     * distinct cores draw distinct Random-replacement streams;
     * requester 0 reproduces the single-requester seeds exactly,
     * which is what anchors the N=1 multicore byte-identity proof.
     */
    Hierarchy(const HierarchyConfig &config, Cache *shared_l2,
              std::uint32_t requester, SimMode mode = SimMode::Kernel);

    /** Fetch the instruction line containing @p pc. */
    HierarchyResult access_instr(Pc pc) { return access_through(l1i_, pc); }

    /** Load/store the data line containing @p addr. */
    HierarchyResult access_data(Addr addr)
    {
        return access_through(l1d_, addr);
    }

    /** The instruction L1. */
    Cache &l1i() { return l1i_; }
    const Cache &l1i() const { return l1i_; }

    /** The data L1. */
    Cache &l1d() { return l1d_; }
    const Cache &l1d() const { return l1d_; }

    /** The unified L2 (owned, or the shared instance for a node). */
    Cache &l2() { return *l2_; }
    const Cache &l2() const { return *l2_; }

    /** Configuration in force. */
    const HierarchyConfig &config() const { return config_; }

  private:
    HierarchyResult
    access_through(Cache &l1, Addr addr)
    {
        HierarchyResult out;
        out.l1 = l1.access(addr);
        if (out.l1.hit) {
            out.latency = l1.config().hit_latency;
            return out;
        }
        out.l2 = l2_->access(addr);
        out.l2_hit = out.l2.hit;
        out.latency = out.l2.hit ? l2_->config().hit_latency
                                 : config_.memory_latency;
        return out;
    }

    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    /** The L2 this instance owns; empty for shared-L2 nodes. */
    std::unique_ptr<Cache> owned_l2_;
    /** The L2 accesses go through (owned_l2_.get() or the shared one). */
    Cache *l2_;
};

} // namespace leakbound::sim

#endif // LEAKBOUND_SIM_HIERARCHY_HPP
