/**
 * @file
 * ITRS leakage projection (paper Figure 1).
 *
 * Figure 1 plots, per the International Technology Roadmap for
 * Semiconductors, the projected fraction of total power dissipated as
 * leakage from 1999 to 2009.  The roadmap site the paper cites is long
 * gone; we encode the monotone trend the figure shows (a few percent in
 * 1999 rising past half of total power by decade's end) as a table plus
 * a logistic interpolant for intermediate years.
 */

#ifndef LEAKBOUND_POWER_ITRS_HPP
#define LEAKBOUND_POWER_ITRS_HPP

#include <vector>

namespace leakbound::power {

/** One projected roadmap point. */
struct ItrsPoint
{
    int year;               ///< calendar year
    double leakage_fraction; ///< leakage / total power, in [0, 1]
};

/** The tabulated 1999-2009 projection (biennial, as the figure plots). */
const std::vector<ItrsPoint> &itrs_projection();

/**
 * Leakage fraction for an arbitrary @p year via logistic fit through
 * the tabulated points; clamps outside [1999, 2009].
 */
double itrs_leakage_fraction(double year);

} // namespace leakbound::power

#endif // LEAKBOUND_POWER_ITRS_HPP
