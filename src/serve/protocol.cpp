/**
 * @file
 * Implementation of the leakboundd wire protocol: frame codec, hex
 * payload encoding, and the response renderers.
 */

#include "serve/protocol.hpp"

#include <cstring>

#include "core/artifact_cache.hpp"
#include "util/fingerprint.hpp"
#include "util/json.hpp"

namespace leakbound::serve {

util::Status
send_frame(const util::net::Socket &socket, const std::string &payload,
           std::size_t max_frame)
{
    if (payload.size() > max_frame) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "frame payload of " +
                                std::to_string(payload.size()) +
                                " bytes exceeds the " +
                                std::to_string(max_frame) + " byte cap");
    }
    // One buffer, one send path: splitting header and payload into
    // two writes invites a Nagle/delayed-ACK stall between them.
    const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
    std::string frame;
    frame.reserve(kFrameHeaderBytes + payload.size());
    frame.push_back(static_cast<char>(size & 0xff));
    frame.push_back(static_cast<char>((size >> 8) & 0xff));
    frame.push_back(static_cast<char>((size >> 16) & 0xff));
    frame.push_back(static_cast<char>((size >> 24) & 0xff));
    frame.append(payload);
    return util::net::send_all(socket, frame.data(), frame.size());
}

util::Expected<std::string>
recv_frame(const util::net::Socket &socket, std::size_t max_frame)
{
    std::string header;
    if (util::Status got =
            util::net::recv_exact(socket, kFrameHeaderBytes, header);
        !got.ok())
        return got;
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(header.data());
    const std::uint32_t size =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    if (size > max_frame) {
        return util::Status(util::ErrorKind::CorruptData,
                            "frame length prefix of " +
                                std::to_string(size) +
                                " bytes exceeds the " +
                                std::to_string(max_frame) + " byte cap");
    }
    std::string payload;
    if (size == 0)
        return payload;
    if (util::Status got = util::net::recv_exact(socket, size, payload);
        !got.ok()) {
        // recv_exact reports clean EOF before the first byte as
        // ConnectionClosed, but after a header a vanishing peer is a
        // truncated frame, not a clean close.
        if (got.kind() == util::ErrorKind::ConnectionClosed) {
            return util::Status(util::ErrorKind::CorruptData,
                                "peer closed mid-frame: announced " +
                                    std::to_string(size) +
                                    " bytes, sent none");
        }
        return got;
    }
    return payload;
}

util::Expected<std::string>
recv_frame_deadline(const util::net::Socket &socket,
                    std::size_t max_frame, int deadline_ms)
{
    std::string header;
    if (util::Status got = util::net::recv_exact_deadline(
            socket, kFrameHeaderBytes, header, deadline_ms);
        !got.ok())
        return got;
    const auto *bytes =
        reinterpret_cast<const unsigned char *>(header.data());
    const std::uint32_t size =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    if (size > max_frame) {
        return util::Status(util::ErrorKind::CorruptData,
                            "frame length prefix of " +
                                std::to_string(size) +
                                " bytes exceeds the " +
                                std::to_string(max_frame) + " byte cap");
    }
    std::string payload;
    if (size == 0)
        return payload;
    if (util::Status got = util::net::recv_exact_deadline(
            socket, size, payload, deadline_ms);
        !got.ok()) {
        if (got.kind() == util::ErrorKind::ConnectionClosed) {
            return util::Status(util::ErrorKind::CorruptData,
                                "peer closed mid-frame: announced " +
                                    std::to_string(size) +
                                    " bytes, sent none");
        }
        return got;
    }
    return payload;
}

std::string
hex_encode(const std::string &bytes)
{
    static constexpr char kDigits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (const unsigned char byte : bytes) {
        out.push_back(kDigits[byte >> 4]);
        out.push_back(kDigits[byte & 0xf]);
    }
    return out;
}

namespace {

int
hex_nibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

util::Expected<std::string>
hex_decode(const std::string &hex)
{
    if (hex.size() % 2 != 0) {
        return util::Status(util::ErrorKind::CorruptData,
                            "odd-length hex string (" +
                                std::to_string(hex.size()) + " chars)");
    }
    std::string out;
    out.reserve(hex.size() / 2);
    for (std::size_t i = 0; i < hex.size(); i += 2) {
        const int hi = hex_nibble(hex[i]);
        const int lo = hex_nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) {
            return util::Status(util::ErrorKind::CorruptData,
                                "non-hex character at offset " +
                                    std::to_string(i));
        }
        out.push_back(static_cast<char>((hi << 4) | lo));
    }
    return out;
}

std::string
render_error(const util::Status &status)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("error");
    w.key("kind").value(util::error_kind_name(status.kind()));
    w.key("message").value(status.message());
    w.end_object();
    return w.str();
}

std::string
render_pong()
{
    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("type").value("pong");
    w.end_object();
    return w.str();
}

void
write_stats_fields(util::JsonWriter &w, const StatsSnapshot &stats)
{
    w.key("requests_served").value(stats.requests_served);
    w.key("dedup_hits").value(stats.dedup_hits);
    w.key("response_lru_hits").value(stats.response_lru_hits);
    w.key("response_lru_evictions").value(stats.response_lru_evictions);
    w.key("response_lru_entries").value(stats.response_lru_entries);
    w.key("response_lru_bytes").value(stats.response_lru_bytes);
    w.key("cache_hits").value(stats.cache_hits);
    w.key("analytic_runs").value(stats.analytic_runs);
    w.key("sim_runs").value(stats.sim_runs);
    w.key("kernel_path_runs").value(stats.kernel_path_runs);
    w.key("reference_path_runs").value(stats.reference_path_runs);
    w.key("mixed_path_runs").value(stats.mixed_path_runs);
    w.key("rejected_overloaded").value(stats.rejected_overloaded);
    w.key("rejected_deadline").value(stats.rejected_deadline);
    w.key("rejected_shutting_down").value(stats.rejected_shutting_down);
    w.key("protocol_errors").value(stats.protocol_errors);
    w.key("sessions_accepted").value(stats.sessions_accepted);
    w.key("open_connections").value(stats.open_connections);
    w.key("queue_depth").value(stats.queue_depth);
    w.key("running").value(stats.running);
    w.key("locks_broken").value(stats.locks_broken);
    w.key("latency_p50_ms").value(stats.latency_p50_ms);
    w.key("latency_p99_ms").value(stats.latency_p99_ms);
    w.key("uptime_seconds").value(stats.uptime_seconds);
}

std::string
render_stats(const StatsSnapshot &stats)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("type").value("stats");
    write_stats_fields(w, stats);
    w.end_object();
    return w.str();
}

std::string
render_health(const HealthSnapshot &health)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("type").value("health");
    w.key("role").value("shard");
    w.key("shard").value(static_cast<std::int64_t>(health.shard_index));
    w.key("pid").value(health.pid);
    w.key("draining").value(health.draining);
    w.key("uptime_seconds").value(health.uptime_seconds);
    w.end_object();
    return w.str();
}

std::string
render_run_response(const core::SuiteOutcome &outcome,
                    const core::ExperimentRequest &request,
                    std::uint64_t fingerprint)
{
    std::uint64_t simulated = 0;
    std::uint64_t loaded = 0;
    for (const auto &slot : outcome.slots)
        if (slot)
            ++(slot->from_cache ? loaded : simulated);

    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("type").value("run");
    w.key("request_fingerprint").value(util::hex64(fingerprint));
    w.key("interrupted").value(outcome.interrupted);
    w.key("suites").begin_array();
    w.begin_object();
    w.key("simulated").value(simulated);
    w.key("loaded").value(loaded);
    w.key("failed").value(
        static_cast<std::uint64_t>(outcome.failures.size()));
    w.end_object();
    w.end_array();
    w.key("benchmarks").begin_array();
    for (const auto &slot : outcome.slots) {
        if (!slot)
            continue;
        const core::ExperimentResult &run = *slot;
        const std::string bytes = core::serialize_result(run);
        w.begin_object();
        w.key("benchmark").value(run.workload);
        w.key("instructions").value(run.core.instructions);
        w.key("cycles").value(run.core.cycles);
        w.key("ipc").value(run.core.ipc());
        w.key("from_cache").value(run.from_cache);
        w.key("engine").value(run.analytic ? "analytic" : "sim");
        w.key("sim_path_effective").value(run.sim_path_effective);
        w.key("result_fnv")
            .value(util::hex64(util::fnv1a(bytes.data(), bytes.size())));
        if (request.want_payload)
            w.key("payload").value(hex_encode(bytes));
        w.end_object();
    }
    w.end_array();
    w.key("failures").begin_array();
    for (const core::SuiteJobFailure &failure : outcome.failures) {
        w.begin_object();
        w.key("benchmark").value(failure.workload);
        w.key("kind").value(util::error_kind_name(failure.kind));
        w.key("message").value(failure.message);
        w.key("retries").value(
            static_cast<std::uint64_t>(failure.retries));
        w.end_object();
    }
    w.end_array();
    w.key("cache_health").begin_object();
    w.key("store_failures").value(outcome.cache.store_failures);
    w.key("corrupt_entries").value(outcome.cache.corrupt_entries);
    w.key("lock_breaks").value(outcome.cache.lock_breaks);
    w.key("lock_timeouts").value(outcome.cache.lock_timeouts);
    w.key("lock_retries").value(outcome.cache.lock_retries);
    w.key("degraded_jobs").value(outcome.cache.degraded_jobs);
    w.key("degraded").value(outcome.cache.degraded);
    w.end_object();
    w.end_object();
    return w.str();
}

} // namespace leakbound::serve
