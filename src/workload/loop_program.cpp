/**
 * @file
 * Implementation of the loop-nest program generator.
 */

#include "workload/loop_program.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace leakbound::workload {

namespace {

/** Instructions in a loop latch (compare + branch). */
constexpr std::uint32_t kLatchInstrs = 2;

/** Bytes per instruction (fixed-width encoding). */
constexpr std::uint32_t kInstrBytes = 4;

/** Address draws batched per DataPattern::fill() call. */
constexpr std::size_t kAddrBatch = 64;

} // namespace

NodeSpec
NodeSpec::make_block(const BlockSpec &spec)
{
    NodeSpec node;
    node.kind = Kind::Block;
    node.block = spec;
    return node;
}

NodeSpec
NodeSpec::make_loop(std::uint64_t min_trips, std::uint64_t max_trips,
                    std::vector<NodeSpec> body)
{
    LEAKBOUND_ASSERT(min_trips <= max_trips, "loop trips: min > max");
    NodeSpec node;
    node.kind = Kind::Loop;
    node.min_trips = min_trips;
    node.max_trips = max_trips;
    node.body = std::move(body);
    return node;
}

LoopProgram::LoopProgram(std::string name, Pc code_base,
                         std::vector<NodeSpec> top_level,
                         std::vector<DataPatternPtr> patterns,
                         std::uint64_t seed)
    : name_(std::move(name)), code_base_(code_base),
      patterns_(std::move(patterns)), seed_(seed), run_rng_(seed)
{
    // Static layout: assign PCs and per-instruction kinds with a
    // dedicated RNG so the layout never depends on execution order.
    util::Rng layout_rng(seed ^ 0xc0def00dULL);
    Pc next_pc = code_base_;
    top_.reserve(top_level.size());
    for (const NodeSpec &spec : top_level)
        top_.push_back(flatten(spec, next_pc, layout_rng));
    top_latch_pc_ = next_pc;
    next_pc += kLatchInstrs * kInstrBytes;
    code_bytes_ = next_pc - code_base_;

    start_run();
}

LoopProgram::FlatNode
LoopProgram::flatten(const NodeSpec &spec, Pc &next_pc,
                     util::Rng &layout_rng)
{
    FlatNode node;
    node.kind = spec.kind;
    if (spec.kind == NodeSpec::Kind::Block) {
        const BlockSpec &b = spec.block;
        if (b.mem_fraction > 0.0 &&
            (b.pattern < 0 ||
             static_cast<std::size_t>(b.pattern) >= patterns_.size())) {
            util::fatal("workload '", name_, "': block references ",
                        "pattern ", b.pattern, " but the pool has ",
                        patterns_.size(), " patterns");
        }
        FlatBlock flat;
        flat.base_pc = next_pc;
        flat.pattern = b.pattern;
        flat.kinds.reserve(b.instrs);
        for (std::uint32_t i = 0; i < b.instrs; ++i) {
            if (b.pattern >= 0 && layout_rng.next_bool(b.mem_fraction)) {
                flat.kinds.push_back(layout_rng.next_bool(b.store_fraction)
                                         ? trace::InstrKind::Store
                                         : trace::InstrKind::Load);
            } else {
                flat.kinds.push_back(trace::InstrKind::Op);
            }
        }
        flat.mem_prefix.reserve(b.instrs + 1);
        flat.mem_prefix.push_back(0);
        for (trace::InstrKind k : flat.kinds) {
            flat.mem_prefix.push_back(
                flat.mem_prefix.back() +
                (k != trace::InstrKind::Op ? 1 : 0));
        }
        next_pc += static_cast<Pc>(b.instrs) * kInstrBytes;
        node.block_index = blocks_.size();
        blocks_.push_back(std::move(flat));
    } else {
        node.min_trips = spec.min_trips;
        node.max_trips = spec.max_trips;
        node.body.reserve(spec.body.size());
        for (const NodeSpec &child : spec.body)
            node.body.push_back(flatten(child, next_pc, layout_rng));
        node.latch_pc = next_pc;
        next_pc += kLatchInstrs * kInstrBytes;
    }
    return node;
}

void
LoopProgram::start_run()
{
    run_rng_ = util::Rng(seed_ ^ 0x5eedULL);
    stack_.clear();
    stack_.push_back(Frame{nullptr, 0, 0});
    cur_block_ = nullptr;
    instr_idx_ = 0;
    latch_pc_ = 0;
    latch_idx_ = 0;
}

const std::vector<LoopProgram::FlatNode> &
LoopProgram::body_of(const Frame &frame) const
{
    return frame.loop ? frame.loop->body : top_;
}

bool
LoopProgram::next(trace::MicroOp &op)
{
    for (;;) {
        if (latch_pc_ != 0) {
            op.pc = latch_pc_ + static_cast<Pc>(latch_idx_) * kInstrBytes;
            op.kind = trace::InstrKind::Op;
            op.addr = kInvalidAddr;
            if (++latch_idx_ == kLatchInstrs)
                latch_pc_ = 0;
            return true;
        }

        if (cur_block_ != nullptr) {
            if (instr_idx_ >= cur_block_->kinds.size()) {
                cur_block_ = nullptr;
                continue;
            }
            op.pc = cur_block_->base_pc +
                    static_cast<Pc>(instr_idx_) * kInstrBytes;
            op.kind = cur_block_->kinds[instr_idx_];
            if (op.kind == trace::InstrKind::Op) {
                op.addr = kInvalidAddr;
            } else {
                op.addr = patterns_[static_cast<std::size_t>(
                                        cur_block_->pattern)]
                              ->next();
            }
            ++instr_idx_;
            return true;
        }

        Frame &frame = stack_.back();
        const std::vector<FlatNode> &body = body_of(frame);
        if (frame.pos < body.size()) {
            const FlatNode &node = body[frame.pos++];
            if (node.kind == NodeSpec::Kind::Block) {
                cur_block_ = &blocks_[node.block_index];
                instr_idx_ = 0;
            } else {
                const std::uint64_t trips =
                    run_rng_.next_in(node.min_trips, node.max_trips);
                if (trips > 0)
                    stack_.push_back(Frame{&node, trips, 0});
            }
            continue;
        }

        // Body finished: emit the latch, then either iterate or exit.
        latch_pc_ = frame.loop ? frame.loop->latch_pc : top_latch_pc_;
        latch_idx_ = 0;
        if (frame.loop == nullptr) {
            frame.pos = 0; // the top-level loop runs forever
        } else if (--frame.trips_left > 0) {
            frame.pos = 0;
        } else {
            stack_.pop_back();
        }
    }
}

std::size_t
LoopProgram::next_batch(trace::MicroOp *out, std::size_t max)
{
    // Block-filling form of next(): the two emission states (latch,
    // straight-line block) run as tight loops emitting exactly the ops
    // next() would, with identical pattern draws; the state-machine
    // transitions between them reuse next() itself.
    std::size_t got = 0;
    while (got < max) {
        if (latch_pc_ != 0) {
            while (got < max && latch_pc_ != 0) {
                trace::MicroOp &op = out[got++];
                op.pc =
                    latch_pc_ + static_cast<Pc>(latch_idx_) * kInstrBytes;
                op.kind = trace::InstrKind::Op;
                op.addr = kInvalidAddr;
                if (++latch_idx_ == kLatchInstrs)
                    latch_pc_ = 0;
            }
            continue;
        }
        if (cur_block_ != nullptr &&
            instr_idx_ < cur_block_->kinds.size()) {
            const FlatBlock &blk = *cur_block_;
            DataPattern *pattern =
                blk.pattern >= 0
                    ? patterns_[static_cast<std::size_t>(blk.pattern)]
                          .get()
                    : nullptr;
            const std::size_t end_all = blk.kinds.size();
            while (got < max && instr_idx_ < end_all) {
                // Count the span's pattern draws up front and batch
                // them through one virtual fill() — same draws in the
                // same order next() would make.
                const std::size_t span =
                    std::min({end_all - instr_idx_, max - got,
                              kAddrBatch});
                const std::size_t start = instr_idx_;
                const std::size_t end = start + span;
                const std::uint32_t nmem =
                    blk.mem_prefix[end] - blk.mem_prefix[start];
                Addr addrs[kAddrBatch];
                if (nmem != 0)
                    pattern->fill(addrs, nmem);
                std::size_t draw = 0;
                for (std::size_t i = start; i < end; ++i) {
                    trace::MicroOp &op = out[got++];
                    op.pc = blk.base_pc + static_cast<Pc>(i) * kInstrBytes;
                    op.kind = blk.kinds[i];
                    op.addr = op.kind == trace::InstrKind::Op
                                  ? kInvalidAddr
                                  : addrs[draw++];
                }
                instr_idx_ = static_cast<std::uint32_t>(end);
            }
            continue;
        }
        if (!next(out[got]))
            break;
        ++got;
    }
    return got;
}

void
LoopProgram::reset()
{
    for (auto &p : patterns_)
        p->reset();
    start_run();
}

bool
LoopProgram::node_constant_trips(const FlatNode &node) const
{
    if (node.kind == NodeSpec::Kind::Block)
        return true;
    if (node.min_trips != node.max_trips)
        return false;
    for (const FlatNode &child : node.body)
        if (!node_constant_trips(child))
            return false;
    return true;
}

std::uint64_t
LoopProgram::node_instrs(const FlatNode &node) const
{
    if (node.kind == NodeSpec::Kind::Block)
        return blocks_[node.block_index].kinds.size();
    // A zero-trip loop is skipped entirely: no body, no latch (next()
    // still consumes one RNG draw, which is why the draw must be a
    // constant for the profile to hold).
    const std::uint64_t trips = node.min_trips;
    if (trips == 0)
        return 0;
    std::uint64_t body = 0;
    for (const FlatNode &child : node.body)
        body += node_instrs(child);
    return trips * (body + kLatchInstrs);
}

std::optional<AnalyticProfile>
LoopProgram::analytic_profile() const
{
    for (const FlatNode &node : top_)
        if (!node_constant_trips(node))
            return std::nullopt;
    std::vector<std::uint64_t> scratch;
    for (const auto &p : patterns_)
        if (!p->append_state(scratch))
            return std::nullopt;

    AnalyticProfile profile;
    profile.period_instructions = kLatchInstrs; // the top-level latch
    for (const FlatNode &node : top_)
        profile.period_instructions += node_instrs(node);
    return profile;
}

bool
LoopProgram::append_state(std::vector<std::uint64_t> &out) const
{
    constexpr std::uint64_t kNone = ~static_cast<std::uint64_t>(0);

    out.push_back(stack_.size());
    for (const Frame &frame : stack_) {
        out.push_back(frame.loop ? frame.loop->latch_pc : kNone);
        out.push_back(frame.trips_left);
        out.push_back(frame.pos);
    }
    out.push_back(cur_block_ ? cur_block_->base_pc : kNone);
    out.push_back(instr_idx_);
    out.push_back(latch_pc_);
    out.push_back(latch_idx_);
    for (const auto &p : patterns_)
        if (!p->append_state(out))
            return false;
    return true;
}

} // namespace leakbound::workload
