/**
 * @file
 * Multicore request latency and commit bench, end to end through
 * leakboundd.
 *
 * Starts an in-process daemon and issues three requests:
 *
 *   1. cold single-core  (the N=1 baseline for the same benchmark)
 *   2. cold multicore    (core_count + workload_mix; distinct
 *                         fingerprint, so the baseline cannot warm it)
 *   3. warm multicore    (repeat of 2 — must load from the artifact
 *                         cache, proving multicore results commit and
 *                         round-trip byte-identically)
 *
 * and emits BENCH_multicore_serve.json with the three wall times and
 * the daemon's lane counters.  Checks enforced (exit 3 otherwise):
 * the warm response's digest equals the cold multicore one, the warm
 * run reports from_cache with sim_path_effective "cache", and the
 * cold multicore run reports a live lane ("kernel" / "reference" /
 * "mixed").  The response LRU is disabled so the warm probe exercises
 * the artifact cache, not the rendered-bytes cache.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/artifact_cache.hpp"
#include "core/suite_flags.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/binary_io.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;

namespace {

struct TimedResponse
{
    double seconds = 0.0;
    std::string result_fnv;
    std::string sim_path;
    bool from_cache = false;
};

TimedResponse
timed_call(const serve::Endpoint &endpoint,
           const serve::RunRequest &request, serve::Server &server,
           std::thread &serving)
{
    const auto begun = std::chrono::steady_clock::now();
    auto response = serve::call_endpoint(
        endpoint, serve::build_run_request(request));
    TimedResponse out;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begun)
                      .count();
    if (!response) {
        server.request_drain();
        serving.join();
        util::fatal("request failed: ", response.status().to_string());
    }
    const util::JsonValue &body = response.value();
    const util::JsonValue *runs = body.find("benchmarks");
    if (runs == nullptr || !runs->is_array() || runs->array().empty()) {
        server.request_drain();
        serving.join();
        util::fatal("malformed run response");
    }
    const util::JsonValue &run = runs->array()[0];
    out.result_fnv = run.find("result_fnv")->string_value();
    out.sim_path = run.find("sim_path_effective")->string_value();
    out.from_cache = run.find("from_cache")->bool_value();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    util::install_signal_handlers();
    util::fault::configure_from_env();

    util::Cli cli("bench_multicore",
                  "multicore request latency and cache commit through "
                  "leakboundd");
    core::SuiteFlagSpec spec;
    spec.csv_dir = false;
    spec.suite_passes = false;
    spec.engine = false; // multicore requests always simulate
    spec.default_instructions = 200'000;
    core::register_suite_flags(cli, spec);
    cli.add_flag("core-count", "cores in the multicore request", "4");
    cli.add_flag("workload-mix",
                 "comma-separated per-core benchmarks (must match "
                 "--core-count)",
                 "stream,chase,stream,gzip");
    cli.add_flag("workers", "scheduler suite workers in the daemon",
                 "2");
    cli.parse(argc, argv);

    serve::ServerConfig config;
    config.listen_tcp = true; // ephemeral loopback port
    config.scheduler.workers =
        static_cast<unsigned>(cli.get_u64("workers"));
    config.scheduler.suite_jobs = core::suite_jobs(cli);
    config.scheduler.cache_dir =
        core::resolve_cache_dir(cli.get("cache-dir"));
    // Force the warm probe through the artifact cache (see
    // bench_analytic for the same reasoning): with the response LRU on
    // it would be answered from memory, proving nothing about whether
    // multicore results commit.
    config.scheduler.response_cache_bytes = 0;

    serve::Server server(config);
    if (util::Status started = server.start(); !started.ok())
        util::fatal("cannot start the daemon: ", started.to_string());
    std::thread serving([&server] {
        if (util::Status served = server.serve(); !served.ok())
            util::warn("serve failed: ", served.to_string());
    });

    serve::Endpoint endpoint;
    endpoint.tcp_port = server.tcp_port();

    serve::RunRequest request;
    request.instructions = cli.get_u64("instructions");
    request.workload_mix = util::split(cli.get("workload-mix"), ',');
    request.core_count =
        static_cast<std::uint32_t>(cli.get_u64("core-count"));
    for (const std::string &name : request.workload_mix)
        if (!workload::is_benchmark(name))
            util::fatal("unknown benchmark \"", name,
                        "\" in --workload-mix");
    if (request.workload_mix.size() != request.core_count)
        util::fatal("--workload-mix has ", request.workload_mix.size(),
                    " entries but --core-count is ",
                    request.core_count);
    request.benchmarks = {request.workload_mix.front()};

    serve::RunRequest single = request;
    single.core_count = 1;
    single.workload_mix.clear();

    const TimedResponse cold_single =
        timed_call(endpoint, single, server, serving);
    const TimedResponse cold_multi =
        timed_call(endpoint, request, server, serving);
    const TimedResponse warm_multi =
        timed_call(endpoint, request, server, serving);

    const serve::StatsSnapshot stats = server.stats();
    server.request_drain();
    serving.join();

    const bool digests_equal = !cold_multi.result_fnv.empty() &&
                               cold_multi.result_fnv ==
                                   warm_multi.result_fnv;
    const bool live_lane = cold_multi.sim_path == "kernel" ||
                           cold_multi.sim_path == "reference" ||
                           cold_multi.sim_path == "mixed";
    const bool committed = !cold_multi.from_cache &&
                           warm_multi.from_cache &&
                           warm_multi.sim_path == "cache";

    std::printf("cold single-core: %.3fs   cold %u-core: %.3fs   "
                "warm: %.3fs\ncold lane %s, digests %s, multicore %s\n",
                cold_single.seconds, request.core_count,
                cold_multi.seconds, warm_multi.seconds,
                cold_multi.sim_path.c_str(),
                digests_equal ? "equal" : "DIFFER",
                committed ? "committed" : "DID NOT COMMIT");

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("bench_multicore");
    w.key("description")
        .value("multicore request latency and cache commit");
    w.key("flags").begin_object();
    for (const auto &[name, value] : cli.snapshot())
        w.key(name).value(value);
    w.end_object();
    w.key("core_count")
        .value(static_cast<std::uint64_t>(request.core_count));
    w.key("workload_mix").value(request.workload_mix);
    w.key("instructions").value(request.instructions);
    w.key("cold_single_seconds").value(cold_single.seconds);
    w.key("cold_multicore_seconds").value(cold_multi.seconds);
    w.key("warm_multicore_seconds").value(warm_multi.seconds);
    w.key("cold_sim_path").value(cold_multi.sim_path);
    w.key("digests_equal").value(digests_equal);
    w.key("multicore_committed").value(committed);
    w.key("stats").begin_object();
    w.key("requests_served").value(stats.requests_served);
    w.key("sim_runs").value(stats.sim_runs);
    w.key("kernel_path_runs").value(stats.kernel_path_runs);
    w.key("reference_path_runs").value(stats.reference_path_runs);
    w.key("mixed_path_runs").value(stats.mixed_path_runs);
    w.key("cache_hits").value(stats.cache_hits);
    w.end_object();
    w.end_object();

    const std::string contents = w.str() + "\n";
    const std::string path = cli.get("json");
    if (!path.empty()) {
        if (util::Status wrote = util::write_file_atomic(path, contents);
            !wrote.ok())
            util::warn("cannot write report: ", wrote.to_string());
    }

    return digests_equal && live_lane && committed ? 0 : 3;
}
