/**
 * @file
 * End-to-end experiment runner: executes a workload on the timing core
 * over the Alpha-like hierarchy, collecting the instruction- and
 * data-cache interval populations (with prefetchability annotations)
 * that every bench evaluates policies against.
 */

#ifndef LEAKBOUND_CORE_EXPERIMENT_HPP
#define LEAKBOUND_CORE_EXPERIMENT_HPP

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/cache_health.hpp"
#include "cpu/inorder_core.hpp"
#include "interval/interval_histogram.hpp"
#include "prefetch/stride.hpp"
#include "sim/hierarchy.hpp"
#include "util/status.hpp"
#include "workload/workload.hpp"

namespace leakbound::core {

/**
 * Which execution engine a run uses.  Auto routes each workload
 * through the analyzability classifier (src/analytic): eligible
 * workloads take the exact periodic fast path, everything else
 * simulates.  Analytic requests the fast path explicitly but still
 * falls back to simulation when the workload is ineligible or never
 * recurs — the fallback is silent and the results are byte-identical
 * either way, so no engine choice can change an exit code.  Sim forces
 * plain simulation.
 */
enum class Engine : std::uint8_t { Auto, Analytic, Sim };

/** Canonical lowercase name of @p engine ("auto", "analytic", "sim"). */
const char *engine_name(Engine engine);

/** Parse an engine name; nullopt on anything unrecognized. */
std::optional<Engine> parse_engine(const std::string &name);

/**
 * Widest multicore configuration accepted anywhere (config validation,
 * request decode): one core per bit of the sharer bitmask the
 * invalidation directory packs into a 64-bit word.
 */
inline constexpr std::uint32_t kMaxCoreCount = 64;

/** Knobs of one simulation run. */
struct ExperimentConfig
{
    /** Dynamic instructions to execute per benchmark. */
    std::uint64_t instructions = 8'000'000;
    /** Memory system (defaults to the paper's Alpha-like hierarchy). */
    sim::HierarchyConfig hierarchy;
    /** Core shape (defaults to 4-wide). */
    cpu::CoreConfig core;
    /** Stride predictor shape (defaults to a 4K-entry table). */
    prefetch::StrideConfig stride;
    /**
     * Extra histogram edges beyond the defaults; pass every decision
     * threshold of every policy you will evaluate (or use
     * standard_extra_edges(), which covers all stock experiments).
     */
    std::vector<Cycles> extra_edges;
    /** Also retain raw intervals (memory-heavy; tests only). */
    bool keep_raw = false;
    /**
     * Timeliness requirement for next-line coverage: the trigger
     * access must precede the covered access by this many cycles.
     * 0 reproduces the paper's accounting.
     */
    Cycles nl_lead_time = 0;
    /**
     * Also collect the unified L2's interval population (the paper
     * studies the L1s; the L2 is the chip's biggest leaker and the
     * extension bench applies the same bound to it).  Costs one more
     * collector over 32K frames.
     */
    bool collect_l2 = false;
    /**
     * Worker threads run_suite() spreads the benchmarks over; 0 means
     * hardware_concurrency, 1 forces the serial path.  Each benchmark
     * simulates into its own private IntervalHistogramSet and results
     * are merged back in suite order, so the output is bit-identical
     * for every jobs value.
     */
    unsigned jobs = 1;
    /**
     * Directory of the persistent artifact cache (see
     * core/artifact_cache.hpp); empty disables caching.  When set,
     * run_suite() loads previously simulated (workload, config)
     * results instead of replaying them — loaded results are
     * byte-identical to fresh simulation.  keep_raw runs always bypass
     * the cache (raw intervals are memory-only and never persisted).
     */
    std::string cache_dir;
    /**
     * Do not cut this suite short on SIGINT/SIGTERM.  Batch binaries
     * want the default (stop dispatching, flush a partial report); the
     * serve daemon wants the opposite during drain — an admitted
     * request runs to completion so its waiting clients get real
     * results, and only *queued* requests are failed.  Excluded from
     * config fingerprints: it never changes what a completed
     * simulation produces.
     */
    bool ignore_interrupts = false;
    /**
     * Execution engine (see Engine).  Although analytic and simulated
     * results are byte-identical by construction, the engine *is*
     * fingerprinted into artifact-cache keys so entries produced by
     * different engines never alias — a fast-path bug can then never
     * poison the simulated cache population (and vice versa).
     */
    Engine engine = Engine::Auto;
    /**
     * Decision-logic selection for plain simulation (see sim::SimMode):
     * Kernel runs the devirtualized batch kernel, Reference the
     * virtual-dispatch path the kernel is differentially fuzzed
     * against.  Like ignore_interrupts this is excluded from config
     * fingerprints — the two paths are byte-identical, so the setting
     * never changes what a completed simulation produces.
     */
    sim::SimMode sim_path = sim::SimMode::Kernel;
    /**
     * Number of in-order cores sharing the L2 (src/multicore).  1 runs
     * the classic single-core engine; anything else (or a non-empty
     * workload_mix) routes through the multicore interleaver, whose
     * N=1 output is byte-identical to the single-core engine anyway.
     */
    std::uint32_t core_count = 1;
    /**
     * Per-core benchmark names for heterogeneous multicore mixes.
     * Empty means homogeneous: every core runs the requested
     * benchmark.  Non-empty requires size() == core_count, and then
     * core i runs workload_mix[i] regardless of the requested name.
     */
    std::vector<std::string> workload_mix;

    /**
     * Cross-field validation of the multicore knobs (core_count,
     * workload_mix) plus the nested core config.  Typed errors, never
     * fatal(): InvalidArgument on core_count = 0 / > kMaxCoreCount, a
     * mix whose length differs from core_count, or a mix naming an
     * unknown benchmark.  Geometry (hierarchy) keeps its historical
     * fatal() validation — those are programmer errors, not request
     * input.
     */
    util::Status validate() const;
};

/** What one cache yielded. */
struct CacheObservation
{
    interval::IntervalHistogramSet intervals;
    std::vector<interval::Interval> raw; ///< empty unless keep_raw
    sim::CacheStats stats;

    explicit CacheObservation(interval::IntervalHistogramSet set)
        : intervals(std::move(set))
    {
    }
};

/** Everything one run produced. */
struct ExperimentResult
{
    std::string workload;
    cpu::CoreRunStats core;
    CacheObservation icache;
    CacheObservation dcache;
    /** Populated only when ExperimentConfig::collect_l2 was set. */
    std::optional<CacheObservation> l2cache;
    sim::CacheStats l2;
    /**
     * Wall-clock time the simulation took, in seconds (reporting only;
     * never feeds back into simulated results).  For a cache-loaded
     * result this is the load time, not the original replay time.
     */
    double wall_seconds = 0.0;
    /**
     * Whether this result was loaded from the artifact cache instead
     * of simulated (reporting only; the contents are byte-identical
     * either way).
     */
    bool from_cache = false;
    /**
     * Whether the analytic fast path actually committed a period skip
     * for this run (reporting only, like from_cache; excluded from
     * serialize_result because the contents are byte-identical to a
     * plain simulation).  False for fallback runs even under
     * Engine::Analytic.
     */
    bool analytic = false;
    /**
     * Which cache decision-logic lane the simulation actually ran
     * (reporting only, excluded from serialize_result like from_cache):
     * "kernel" when every cache took the devirtualized kernel,
     * "reference" when none did, "mixed" when they disagreed (the
     * common multicore shape: 8-way L1s kernelized over a 16-way L2
     * that silently fell back to reference logic), and "cache" for a
     * result loaded from the artifact cache (no simulation ran at
     * all).  Empty only for pre-existing serialized results.
     */
    std::string sim_path_effective;

    ExperimentResult(CacheObservation ic, CacheObservation dc)
        : icache(std::move(ic)), dcache(std::move(dc))
    {
    }
};

/**
 * Thresholds of every policy any stock bench evaluates, across all
 * four paper technology nodes, the Fig. 7 sweep, the 10K decay point
 * and the decay-sweep ablation.  Union them into
 * ExperimentConfig::extra_edges so one simulation serves them all.
 * Returns a reference to the memoized list (enumerated once per
 * process); copy it only when you need to mutate.
 */
const std::vector<Cycles> &standard_extra_edges();

/**
 * Canonical ExperimentResult::sim_path_effective value for a run where
 * @p kernel_caches of @p num_caches cache instances had the kernel
 * decision logic active: "kernel", "reference", or "mixed".
 */
const char *sim_path_effective_name(std::size_t kernel_caches,
                                    std::size_t num_caches);

/** Run @p workload under @p config and collect both caches. */
ExperimentResult run_experiment(workload::Workload &workload,
                                const ExperimentConfig &config);

/** How one suite job died (one entry per failed (workload) job). */
struct SuiteJobFailure
{
    /** Index of the job in the caller's names order. */
    std::size_t index = 0;
    /** The benchmark the job was running. */
    std::string workload;
    /** Error taxonomy bucket (io_error, fault_injected, internal...). */
    util::ErrorKind kind = util::ErrorKind::Internal;
    /** Human-readable detail. */
    std::string message;
    /** Retries burned before giving up (0 = failed on first try). */
    unsigned retries = 0;
};

/** Everything a fault-isolated suite run produced. */
struct SuiteOutcome
{
    /**
     * One slot per requested benchmark, in names order; nullopt where
     * that job failed.  Surviving slots are byte-identical to what a
     * fault-free run produces (failures never contaminate siblings).
     */
    std::vector<std::optional<ExperimentResult>> slots;
    /** One entry per empty slot, in names order. */
    std::vector<SuiteJobFailure> failures;
    /** Artifact-cache trouble encountered during this run. */
    CacheHealth cache;
    /** Whether SIGINT/SIGTERM cut the run short. */
    bool interrupted = false;

    /** The non-failed results in names order (consumes the slots). */
    std::vector<ExperimentResult> surviving() &&;
};

/**
 * Test/instrumentation seam: called on the worker thread right before
 * each job simulates, with the benchmark name.  A throwing hook makes
 * that job fail exactly like a mid-simulation fault, which is how the
 * isolation tests exercise the failure path in every build (the fault
 * injector only exists in chaos builds).
 */
using SuiteJobHook = std::function<void(const std::string &)>;

/** Retries a failed suite job gets when its error kind is transient. */
inline constexpr unsigned kMaxJobRetries = 2;

/**
 * Fault-isolated run_suite: one job failing (exception, injected
 * fault, interrupt) is recorded in the outcome instead of killing the
 * run, and every sibling job still completes and lands in its slot.
 * Transient failures (io_error, lock_timeout, fault_injected) retry up
 * to kMaxJobRetries times before being recorded.  After SIGINT or
 * SIGTERM no new job starts; jobs not yet dispatched are recorded as
 * `interrupted` failures and the outcome is flagged.
 */
SuiteOutcome
run_suite_isolated(const std::vector<std::string> &names,
                   const ExperimentConfig &config,
                   const SuiteJobHook &before_job = {});

/**
 * Run a list of benchmarks from the suite (workload::make_benchmark).
 *
 * With config.jobs != 1 the benchmarks run concurrently on a
 * util::ThreadPool — each into its own collector set — and the result
 * vector is assembled in @p names order, so callers observe exactly
 * the serial output regardless of the worker count.
 *
 * All-or-nothing wrapper over run_suite_isolated(): the first job
 * failure is rethrown as util::StatusError.  Callers that want partial
 * results use run_suite_isolated() directly.
 */
std::vector<ExperimentResult>
run_suite(const std::vector<std::string> &names,
          const ExperimentConfig &config);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_EXPERIMENT_HPP
