file(REMOVE_RECURSE
  "CMakeFiles/test_interval_histogram.dir/test_interval_histogram.cpp.o"
  "CMakeFiles/test_interval_histogram.dir/test_interval_histogram.cpp.o.d"
  "test_interval_histogram"
  "test_interval_histogram.pdb"
  "test_interval_histogram[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interval_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
