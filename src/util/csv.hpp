/**
 * @file
 * Minimal CSV writer.  Benches optionally mirror their tables to CSV so
 * downstream plotting scripts can regenerate the paper's figures.
 */

#ifndef LEAKBOUND_UTIL_CSV_HPP
#define LEAKBOUND_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util {

/**
 * Streams rows of string fields to a CSV file, quoting fields that need
 * it.  The file is flushed and closed on destruction (RAII).
 *
 * An unopenable path latches a Status instead of killing the process:
 * a broken --csv-dir should cost the user one mirror file, not the
 * whole suite run.  Callers check ok()/status() after construction (or
 * after the last row) and decide how loudly to complain.
 */
class CsvWriter
{
  public:
    /** Open @p path for writing; latches status() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row (no-op when the writer failed to open). */
    void write_row(const std::vector<std::string> &fields);

    /** True once at least one row has been written. */
    bool wrote_anything() const { return wrote_; }

    /** Whether the writer is usable (opened and no write error). */
    bool ok() const { return status_.ok(); }

    /** The latched error, if any. */
    const Status &status() const { return status_; }

    /** Quote a field per RFC 4180 if it contains , " or newline. */
    static std::string escape(const std::string &field);

  private:
    std::ofstream out_;
    Status status_;
    bool wrote_ = false;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_CSV_HPP
