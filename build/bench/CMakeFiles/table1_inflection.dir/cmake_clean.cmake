file(REMOVE_RECURSE
  "CMakeFiles/table1_inflection.dir/table1_inflection.cpp.o"
  "CMakeFiles/table1_inflection.dir/table1_inflection.cpp.o.d"
  "table1_inflection"
  "table1_inflection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_inflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
