# Empty dependencies file for ablation_decay_sweep.
# This may be replaced when dependencies are built.
