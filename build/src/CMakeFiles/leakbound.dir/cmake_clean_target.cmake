file(REMOVE_RECURSE
  "libleakbound.a"
)
