/**
 * @file
 * Lightweight statistics accumulators used by the simulator and the
 * experiment harness: scalar counters, running mean/variance (Welford),
 * and named stat groups that can be dumped as text.
 */

#ifndef LEAKBOUND_UTIL_STATS_HPP
#define LEAKBOUND_UTIL_STATS_HPP

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

namespace leakbound::util {

/**
 * Running scalar distribution: count, sum, min, max, mean, sample
 * standard deviation, accumulated with Welford's algorithm so it is
 * numerically stable for long simulations.
 */
class Accumulator
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const Accumulator &other);

    /** Reset to the empty state. */
    void reset();

    /** Number of observations. */
    std::uint64_t count() const { return count_; }

    /** Sum of observations (0 when empty). */
    double sum() const { return sum_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Population variance (0 for fewer than 2 observations). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Bounded-memory percentile estimator for service latencies.
 *
 * The serve daemon's /stats endpoint reports p50/p99 request latency
 * over the daemon's lifetime.  Keeping every sample would grow without
 * bound in a long-running process, so past @p capacity samples the
 * recorder decimates: it keeps every k-th observation (doubling k each
 * time the buffer refills), which preserves an unbiased-enough view of
 * a stationary latency distribution while capping memory.  Exact while
 * under capacity — which covers every test and bench in this repo.
 */
class LatencyRecorder
{
  public:
    explicit LatencyRecorder(std::size_t capacity = 1 << 14);

    /** Record one observation (seconds, ms — any consistent unit). */
    void add(double value);

    /** Observations offered via add() (not the retained count). */
    std::uint64_t count() const { return total_; }

    /** Running min/max/mean over ALL observations (not decimated). */
    double min() const { return summary_.min(); }
    double max() const { return summary_.max(); }
    double mean() const { return summary_.mean(); }

    /**
     * The @p q quantile (0..1) over the retained samples; 0 when
     * empty.  q=0.5 is the median, q=0.99 the tail the SLO watches.
     */
    double quantile(double q) const;

    /** Shorthands for the two numbers the /stats endpoint exports. */
    double p50() const { return quantile(0.50); }
    double p99() const { return quantile(0.99); }

    /** Drop all samples and counters. */
    void reset();

  private:
    std::size_t capacity_;
    std::uint64_t total_ = 0;
    std::uint64_t stride_ = 1; ///< keep every stride_-th observation
    std::vector<double> samples_;
    Accumulator summary_;
};

/**
 * A named scalar statistic inside a StatGroup.  Values are stored as
 * doubles; integer counters round-trip exactly below 2^53.
 */
struct Stat
{
    std::string name;   ///< dotted hierarchical name, e.g. "l1d.misses"
    std::string desc;   ///< one-line human description
    double value = 0.0; ///< current value
};

/**
 * An ordered collection of named statistics, gem5-stats-file flavored.
 * Components register stats up front and bump them during simulation;
 * the harness dumps them after a run.
 */
class StatGroup
{
  public:
    /** Create (or fetch, if already present) a named stat. @return index */
    std::size_t add(std::string name, std::string desc);

    /** Increment stat @p idx by @p delta. */
    void inc(std::size_t idx, double delta = 1.0);

    /** Overwrite stat @p idx. */
    void set(std::size_t idx, double value);

    /** Value of stat @p idx. */
    double get(std::size_t idx) const;

    /** Look up a stat by name; returns nullptr if absent. */
    const Stat *find(const std::string &name) const;

    /** All stats in registration order. */
    const std::vector<Stat> &all() const { return stats_; }

    /** Render as "name  value  # desc" lines, gem5 stats style. */
    std::string dump() const;

    /** Reset every value to zero (definitions are kept). */
    void reset_values();

  private:
    std::vector<Stat> stats_;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_STATS_HPP
