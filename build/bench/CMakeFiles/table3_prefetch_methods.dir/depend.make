# Empty dependencies file for table3_prefetch_methods.
# This may be replaced when dependencies are built.
