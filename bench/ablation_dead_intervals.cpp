/**
 * @file
 * Ablation: live/dead interval accounting (paper Section 3.1).
 *
 * The paper deliberately charges the induced-miss re-fetch energy CD
 * on every slept interval, ignoring that intervals ending in an
 * eviction-refill (dead blocks) would have fetched anyway.  This bench
 * quantifies that simplification: each scheme evaluated under the
 * paper's accounting vs dead-block-aware accounting (CD only on
 * reuse-ending intervals), supporting the paper's claim that the
 * distinction contributes little at the optimum.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_dead_intervals",
                        "ablation: dead-interval CD accounting");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    struct SchemeFactory
    {
        const char *name;
        std::function<core::PolicyPtr(bool)> make;
    };
    const SchemeFactory schemes[] = {
        {"OPT-Hybrid",
         [&](bool cd) { return core::make_opt_hybrid(model, cd); }},
        {"OPT-Sleep(b)",
         [&](bool cd) { return core::make_opt_sleep(model, 1057, cd); }},
        {"Sleep(10K)",
         [&](bool cd) {
             return core::make_decay_sleep(model, 10'000, cd);
         }},
    };

    for (CacheSide side : {CacheSide::Instruction, CacheSide::Data}) {
        util::Table table(
            std::string("dead-interval ablation, 70nm, ") +
            (side == CacheSide::Instruction ? "I-cache" : "D-cache"));
        table.set_header({"scheme", "paper accounting",
                          "dead-block aware", "delta",
                          "induced misses (paper acct)"});
        for (const SchemeFactory &s : schemes) {
            const auto paper_acct =
                suite_average(*s.make(true), runs, side);
            const auto dead_aware =
                suite_average(*s.make(false), runs, side);
            table.add_row(
                {s.name, pct(paper_acct.savings), pct(dead_aware.savings),
                 util::format_percent(dead_aware.savings -
                                      paper_acct.savings, 2),
                 util::format_commas(paper_acct.induced_misses)});
        }
        emit(table, cli,
             side == CacheSide::Instruction ? "dead_intervals_icache"
                                            : "dead_intervals_dcache");
    }
    std::printf("paper claim (Section 3.1): at the optimum, dead-period\n"
                "refinement adds little — long intervals sleep either\n"
                "way, and short dead intervals are rare.\n");
    return bench::finish(cli);
}
