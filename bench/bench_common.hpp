/**
 * @file
 * Shared plumbing for the bench binaries: run the six-benchmark suite
 * once with edges covering every stock policy, and evaluate schemes
 * per cache with the paper's averaging (energy-pooled across
 * benchmarks).
 *
 * Every bench binary is self-contained: run it with no arguments and
 * it prints the table/figure it reproduces next to the paper's
 * reference numbers.  Common flags:
 *
 *   --instructions N   dynamic instructions per benchmark
 *   --jobs N           worker threads for the suite; benchmarks are
 *                      embarrassingly parallel and merged back in
 *                      suite order, so output is bit-identical for
 *                      every N.  0 (the default) uses all hardware
 *                      threads; 1 forces the serial path.
 *   --json PATH        also write a machine-readable report — every
 *                      emitted table plus wall-clock and per-benchmark
 *                      timings — to PATH (e.g. BENCH_suite.json).  The
 *                      file is rewritten (atomically: tmp + rename) as
 *                      results accrue, so a partial report is still
 *                      valid JSON and never torn.
 *   --csv-dir DIR      mirror each table to DIR/<slug>.csv
 *   --cache-dir DIR    persist/reuse per-benchmark simulation results
 *                      (core::ArtifactCache).  Empty falls back to the
 *                      LEAKBOUND_CACHE_DIR environment variable; unset
 *                      disables caching.  A warm cache turns suite
 *                      replay into per-benchmark loads, and loaded
 *                      results are byte-identical to fresh simulation.
 *   --suite-passes N   run the suite N times in-process (default 1).
 *                      With --cache-dir, pass 1 is the cold replay and
 *                      later passes are warm loads; every pass's wall
 *                      time lands in the JSON report's "suites" array,
 *                      so one invocation documents the cold/warm gap.
 */

#ifndef LEAKBOUND_BENCH_BENCH_COMMON_HPP
#define LEAKBOUND_BENCH_BENCH_COMMON_HPP

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/cache_health.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "core/suite_flags.hpp"
#include "util/binary_io.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/status.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/spec_suite.hpp"

namespace leakbound::bench {

/** Default per-benchmark instruction budget for bench runs. */
inline constexpr std::uint64_t kDefaultInstructions = 4'000'000;

/**
 * Everything the --json reporter accumulates over a bench binary's
 * lifetime.  One singleton per process (bench binaries are single
 * purpose); rewritten to disk after every suite run and table emit.
 */
struct BenchReport
{
    std::string program;     ///< binary name (from make_cli)
    std::string description; ///< one-line description (from make_cli)

    /** One simulated benchmark (suite runs may repeat names). */
    struct RunTiming
    {
        std::string benchmark;
        double wall_seconds = 0.0;
        std::uint64_t instructions = 0;
        std::uint64_t cycles = 0;
        double ipc = 0.0;
        bool from_cache = false; ///< loaded from the artifact cache
        /** Decision-logic lane that actually ran ("kernel",
         *  "reference", "mixed", "cache", or "" for analytic runs
         *  predating the field). */
        std::string sim_path;
    };

    /** One run_suite call (cold vs warm is visible per pass). */
    struct SuiteTiming
    {
        double wall_seconds = 0.0;
        std::uint64_t simulated = 0; ///< benchmarks actually replayed
        std::uint64_t loaded = 0;    ///< benchmarks loaded from cache
        std::uint64_t failed = 0;    ///< jobs that produced no result
    };

    /**
     * One recorded failure.  `where` says which layer failed: "job"
     * (a suite benchmark produced no result), "cache" (the artifact
     * cache degraded), or "report" (a CSV/JSON mirror could not be
     * written; the table still printed).
     */
    struct Failure
    {
        std::string where;
        std::string benchmark; ///< benchmark or path; "" when n/a
        std::string kind;      ///< util::error_kind_name bucket
        std::string message;
        std::uint64_t retries = 0;
    };

    unsigned jobs = 1;                ///< resolved worker count
    std::string cache_dir;            ///< artifact cache in use ("" = off)
    double suite_wall_seconds = 0.0;  ///< summed over all suite runs
    std::vector<SuiteTiming> suites;  ///< per-suite-call timings
    std::vector<RunTiming> runs;      ///< per-benchmark timings
    std::vector<Failure> failures;    ///< everything that went wrong
    core::CacheHealth cache_health;   ///< summed over all suite runs
    bool interrupted = false;         ///< SIGINT/SIGTERM cut the run short
    /** Suite jobs that failed for a non-interrupt reason. */
    std::uint64_t failed_jobs = 0;

    /** One emitted table. */
    struct TableDump
    {
        std::string slug;
        std::string title;
        std::vector<std::string> header;
        std::vector<std::vector<std::string>> rows;
    };

    std::vector<TableDump> tables;

    /** Render the report as a JSON document. */
    std::string
    to_json(const util::Cli &cli) const
    {
        util::JsonWriter w;
        w.begin_object();
        w.key("bench").value(program);
        w.key("description").value(description);
        w.key("flags").begin_object();
        for (const auto &[name, value] : cli.snapshot())
            w.key(name).value(value);
        w.end_object();
        w.key("jobs").value(static_cast<std::uint64_t>(jobs));
        w.key("cache_dir").value(cache_dir);
        w.key("suite_wall_seconds").value(suite_wall_seconds);
        w.key("interrupted").value(interrupted);
        w.key("suites").begin_array();
        for (const SuiteTiming &suite : suites) {
            w.begin_object();
            w.key("wall_seconds").value(suite.wall_seconds);
            w.key("simulated").value(suite.simulated);
            w.key("loaded").value(suite.loaded);
            w.key("failed").value(suite.failed);
            w.end_object();
        }
        w.end_array();
        w.key("failures").begin_array();
        for (const Failure &failure : failures) {
            w.begin_object();
            w.key("where").value(failure.where);
            w.key("benchmark").value(failure.benchmark);
            w.key("kind").value(failure.kind);
            w.key("message").value(failure.message);
            w.key("retries").value(failure.retries);
            w.end_object();
        }
        w.end_array();
        w.key("cache_health").begin_object();
        w.key("store_failures").value(cache_health.store_failures);
        w.key("corrupt_entries").value(cache_health.corrupt_entries);
        w.key("lock_breaks").value(cache_health.lock_breaks);
        w.key("lock_timeouts").value(cache_health.lock_timeouts);
        w.key("lock_retries").value(cache_health.lock_retries);
        w.key("degraded_jobs").value(cache_health.degraded_jobs);
        w.key("degraded").value(cache_health.degraded);
        w.end_object();
        w.key("benchmarks").begin_array();
        for (const RunTiming &run : runs) {
            w.begin_object();
            w.key("benchmark").value(run.benchmark);
            w.key("wall_seconds").value(run.wall_seconds);
            w.key("instructions").value(run.instructions);
            w.key("cycles").value(run.cycles);
            w.key("ipc").value(run.ipc);
            w.key("from_cache").value(run.from_cache);
            w.key("sim_path").value(run.sim_path);
            w.end_object();
        }
        w.end_array();
        w.key("tables").begin_array();
        for (const TableDump &table : tables) {
            w.begin_object();
            w.key("slug").value(table.slug);
            w.key("title").value(table.title);
            w.key("header").value(table.header);
            w.key("rows").begin_array();
            for (const auto &row : table.rows)
                w.value(row);
            w.end_array();
            w.end_object();
        }
        w.end_array();
        w.end_object();
        return w.str();
    }
};

/** The process-wide report under construction. */
inline BenchReport &
report()
{
    static BenchReport instance;
    return instance;
}

/**
 * Rewrite the JSON report when --json was given.  The write is atomic
 * (tmp file + rename, shared with the artifact cache), so a reader —
 * or a crash mid-emit — never observes a torn report.  Unlike cache
 * entries, the report carries no checksum, so a torn publish (a
 * non-atomic filesystem, or the injected rename_torn fault) would
 * masquerade as success and hand a consumer half a JSON document —
 * each write is therefore verified by reading the file back, and a
 * mismatch retried a bounded number of times.  A persistent failure
 * warns instead of killing the bench (the tables still reach stdout),
 * and a file known to be torn is removed, so the consumer contract is
 * the same as the cache's: a valid report or no report, never a
 * corrupt one.
 */
inline void
flush_report(const util::Cli &cli)
{
    const std::string path = cli.get("json");
    if (path.empty())
        return;
    const std::string contents = report().to_json(cli) + "\n";
    constexpr int kMaxPublishAttempts = 5;
    util::Status wrote;
    for (int attempt = 0; attempt < kMaxPublishAttempts; ++attempt) {
        wrote = util::write_file_atomic(path, contents);
        if (!wrote.ok())
            continue;
        std::string check;
        if (util::read_file_bytes(path, check).ok() && check == contents)
            return;
        wrote = util::Status(util::ErrorKind::CorruptData,
                             "torn report publish: " + path);
        std::remove(path.c_str());
    }
    util::warn("cannot flush JSON report: ", wrote.to_string());
}

/**
 * Exit-code policy for bench binaries (documented in the README):
 * 0 = clean run, 2 = user error (util::fatal), 3 = one or more suite
 * jobs failed (partial results; see the report's "failures" array),
 * 128+signal = interrupted.  Call as `return bench::finish(cli);`.
 */
inline int
finish(const util::Cli &cli)
{
    flush_report(cli);
    return report().failed_jobs > 0 ? 3 : 0;
}

/**
 * Build the standard CLI for a bench binary.  The flag family itself
 * lives in core/suite_flags.hpp so `leakbound-client` and `leakboundd`
 * register the exact same names and help text.
 */
inline util::Cli
make_cli(const std::string &name, const std::string &desc)
{
    // Bench binaries are the process boundary: arm the cooperative
    // SIGINT/SIGTERM handler (flush-partial-report semantics) and, in
    // chaos builds, pick up $LEAKBOUND_FAULT_INJECTION.
    util::install_signal_handlers();
    util::fault::configure_from_env();
    util::Cli cli(name, desc);
    core::SuiteFlagSpec spec;
    spec.default_instructions = kDefaultInstructions;
    core::register_suite_flags(cli, spec);
    report().program = name;
    report().description = desc;
    return cli;
}

// The shared flag helpers themselves live in core/suite_flags.hpp;
// re-exported here so the 17 bench binaries keep their unqualified
// spelling (ADL would find the core overloads anyway — the using
// declarations make that the one unambiguous candidate).
using core::apply_suite_flags;
using core::suite_jobs;

/**
 * core::run_suite_isolated plus bookkeeping: wall-clock the run,
 * record per-benchmark timings, fold job failures and cache health
 * into the --json report, and return the surviving results.  All
 * bench binaries funnel their suite simulations through here.
 *
 * A failed job costs exactly its own rows (tables aggregate over the
 * survivors); an interrupt flushes the partial report with
 * `"interrupted": true` and exits 128+signal.
 */
inline std::vector<core::ExperimentResult>
run_suite_reported(const std::vector<std::string> &names,
                   const core::ExperimentConfig &config,
                   const util::Cli &cli)
{
    const auto start = std::chrono::steady_clock::now();
    core::SuiteOutcome outcome = core::run_suite_isolated(names, config);
    report().jobs = util::ThreadPool::effective_jobs(config.jobs);
    report().cache_dir = config.cache_dir;
    BenchReport::SuiteTiming suite;
    suite.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    report().suite_wall_seconds += suite.wall_seconds;
    for (const auto &slot : outcome.slots) {
        if (!slot)
            continue;
        const core::ExperimentResult &run = *slot;
        BenchReport::RunTiming timing;
        timing.benchmark = run.workload;
        timing.wall_seconds = run.wall_seconds;
        timing.instructions = run.core.instructions;
        timing.cycles = run.core.cycles;
        timing.ipc = run.core.ipc();
        timing.from_cache = run.from_cache;
        timing.sim_path = run.sim_path_effective;
        ++(run.from_cache ? suite.loaded : suite.simulated);
        report().runs.push_back(std::move(timing));
    }
    suite.failed = outcome.failures.size();
    report().suites.push_back(suite);

    for (const core::SuiteJobFailure &failure : outcome.failures) {
        report().failures.push_back(BenchReport::Failure{
            "job", failure.workload, util::error_kind_name(failure.kind),
            failure.message, failure.retries});
        if (failure.kind != util::ErrorKind::Interrupted)
            ++report().failed_jobs;
    }
    report().cache_health.accumulate(outcome.cache);
    if (outcome.cache.degraded || outcome.cache.store_failures ||
        outcome.cache.corrupt_entries || outcome.cache.lock_timeouts) {
        report().failures.push_back(BenchReport::Failure{
            "cache", config.cache_dir,
            util::error_kind_name(util::ErrorKind::IoError),
            "artifact cache degraded: " +
                std::to_string(outcome.cache.store_failures) +
                " store failures, " +
                std::to_string(outcome.cache.corrupt_entries) +
                " corrupt entries, " +
                std::to_string(outcome.cache.lock_timeouts) +
                " lock timeouts",
            0});
    }

    if (outcome.interrupted) {
        // Stop cleanly: persist what completed, mark the report, and
        // exit with the conventional signal status.
        report().interrupted = true;
        flush_report(cli);
        util::warn("interrupted; partial report flushed, exiting");
        std::exit(util::interrupt_exit_code() != 0
                      ? util::interrupt_exit_code()
                      : 130);
    }

    flush_report(cli);
    return std::move(outcome).surviving();
}

/**
 * Print @p table and, when --csv-dir / --json were given, mirror it to
 * <csv-dir>/<slug>.csv / the JSON report.
 */
inline void
emit(const util::Table &table, const util::Cli &cli,
     const std::string &slug)
{
    table.print();
    const std::string dir = cli.get("csv-dir");
    if (!dir.empty()) {
        const std::string path = dir + "/" + slug + ".csv";
        if (util::Status wrote = table.write_csv(path); !wrote.ok()) {
            // The table already printed; losing one CSV mirror is a
            // recorded degradation, not a reason to die.
            util::warn("cannot mirror table to CSV: ", wrote.to_string());
            report().failures.push_back(BenchReport::Failure{
                "report", path, util::error_kind_name(wrote.kind()),
                wrote.message(), 0});
        }
    }

    BenchReport::TableDump dump;
    dump.slug = slug;
    dump.title = table.title();
    dump.header = table.header();
    for (const auto &row : table.rows())
        if (!row.empty()) // drop separator rows
            dump.rows.push_back(row);
    report().tables.push_back(std::move(dump));
    flush_report(cli);
}

/**
 * Simulate the full six-benchmark suite with histogram edges covering
 * every stock experiment (plus @p extra_edges for custom sweeps),
 * honouring --instructions, --jobs, --cache-dir and --suite-passes.
 * With --suite-passes N > 1 the suite runs N times and the last pass's
 * results are returned — pointless without a cache, but with one the
 * JSON report then records the cold replay and the warm load times
 * side by side (the bench smoke test and the committed
 * BENCH_suite.json use exactly this).
 */
inline std::vector<core::ExperimentResult>
run_standard_suite(const util::Cli &cli,
                   std::vector<Cycles> extra_edges = {})
{
    core::ExperimentConfig config;
    apply_suite_flags(config, cli);
    config.extra_edges = core::standard_extra_edges();
    config.extra_edges.insert(config.extra_edges.end(),
                              extra_edges.begin(), extra_edges.end());
    const std::uint64_t passes =
        std::max<std::uint64_t>(cli.get_u64("suite-passes"), 1);
    if (passes > 1 && config.cache_dir.empty())
        util::warn("--suite-passes > 1 without --cache-dir just "
                   "repeats the same replay");
    for (std::uint64_t pass = 1; pass < passes; ++pass)
        run_suite_reported(workload::suite_names(), config, cli);
    return run_suite_reported(workload::suite_names(), config, cli);
}

/** Which L1 a scheme is evaluated against. */
enum class CacheSide { Instruction, Data };

/** The interval population of @p side in @p run. */
inline const interval::IntervalHistogramSet &
population(const core::ExperimentResult &run, CacheSide side)
{
    return side == CacheSide::Instruction ? run.icache.intervals
                                          : run.dcache.intervals;
}

/** Evaluate a policy on one cache of one run. */
inline core::SavingsResult
evaluate(const core::Policy &policy, const core::ExperimentResult &run,
         CacheSide side)
{
    return core::evaluate_policy(policy, population(run, side));
}

/**
 * The paper's "average" bars: pool energies across all benchmarks
 * (sum of policy energy over sum of baselines).
 */
inline core::SavingsResult
suite_average(const core::Policy &policy,
              const std::vector<core::ExperimentResult> &runs,
              CacheSide side)
{
    std::vector<core::SavingsResult> per_run;
    per_run.reserve(runs.size());
    for (const auto &run : runs)
        per_run.push_back(evaluate(policy, run, side));
    return core::combine_results(per_run);
}

/** Population pointers of @p side across @p runs, in suite order. */
inline std::vector<const interval::IntervalHistogramSet *>
populations(const std::vector<core::ExperimentResult> &runs, CacheSide side)
{
    std::vector<const interval::IntervalHistogramSet *> sets;
    sets.reserve(runs.size());
    for (const auto &run : runs)
        sets.push_back(&population(run, side));
    return sets;
}

/**
 * A (policy x benchmark) grid evaluated in one pooled pass: per-cell
 * results plus the energy-pooled suite average of every policy row.
 * Values are bit-identical to per-cell evaluate()/suite_average()
 * calls (deterministic merge; see core::evaluate_policy_grid).
 */
struct GridEvaluation
{
    std::vector<std::vector<core::SavingsResult>> cells; ///< [policy][run]
    std::vector<core::SavingsResult> averages;           ///< [policy]
};

/**
 * Evaluate @p policies against every run of @p side on the --jobs
 * thread pool.  This is the sweep binaries' inner loop: one pooled
 * pass replaces the serial policy-by-policy, run-by-run nesting.
 */
inline GridEvaluation
evaluate_grid(const std::vector<const core::Policy *> &policies,
              const std::vector<core::ExperimentResult> &runs,
              CacheSide side, const util::Cli &cli)
{
    const auto flat = core::evaluate_policy_grid(
        policies, populations(runs, side), suite_jobs(cli));

    GridEvaluation grid;
    grid.cells.reserve(policies.size());
    grid.averages.reserve(policies.size());
    for (std::size_t p = 0; p < policies.size(); ++p) {
        std::vector<core::SavingsResult> row(
            flat.begin() + static_cast<std::ptrdiff_t>(p * runs.size()),
            flat.begin() +
                static_cast<std::ptrdiff_t>((p + 1) * runs.size()));
        grid.averages.push_back(core::combine_results(row));
        grid.cells.push_back(std::move(row));
    }
    return grid;
}

/** "96.4%"-style cell for a savings fraction. */
inline std::string
pct(double fraction)
{
    return util::format_percent(fraction);
}

} // namespace leakbound::bench

#endif // LEAKBOUND_BENCH_BENCH_COMMON_HPP
