# Empty compiler generated dependencies file for test_state_model.
# This may be replaced when dependencies are built.
