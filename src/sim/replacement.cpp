/**
 * @file
 * LRU, FIFO and Random replacement implementations.
 */

#include "sim/replacement.hpp"

#include <algorithm>
#include <utility>

#include "util/logging.hpp"

namespace leakbound::sim {

namespace {

/**
 * Canonicalize a stamp grid as per-set way permutations sorted by
 * (stamp, way).  The victim scan takes the strict minimum from way 0
 * upward, so ties break toward the lowest way — exactly the order this
 * sort produces; two states with equal rank orders make identical
 * decisions forever regardless of absolute stamp values.
 */
void
append_rank_state(const std::vector<std::uint64_t> &stamp,
                  std::uint64_t sets, std::uint32_t ways,
                  std::vector<std::uint64_t> &out)
{
    std::vector<std::pair<std::uint64_t, std::uint32_t>> order(ways);
    for (std::uint64_t set = 0; set < sets; ++set) {
        for (std::uint32_t w = 0; w < ways; ++w)
            order[w] = {stamp[set * ways + w], w};
        std::sort(order.begin(), order.end());
        for (const auto &[s, w] : order)
            out.push_back(w);
    }
}

/**
 * True LRU via a per-frame logical timestamp.  The timestamp counter
 * is shared across sets (monotonicity is all that matters).
 */
class LruPolicy final : public ReplacementPolicy
{
  public:
    LruPolicy(std::uint64_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), stamp_(sets * ways, 0)
    {
    }

    void
    on_hit(std::uint64_t set, std::uint32_t way) override
    {
        stamp_[set * ways_ + way] = ++clock_;
    }

    void
    on_fill(std::uint64_t set, std::uint32_t way) override
    {
        stamp_[set * ways_ + way] = ++clock_;
    }

    std::uint32_t
    victim_way(std::uint64_t set) override
    {
        std::uint32_t victim = 0;
        std::uint64_t oldest = stamp_[set * ways_];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            const std::uint64_t s = stamp_[set * ways_ + w];
            if (s < oldest) {
                oldest = s;
                victim = w;
            }
        }
        return victim;
    }

    bool
    append_state(std::vector<std::uint64_t> &out) const override
    {
        append_rank_state(stamp_, sets_, ways_, out);
        return true;
    }

  private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/** FIFO: victims rotate by insertion order; hits don't refresh. */
class FifoPolicy final : public ReplacementPolicy
{
  public:
    FifoPolicy(std::uint64_t sets, std::uint32_t ways)
        : ReplacementPolicy(sets, ways), stamp_(sets * ways, 0)
    {
    }

    void on_hit(std::uint64_t, std::uint32_t) override {}

    void
    on_fill(std::uint64_t set, std::uint32_t way) override
    {
        stamp_[set * ways_ + way] = ++clock_;
    }

    std::uint32_t
    victim_way(std::uint64_t set) override
    {
        std::uint32_t victim = 0;
        std::uint64_t oldest = stamp_[set * ways_];
        for (std::uint32_t w = 1; w < ways_; ++w) {
            const std::uint64_t s = stamp_[set * ways_ + w];
            if (s < oldest) {
                oldest = s;
                victim = w;
            }
        }
        return victim;
    }

    bool
    append_state(std::vector<std::uint64_t> &out) const override
    {
        append_rank_state(stamp_, sets_, ways_, out);
        return true;
    }

  private:
    std::vector<std::uint64_t> stamp_;
    std::uint64_t clock_ = 0;
};

/** Uniform random victim from a deterministic stream. */
class RandomPolicy final : public ReplacementPolicy
{
  public:
    RandomPolicy(std::uint64_t sets, std::uint32_t ways, std::uint64_t seed)
        : ReplacementPolicy(sets, ways), rng_(seed)
    {
    }

    void on_hit(std::uint64_t, std::uint32_t) override {}
    void on_fill(std::uint64_t, std::uint32_t) override {}

    std::uint32_t
    victim_way(std::uint64_t) override
    {
        return static_cast<std::uint32_t>(rng_.next_below(ways_));
    }

  private:
    util::Rng rng_;
};

} // namespace

std::unique_ptr<ReplacementPolicy>
make_replacement(ReplacementKind kind, std::uint64_t sets,
                 std::uint32_t ways, std::uint64_t seed)
{
    LEAKBOUND_ASSERT(sets > 0 && ways > 0, "degenerate geometry");
    switch (kind) {
      case ReplacementKind::Lru:
        return std::make_unique<LruPolicy>(sets, ways);
      case ReplacementKind::Fifo:
        return std::make_unique<FifoPolicy>(sets, ways);
      case ReplacementKind::Random:
        return std::make_unique<RandomPolicy>(sets, ways, seed);
    }
    LEAKBOUND_PANIC("unreachable: bad ReplacementKind");
}

} // namespace leakbound::sim
