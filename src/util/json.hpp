/**
 * @file
 * Minimal streaming JSON writer for machine-readable bench reports.
 *
 * The bench binaries emit their tables and timing data as JSON (the
 * `--json` flag) so perf trajectories can be tracked across commits
 * without scraping ASCII tables.  The writer produces deterministic,
 * pretty-printed output: keys appear in emission order and doubles are
 * printed with enough digits to round-trip.
 */

#ifndef LEAKBOUND_UTIL_JSON_HPP
#define LEAKBOUND_UTIL_JSON_HPP

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util {

/** Escape @p s for inclusion inside a JSON string literal (no quotes). */
std::string json_escape(const std::string &s);

/**
 * Streaming JSON emitter with explicit structure calls.  Usage:
 * @code
 *   JsonWriter w;
 *   w.begin_object();
 *   w.key("jobs").value(8u);
 *   w.key("tables").begin_array();
 *   ...
 *   w.end_array();
 *   w.end_object();
 *   write_file(path, w.str());
 * @endcode
 *
 * Structural misuse (e.g. end_array() with no open array) panics: the
 * report writers are static code paths, so a mismatch is a bug.
 */
class JsonWriter
{
  public:
    JsonWriter();

    JsonWriter &begin_object();
    JsonWriter &end_object();
    JsonWriter &begin_array();
    JsonWriter &end_array();

    /** Emit an object key; the next call must emit its value. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** Convenience: an array of strings in one call. */
    JsonWriter &value(const std::vector<std::string> &v);

    /** The document so far (call after the root closes). */
    std::string str() const { return out_.str(); }

  private:
    enum class Scope : std::uint8_t { Object, Array };

    void before_value();
    void newline_indent();

    std::ostringstream out_;
    std::vector<Scope> scopes_;
    /** Whether the current scope already holds at least one entry. */
    std::vector<bool> has_entries_;
    bool pending_key_ = false;
};

/**
 * Write @p contents to @p path atomically enough for reports (truncate
 * + write + close).  Returns an ErrorKind::IoError Status on create or
 * short-write failure so report emission can degrade instead of dying.
 */
Status write_text_file(const std::string &path,
                       const std::string &contents);

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_JSON_HPP
