/**
 * @file
 * Fixed-size worker thread pool with exception-propagating futures.
 *
 * The suite runner (core::run_suite) fans independent benchmark
 * simulations out over this pool and re-collects them in submission
 * order, which keeps parallel output bit-identical to the serial path.
 * Tasks may be move-only callables; an exception thrown inside a task
 * is captured in its future and rethrown at get(), never lost in a
 * worker.
 */

#ifndef LEAKBOUND_UTIL_THREAD_POOL_HPP
#define LEAKBOUND_UTIL_THREAD_POOL_HPP

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace leakbound::util {

/**
 * Fixed pool of worker threads draining a FIFO task queue.  Usage:
 * @code
 *   ThreadPool pool(4);
 *   auto f = pool.submit([] { return simulate(); });
 *   auto result = f.get(); // rethrows anything simulate() threw
 * @endcode
 *
 * The destructor drains the queue (all submitted tasks run) and joins
 * every worker; submit() after destruction begins is undefined.
 */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers; 0 selects default_jobs().  A pool of
     * size 1 is a valid (if pointless) serial executor.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Runs all queued tasks to completion, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p fn and return a future for its result.  @p fn may be
     * move-only; exceptions it throws surface at future::get().
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * Resolve a jobs request: 0 means hardware_concurrency (itself
     * clamped to at least 1); nonzero passes through.
     */
    static unsigned effective_jobs(unsigned requested);

    /** hardware_concurrency clamped to at least 1. */
    static unsigned default_jobs();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/**
 * Evaluate fn(0), ..., fn(n-1) on a pool of @p jobs workers and return
 * the results in index order — the deterministic-merge pattern of
 * core::run_suite as a reusable primitive.  @p jobs is resolved via
 * ThreadPool::effective_jobs and clamped to n; jobs <= 1 (or n <= 1)
 * runs the plain serial loop on the calling thread.  @p fn must be
 * safe to invoke concurrently from multiple threads; exceptions
 * propagate to the caller exactly as in the serial loop.
 */
template <typename F>
auto
parallel_map_ordered(std::size_t n, unsigned jobs, F &&fn)
    -> std::vector<std::invoke_result_t<F &, std::size_t>>
{
    using R = std::invoke_result_t<F &, std::size_t>;
    std::vector<R> results;
    results.reserve(n);

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(ThreadPool::effective_jobs(jobs),
                              std::max<std::size_t>(n, 1)));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            results.push_back(fn(i));
        return results;
    }

    ThreadPool pool(workers);
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        futures.push_back(pool.submit([&fn, i] { return fn(i); }));
    for (auto &future : futures)
        results.push_back(future.get()); // rethrows worker exceptions
    return results;
}

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_THREAD_POOL_HPP
