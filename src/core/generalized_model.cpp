/**
 * @file
 * Implementation of the generalized model.
 */

#include "core/generalized_model.hpp"

#include "core/policies.hpp"

namespace leakbound::core {

std::vector<Cycles>
generalized_model_thresholds(const GeneralizedModelInputs &inputs)
{
    const EnergyModel model(inputs.tech);
    const InflectionPoints points = compute_inflection(model);

    std::vector<Cycles> out;
    auto absorb = [&out](const PolicyPtr &policy) {
        for (Cycles t : policy->thresholds())
            out.push_back(t);
    };
    absorb(make_opt_drowsy(model, inputs.charge_refetch));
    absorb(make_opt_sleep(model, points.drowsy_sleep,
                          inputs.charge_refetch));
    absorb(make_opt_hybrid(model, inputs.charge_refetch));
    return out;
}

GeneralizedModelResult
run_generalized_model(const GeneralizedModelInputs &inputs,
                      const interval::IntervalHistogramSet &set)
{
    const EnergyModel model(inputs.tech);

    GeneralizedModelResult result;
    result.points = compute_inflection(model);
    result.opt_drowsy = evaluate_policy(
        *make_opt_drowsy(model, inputs.charge_refetch), set);
    result.opt_sleep = evaluate_policy(
        *make_opt_sleep(model, result.points.drowsy_sleep,
                        inputs.charge_refetch),
        set);
    result.opt_hybrid = evaluate_policy(
        *make_opt_hybrid(model, inputs.charge_refetch), set);
    return result;
}

} // namespace leakbound::core
