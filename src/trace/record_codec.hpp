/**
 * @file
 * Shared on-disk codec for trace records.
 *
 * One place defines the 32-byte little-endian record layout that
 * TraceWriter/TraceReader stream, so block-buffered IO, tests and any
 * future mmap/replay path agree byte-for-byte.  The encoding is
 * explicit per-byte (not a struct memcpy), which pins the format to
 * little-endian regardless of host endianness while producing exactly
 * the bytes the original struct dump produced on x86.
 */

#ifndef LEAKBOUND_TRACE_RECORD_CODEC_HPP
#define LEAKBOUND_TRACE_RECORD_CODEC_HPP

#include <cstddef>
#include <cstdint>

#include "trace/record.hpp"

namespace leakbound::trace {

/** Magic+version header that opens every trace file. */
inline constexpr char kTraceMagic[8] = {'l', 'k', 'b', 't',
                                        'r', 'c', '0', '1'};

/** Size of one encoded record: cycle, pc, addr (u64 LE), kind, pad. */
inline constexpr std::size_t kTraceRecordBytes = 32;

namespace detail {

inline void
store_u64le(unsigned char *out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
}

inline std::uint64_t
load_u64le(const unsigned char *in)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return v;
}

} // namespace detail

/** Encode @p rec into @p out[kTraceRecordBytes]. */
inline void
encode_record(const TimedAccess &rec, unsigned char *out)
{
    detail::store_u64le(out, rec.cycle);
    detail::store_u64le(out + 8, rec.pc);
    detail::store_u64le(out + 16, rec.addr);
    out[24] = static_cast<unsigned char>(rec.kind);
    for (std::size_t i = 25; i < kTraceRecordBytes; ++i)
        out[i] = 0;
}

/** Decode @p in[kTraceRecordBytes] into @p rec. */
inline void
decode_record(const unsigned char *in, TimedAccess &rec)
{
    rec.cycle = detail::load_u64le(in);
    rec.pc = detail::load_u64le(in + 8);
    rec.addr = detail::load_u64le(in + 16);
    rec.kind = static_cast<InstrKind>(in[24]);
}

} // namespace leakbound::trace

#endif // LEAKBOUND_TRACE_RECORD_CODEC_HPP
