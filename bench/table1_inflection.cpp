/**
 * @file
 * Reproduces paper Table 1: the active-drowsy and drowsy-sleep
 * inflection points per technology node, next to the paper's printed
 * values.
 */

#include "bench_common.hpp"
#include "core/inflection.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;
    auto cli = make_cli("table1_inflection",
                        "Table 1: inflection points vs technology");
    cli.parse(argc, argv);

    struct PaperRow
    {
        power::TechNode node;
        Cycles a;
        Cycles b;
    };
    const PaperRow paper[] = {
        {power::TechNode::Nm70, 6, 1057},
        {power::TechNode::Nm100, 6, 5088},
        {power::TechNode::Nm130, 6, 10328},
        {power::TechNode::Nm180, 6, 103084},
    };

    util::Table table("Table 1: inflection points (cycles)");
    table.set_header({"technology", "active-drowsy", "drowsy-sleep",
                      "paper a", "paper b", "match"});
    bool all_match = true;
    for (const PaperRow &row : paper) {
        const auto &tech = power::node_params(row.node);
        const core::InflectionPoints points =
            core::compute_inflection(tech);
        const bool match = points.active_drowsy == row.a &&
                           points.drowsy_sleep == row.b;
        all_match &= match;
        table.add_row({tech.name, std::to_string(points.active_drowsy),
                       util::format_commas(points.drowsy_sleep),
                       std::to_string(row.a), util::format_commas(row.b),
                       match ? "yes" : "NO"});
    }
    emit(table, cli, "table1_inflection");
    std::printf("drowsy-sleep point shrinks as technology scales down:\n"
                "per-line leakage grows while the induced-miss dynamic\n"
                "energy shrinks (paper Section 4.2).  all rows match: %s\n",
                all_match ? "yes" : "NO");
    return all_match ? bench::finish(cli) : 1;
}
