/**
 * @file
 * Tests of binary trace IO: round-tripping, magic validation, and
 * error handling for missing/corrupt files.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_io.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::trace;

namespace {

std::string
temp_path(const char *name)
{
    return ::testing::TempDir() + name;
}

} // namespace

TEST(TraceIo, RoundTripsRecords)
{
    const std::string path = temp_path("lb_trace_roundtrip.bin");
    util::Rng rng(4);
    std::vector<TimedAccess> expected;
    {
        TraceWriter w(path);
        for (int i = 0; i < 1000; ++i) {
            TimedAccess rec;
            rec.cycle = i * 3;
            rec.pc = 0x400000 + rng.next_below(1 << 20);
            rec.addr = rng.next_u64() >> 16;
            rec.kind = static_cast<InstrKind>(rng.next_below(3));
            w.write(rec);
            expected.push_back(rec);
        }
        EXPECT_EQ(w.count(), 1000u);
    }
    TraceReader r(path);
    TimedAccess rec;
    for (const TimedAccess &want : expected) {
        ASSERT_TRUE(r.next(rec));
        EXPECT_EQ(rec.cycle, want.cycle);
        EXPECT_EQ(rec.pc, want.pc);
        EXPECT_EQ(rec.addr, want.addr);
        EXPECT_EQ(rec.kind, want.kind);
    }
    EXPECT_FALSE(r.next(rec));
    EXPECT_EQ(r.count(), 1000u);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceReadsNothing)
{
    const std::string path = temp_path("lb_trace_empty.bin");
    { TraceWriter w(path); }
    TraceReader r(path);
    TimedAccess rec;
    EXPECT_FALSE(r.next(rec));
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileIsFatal)
{
    EXPECT_EXIT(TraceReader("/nonexistent/path/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(TraceIo, BadMagicIsFatal)
{
    const std::string path = temp_path("lb_trace_bad.bin");
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a trace file at all";
    }
    EXPECT_EXIT(TraceReader reader(path), ::testing::ExitedWithCode(1),
                "not a leakbound trace");
    std::remove(path.c_str());
}

TEST(TraceIo, UnwritablePathIsFatal)
{
    EXPECT_EXIT(TraceWriter("/nonexistent/dir/trace.bin"),
                ::testing::ExitedWithCode(1), "cannot create");
}
