/**
 * @file
 * Reproduces paper Figure 1: projected leakage power as a fraction of
 * total power, 1999-2009, per the ITRS roadmap trend.
 */

#include "bench_common.hpp"
#include "power/itrs.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;
    auto cli = make_cli("fig1_itrs", "Figure 1: ITRS leakage projection");
    cli.parse(argc, argv);

    util::Table table(
        "Figure 1: leakage power / total power (ITRS projection)");
    table.set_header({"year", "leakage fraction", "bar"});
    for (const power::ItrsPoint &p : power::itrs_projection()) {
        std::string bar(
            static_cast<std::size_t>(p.leakage_fraction * 50.0), '#');
        table.add_row({std::to_string(p.year),
                       util::format_percent(p.leakage_fraction), bar});
    }
    emit(table, cli, "fig1_itrs");

    std::printf("paper reads this figure as: leakage grows from a small\n"
                "fraction in 1999 toward parity with dynamic power by the\n"
                "end of the decade, motivating the limit study.\n");
    return bench::finish(cli);
}
