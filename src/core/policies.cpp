/**
 * @file
 * Implementation of the paper's leakage management schemes.
 */

#include "core/policies.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.hpp"

namespace leakbound::core {

using interval::IntervalKind;
using interval::PrefetchClass;

namespace {

constexpr Cycles kNever = std::numeric_limits<Cycles>::max();

/** The four interval kinds, for threshold enumeration. */
constexpr IntervalKind kKinds[] = {
    IntervalKind::Inner, IntervalKind::Leading, IntervalKind::Trailing,
    IntervalKind::Untouched};

/**
 * Smallest integer length >= @p min_len at which @p candidate costs no
 * more than @p incumbent; kNever if that never happens.  Assumes both
 * are linear; candidate must eventually win via a smaller slope (or
 * already win at min_len).
 */
Cycles
cross_at(const LinearEnergy &incumbent, const LinearEnergy &candidate,
         Cycles min_len)
{
    if (candidate.at(min_len) <= incumbent.at(min_len))
        return min_len;
    if (candidate.slope >= incumbent.slope)
        return kNever;
    const double x = (candidate.intercept - incumbent.intercept) /
                     (incumbent.slope - candidate.slope);
    const double ceiled = std::ceil(x);
    if (ceiled >= 1.8e19) // beyond u64; treat as never
        return kNever;
    const auto length = static_cast<Cycles>(ceiled);
    return std::max(min_len, length);
}

/** Append @p v and @p v+1 to @p out unless v is the kNever sentinel. */
void
push_boundary(std::vector<Cycles> &out, Cycles v)
{
    if (v == kNever)
        return;
    out.push_back(v);
    if (v != kNever - 1)
        out.push_back(v + 1);
}

/** Shared plumbing: energy model + re-fetch accounting flag. */
class PolicyBase : public Policy
{
  public:
    PolicyBase(const EnergyModel &model, bool charge_refetch)
        : model_(model), charge_(charge_refetch)
    {
    }

  protected:
    /**
     * Whether a slept interval of this shape pays CD.  Under the
     * paper's accounting (charge_ == true) every slept Inner interval
     * pays; under the dead-block ablation only reuse-ending ones do.
     * (The energy model already exempts non-Inner kinds.)
     */
    bool
    charge_cd(bool ends_in_reuse) const
    {
        return charge_ || ends_in_reuse;
    }

    /** Both CD variants this policy can exercise, for thresholds(). */
    std::vector<bool>
    cd_variants() const
    {
        if (charge_)
            return {true};
        return {true, false};
    }

    EnergyModel model_;
    bool charge_;
};

// ---------------------------------------------------------------------
// AlwaysActive
// ---------------------------------------------------------------------

class AlwaysActivePolicy final : public PolicyBase
{
  public:
    explicit AlwaysActivePolicy(const EnergyModel &model)
        : PolicyBase(model, true)
    {
    }

    std::string name() const override { return "AlwaysActive"; }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass,
                    bool) const override
    {
        return model_.energy(Mode::Active, length, kind);
    }

    std::vector<Cycles> thresholds() const override { return {}; }

    Mode
    dominant_mode(Cycles, IntervalKind, PrefetchClass, bool) const override
    {
        return Mode::Active;
    }

    bool is_oracle() const override { return false; }
};

// ---------------------------------------------------------------------
// OPT-Drowsy
// ---------------------------------------------------------------------

class OptDrowsyPolicy final : public PolicyBase
{
  public:
    OptDrowsyPolicy(const EnergyModel &model, bool charge_refetch)
        : PolicyBase(model, charge_refetch)
    {
    }

    std::string name() const override { return "OPT-Drowsy"; }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass,
                    bool) const override
    {
        const Energy active = model_.energy(Mode::Active, length, kind);
        if (!model_.applicable(Mode::Drowsy, length, kind))
            return active;
        const Energy drowsy = model_.energy(Mode::Drowsy, length, kind);
        return std::min(active, drowsy);
    }

    std::vector<Cycles>
    thresholds() const override
    {
        std::vector<Cycles> out;
        const LinearEnergy active = model_.linear(Mode::Active,
                                                  IntervalKind::Inner);
        for (IntervalKind kind : kKinds) {
            push_boundary(out,
                          cross_at(active, model_.linear(Mode::Drowsy, kind),
                                   model_.min_length(Mode::Drowsy, kind)));
        }
        return out;
    }

    Mode
    dominant_mode(Cycles length, IntervalKind kind, PrefetchClass,
                  bool) const override
    {
        if (model_.applicable(Mode::Drowsy, length, kind) &&
            model_.energy(Mode::Drowsy, length, kind) <=
                model_.energy(Mode::Active, length, kind)) {
            return Mode::Drowsy;
        }
        return Mode::Active;
    }

    bool is_oracle() const override { return true; }
};

// ---------------------------------------------------------------------
// OPT-Sleep(T)
// ---------------------------------------------------------------------

class OptSleepPolicy final : public PolicyBase
{
  public:
    OptSleepPolicy(const EnergyModel &model, Cycles min_sleep,
                   bool charge_refetch)
        : PolicyBase(model, charge_refetch), min_sleep_(min_sleep)
    {
    }

    std::string
    name() const override
    {
        return "OPT-Sleep(" + pretty_cycles(min_sleep_) + ")";
    }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass,
                    bool ends_in_reuse) const override
    {
        const Energy active = model_.energy(Mode::Active, length, kind);
        if (!sleeps(length, kind, ends_in_reuse))
            return active;
        return model_.energy(Mode::Sleep, length, kind,
                             charge_cd(ends_in_reuse));
    }

    std::vector<Cycles>
    thresholds() const override
    {
        std::vector<Cycles> out;
        for (IntervalKind kind : kKinds) {
            const LinearEnergy active = model_.linear(Mode::Active, kind);
            for (bool cd : cd_variants()) {
                const Cycles start = sleep_start(kind, cd);
                push_boundary(out, start);
            }
            (void)active;
        }
        return out;
    }

    Mode
    dominant_mode(Cycles length, IntervalKind kind, PrefetchClass,
                  bool ends_in_reuse) const override
    {
        return sleeps(length, kind, ends_in_reuse) ? Mode::Sleep
                                                   : Mode::Active;
    }

    bool is_oracle() const override { return true; }

    /** "10000" -> "10K" for familiar scheme names. */
    static std::string
    pretty_cycles(Cycles v)
    {
        if (v != 0 && v % 1000 == 0)
            return std::to_string(v / 1000) + "K";
        return std::to_string(v);
    }

  private:
    /** First length at which the scheme actually sleeps. */
    Cycles
    sleep_start(IntervalKind kind, bool cd) const
    {
        const LinearEnergy active = model_.linear(Mode::Active, kind);
        const LinearEnergy sleep = model_.linear(Mode::Sleep, kind, cd);
        const Cycles viable =
            cross_at(active, sleep, model_.min_length(Mode::Sleep, kind));
        if (viable == kNever)
            return kNever;
        // "interval of a size greater than T": L >= T + 1.
        return std::max(viable, min_sleep_ == kNever ? kNever
                                                     : min_sleep_ + 1);
    }

    bool
    sleeps(Cycles length, IntervalKind kind, bool ends_in_reuse) const
    {
        return length >= sleep_start(kind, charge_cd(ends_in_reuse));
    }

    Cycles min_sleep_;
};

// ---------------------------------------------------------------------
// Sleep(T): non-oracle cache decay
// ---------------------------------------------------------------------

class DecaySleepPolicy final : public PolicyBase
{
  public:
    DecaySleepPolicy(const EnergyModel &model, Cycles decay_interval,
                     bool charge_refetch)
        : PolicyBase(model, charge_refetch), decay_(decay_interval)
    {
    }

    std::string
    name() const override
    {
        return "Sleep(" + OptSleepPolicy::pretty_cycles(decay_) + ")";
    }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass,
                    bool ends_in_reuse) const override
    {
        if (!decays(length, kind)) {
            return model_.energy(Mode::Active, length, kind);
        }
        // Active for the decay window, then the remainder behaves like
        // a sleep interval of the same kind (entry transition, and for
        // Inner the wakeup + induced re-fetch at the closing access).
        const Cycles remainder = length - decay_;
        return model_.tech().active_power * static_cast<double>(decay_) +
               model_.energy(Mode::Sleep, remainder, kind,
                             charge_cd(ends_in_reuse));
    }

    std::vector<Cycles>
    thresholds() const override
    {
        std::vector<Cycles> out;
        for (IntervalKind kind : kKinds)
            push_boundary(out, fire_length(kind));
        return out;
    }

    Mode
    dominant_mode(Cycles length, IntervalKind kind, PrefetchClass,
                  bool) const override
    {
        // Report Sleep whenever the decay fires: the tally then counts
        // decayed intervals (and induced misses) exactly, and stays
        // piecewise-constant between the published thresholds, which
        // the histogram evaluator requires.
        return decays(length, kind) ? Mode::Sleep : Mode::Active;
    }

    Power
    standing_overhead() const override
    {
        return model_.tech().decay_counter_overhead;
    }

    bool is_oracle() const override { return false; }

  private:
    /** Shortest interval in which the decayed sleep sequence fits. */
    Cycles
    fire_length(IntervalKind kind) const
    {
        const Cycles m =
            std::max<Cycles>(model_.min_length(Mode::Sleep, kind), 1);
        return decay_ + m;
    }

    bool
    decays(Cycles length, IntervalKind kind) const
    {
        return length >= fire_length(kind);
    }

    Cycles decay_;
};

// ---------------------------------------------------------------------
// Hybrid(T) / OPT-Hybrid
// ---------------------------------------------------------------------

class HybridPolicy final : public PolicyBase
{
  public:
    HybridPolicy(const EnergyModel &model, Cycles min_sleep,
                 bool charge_refetch, bool is_opt)
        : PolicyBase(model, charge_refetch), min_sleep_(min_sleep),
          is_opt_(is_opt)
    {
    }

    std::string
    name() const override
    {
        if (is_opt_)
            return "OPT-Hybrid";
        return "Hybrid(" + OptSleepPolicy::pretty_cycles(min_sleep_) + ")";
    }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass,
                    bool ends_in_reuse) const override
    {
        return choose(length, kind, ends_in_reuse).second;
    }

    std::vector<Cycles>
    thresholds() const override
    {
        std::vector<Cycles> out;
        for (IntervalKind kind : kKinds) {
            const LinearEnergy active = model_.linear(Mode::Active, kind);
            const LinearEnergy drowsy = model_.linear(Mode::Drowsy, kind);
            const Cycles min_d = model_.min_length(Mode::Drowsy, kind);
            const Cycles min_s = model_.min_length(Mode::Sleep, kind);
            push_boundary(out, cross_at(active, drowsy, min_d));
            for (bool cd : cd_variants()) {
                const LinearEnergy sleep =
                    model_.linear(Mode::Sleep, kind, cd);
                // Sleep can start where it beats active or drowsy, but
                // never below min_sleep_+1; emit a generous superset.
                for (Cycles c : {cross_at(active, sleep, min_s),
                                 cross_at(drowsy, sleep, min_s)}) {
                    if (c == kNever)
                        continue;
                    push_boundary(out, c);
                    if (min_sleep_ != kNever)
                        push_boundary(out,
                                      std::max(c, min_sleep_ + 1));
                }
            }
        }
        if (min_sleep_ != kNever)
            push_boundary(out, min_sleep_);
        return out;
    }

    Mode
    dominant_mode(Cycles length, IntervalKind kind, PrefetchClass,
                  bool ends_in_reuse) const override
    {
        return choose(length, kind, ends_in_reuse).first;
    }

    bool is_oracle() const override { return true; }

  private:
    std::pair<Mode, Energy>
    choose(Cycles length, IntervalKind kind, bool ends_in_reuse) const
    {
        Mode best = Mode::Active;
        Energy best_energy = model_.energy(Mode::Active, length, kind);
        if (model_.applicable(Mode::Drowsy, length, kind)) {
            const Energy e = model_.energy(Mode::Drowsy, length, kind);
            if (e <= best_energy) {
                best = Mode::Drowsy;
                best_energy = e;
            }
        }
        if (length > min_sleep_ &&
            model_.applicable(Mode::Sleep, length, kind)) {
            const Energy e = model_.energy(Mode::Sleep, length, kind,
                                           charge_cd(ends_in_reuse));
            if (e <= best_energy) {
                best = Mode::Sleep;
                best_energy = e;
            }
        }
        return {best, best_energy};
    }

    Cycles min_sleep_;
    bool is_opt_;
};

// ---------------------------------------------------------------------
// Periodic drowsy (Flautner-style simple policy)
// ---------------------------------------------------------------------

class PeriodicDrowsyPolicy final : public PolicyBase
{
  public:
    PeriodicDrowsyPolicy(const EnergyModel &model, Cycles window,
                         bool charge_refetch)
        : PolicyBase(model, charge_refetch), window_(window)
    {
    }

    std::string
    name() const override
    {
        return "Drowsy(" + OptSleepPolicy::pretty_cycles(window_) + ")";
    }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass,
                    bool) const override
    {
        const Cycles wait = expected_wait(kind);
        if (length < wait + model_.min_length(Mode::Drowsy, kind))
            return model_.energy(Mode::Active, length, kind);
        // Active until the window boundary, drowsy for the remainder
        // (which behaves like a drowsy interval of the same kind).
        return model_.tech().active_power * static_cast<double>(wait) +
               model_.energy(Mode::Drowsy, length - wait, kind);
    }

    std::vector<Cycles>
    thresholds() const override
    {
        std::vector<Cycles> out;
        for (IntervalKind k : kKinds) {
            push_boundary(out, expected_wait(k) +
                                   model_.min_length(Mode::Drowsy, k));
        }
        return out;
    }

    Mode
    dominant_mode(Cycles length, IntervalKind kind, PrefetchClass,
                  bool) const override
    {
        const Cycles wait = expected_wait(kind);
        if (length < wait + model_.min_length(Mode::Drowsy, kind))
            return Mode::Active;
        return Mode::Drowsy;
    }

    bool is_oracle() const override { return false; }

  private:
    /** Expected cycles until the next global drowse event. */
    Cycles
    expected_wait(IntervalKind kind) const
    {
        // Invalid frames are already drowsed when the run starts.
        if (kind == IntervalKind::Leading ||
            kind == IntervalKind::Untouched) {
            return 0;
        }
        return window_ / 2;
    }

    Cycles window_;
};

// ---------------------------------------------------------------------
// Prefetch-A / Prefetch-B
// ---------------------------------------------------------------------

class PrefetchPolicy final : public PolicyBase
{
  public:
    PrefetchPolicy(const EnergyModel &model, PrefetchVariant variant,
                   std::vector<PrefetchClass> allowed, bool charge_refetch)
        : PolicyBase(model, charge_refetch), variant_(variant),
          allowed_(std::move(allowed))
    {
        // A keeps non-prefetchable intervals active always; B drowses
        // them whenever drowsy wins (threshold = the active-drowsy
        // point, i.e. "as soon as possible").
        np_drowsy_threshold_ =
            variant == PrefetchVariant::A
                ? kNever
                : model_.tech().timings.drowsy_overhead();
    }

    /** Blend constructor: explicit non-prefetchable drowsy threshold. */
    PrefetchPolicy(const EnergyModel &model, Cycles np_drowsy_threshold,
                   std::vector<PrefetchClass> allowed, bool charge_refetch)
        : PolicyBase(model, charge_refetch), variant_(PrefetchVariant::B),
          allowed_(std::move(allowed)), blend_(true),
          np_drowsy_threshold_(std::max<Cycles>(
              np_drowsy_threshold,
              model_.tech().timings.drowsy_overhead()))
    {
    }

    std::string
    name() const override
    {
        if (blend_) {
            return "Prefetch-C(" +
                   (np_drowsy_threshold_ == kNever
                        ? std::string("inf")
                        : OptSleepPolicy::pretty_cycles(
                              np_drowsy_threshold_)) +
                   ")";
        }
        return variant_ == PrefetchVariant::A ? "Prefetch-A" : "Prefetch-B";
    }

    Energy
    interval_energy(Cycles length, IntervalKind kind, PrefetchClass pf,
                    bool ends_in_reuse) const override
    {
        return choose(length, kind, pf, ends_in_reuse).second;
    }

    std::vector<Cycles>
    thresholds() const override
    {
        // The prefetchable branch is the full optimal envelope; the
        // non-prefetchable branch is active or the drowsy envelope
        // gated at np_drowsy_threshold_.  Reuse HybridPolicy's
        // generous boundary enumeration plus the drowsy crossings.
        HybridPolicy envelope(model_, 0, charge_, /*is_opt=*/true);
        std::vector<Cycles> out = envelope.thresholds();
        const LinearEnergy active =
            model_.linear(Mode::Active, IntervalKind::Inner);
        for (IntervalKind kind : kKinds) {
            const Cycles cross =
                cross_at(active, model_.linear(Mode::Drowsy, kind),
                         model_.min_length(Mode::Drowsy, kind));
            push_boundary(out, cross);
            if (cross != kNever && np_drowsy_threshold_ != kNever) {
                push_boundary(out,
                              std::max(cross, np_drowsy_threshold_));
            }
        }
        return out;
    }

    Mode
    dominant_mode(Cycles length, IntervalKind kind, PrefetchClass pf,
                  bool ends_in_reuse) const override
    {
        return choose(length, kind, pf, ends_in_reuse).first;
    }

    bool is_oracle() const override { return false; }

  private:
    bool
    covered(PrefetchClass pf) const
    {
        return std::find(allowed_.begin(), allowed_.end(), pf) !=
               allowed_.end();
    }

    std::pair<Mode, Energy>
    choose(Cycles length, IntervalKind kind, PrefetchClass pf,
           bool ends_in_reuse) const
    {
        const bool cd = charge_cd(ends_in_reuse);
        // Invalid frames (nothing resident yet) can be gated with no
        // prediction at all.
        if (kind == IntervalKind::Leading ||
            kind == IntervalKind::Untouched) {
            const Mode m = model_.optimal_mode(length, kind, cd);
            return {m, model_.energy(m, length, kind, cd)};
        }
        // Prefetch-coverable intervals get the oracle-optimal mode;
        // the prefetcher hides the wakeup/re-fetch latency.
        if (kind == IntervalKind::Inner && covered(pf)) {
            const Mode m = model_.optimal_mode(length, kind, cd);
            return {m, model_.energy(m, length, kind, cd)};
        }
        // Non-prefetchable (and all trailing) intervals: drowsy only
        // beyond the blend threshold (A = never, B = wherever it wins).
        const Energy active = model_.energy(Mode::Active, length, kind);
        if (np_drowsy_threshold_ != kNever &&
            length >= np_drowsy_threshold_ &&
            model_.applicable(Mode::Drowsy, length, kind)) {
            const Energy drowsy =
                model_.energy(Mode::Drowsy, length, kind);
            if (drowsy <= active)
                return {Mode::Drowsy, drowsy};
        }
        return {Mode::Active, active};
    }

    PrefetchVariant variant_;
    std::vector<PrefetchClass> allowed_;
    bool blend_ = false;
    Cycles np_drowsy_threshold_ = kNever;
};

} // namespace

PolicyPtr
make_always_active(const EnergyModel &model)
{
    return std::make_unique<AlwaysActivePolicy>(model);
}

PolicyPtr
make_opt_drowsy(const EnergyModel &model, bool charge_refetch)
{
    return std::make_unique<OptDrowsyPolicy>(model, charge_refetch);
}

PolicyPtr
make_opt_sleep(const EnergyModel &model, Cycles min_sleep_length,
               bool charge_refetch)
{
    return std::make_unique<OptSleepPolicy>(model, min_sleep_length,
                                            charge_refetch);
}

PolicyPtr
make_decay_sleep(const EnergyModel &model, Cycles decay_interval,
                 bool charge_refetch)
{
    LEAKBOUND_ASSERT(decay_interval > 0, "decay interval must be nonzero");
    return std::make_unique<DecaySleepPolicy>(model, decay_interval,
                                              charge_refetch);
}

PolicyPtr
make_hybrid(const EnergyModel &model, Cycles min_sleep_length,
            bool charge_refetch)
{
    return std::make_unique<HybridPolicy>(model, min_sleep_length,
                                          charge_refetch,
                                          /*is_opt=*/false);
}

PolicyPtr
make_opt_hybrid(const EnergyModel &model, bool charge_refetch)
{
    // OPT-Hybrid is the unconstrained lower envelope; a minimum sleep
    // length of 0 lets sleep compete wherever it fits.
    return std::make_unique<HybridPolicy>(model, 0, charge_refetch,
                                          /*is_opt=*/true);
}

PolicyPtr
make_periodic_drowsy(const EnergyModel &model, Cycles window,
                     bool charge_refetch)
{
    LEAKBOUND_ASSERT(window > 0, "drowsy window must be nonzero");
    return std::make_unique<PeriodicDrowsyPolicy>(model, window,
                                                  charge_refetch);
}

PolicyPtr
make_prefetch(const EnergyModel &model, PrefetchVariant variant,
              std::vector<interval::PrefetchClass> allowed,
              bool charge_refetch)
{
    return std::make_unique<PrefetchPolicy>(model, variant,
                                            std::move(allowed),
                                            charge_refetch);
}

PolicyPtr
make_prefetch_blend(const EnergyModel &model, Cycles drowsy_threshold,
                    std::vector<interval::PrefetchClass> allowed,
                    bool charge_refetch)
{
    return std::make_unique<PrefetchPolicy>(model, drowsy_threshold,
                                            std::move(allowed),
                                            charge_refetch);
}

} // namespace leakbound::core
