
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/energy_model.cpp" "src/CMakeFiles/leakbound.dir/core/energy_model.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/energy_model.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/leakbound.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/generalized_model.cpp" "src/CMakeFiles/leakbound.dir/core/generalized_model.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/generalized_model.cpp.o.d"
  "/root/repo/src/core/inflection.cpp" "src/CMakeFiles/leakbound.dir/core/inflection.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/inflection.cpp.o.d"
  "/root/repo/src/core/optimal.cpp" "src/CMakeFiles/leakbound.dir/core/optimal.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/optimal.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/CMakeFiles/leakbound.dir/core/policies.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/policies.cpp.o.d"
  "/root/repo/src/core/savings.cpp" "src/CMakeFiles/leakbound.dir/core/savings.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/savings.cpp.o.d"
  "/root/repo/src/core/state_model.cpp" "src/CMakeFiles/leakbound.dir/core/state_model.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/core/state_model.cpp.o.d"
  "/root/repo/src/cpu/inorder_core.cpp" "src/CMakeFiles/leakbound.dir/cpu/inorder_core.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/cpu/inorder_core.cpp.o.d"
  "/root/repo/src/interval/collector.cpp" "src/CMakeFiles/leakbound.dir/interval/collector.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/interval/collector.cpp.o.d"
  "/root/repo/src/interval/interval.cpp" "src/CMakeFiles/leakbound.dir/interval/interval.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/interval/interval.cpp.o.d"
  "/root/repo/src/interval/interval_histogram.cpp" "src/CMakeFiles/leakbound.dir/interval/interval_histogram.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/interval/interval_histogram.cpp.o.d"
  "/root/repo/src/power/cacti_lite.cpp" "src/CMakeFiles/leakbound.dir/power/cacti_lite.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/power/cacti_lite.cpp.o.d"
  "/root/repo/src/power/hotleakage.cpp" "src/CMakeFiles/leakbound.dir/power/hotleakage.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/power/hotleakage.cpp.o.d"
  "/root/repo/src/power/itrs.cpp" "src/CMakeFiles/leakbound.dir/power/itrs.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/power/itrs.cpp.o.d"
  "/root/repo/src/power/technology.cpp" "src/CMakeFiles/leakbound.dir/power/technology.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/power/technology.cpp.o.d"
  "/root/repo/src/prefetch/next_line.cpp" "src/CMakeFiles/leakbound.dir/prefetch/next_line.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/prefetch/next_line.cpp.o.d"
  "/root/repo/src/prefetch/prefetchability.cpp" "src/CMakeFiles/leakbound.dir/prefetch/prefetchability.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/prefetch/prefetchability.cpp.o.d"
  "/root/repo/src/prefetch/stride.cpp" "src/CMakeFiles/leakbound.dir/prefetch/stride.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/prefetch/stride.cpp.o.d"
  "/root/repo/src/sim/belady.cpp" "src/CMakeFiles/leakbound.dir/sim/belady.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/sim/belady.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/leakbound.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/cache_config.cpp" "src/CMakeFiles/leakbound.dir/sim/cache_config.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/sim/cache_config.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/CMakeFiles/leakbound.dir/sim/hierarchy.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/sim/hierarchy.cpp.o.d"
  "/root/repo/src/sim/replacement.cpp" "src/CMakeFiles/leakbound.dir/sim/replacement.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/sim/replacement.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/CMakeFiles/leakbound.dir/trace/trace_io.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/trace/trace_io.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/leakbound.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/CMakeFiles/leakbound.dir/util/csv.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/csv.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/leakbound.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/leakbound.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/leakbound.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/string_utils.cpp" "src/CMakeFiles/leakbound.dir/util/string_utils.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/string_utils.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/leakbound.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/callgraph.cpp" "src/CMakeFiles/leakbound.dir/workload/callgraph.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/workload/callgraph.cpp.o.d"
  "/root/repo/src/workload/data_pattern.cpp" "src/CMakeFiles/leakbound.dir/workload/data_pattern.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/workload/data_pattern.cpp.o.d"
  "/root/repo/src/workload/loop_program.cpp" "src/CMakeFiles/leakbound.dir/workload/loop_program.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/workload/loop_program.cpp.o.d"
  "/root/repo/src/workload/spec_suite.cpp" "src/CMakeFiles/leakbound.dir/workload/spec_suite.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/workload/spec_suite.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/CMakeFiles/leakbound.dir/workload/workload.cpp.o" "gcc" "src/CMakeFiles/leakbound.dir/workload/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
