/**
 * @file
 * Tests of the cache model: geometry math, hit/miss/eviction
 * behaviour, frame identity, LRU/FIFO/Random replacement semantics,
 * the hierarchy's latency composition, and config validation.
 */

#include <gtest/gtest.h>

#include "sim/cache.hpp"
#include "sim/hierarchy.hpp"

using namespace leakbound;
using namespace leakbound::sim;

namespace {

/** A tiny 2-set, 2-way cache with 64B lines (256B total). */
CacheConfig
tiny()
{
    CacheConfig c;
    c.name = "tiny";
    c.size_bytes = 256;
    c.line_bytes = 64;
    c.associativity = 2;
    c.hit_latency = 1;
    return c;
}

} // namespace

TEST(CacheConfig, GeometryMath)
{
    const CacheConfig l1i = CacheConfig::alpha_l1i();
    EXPECT_EQ(l1i.num_sets(), 512u);
    EXPECT_EQ(l1i.num_frames(), 1024u);
    EXPECT_EQ(l1i.block_of(0x1234), 0x1234u / 64);
    const CacheConfig l2 = CacheConfig::alpha_l2();
    EXPECT_EQ(l2.num_sets(), 32768u);
    EXPECT_EQ(l2.associativity, 1u);
}

TEST(CacheConfig, ValidationCatchesBadGeometry)
{
    CacheConfig c = tiny();
    c.line_bytes = 48; // not a power of two
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(2), "power of two");
    c = tiny();
    c.size_bytes = 300; // not divisible
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(2), "multiple");
    c = tiny();
    c.hit_latency = 0;
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(2), "latency");
}

TEST(Cache, ColdMissesThenHits)
{
    Cache c(tiny());
    const AccessResult first = c.access(0x0);
    EXPECT_FALSE(first.hit);
    EXPECT_FALSE(first.evicted);
    const AccessResult second = c.access(0x4); // same 64B line
    EXPECT_TRUE(second.hit);
    EXPECT_EQ(second.frame, first.frame);
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SetMappingSeparatesBlocks)
{
    Cache c(tiny());
    // Blocks 0 and 1 map to different sets (2 sets, block index % 2).
    const auto a = c.access(0 * 64);
    const auto b = c.access(1 * 64);
    EXPECT_NE(a.frame / 2, b.frame / 2); // different sets
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tiny());
    // Set 0 holds even blocks; fill with blocks 0 and 2.
    c.access(0 * 64);
    c.access(2 * 64);
    // Touch block 0 so block 2 is LRU.
    c.access(0 * 64);
    // Block 4 must evict block 2.
    const AccessResult r = c.access(4 * 64);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim_block, 2u);
    // Block 0 still resident.
    EXPECT_TRUE(c.access(0 * 64).hit);
}

TEST(Cache, FifoIgnoresHits)
{
    CacheConfig cfg = tiny();
    cfg.replacement = ReplacementKind::Fifo;
    Cache c(cfg);
    c.access(0 * 64);
    c.access(2 * 64);
    c.access(0 * 64); // hit; FIFO must NOT refresh block 0
    const AccessResult r = c.access(4 * 64);
    EXPECT_TRUE(r.evicted);
    EXPECT_EQ(r.victim_block, 0u); // oldest insertion
}

TEST(Cache, RandomIsDeterministicPerSeed)
{
    CacheConfig cfg = tiny();
    cfg.replacement = ReplacementKind::Random;
    Cache a(cfg, 42), b(cfg, 42);
    for (Addr blk = 0; blk < 64; blk += 2) {
        const auto ra = a.access(blk * 64);
        const auto rb = b.access(blk * 64);
        EXPECT_EQ(ra.frame, rb.frame);
        EXPECT_EQ(ra.victim_block, rb.victim_block);
    }
}

TEST(Cache, FrameOfBlockTracksResidency)
{
    Cache c(tiny());
    EXPECT_EQ(c.frame_of_block(0), kInvalidFrame);
    const auto r = c.access(0);
    EXPECT_EQ(c.frame_of_block(0), r.frame);
    EXPECT_EQ(c.block_in_frame(r.frame), 0u);
    // Evict block 0 out of set 0.
    c.access(2 * 64);
    c.access(4 * 64);
    c.access(6 * 64);
    EXPECT_EQ(c.frame_of_block(0), kInvalidFrame);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(tiny());
    c.access(0);
    c.access(64);
    c.reset();
    EXPECT_EQ(c.stats().accesses, 0u);
    EXPECT_EQ(c.frame_of_block(0), kInvalidFrame);
    EXPECT_FALSE(c.access(0).hit);
}

TEST(Cache, AllFramesUsableUnderConflict)
{
    // Fill one set completely; both ways must be used before any
    // eviction happens.
    Cache c(tiny());
    c.access(0 * 64);
    const auto r2 = c.access(2 * 64);
    EXPECT_FALSE(r2.evicted);
    EXPECT_EQ(c.stats().evictions, 0u);
    c.access(4 * 64);
    EXPECT_EQ(c.stats().evictions, 1u);
}

// ------------------------------------------------------------ hierarchy

TEST(Hierarchy, LatenciesComposeAcrossLevels)
{
    HierarchyConfig cfg; // paper defaults
    Hierarchy h(cfg);

    // Cold instruction fetch: L1I miss, L2 miss -> memory latency.
    const HierarchyResult cold = h.access_instr(0x400000);
    EXPECT_FALSE(cold.l1.hit);
    EXPECT_FALSE(cold.l2_hit);
    EXPECT_EQ(cold.latency, cfg.memory_latency);

    // Warm: L1I hit at its hit latency.
    const HierarchyResult warm = h.access_instr(0x400000);
    EXPECT_TRUE(warm.l1.hit);
    EXPECT_EQ(warm.latency, cfg.l1i.hit_latency);

    // Data access to the same line: L1D misses but L2 now hits.
    const HierarchyResult data = h.access_data(0x400000);
    EXPECT_FALSE(data.l1.hit);
    EXPECT_TRUE(data.l2_hit);
    EXPECT_EQ(data.latency, cfg.l2.hit_latency);

    const HierarchyResult data2 = h.access_data(0x400004);
    EXPECT_TRUE(data2.l1.hit);
    EXPECT_EQ(data2.latency, cfg.l1d.hit_latency);
}

TEST(Hierarchy, PaperLatenciesAreDefault)
{
    const HierarchyConfig cfg;
    EXPECT_EQ(cfg.l1i.hit_latency, 1u);
    EXPECT_EQ(cfg.l1d.hit_latency, 3u);
    EXPECT_EQ(cfg.l2.hit_latency, 7u);
    EXPECT_EQ(cfg.l1i.size_bytes, 64u * 1024);
    EXPECT_EQ(cfg.l1d.size_bytes, 64u * 1024);
    EXPECT_EQ(cfg.l2.size_bytes, 2u * 1024 * 1024);
}

TEST(Hierarchy, RejectsMemoryFasterThanL2)
{
    HierarchyConfig cfg;
    cfg.memory_latency = 3;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(2),
                "memory latency");
}

TEST(Hierarchy, SplitL1SharedL2)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.access_instr(0x1000);
    // The same line is NOT in L1D (split), but IS in L2 (shared).
    const HierarchyResult d = h.access_data(0x1000);
    EXPECT_FALSE(d.l1.hit);
    EXPECT_TRUE(d.l2_hit);
    EXPECT_EQ(h.l2().stats().accesses, 2u);
}
