/**
 * @file
 * Implementation of the three-level hierarchy.
 */

#include "sim/hierarchy.hpp"

#include "util/logging.hpp"

namespace leakbound::sim {

void
HierarchyConfig::validate() const
{
    l1i.validate();
    l1d.validate();
    l2.validate();
    if (memory_latency <= l2.hit_latency) {
        util::fatal("memory latency (", memory_latency,
                    ") must exceed the L2 hit latency (", l2.hit_latency,
                    ")");
    }
}

Hierarchy::Hierarchy(const HierarchyConfig &config)
    : config_(config), l1i_(config.l1i, /*seed=*/11),
      l1d_(config.l1d, /*seed=*/13), l2_(config.l2, /*seed=*/17)
{
    config_.validate();
}

HierarchyResult
Hierarchy::access_through(Cache &l1, Addr addr)
{
    HierarchyResult out;
    out.l1 = l1.access(addr);
    if (out.l1.hit) {
        out.latency = l1.config().hit_latency;
        return out;
    }
    out.l2 = l2_.access(addr);
    out.l2_hit = out.l2.hit;
    out.latency = out.l2.hit ? l2_.config().hit_latency
                             : config_.memory_latency;
    return out;
}

HierarchyResult
Hierarchy::access_instr(Pc pc)
{
    return access_through(l1i_, pc);
}

HierarchyResult
Hierarchy::access_data(Addr addr)
{
    return access_through(l1d_, addr);
}

} // namespace leakbound::sim
