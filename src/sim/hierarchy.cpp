/**
 * @file
 * Implementation of the three-level hierarchy (construction and
 * validation; the access paths are inline in the header).
 */

#include "sim/hierarchy.hpp"

#include "util/logging.hpp"

namespace leakbound::sim {

void
HierarchyConfig::validate() const
{
    l1i.validate();
    l1d.validate();
    l2.validate();
    if (memory_latency <= l2.hit_latency) {
        util::fatal("memory latency (", memory_latency,
                    ") must exceed the L2 hit latency (", l2.hit_latency,
                    ")");
    }
}

Hierarchy::Hierarchy(const HierarchyConfig &config, SimMode mode)
    : config_(config), l1i_(config.l1i, /*seed=*/11, mode),
      l1d_(config.l1d, /*seed=*/13, mode), l2_(config.l2, /*seed=*/17, mode)
{
    config_.validate();
}

} // namespace leakbound::sim
