/**
 * @file
 * Deterministic, seedable fault injection for the file-IO seams.
 *
 * Chaos builds (-DLEAKBOUND_FAULT_INJECTION=ON) compile probe calls
 * into binary_io, trace_io, the artifact cache and the suite runner;
 * each probe asks "should this operation fail now?" and the injector
 * answers from a counter-hashed pseudo-random stream, so a given
 * (seed, spec) produces the same fault pattern on every run of the
 * same serial call sequence.  Release builds (the default, OFF)
 * compile every probe to a constant-false inline — zero branches, zero
 * strings, zero symbols — which the `chaos_injector_compiled_out`
 * CTest asserts by grepping the built binary.
 *
 * Configuration is a spec string, either passed programmatically
 * (tests) or through the LEAKBOUND_FAULT_INJECTION environment
 * variable (bench binaries read it in make_cli):
 *
 *   site[@match]=rate[,site[@match]=rate...]
 *
 * where `site` is one of open_read, open_write, short_write, enospc,
 * rename_torn, lock, simulate, net_accept, net_read, net_write,
 * net_short_write, kill_shard; `rate` is a fault probability in
 * [0, 1]; and the optional `@match` restricts the rule to probes whose
 * tag (usually a path or workload name) contains the substring.  The
 * seed comes from LEAKBOUND_FAULT_SEED (default 0x1eafb01d).
 *
 * Example — fail a third of cache-entry publishes and every
 * simulation of ammp:
 *
 *   LEAKBOUND_FAULT_INJECTION="rename_torn=0.33,simulate@ammp=1" \
 *       ./fig8_schemes --jobs 4 --cache-dir /tmp/cache
 */

#ifndef LEAKBOUND_UTIL_FAULT_INJECTION_HPP
#define LEAKBOUND_UTIL_FAULT_INJECTION_HPP

#include <cstdint>
#include <string>
#include <string_view>

namespace leakbound::util::fault {

/** Every seam a fault can be injected at. */
enum class Site : std::uint8_t {
    OpenRead,   ///< opening a file for reading fails
    OpenWrite,  ///< creating/opening a file for writing fails
    ShortWrite, ///< a buffered write is truncated
    Enospc,     ///< flush/fsync fails as if the disk filled up
    RenameTorn, ///< atomic publish tears: half the bytes land, tmp lost
    Lock,       ///< lock acquisition reports contention
    Simulate,   ///< a suite job dies mid-simulation
    NetAccept,  ///< accepting a client connection fails
    NetRead,    ///< a socket read fails as if the peer vanished
    NetWrite,   ///< a socket write fails mid-frame
    NetShortWrite, ///< a socket write is truncated (partial write)
    KillShard,  ///< the shard supervisor SIGKILLs a random live shard
};

inline constexpr std::size_t kNumFaultSites = 12;

/** The spec-string name of @p site ("open_read", ...). */
constexpr const char *
site_name(Site site)
{
    switch (site) {
      case Site::OpenRead: return "open_read";
      case Site::OpenWrite: return "open_write";
      case Site::ShortWrite: return "short_write";
      case Site::Enospc: return "enospc";
      case Site::RenameTorn: return "rename_torn";
      case Site::Lock: return "lock";
      case Site::Simulate: return "simulate";
      case Site::NetAccept: return "net_accept";
      case Site::NetRead: return "net_read";
      case Site::NetWrite: return "net_write";
      case Site::NetShortWrite: return "net_short_write";
      case Site::KillShard: return "kill_shard";
    }
    return "unknown";
}

#if defined(LEAKBOUND_FAULT_INJECTION) && LEAKBOUND_FAULT_INJECTION

/** Probes are live in this build. */
inline constexpr bool kEnabled = true;

/**
 * Replace all rules with @p spec drawn from @p seed.  Not thread-safe
 * against concurrent should_fail() — configure before the run starts.
 * @return false (leaving the previous rules untouched) on a malformed
 * spec.
 */
bool configure(const std::string &spec, std::uint64_t seed);

/**
 * Configure from $LEAKBOUND_FAULT_INJECTION / $LEAKBOUND_FAULT_SEED;
 * no-op when the spec variable is unset or empty.  Warns loudly when
 * injection goes live so a chaos run is never mistaken for a real one.
 */
void configure_from_env();

/**
 * Should the probe at @p site (operating on @p tag — a path, workload
 * name, ...) fail?  Counts the injection when it answers yes.
 */
bool should_fail(Site site, std::string_view tag = {});

/** How many times @p site has fired since the last reset. */
std::uint64_t injected_count(Site site);

/** Total injected faults across all sites since the last reset. */
std::uint64_t total_injected();

/** Drop all rules and zero all counters (tests). */
void reset();

#else // release: probes fold to constant false

/** Probes are compiled out in this build. */
inline constexpr bool kEnabled = false;

inline bool
configure(const std::string &, std::uint64_t)
{
    return false;
}

inline void
configure_from_env()
{
}

inline constexpr bool
should_fail(Site, std::string_view = {})
{
    return false;
}

inline constexpr std::uint64_t
injected_count(Site)
{
    return 0;
}

inline constexpr std::uint64_t
total_injected()
{
    return 0;
}

inline void
reset()
{
}

#endif // LEAKBOUND_FAULT_INJECTION

} // namespace leakbound::util::fault

#endif // LEAKBOUND_UTIL_FAULT_INJECTION_HPP
