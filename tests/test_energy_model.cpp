/**
 * @file
 * Unit + property tests for the closed-form interval energy model
 * (paper Eq. 1-2): exact values, applicability, linearity, kind
 * handling, and the lower-envelope behaviour of optimal_mode().
 */

#include <gtest/gtest.h>

#include "core/energy_model.hpp"
#include "core/inflection.hpp"
#include "power/technology.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::IntervalKind;

namespace {

EnergyModel
model70()
{
    return EnergyModel(power::node_params(power::TechNode::Nm70));
}

} // namespace

TEST(EnergyModel, ActiveEnergyIsLength)
{
    const EnergyModel m = model70();
    for (Cycles len : {0ULL, 1ULL, 6ULL, 1057ULL, 1000000ULL}) {
        EXPECT_DOUBLE_EQ(m.energy(Mode::Active, len, IntervalKind::Inner),
                         static_cast<double>(len));
    }
}

TEST(EnergyModel, DrowsyInnerClosedForm)
{
    // E_drowsy(L) = P_A*(d1+d3) + P_D*(L-6) with P_D = 1/3.
    const EnergyModel m = model70();
    EXPECT_DOUBLE_EQ(m.energy(Mode::Drowsy, 6, IntervalKind::Inner), 6.0);
    EXPECT_NEAR(m.energy(Mode::Drowsy, 306, IntervalKind::Inner),
                6.0 + 300.0 / 3.0, 1e-9);
}

TEST(EnergyModel, SleepInnerClosedForm)
{
    // E_sleep(L) = P_A*37 + P_S*(L-37) + CD, P_S = 0.
    const EnergyModel m = model70();
    const double cd = m.tech().refetch_energy;
    EXPECT_NEAR(m.energy(Mode::Sleep, 37, IntervalKind::Inner), 37.0 + cd,
                1e-9);
    EXPECT_NEAR(m.energy(Mode::Sleep, 100000, IntervalKind::Inner),
                37.0 + cd, 1e-9); // flat: sleeping is free once entered
    EXPECT_NEAR(m.energy(Mode::Sleep, 100000, IntervalKind::Inner,
                         /*charge_refetch=*/false),
                37.0, 1e-9);
}

TEST(EnergyModel, DrowsyTiesActiveExactlyAtA)
{
    // The full-power transition convention makes E_drowsy(a) == a.
    const EnergyModel m = model70();
    const Cycles a = m.tech().timings.drowsy_overhead();
    EXPECT_DOUBLE_EQ(m.energy(Mode::Drowsy, a, IntervalKind::Inner),
                     m.energy(Mode::Active, a, IntervalKind::Inner));
    EXPECT_LT(m.energy(Mode::Drowsy, a + 1, IntervalKind::Inner),
              m.energy(Mode::Active, a + 1, IntervalKind::Inner));
}

TEST(EnergyModel, ApplicabilityPerKind)
{
    const EnergyModel m = model70();
    // Inner: drowsy needs d1+d3, sleep needs s1+s3+s4.
    EXPECT_FALSE(m.applicable(Mode::Drowsy, 5, IntervalKind::Inner));
    EXPECT_TRUE(m.applicable(Mode::Drowsy, 6, IntervalKind::Inner));
    EXPECT_FALSE(m.applicable(Mode::Sleep, 36, IntervalKind::Inner));
    EXPECT_TRUE(m.applicable(Mode::Sleep, 37, IntervalKind::Inner));
    // Trailing: only the entry ramp.
    EXPECT_TRUE(m.applicable(Mode::Drowsy, 3, IntervalKind::Trailing));
    EXPECT_FALSE(m.applicable(Mode::Drowsy, 2, IntervalKind::Trailing));
    EXPECT_TRUE(m.applicable(Mode::Sleep, 30, IntervalKind::Trailing));
    EXPECT_FALSE(m.applicable(Mode::Sleep, 29, IntervalKind::Trailing));
    // Leading/untouched: always.
    EXPECT_TRUE(m.applicable(Mode::Sleep, 0, IntervalKind::Leading));
    EXPECT_TRUE(m.applicable(Mode::Sleep, 0, IntervalKind::Untouched));
}

TEST(EnergyModel, LeadingAndUntouchedHaveNoOverheads)
{
    const EnergyModel m = model70();
    for (IntervalKind kind :
         {IntervalKind::Leading, IntervalKind::Untouched}) {
        EXPECT_DOUBLE_EQ(m.energy(Mode::Sleep, 1000, kind), 0.0);
        EXPECT_NEAR(m.energy(Mode::Drowsy, 1000, kind), 1000.0 / 3.0,
                    1e-9);
    }
}

TEST(EnergyModel, TrailingPaysEntryOnly)
{
    const EnergyModel m = model70();
    // Sleep trailing: s1 at P_A, rest at P_S = 0, no CD.
    EXPECT_NEAR(m.energy(Mode::Sleep, 1000, IntervalKind::Trailing), 30.0,
                1e-9);
    // Drowsy trailing: d1 at P_A, rest at P_D.
    EXPECT_NEAR(m.energy(Mode::Drowsy, 1000, IntervalKind::Trailing),
                3.0 + 997.0 / 3.0, 1e-9);
}

TEST(EnergyModel, LinearMatchesEnergyEverywhere)
{
    const EnergyModel m = model70();
    for (IntervalKind kind :
         {IntervalKind::Inner, IntervalKind::Leading,
          IntervalKind::Trailing, IntervalKind::Untouched}) {
        for (Mode mode : {Mode::Active, Mode::Drowsy, Mode::Sleep}) {
            const LinearEnergy le = m.linear(mode, kind);
            for (Cycles len : {50ULL, 1057ULL, 99'999ULL}) {
                if (!m.applicable(mode, len, kind))
                    continue;
                EXPECT_NEAR(le.at(len), m.energy(mode, len, kind), 1e-9)
                    << mode_name(mode) << " " << kind_name(kind);
            }
        }
    }
}

TEST(EnergyModel, OptimalModeFollowsPaperRegimes)
{
    const EnergyModel m = model70();
    // (0, a): active. (a, b): drowsy. (b, inf): sleep.  (At the exact
    // tie points lower-power modes win by convention.)
    EXPECT_EQ(m.optimal_mode(3, IntervalKind::Inner), Mode::Active);
    EXPECT_EQ(m.optimal_mode(5, IntervalKind::Inner), Mode::Active);
    EXPECT_EQ(m.optimal_mode(7, IntervalKind::Inner), Mode::Drowsy);
    EXPECT_EQ(m.optimal_mode(500, IntervalKind::Inner), Mode::Drowsy);
    EXPECT_EQ(m.optimal_mode(1056, IntervalKind::Inner), Mode::Drowsy);
    EXPECT_EQ(m.optimal_mode(1058, IntervalKind::Inner), Mode::Sleep);
    EXPECT_EQ(m.optimal_mode(1'000'000, IntervalKind::Inner), Mode::Sleep);
}

TEST(EnergyModel, OptimalEnergyIsLowerEnvelope)
{
    // Property: optimal_energy <= energy of every applicable mode
    // (paper Fig. 10 / Appendix theorem, pointwise).
    const EnergyModel m = model70();
    for (Cycles len = 0; len <= 3000; len += 13) {
        for (IntervalKind kind :
             {IntervalKind::Inner, IntervalKind::Leading,
              IntervalKind::Trailing, IntervalKind::Untouched}) {
            const Energy best = m.optimal_energy(len, kind);
            for (Mode mode : {Mode::Active, Mode::Drowsy, Mode::Sleep}) {
                if (!m.applicable(mode, len, kind))
                    continue;
                EXPECT_LE(best, m.energy(mode, len, kind) + 1e-9)
                    << "len=" << len << " kind=" << kind_name(kind)
                    << " mode=" << mode_name(mode);
            }
        }
    }
}

TEST(EnergyModel, EnergyIsMonotoneInLength)
{
    // Property: each mode's energy is non-decreasing in interval
    // length (Fig. 10: "continuous and monotonically increasing").
    const EnergyModel m = model70();
    for (Mode mode : {Mode::Active, Mode::Drowsy, Mode::Sleep}) {
        Energy prev = -1.0;
        for (Cycles len = 40; len < 5000; len += 7) {
            const Energy e = m.energy(mode, len, IntervalKind::Inner);
            EXPECT_GE(e, prev - 1e-12);
            prev = e;
        }
    }
}

/** Parameterized across all four paper nodes. */
class EnergyModelAllNodes
    : public ::testing::TestWithParam<power::TechNode>
{
};

TEST_P(EnergyModelAllNodes, DrowsyAsymptoteIsTwoThirdsSavings)
{
    const EnergyModel m(power::node_params(GetParam()));
    const Cycles len = 10'000'000;
    const double savings =
        1.0 - m.energy(Mode::Drowsy, len, IntervalKind::Inner) /
                  m.energy(Mode::Active, len, IntervalKind::Inner);
    // Table 2: OPT-Drowsy saturates at ~66.7% for every node.
    EXPECT_NEAR(savings, 2.0 / 3.0, 1e-3);
}

TEST_P(EnergyModelAllNodes, SleepBeatsDrowsyOnlyAboveB)
{
    const EnergyModel m(power::node_params(GetParam()));
    const auto points = compute_inflection(m);
    const Cycles b = points.drowsy_sleep;
    EXPECT_GT(m.energy(Mode::Sleep, b - 1, IntervalKind::Inner),
              m.energy(Mode::Drowsy, b - 1, IntervalKind::Inner));
    EXPECT_LT(m.energy(Mode::Sleep, b + 1, IntervalKind::Inner),
              m.energy(Mode::Drowsy, b + 1, IntervalKind::Inner));
}

INSTANTIATE_TEST_SUITE_P(
    AllNodes, EnergyModelAllNodes,
    ::testing::Values(power::TechNode::Nm70, power::TechNode::Nm100,
                      power::TechNode::Nm130, power::TechNode::Nm180),
    [](const ::testing::TestParamInfo<power::TechNode> &info) {
        const std::string name = power::node_params(info.param).name;
        return "Nm" + name.substr(0, name.size() - 2);
    });
