/**
 * @file
 * `leakbound-client` — command-line client and load generator for
 * leakboundd.
 *
 * Single-shot mode sends one run/stats/ping request and prints the
 * response JSON; `--load N --concurrency K` fires N identical run
 * requests from K threads and prints what came back (ok / overloaded /
 * dedup byte-identity / latency percentiles).  `--shards N` targets a
 * supervised fleet instead of a single daemon: run requests route to
 * their fingerprint's home shard and fail over to the next shard on
 * connection refusal, truncated frames or an orderly shard drain,
 * while ping/stats/health go to the supervisor's control endpoint
 * (the base socket/port).  Exit codes: 0 success, 1 the daemon
 * answered with an error or could not be reached, 2 usage errors.
 */

#include <cstdio>

#include "core/suite_flags.hpp"
#include "serve/client.hpp"
#include "util/cli.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;

namespace {

serve::Endpoint
endpoint_from_flags(const util::Cli &cli)
{
    serve::Endpoint endpoint;
    endpoint.unix_path = cli.get("socket");
    endpoint.tcp_host = cli.get("tcp-host");
    endpoint.tcp_port =
        static_cast<std::uint16_t>(cli.get_u64("tcp-port"));
    if (endpoint.tcp_port != 0)
        endpoint.unix_path.clear(); // an explicit port wins
    return endpoint;
}

/** Print one ok response, optionally mirroring it to --json PATH. */
int
emit_response(const std::string &raw, const util::Cli &cli)
{
    std::printf("%s\n", raw.c_str());
    const std::string path = cli.get("json");
    if (!path.empty()) {
        if (util::Status wrote = util::write_text_file(path, raw + "\n");
            !wrote.ok())
            util::warn("cannot mirror response: ", wrote.to_string());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    util::install_signal_handlers();

    util::Cli cli("leakbound-client",
                  "client and load generator for leakboundd");
    core::SuiteFlagSpec spec;
    spec.jobs = false;       // compute happens server-side
    spec.cache_dir = false;  // caching is server-owned
    spec.csv_dir = false;
    spec.suite_passes = false;
    spec.default_instructions = 200'000;
    core::register_suite_flags(cli, spec); // --instructions, --json, --engine
    cli.add_flag("socket", "unix-domain socket of the daemon",
                 "leakboundd.sock");
    cli.add_flag("tcp-host", "TCP address of the daemon", "127.0.0.1");
    cli.add_flag("tcp-port",
                 "TCP port of the daemon (nonzero overrides --socket)",
                 "0");
    cli.add_flag("benchmarks",
                 "comma-separated suite benchmarks to simulate",
                 "gzip");
    cli.add_flag("nl-lead-time",
                 "next-line timeliness lead, cycles", "0");
    cli.add_flag("collect-l2", "also collect the unified L2", "0");
    cli.add_flag("core-count",
                 "cores sharing the L2 (1 = single-core simulator)",
                 "1");
    cli.add_flag("workload-mix",
                 "comma-separated per-core benchmarks for multicore "
                 "runs (must match --core-count; empty = every core "
                 "runs the requested benchmark)",
                 "");
    cli.add_flag("payload",
                 "embed each result's full serialized payload (hex)",
                 "0");
    cli.add_flag("ping", "just ping the daemon", "0");
    cli.add_flag("stats", "fetch the daemon's /stats counters", "0");
    cli.add_flag("load",
                 "fire N identical run requests instead of one", "0");
    cli.add_flag("concurrency", "client threads for --load", "4");
    cli.add_flag("connections",
                 "open N extra connections before the load loop", "0");
    cli.add_flag("idle",
                 "hold the --connections sockets open but idle for the "
                 "whole run (the 10k-connection scenario)",
                 "0");
    cli.add_flag("rate",
                 "open-loop arrival rate in req/s for --load "
                 "(0 = closed loop)",
                 "0");
    cli.add_flag("persistent",
                 "reuse one connection per load thread instead of one "
                 "per request",
                 "0");
    cli.add_flag("pipeline",
                 "requests each persistent load thread keeps in "
                 "flight on its connection",
                 "1");
    cli.add_flag("deadline-ms",
                 "per-request completion deadline; the daemon sheds "
                 "requests it cannot finish in time (0 = none)",
                 "0");
    cli.add_flag("shards",
                 "the daemon is a supervised fleet of N shards: route "
                 "run requests by fingerprint and fail over on shard "
                 "failure (0 = single daemon)",
                 "0");
    cli.parse(argc, argv);

    const serve::Endpoint endpoint = endpoint_from_flags(cli);
    const unsigned shards = static_cast<unsigned>(cli.get_u64("shards"));

    if (cli.get_bool("ping") || cli.get_bool("stats")) {
        const std::string request = cli.get_bool("ping")
                                        ? serve::build_ping_request()
                                        : serve::build_stats_request();
        std::string raw;
        auto response = serve::call_endpoint(
            endpoint, request, serve::kDefaultMaxFrameBytes, &raw);
        if (!response) {
            std::fprintf(stderr, "leakbound-client: %s\n",
                         response.status().to_string().c_str());
            return 1;
        }
        return emit_response(raw, cli);
    }

    serve::RunRequest request;
    request.benchmarks = util::split(cli.get("benchmarks"), ',');
    for (const std::string &name : request.benchmarks)
        if (!workload::is_benchmark(name))
            util::fatal("unknown benchmark \"", name, "\"");
    request.instructions = cli.get_u64("instructions");
    request.nl_lead_time = cli.get_u64("nl-lead-time");
    request.collect_l2 = cli.get_bool("collect-l2");
    request.want_payload = cli.get_bool("payload");
    request.engine = cli.get("engine");
    if (!core::parse_engine(request.engine))
        util::fatal("--engine must be auto, analytic or sim (got \"",
                    request.engine, "\")");
    request.deadline_ms = cli.get_u64("deadline-ms");
    request.core_count =
        static_cast<std::uint32_t>(cli.get_u64("core-count"));
    if (const std::string mix = cli.get("workload-mix"); !mix.empty()) {
        request.workload_mix = util::split(mix, ',');
        for (const std::string &name : request.workload_mix)
            if (!workload::is_benchmark(name))
                util::fatal("unknown benchmark \"", name,
                            "\" in --workload-mix");
        if (request.workload_mix.size() != request.core_count)
            util::fatal("--workload-mix has ",
                        request.workload_mix.size(),
                        " entries but --core-count is ",
                        request.core_count);
    }

    const std::uint64_t load = cli.get_u64("load");
    if (load == 0) {
        std::string raw;
        std::uint64_t failovers = 0;
        auto response =
            shards > 0
                ? serve::call_fleet(
                      serve::fleet_endpoints(endpoint, shards), request,
                      serve::FailoverPolicy{},
                      serve::kDefaultMaxFrameBytes, &raw, &failovers)
                : serve::call_endpoint(
                      endpoint, serve::build_run_request(request),
                      serve::kDefaultMaxFrameBytes, &raw);
        if (!response) {
            std::fprintf(stderr, "leakbound-client: %s\n",
                         response.status().to_string().c_str());
            return 1;
        }
        if (failovers > 0)
            std::fprintf(stderr,
                         "leakbound-client: rerouted %llu time(s)\n",
                         static_cast<unsigned long long>(failovers));
        return emit_response(raw, cli);
    }

    serve::LoadOptions options;
    options.total = load;
    options.concurrency =
        static_cast<unsigned>(cli.get_u64("concurrency"));
    options.open_loop_rps =
        static_cast<double>(cli.get_u64("rate"));
    options.persistent = cli.get_bool("persistent");
    options.pipeline = static_cast<unsigned>(cli.get_u64("pipeline"));
    if (cli.get_bool("idle"))
        options.idle_connections =
            static_cast<unsigned>(cli.get_u64("connections"));
    if (shards > 0)
        options.fleet = serve::fleet_endpoints(endpoint, shards);
    const serve::LoadReport report =
        serve::run_load(endpoint, request, options);
    std::printf(
        "load: %llu sent, %llu ok, %llu overloaded, %llu "
        "shutting_down, %llu errors, %llu failover(s) in %.2fs "
        "(%llu idle connection(s) held)\n"
        "dedup: %llu distinct fingerprint(s), %llu distinct "
        "response body(ies)\n"
        "latency: p50 %.1f ms, p99 %.1f ms, max %.1f ms\n",
        static_cast<unsigned long long>(report.sent),
        static_cast<unsigned long long>(report.ok),
        static_cast<unsigned long long>(report.overloaded),
        static_cast<unsigned long long>(report.shutting_down),
        static_cast<unsigned long long>(report.other_errors),
        static_cast<unsigned long long>(report.failovers),
        report.wall_seconds,
        static_cast<unsigned long long>(report.idle_connections_held),
        static_cast<unsigned long long>(report.distinct_fingerprints),
        static_cast<unsigned long long>(report.distinct_responses),
        report.latency_ms.p50(), report.latency_ms.p99(),
        report.latency_ms.max());
    return report.ok == report.sent ? 0 : 1;
}
