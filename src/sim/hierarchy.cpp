/**
 * @file
 * Implementation of the three-level hierarchy (construction and
 * validation; the access paths are inline in the header).
 */

#include "sim/hierarchy.hpp"

#include "util/logging.hpp"

namespace leakbound::sim {

void
HierarchyConfig::validate() const
{
    l1i.validate();
    l1d.validate();
    l2.validate();
    if (memory_latency <= l2.hit_latency) {
        util::fatal("memory latency (", memory_latency,
                    ") must exceed the L2 hit latency (", l2.hit_latency,
                    ")");
    }
}

namespace {

/**
 * Per-requester seed derivation: requester 0 keeps the historical
 * seeds (11 for L1I, 13 for L1D), later requesters shift far enough
 * that no two cores' Random-replacement streams can collide.
 */
constexpr std::uint64_t
requester_seed(std::uint64_t base, std::uint32_t requester)
{
    return base + (static_cast<std::uint64_t>(requester) << 6);
}

} // namespace

Hierarchy::Hierarchy(const HierarchyConfig &config, SimMode mode)
    : config_(config), l1i_(config.l1i, /*seed=*/11, mode),
      l1d_(config.l1d, /*seed=*/13, mode),
      owned_l2_(std::make_unique<Cache>(config.l2, /*seed=*/17, mode)),
      l2_(owned_l2_.get())
{
    config_.validate();
}

Hierarchy::Hierarchy(const HierarchyConfig &config, Cache *shared_l2,
                     std::uint32_t requester, SimMode mode)
    : config_(config),
      l1i_(config.l1i, requester_seed(11, requester), mode),
      l1d_(config.l1d, requester_seed(13, requester), mode),
      l2_(shared_l2)
{
    LEAKBOUND_ASSERT(shared_l2 != nullptr,
                     "shared-L2 node needs a live L2 instance");
    config_.validate();
}

} // namespace leakbound::sim
