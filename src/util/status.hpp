/**
 * @file
 * Typed, propagating error values for recoverable failures.
 *
 * The severity ladder (see util/logging.hpp) handles the two extremes:
 * panic() for internal invariant violations (abort) and fatal() for
 * user errors at the process boundary (exit 2).  Everything in between
 * — a corrupt cache entry, an unwritable report path, a lock-wait
 * timeout — is *recoverable* by some caller up the stack and must not
 * kill the process from library code.  Those paths return a Status (or
 * an Expected<T> when there is a payload), and the suite runner turns
 * surviving failures into entries of the JSON report's "failures"
 * array instead of aborting sibling jobs.
 *
 * StatusError wraps a Status as an exception for the one place a
 * return value cannot cross: the thread-pool boundary.  Workers throw
 * it; core::run_suite_isolated catches it per job and records the
 * typed failure without disturbing the other jobs.
 */

#ifndef LEAKBOUND_UTIL_STATUS_HPP
#define LEAKBOUND_UTIL_STATUS_HPP

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "util/logging.hpp"

namespace leakbound::util {

/**
 * Failure taxonomy.  Kinds are coarse on purpose: they drive retry
 * decisions (is this transient?) and report grouping, not dispatch.
 */
enum class ErrorKind : std::uint8_t {
    None = 0,        ///< success (only ever inside an ok Status)
    IoError,         ///< open/write/flush/rename failed (possibly transient)
    NotFound,        ///< a path that simply is not there
    CorruptData,     ///< checksum/magic/bounds validation failed
    LockTimeout,     ///< gave up waiting on another writer's lock
    Interrupted,     ///< SIGINT/SIGTERM observed (see util/interrupt.hpp)
    InvalidArgument, ///< the caller asked for something impossible
    FaultInjected,   ///< a util::fault seam fired (chaos builds only)
    Internal,        ///< unexpected exception: a leakbound bug
    Overloaded,      ///< the serve admission queue is full; retry later
    ShuttingDown,    ///< the daemon is draining; no new work is admitted
    ConnectionClosed, ///< the peer closed the connection (clean EOF)
    CrashLoop,       ///< a supervised shard kept dying; circuit breaker tripped
};

/** Stable lower_snake name of @p kind, as emitted in JSON reports. */
const char *error_kind_name(ErrorKind kind);

/**
 * Inverse of error_kind_name: the kind whose stable name is @p name,
 * or nullopt for an unrecognized string.  The serve client uses this
 * to rebuild a typed Status from the "kind" field of an error frame.
 */
std::optional<ErrorKind> error_kind_from_name(std::string_view name);

/** Success or a (kind, message) failure; default-constructed is ok. */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure of @p kind; @p kind must not be ErrorKind::None. */
    Status(ErrorKind kind, std::string message)
        : kind_(kind), message_(std::move(message))
    {
        LEAKBOUND_ASSERT(kind != ErrorKind::None,
                         "failure Status needs a non-None kind");
    }

    bool ok() const { return kind_ == ErrorKind::None; }
    ErrorKind kind() const { return kind_; }
    const std::string &message() const { return message_; }

    /** "ok" or "<kind>: <message>" for logs and exception text. */
    std::string to_string() const;

  private:
    ErrorKind kind_ = ErrorKind::None;
    std::string message_;
};

/** A T or the Status explaining why there is none. */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    /** Success carrying @p value. */
    Expected(T value) : value_(std::move(value)) {}

    /** Failure; @p status must not be ok. */
    Expected(Status status) : status_(std::move(status))
    {
        LEAKBOUND_ASSERT(!status_.ok(),
                         "Expected built from an ok Status but no value");
    }

    bool has_value() const { return value_.has_value(); }
    explicit operator bool() const { return has_value(); }

    /** The payload; asserts has_value(). */
    T &value()
    {
        LEAKBOUND_ASSERT(value_.has_value(), "value() on failed Expected: ",
                         status_.to_string());
        return *value_;
    }
    const T &value() const
    {
        LEAKBOUND_ASSERT(value_.has_value(), "value() on failed Expected: ",
                         status_.to_string());
        return *value_;
    }

    /** Move the payload out; asserts has_value(). */
    T take() { return std::move(value()); }

    /** ok() when has_value(), the failure otherwise. */
    const Status &status() const { return status_; }

  private:
    std::optional<T> value_;
    Status status_;
};

/**
 * A Status as an exception, for crossing boundaries that cannot return
 * one (thread-pool tasks, deep call stacks mid-simulation).  what() is
 * the status's to_string().
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.to_string()), status_(std::move(status))
    {
    }

    const Status &status() const { return status_; }

  private:
    Status status_;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_STATUS_HPP
