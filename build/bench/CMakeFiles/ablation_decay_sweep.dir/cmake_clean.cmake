file(REMOVE_RECURSE
  "CMakeFiles/ablation_decay_sweep.dir/ablation_decay_sweep.cpp.o"
  "CMakeFiles/ablation_decay_sweep.dir/ablation_decay_sweep.cpp.o.d"
  "ablation_decay_sweep"
  "ablation_decay_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_decay_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
