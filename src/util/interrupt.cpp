/**
 * @file
 * Implementation of cooperative interrupt handling.
 */

#include "util/interrupt.hpp"

#include <atomic>
#include <csignal>

namespace leakbound::util {

namespace {

std::atomic<int> g_pending_signal{0};
std::atomic<bool> g_installed{false};

extern "C" void
on_signal(int signal)
{
    // Only async-signal-safe work here: set the flag and return.  The
    // suite runner polls interrupt_requested() at job boundaries.
    g_pending_signal.store(signal, std::memory_order_relaxed);
}

} // namespace

void
install_signal_handlers()
{
    bool expected = false;
    if (!g_installed.compare_exchange_strong(expected, true))
        return;
    struct sigaction action = {};
    action.sa_handler = on_signal;
    sigemptyset(&action.sa_mask);
    // One-shot: a second SIGINT/SIGTERM takes the default action and
    // kills the process, so shutdown can never wedge unrecoverably.
    action.sa_flags = SA_RESETHAND;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    // A peer closing mid-write must surface as EPIPE from the write,
    // never as a process-killing SIGPIPE.  Sends through util::net use
    // MSG_NOSIGNAL already; this covers every other descriptor
    // (heartbeat pipes, stdio redirected to a dead pager, ...).
    ::signal(SIGPIPE, SIG_IGN);
}

bool
interrupt_requested()
{
    return g_pending_signal.load(std::memory_order_relaxed) != 0;
}

int
pending_signal()
{
    return g_pending_signal.load(std::memory_order_relaxed);
}

int
interrupt_exit_code()
{
    const int signal = pending_signal();
    return signal == 0 ? 0 : 128 + signal;
}

void
simulate_interrupt(int signal)
{
    g_pending_signal.store(signal, std::memory_order_relaxed);
}

void
clear_interrupt()
{
    g_pending_signal.store(0, std::memory_order_relaxed);
}

} // namespace leakbound::util
