/**
 * @file
 * Implementation of the call-graph walker.
 */

#include "workload/callgraph.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace leakbound::workload {

namespace {

constexpr std::uint32_t kInstrBytes = 4;

} // namespace

CallGraphProgram::CallGraphProgram(std::string name, Pc code_base,
                                   const CallGraphSpec &spec,
                                   std::vector<DataPatternPtr> patterns,
                                   std::uint64_t seed)
    : name_(std::move(name)), spec_(spec), patterns_(std::move(patterns)),
      seed_(seed), run_rng_(seed)
{
    using util::fatal;
    if (spec_.num_functions == 0)
        fatal("callgraph '", name_, "': needs at least one function");
    if (spec_.min_instrs == 0 || spec_.min_instrs > spec_.max_instrs)
        fatal("callgraph '", name_, "': bad body size range");
    if (spec_.repeat_min == 0 || spec_.repeat_min > spec_.repeat_max)
        fatal("callgraph '", name_, "': bad repeat range");
    if (spec_.mem_fraction > 0.0 && patterns_.empty())
        fatal("callgraph '", name_, "': memory fraction set but no ",
              "data patterns supplied");

    util::Rng layout_rng(seed ^ 0xca11c0deULL);
    functions_.resize(spec_.num_functions);
    Pc next_pc = code_base;
    for (std::uint32_t i = 0; i < spec_.num_functions; ++i) {
        Function &fn = functions_[i];
        const std::uint32_t size = static_cast<std::uint32_t>(
            layout_rng.next_in(spec_.min_instrs, spec_.max_instrs));
        fn.base_pc = next_pc;
        next_pc += static_cast<Pc>(size) * kInstrBytes;
        fn.kinds.reserve(size);
        for (std::uint32_t k = 0; k < size; ++k) {
            if (!patterns_.empty() &&
                layout_rng.next_bool(spec_.mem_fraction)) {
                fn.kinds.push_back(layout_rng.next_bool(spec_.store_fraction)
                                       ? trace::InstrKind::Store
                                       : trace::InstrKind::Load);
            } else {
                fn.kinds.push_back(trace::InstrKind::Op);
            }
        }
        if (!patterns_.empty()) {
            fn.pattern = static_cast<int>(
                layout_rng.next_below(patterns_.size()));
        }
        // Callees: locality-biased — mostly the near neighbourhood,
        // with occasional long jumps that make the walk drift.
        fn.callees.reserve(spec_.fanout);
        for (std::uint32_t c = 0; c < spec_.fanout; ++c) {
            std::uint32_t callee;
            if (layout_rng.next_bool(spec_.locality) &&
                spec_.num_functions > 1) {
                const std::uint64_t span = 2ULL * spec_.neighbourhood + 1;
                const std::int64_t offset =
                    static_cast<std::int64_t>(
                        layout_rng.next_below(span)) -
                    spec_.neighbourhood;
                std::int64_t target = static_cast<std::int64_t>(i) + offset;
                const auto n =
                    static_cast<std::int64_t>(spec_.num_functions);
                target = ((target % n) + n) % n;
                callee = static_cast<std::uint32_t>(target);
            } else {
                callee = static_cast<std::uint32_t>(
                    layout_rng.next_below(spec_.num_functions));
            }
            fn.callees.push_back(callee);
        }
    }
    code_bytes_ = next_pc - code_base;

    start_run();
}

void
CallGraphProgram::start_run()
{
    run_rng_ = util::Rng(seed_ ^ 0x0a1c5eedULL);
    enter(0);
}

void
CallGraphProgram::enter(std::uint32_t function)
{
    current_ = function;
    repeats_left_ = static_cast<std::uint32_t>(
        run_rng_.next_in(spec_.repeat_min, spec_.repeat_max));
    instr_idx_ = 0;
}

bool
CallGraphProgram::next(trace::MicroOp &op)
{
    const Function *fn = &functions_[current_];
    while (instr_idx_ >= fn->kinds.size()) {
        if (repeats_left_ > 1) {
            --repeats_left_;
            instr_idx_ = 0;
        } else {
            const auto &callees = fn->callees;
            const std::uint32_t nxt =
                callees.empty()
                    ? static_cast<std::uint32_t>(run_rng_.next_below(
                          functions_.size()))
                    : callees[run_rng_.next_below(callees.size())];
            enter(nxt);
        }
        fn = &functions_[current_];
    }

    op.pc = fn->base_pc + static_cast<Pc>(instr_idx_) * kInstrBytes;
    op.kind = fn->kinds[instr_idx_];
    if (op.kind == trace::InstrKind::Op) {
        op.addr = kInvalidAddr;
    } else {
        op.addr =
            patterns_[static_cast<std::size_t>(fn->pattern)]->next();
    }
    ++instr_idx_;
    return true;
}

std::size_t
CallGraphProgram::next_batch(trace::MicroOp *out, std::size_t max)
{
    // Block-filling form of next(): drain the current function body in
    // a tight loop (identical pattern draws); the repeat/call
    // transitions reuse next() itself, keeping the walk RNG draw order
    // exactly the one-op path's.
    std::size_t got = 0;
    while (got < max) {
        const Function &fn = functions_[current_];
        if (instr_idx_ < fn.kinds.size()) {
            DataPattern *pattern =
                fn.pattern >= 0
                    ? patterns_[static_cast<std::size_t>(fn.pattern)].get()
                    : nullptr;
            const std::size_t end = fn.kinds.size();
            while (got < max && instr_idx_ < end) {
                trace::MicroOp &op = out[got++];
                op.pc =
                    fn.base_pc + static_cast<Pc>(instr_idx_) * kInstrBytes;
                op.kind = fn.kinds[instr_idx_];
                op.addr = op.kind == trace::InstrKind::Op
                              ? kInvalidAddr
                              : pattern->next();
                ++instr_idx_;
            }
            continue;
        }
        if (!next(out[got]))
            break;
        ++got;
    }
    return got;
}

void
CallGraphProgram::reset()
{
    for (auto &p : patterns_)
        p->reset();
    start_run();
}

} // namespace leakbound::workload
