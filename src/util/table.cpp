/**
 * @file
 * Implementation of the ASCII table renderer.
 */

#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/csv.hpp"
#include "util/logging.hpp"

namespace leakbound::util {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::set_header(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::add_row(std::vector<std::string> row)
{
    LEAKBOUND_ASSERT(header_.empty() || row.size() == header_.size(),
                     "table row width ", row.size(),
                     " != header width ", header_.size());
    rows_.push_back(std::move(row));
}

void
Table::add_separator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    // Compute per-column widths over header + all rows.
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&widths](const std::vector<std::string> &row) {
        if (row.empty())
            return;
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    std::size_t total = 0;
    for (auto w : widths)
        total += w + 3;

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit_row = [&os, &widths](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << row[i];
            if (i + 1 < row.size()) {
                for (std::size_t pad = row[i].size(); pad < widths[i];
                     ++pad) {
                    os << ' ';
                }
                os << " | ";
            }
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit_row(header_);
        os << std::string(total > 3 ? total - 3 : total, '-') << '\n';
    }
    for (const auto &row : rows_) {
        if (row.empty())
            os << std::string(total > 3 ? total - 3 : total, '-') << '\n';
        else
            emit_row(row);
    }
    return os.str();
}

Status
Table::write_csv(const std::string &path) const
{
    CsvWriter csv(path);
    if (!header_.empty())
        csv.write_row(header_);
    for (const auto &row : rows_) {
        if (!row.empty())
            csv.write_row(row);
    }
    return csv.status();
}

void
Table::print() const
{
    const std::string text = render();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fputc('\n', stdout);
}

} // namespace leakbound::util
