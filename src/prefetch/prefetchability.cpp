/**
 * @file
 * Implementation of the Figure 9 prefetchability analysis.
 */

#include "prefetch/prefetchability.hpp"

#include "util/logging.hpp"

namespace leakbound::prefetch {

using interval::IntervalKind;
using interval::PrefetchClass;

PrefetchabilityReport
analyze_prefetchability(const interval::IntervalHistogramSet &set,
                        const core::InflectionPoints &points)
{
    PrefetchabilityReport report;

    const Cycles a = points.active_drowsy;
    const Cycles b = points.drowsy_sleep;

    set.for_each_cell([&](const interval::CellRef &cell) {
        if (cell.kind != IntervalKind::Inner)
            return;
        // Cells never straddle a or b: both are histogram edges.
        BucketBreakdown *bucket;
        if (cell.lower > b)
            bucket = &report.sleep_bucket;
        else if (cell.lower > a)
            bucket = &report.drowsy_bucket;
        else
            bucket = &report.short_bucket;

        // Intervals of length <= a are always kept active; the paper
        // counts them as non-prefetchable regardless of coverage.
        PrefetchClass pf = cell.pf;
        if (bucket == &report.short_bucket)
            pf = PrefetchClass::NonPrefetchable;

        switch (pf) {
          case PrefetchClass::NextLine:
            bucket->next_line += cell.count;
            break;
          case PrefetchClass::Stride:
            bucket->stride += cell.count;
            break;
          case PrefetchClass::NonPrefetchable:
            bucket->non_prefetchable += cell.count;
            break;
        }
    });

    const std::uint64_t total = report.short_bucket.total() +
                                report.drowsy_bucket.total() +
                                report.sleep_bucket.total();
    if (total > 0) {
        const double n = static_cast<double>(total);
        const std::uint64_t nl = report.drowsy_bucket.next_line +
                                 report.sleep_bucket.next_line;
        const std::uint64_t st = report.drowsy_bucket.stride +
                                 report.sleep_bucket.stride;
        report.next_line_fraction = static_cast<double>(nl) / n;
        report.stride_fraction = static_cast<double>(st) / n;
        report.total_fraction =
            static_cast<double>(nl + st) / n;
    }
    return report;
}

} // namespace leakbound::prefetch
