# Empty dependencies file for extension_l2_bound.
# This may be replaced when dependencies are built.
