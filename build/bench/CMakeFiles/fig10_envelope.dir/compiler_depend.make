# Empty compiler generated dependencies file for fig10_envelope.
# This may be replaced when dependencies are built.
