/**
 * @file
 * Implementation of the next-line coverage monitor.
 */

#include "prefetch/next_line.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace leakbound::prefetch {

NextLineMonitor::NextLineMonitor(std::size_t expected_blocks)
    : last_access_(expected_blocks * 2)
{
}

bool
NextLineMonitor::covers(Addr block, Cycle open_since) const
{
    return covers(block, open_since,
                  std::numeric_limits<Cycle>::max(), 0);
}

void
NextLineMonitor::append_state(std::vector<std::uint64_t> &out,
                              Cycle now) const
{
    // FlatMap slot order depends on insertion history, so sort by key.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
    entries.reserve(last_access_.size());
    last_access_.for_each([&](std::uint64_t block, std::uint64_t when) {
        entries.emplace_back(block, now - when);
    });
    std::sort(entries.begin(), entries.end());
    out.push_back(entries.size());
    for (const auto &[block, age] : entries) {
        out.push_back(block);
        out.push_back(age);
    }
}

void
NextLineMonitor::warp(Cycles delta)
{
    last_access_.for_each_mut(
        [delta](std::uint64_t, std::uint64_t &when) { when += delta; });
}

void
NextLineMonitor::reset()
{
    last_access_.clear();
    covered_ = 0;
}

} // namespace leakbound::prefetch
