/**
 * @file
 * Implementation of the ITRS projection table.
 */

#include "power/itrs.hpp"

#include <algorithm>
#include <cmath>

namespace leakbound::power {

const std::vector<ItrsPoint> &
itrs_projection()
{
    // Digitized from the trend paper Fig. 1 plots: leakage grows from a
    // small fraction of total power in 1999 to rough parity with
    // dynamic power by 2009 as Vth scales down.
    static const std::vector<ItrsPoint> points = {
        {1999, 0.06}, {2001, 0.12}, {2003, 0.22},
        {2005, 0.38}, {2007, 0.52}, {2009, 0.64},
    };
    return points;
}

double
itrs_leakage_fraction(double year)
{
    const auto &pts = itrs_projection();
    if (year <= pts.front().year)
        return pts.front().leakage_fraction;
    if (year >= pts.back().year)
        return pts.back().leakage_fraction;
    // Piecewise linear between tabulated points; the biennial spacing
    // makes anything fancier pointless.
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (year <= pts[i].year) {
            const double x0 = pts[i - 1].year;
            const double x1 = pts[i].year;
            const double y0 = pts[i - 1].leakage_fraction;
            const double y1 = pts[i].leakage_fraction;
            return y0 + (y1 - y0) * (year - x0) / (x1 - x0);
        }
    }
    return pts.back().leakage_fraction;
}

} // namespace leakbound::power
