file(REMOVE_RECURSE
  "CMakeFiles/test_generalized_model.dir/test_generalized_model.cpp.o"
  "CMakeFiles/test_generalized_model.dir/test_generalized_model.cpp.o.d"
  "test_generalized_model"
  "test_generalized_model.pdb"
  "test_generalized_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generalized_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
