# Empty dependencies file for ablation_l2_latency.
# This may be replaced when dependencies are built.
