/**
 * @file
 * PC-indexed stride predictor (Farkas et al. [3], as used by the
 * paper, Section 5.1): per static load, a miss/access is considered
 * stride-covered once the same stride has been observed at least
 * twice and the current address extends the run.
 *
 * Modeled as a direct-mapped hardware table with PC tags (capacity
 * collisions behave like the real structure), plus an "ideal"
 * unbounded mode for limit studies.
 */

#ifndef LEAKBOUND_PREFETCH_STRIDE_HPP
#define LEAKBOUND_PREFETCH_STRIDE_HPP

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace leakbound::prefetch {

/** Configuration of the stride table. */
struct StrideConfig
{
    std::uint32_t table_entries = 4096; ///< power of two; 0 = unbounded
    std::uint32_t confirmations = 2;    ///< strides seen before trusting
};

/**
 * Stride predictor.  access() returns whether the access was covered
 * *before* learning from it (so the prediction is causally honest).
 */
class StridePredictor
{
  public:
    explicit StridePredictor(const StrideConfig &config = StrideConfig{});

    /**
     * Observe a load/store by instruction @p pc to byte address
     * @p addr.  @return true when a twice-confirmed stride predicted
     * an address in the same cache line of @p line_bytes granularity.
     */
    bool access(Pc pc, Addr addr, std::uint32_t line_bytes = 64);

    /** Covered accesses so far. */
    std::uint64_t covered() const { return covered_; }

    /** Total accesses so far. */
    std::uint64_t observed() const { return observed_; }

    /** Forget everything. */
    void reset();

    /**
     * Append the raw table (tags, last addresses, strides, confidence)
     * to @p out for the analytic state signature.  The table holds no
     * timestamps, so no age translation or warp is needed; the
     * covered()/observed() counters are excluded (reporting only).
     */
    void append_state(std::vector<std::uint64_t> &out) const;

  private:
    struct Entry
    {
        Pc tag = 0;
        Addr last_addr = 0;
        std::int64_t stride = 0;
        std::uint32_t confidence = 0;
        bool valid = false;
    };

    Entry &slot_for(Pc pc);

    StrideConfig config_;
    std::vector<Entry> table_;
    std::uint64_t covered_ = 0;
    std::uint64_t observed_ = 0;
};

} // namespace leakbound::prefetch

#endif // LEAKBOUND_PREFETCH_STRIDE_HPP
