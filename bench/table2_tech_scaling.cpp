/**
 * @file
 * Reproduces paper Table 2: optimal leakage saving percentages of
 * OPT-Drowsy, OPT-Sleep and OPT-Hybrid as the implementation
 * technology scales 70nm -> 180nm, for both L1 caches (suite
 * averages), via the generalized model of Section 3.3.
 *
 * Paper shape: OPT-Hybrid grows monotonically as technology shrinks;
 * at 180nm drowsy is the dominant technique, at <=130nm sleep is.
 */

#include "bench_common.hpp"
#include "core/generalized_model.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("table2_tech_scaling",
                        "Table 2: optimal savings vs technology node");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);

    struct PaperRow
    {
        const char *drowsy_i, *sleep_i, *hybrid_i;
        const char *drowsy_d, *sleep_d, *hybrid_d;
    };
    // Paper Table 2 values per node, I-cache then D-cache.
    const PaperRow paper[] = {
        {"66.4", "95.2", "96.4", "66.1", "98.4", "99.1"}, // 70nm
        {"66.6", "85.0", "93.7", "66.6", "96.9", "98.1"}, // 100nm
        {"66.6", "80.6", "91.3", "66.7", "95.3", "97.3"}, // 130nm
        {"66.7", "61.5", "67.1", "66.7", "63.2", "67.3"}, // 180nm
    };

    const auto &nodes = power::all_nodes();

    for (CacheSide side : {CacheSide::Instruction, CacheSide::Data}) {
        const bool icache = side == CacheSide::Instruction;
        util::Table table(icache ? "Table 2 (I-Cache): optimal savings "
                                   "with technology scaling"
                                 : "Table 2 (D-Cache): optimal savings "
                                   "with technology scaling");
        table.set_header({"technology", "Vdd (V)", "Vth (V)",
                          "OPT-Drowsy", "OPT-Sleep", "OPT-Hybrid",
                          "paper (D/S/H)"});

        // Evaluate the whole (node x benchmark) generalized-model grid
        // on the --jobs pool; results come back row-major in node
        // order, so the merge below matches the serial nesting.
        const auto grid = util::parallel_map_ordered(
            nodes.size() * runs.size(), suite_jobs(cli),
            [&](std::size_t i) {
                core::GeneralizedModelInputs inputs;
                inputs.tech = power::node_params(nodes[i / runs.size()]);
                return core::run_generalized_model(
                    inputs, population(runs[i % runs.size()], side));
            });

        std::size_t row_idx = 0;
        for (power::TechNode node : power::all_nodes()) {
            core::GeneralizedModelInputs inputs;
            inputs.tech = power::node_params(node);

            // Pool the generalized model's three bounds over the suite.
            std::vector<core::SavingsResult> drowsy, sleep, hybrid;
            for (std::size_t r = 0; r < runs.size(); ++r) {
                const auto &result = grid[row_idx * runs.size() + r];
                drowsy.push_back(result.opt_drowsy);
                sleep.push_back(result.opt_sleep);
                hybrid.push_back(result.opt_hybrid);
            }
            const PaperRow &p = paper[row_idx++];
            table.add_row(
                {inputs.tech.name, util::format_fixed(inputs.tech.vdd, 1),
                 util::format_fixed(inputs.tech.vth, 4),
                 pct(core::combine_results(drowsy).savings),
                 pct(core::combine_results(sleep).savings),
                 pct(core::combine_results(hybrid).savings),
                 std::string(icache ? p.drowsy_i : p.drowsy_d) + "/" +
                     (icache ? p.sleep_i : p.sleep_d) + "/" +
                     (icache ? p.hybrid_i : p.hybrid_d)});
        }
        emit(table, cli,
             icache ? "table2_icache" : "table2_dcache");
    }

    std::printf(
        "paper shape: savings grow as technology scales down (the\n"
        "drowsy-sleep point collapses from 103K to 1057 cycles); at\n"
        "180nm OPT-Drowsy beats OPT-Sleep, everywhere else sleep\n"
        "leads.\n");
    return bench::finish(cli);
}
