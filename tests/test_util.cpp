/**
 * @file
 * Unit tests for the util module: accumulators, histograms, the flat
 * map, RNG determinism, string formatting, tables, CSV and CLI.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/csv.hpp"
#include "util/flat_map.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace lb = leakbound;
using namespace lb::util;

// ---------------------------------------------------------------- stats

TEST(Accumulator, EmptyDefaults)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.sum(), 0.0);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MeanMinMax)
{
    Accumulator a;
    for (double x : {3.0, 1.0, 4.0, 1.0, 5.0})
        a.add(x);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.sum(), 14.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.8);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Accumulator, VarianceMatchesDirectFormula)
{
    Accumulator a;
    const double xs[] = {2, 4, 4, 4, 5, 5, 7, 9};
    for (double x : xs)
        a.add(x);
    // Known population variance of this classic data set is 4.
    EXPECT_NEAR(a.variance(), 4.0, 1e-12);
    EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, MergeEqualsSequential)
{
    Accumulator left, right, all;
    for (int i = 0; i < 100; ++i) {
        const double x = i * 0.37;
        (i % 2 ? left : right).add(x);
        all.add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(StatGroup, RegisterIncDump)
{
    StatGroup g;
    const auto hits = g.add("cache.hits", "hit count");
    const auto misses = g.add("cache.misses", "miss count");
    g.inc(hits);
    g.inc(hits, 4);
    g.inc(misses, 2);
    EXPECT_EQ(g.get(hits), 5.0);
    EXPECT_EQ(g.get(misses), 2.0);
    EXPECT_NE(g.find("cache.hits"), nullptr);
    EXPECT_EQ(g.find("nope"), nullptr);
    EXPECT_NE(g.dump().find("cache.hits"), std::string::npos);
    g.reset_values();
    EXPECT_EQ(g.get(hits), 0.0);
}

TEST(StatGroup, AddIsIdempotentByName)
{
    StatGroup g;
    const auto a = g.add("x", "first");
    const auto b = g.add("x", "second");
    EXPECT_EQ(a, b);
}

// ------------------------------------------------------------ histogram

TEST(Histogram, BinIndexAndEdges)
{
    Histogram h({0, 10, 100});
    EXPECT_EQ(h.num_bins(), 3u);
    EXPECT_EQ(h.bin_index(0), 0u);
    EXPECT_EQ(h.bin_index(9), 0u);
    EXPECT_EQ(h.bin_index(10), 1u);
    EXPECT_EQ(h.bin_index(99), 1u);
    EXPECT_EQ(h.bin_index(100), 2u);
    EXPECT_EQ(h.bin_index(~0ULL), 2u);
    EXPECT_EQ(h.lower_edge(1), 10u);
    EXPECT_EQ(h.upper_edge(1), 100u);
    EXPECT_EQ(h.upper_edge(2), ~0ULL);
}

TEST(Histogram, CountsAndSums)
{
    Histogram h({0, 10, 100});
    h.add(3);
    h.add(7);
    h.add_many(50, 4);
    h.add(1000);
    EXPECT_EQ(h.bin(0).count, 2u);
    EXPECT_EQ(h.bin(0).sum, 10u);
    EXPECT_EQ(h.bin(1).count, 4u);
    EXPECT_EQ(h.bin(1).sum, 200u);
    EXPECT_EQ(h.bin(2).count, 1u);
    EXPECT_EQ(h.total_count(), 7u);
    EXPECT_EQ(h.total_sum(), 1210u);
}

TEST(Histogram, MergePreservesTotals)
{
    Histogram a({0, 5});
    Histogram b({0, 5});
    a.add(1);
    b.add(7);
    b.add(2);
    a.merge(b);
    EXPECT_EQ(a.total_count(), 3u);
    EXPECT_EQ(a.total_sum(), 10u);
}

TEST(Histogram, Log2EdgesCoverRange)
{
    const auto edges = Histogram::log2_edges(1000);
    EXPECT_EQ(edges.front(), 0u);
    EXPECT_EQ(edges.back(), 1000u);
    for (std::size_t i = 1; i < edges.size(); ++i)
        EXPECT_LT(edges[i - 1], edges[i]);
}

// ------------------------------------------------------------- flat map

TEST(FlatMap, PutGetOverwrite)
{
    FlatMap m(16);
    std::uint64_t v = 0;
    EXPECT_FALSE(m.get(42, v));
    m.put(42, 7);
    EXPECT_TRUE(m.get(42, v));
    EXPECT_EQ(v, 7u);
    m.put(42, 9);
    EXPECT_TRUE(m.get(42, v));
    EXPECT_EQ(v, 9u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap, GrowthKeepsAllKeys)
{
    FlatMap m(16);
    for (std::uint64_t k = 0; k < 10'000; ++k)
        m.put(k * 2654435761ULL, k);
    EXPECT_EQ(m.size(), 10'000u);
    for (std::uint64_t k = 0; k < 10'000; ++k) {
        std::uint64_t v = ~0ULL;
        ASSERT_TRUE(m.get(k * 2654435761ULL, v));
        EXPECT_EQ(v, k);
    }
}

TEST(FlatMap, GetOrAndClear)
{
    FlatMap m;
    EXPECT_EQ(m.get_or(5, 123), 123u);
    m.put(5, 6);
    EXPECT_EQ(m.get_or(5, 123), 6u);
    m.clear();
    EXPECT_EQ(m.size(), 0u);
    EXPECT_FALSE(m.contains(5));
}

// ------------------------------------------------------------------ rng

TEST(Rng, DeterministicBySeed)
{
    Rng a(123), b(123), c(124);
    bool all_equal = true;
    bool any_diff = false;
    for (int i = 0; i < 100; ++i) {
        const auto x = a.next_u64();
        all_equal &= (x == b.next_u64());
        any_diff |= (x != c.next_u64());
    }
    EXPECT_TRUE(all_equal);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected)
{
    Rng r(7);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
        const auto v = r.next_in(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformityRough)
{
    Rng r(99);
    int buckets[10] = {};
    const int n = 100'000;
    for (int i = 0; i < n; ++i)
        ++buckets[r.next_below(10)];
    for (int b : buckets) {
        EXPECT_GT(b, n / 10 - n / 50);
        EXPECT_LT(b, n / 10 + n / 50);
    }
}

// --------------------------------------------------------------- string

TEST(StringUtils, Percent)
{
    EXPECT_EQ(format_percent(0.964), "96.4%");
    EXPECT_EQ(format_percent(1.0, 0), "100%");
    EXPECT_EQ(format_percent(0.03617, 2), "3.62%");
}

TEST(StringUtils, Commas)
{
    EXPECT_EQ(format_commas(0), "0");
    EXPECT_EQ(format_commas(999), "999");
    EXPECT_EQ(format_commas(1000), "1,000");
    EXPECT_EQ(format_commas(103084), "103,084");
    EXPECT_EQ(format_commas(1234567890), "1,234,567,890");
}

TEST(StringUtils, Bytes)
{
    EXPECT_EQ(format_bytes(64 * 1024), "64KiB");
    EXPECT_EQ(format_bytes(2 * 1024 * 1024), "2MiB");
    EXPECT_EQ(format_bytes(100), "100B");
}

TEST(StringUtils, SplitTrim)
{
    const auto fields = split("a,b,,c", ',');
    ASSERT_EQ(fields.size(), 4u);
    EXPECT_EQ(fields[2], "");
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_TRUE(starts_with("leakbound", "leak"));
    EXPECT_FALSE(starts_with("leak", "leakbound"));
    EXPECT_EQ(to_lower("AbC"), "abc");
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns)
{
    Table t("demo");
    t.set_header({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_separator();
    t.add_row({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    EXPECT_EQ(t.num_rows(), 3u);
}

// ------------------------------------------------------------------ csv

TEST(Csv, EscapesAndWrites)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");

    const std::string path = ::testing::TempDir() + "lb_csv_test.csv";
    {
        CsvWriter w(path);
        w.write_row({"x", "y,z"});
        w.write_row({"1", "2"});
        EXPECT_TRUE(w.wrote_anything());
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "x,\"y,z\"");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
    std::remove(path.c_str());
}

// ------------------------------------------------------------------ cli

TEST(Cli, DefaultsAndParsing)
{
    Cli cli("prog", "test");
    cli.add_flag("count", "a number", "42");
    cli.add_flag("name", "a string", "abc");
    cli.add_flag("flag", "a bool", "false");

    const char *argv[] = {"prog", "--count=7", "--flag", "--name", "xyz"};
    cli.parse(5, const_cast<char **>(argv));
    EXPECT_EQ(cli.get_u64("count"), 7u);
    EXPECT_EQ(cli.get("name"), "xyz");
    EXPECT_TRUE(cli.get_bool("flag"));
}

TEST(Cli, UnknownFlagIsFatal)
{
    Cli cli("prog", "test");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(cli.parse(2, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(Cli, BadNumberIsFatal)
{
    Cli cli("prog", "test");
    cli.add_flag("n", "number", "1");
    const char *argv[] = {"prog", "--n=xyz"};
    cli.parse(2, const_cast<char **>(argv));
    EXPECT_EXIT((void)cli.get_u64("n"), ::testing::ExitedWithCode(2),
                "unsigned integer");
}

TEST(Cli, SnapshotReportsCurrentValues)
{
    Cli cli("prog", "test");
    cli.add_flag("jobs", "workers", "0");
    cli.add_flag("alpha", "first", "a");
    const char *argv[] = {"prog", "--jobs=4"};
    cli.parse(2, const_cast<char **>(argv));

    const auto snap = cli.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    // Sorted by name (std::map order).
    EXPECT_EQ(snap[0].first, "alpha");
    EXPECT_EQ(snap[0].second, "a");
    EXPECT_EQ(snap[1].first, "jobs");
    EXPECT_EQ(snap[1].second, "4");
}

// ----------------------------------------------------------------- json

TEST(JsonWriter, BuildsNestedDocuments)
{
    JsonWriter w;
    w.begin_object();
    w.key("name").value("suite");
    w.key("jobs").value(std::uint64_t{8});
    w.key("ok").value(true);
    w.key("ratio").value(0.5);
    w.key("rows").begin_array();
    w.value(std::vector<std::string>{"a", "b"});
    w.begin_object().key("n").null().end_object();
    w.end_array();
    w.end_object();

    EXPECT_EQ(w.str(),
              "{\n"
              "  \"name\": \"suite\",\n"
              "  \"jobs\": 8,\n"
              "  \"ok\": true,\n"
              "  \"ratio\": 0.5,\n"
              "  \"rows\": [\n"
              "    [\n"
              "      \"a\",\n"
              "      \"b\"\n"
              "    ],\n"
              "    {\n"
              "      \"n\": null\n"
              "    }\n"
              "  ]\n"
              "}");
}

TEST(JsonWriter, EscapesStrings)
{
    EXPECT_EQ(json_escape("plain"), "plain");
    EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
    EXPECT_EQ(json_escape("back\\slash"), "back\\\\slash");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");

    JsonWriter w;
    w.begin_object();
    w.key("ke\"y").value("va\nl");
    w.end_object();
    EXPECT_EQ(w.str(), "{\n  \"ke\\\"y\": \"va\\nl\"\n}");
}

TEST(JsonWriter, EmptyContainersStayCompact)
{
    JsonWriter w;
    w.begin_object();
    w.key("empty_list").begin_array().end_array();
    w.key("empty_obj").begin_object().end_object();
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\n  \"empty_list\": [],\n  \"empty_obj\": {}\n}");
}

TEST(JsonWriter, WriteTextFileRoundTrips)
{
    const std::string path =
        ::testing::TempDir() + "lb_json_report.json";
    ASSERT_TRUE(write_text_file(path, "{\"k\": 1}\n").ok());
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    EXPECT_EQ(contents, "{\"k\": 1}\n");
    std::remove(path.c_str());
}
