/**
 * @file
 * Implementation of the streaming JSON writer.
 */

#include "util/json.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace leakbound::util {

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter() = default;

void
JsonWriter::newline_indent()
{
    out_ << '\n';
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::before_value()
{
    if (scopes_.empty())
        return; // root value
    if (scopes_.back() == Scope::Object) {
        LEAKBOUND_ASSERT(pending_key_,
                         "JSON object value emitted without a key");
        pending_key_ = false;
        return; // key() already handled comma/indent
    }
    if (has_entries_.back())
        out_ << ',';
    newline_indent();
    has_entries_.back() = true;
}

JsonWriter &
JsonWriter::begin_object()
{
    before_value();
    out_ << '{';
    scopes_.push_back(Scope::Object);
    has_entries_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    LEAKBOUND_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Object,
                     "end_object with no open object");
    LEAKBOUND_ASSERT(!pending_key_, "end_object after a dangling key");
    const bool had = has_entries_.back();
    scopes_.pop_back();
    has_entries_.pop_back();
    if (had)
        newline_indent();
    out_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    before_value();
    out_ << '[';
    scopes_.push_back(Scope::Array);
    has_entries_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    LEAKBOUND_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Array,
                     "end_array with no open array");
    const bool had = has_entries_.back();
    scopes_.pop_back();
    has_entries_.pop_back();
    if (had)
        newline_indent();
    out_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    LEAKBOUND_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Object,
                     "JSON key outside an object");
    LEAKBOUND_ASSERT(!pending_key_, "two JSON keys in a row");
    if (has_entries_.back())
        out_ << ',';
    newline_indent();
    has_entries_.back() = true;
    out_ << '"' << json_escape(name) << "\": ";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    before_value();
    out_ << '"' << json_escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    before_value();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    before_value();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    before_value();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    before_value();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    before_value();
    out_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::vector<std::string> &v)
{
    begin_array();
    for (const std::string &s : v)
        value(s);
    return end_array();
}

bool
JsonValue::bool_value() const
{
    LEAKBOUND_ASSERT(is_bool(), "bool_value() on a non-bool JSON node");
    return bool_;
}

double
JsonValue::number_value() const
{
    LEAKBOUND_ASSERT(is_number(), "number_value() on a non-number node");
    return number_;
}

std::uint64_t
JsonValue::u64_value() const
{
    LEAKBOUND_ASSERT(is_u64(), "u64_value() on a non-integral node");
    return u64_;
}

const std::string &
JsonValue::string_value() const
{
    LEAKBOUND_ASSERT(is_string(), "string_value() on a non-string node");
    return string_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    LEAKBOUND_ASSERT(is_array(), "array() on a non-array JSON node");
    return array_;
}

const std::vector<JsonValue::Member> &
JsonValue::object() const
{
    LEAKBOUND_ASSERT(is_object(), "object() on a non-object JSON node");
    return object_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    LEAKBOUND_ASSERT(is_object(), "find() on a non-object JSON node");
    for (const Member &member : object_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

JsonValue
JsonValue::make_null()
{
    return JsonValue();
}

JsonValue
JsonValue::make_bool(bool v)
{
    JsonValue out;
    out.kind_ = Kind::Bool;
    out.bool_ = v;
    return out;
}

JsonValue
JsonValue::make_number(double v)
{
    JsonValue out;
    out.kind_ = Kind::Number;
    out.number_ = v;
    return out;
}

JsonValue
JsonValue::make_u64(std::uint64_t v)
{
    JsonValue out;
    out.kind_ = Kind::Number;
    out.number_ = static_cast<double>(v);
    out.exact_u64_ = true;
    out.u64_ = v;
    return out;
}

JsonValue
JsonValue::make_string(std::string v)
{
    JsonValue out;
    out.kind_ = Kind::String;
    out.string_ = std::move(v);
    return out;
}

JsonValue
JsonValue::make_array(std::vector<JsonValue> v)
{
    JsonValue out;
    out.kind_ = Kind::Array;
    out.array_ = std::move(v);
    return out;
}

JsonValue
JsonValue::make_object(std::vector<Member> v)
{
    JsonValue out;
    out.kind_ = Kind::Object;
    out.object_ = std::move(v);
    return out;
}

namespace {

/**
 * Recursive-descent parser over a bounded view.  Every entry point
 * checks remaining input before consuming, and parse errors carry the
 * byte offset so protocol logs can point at the exact defect.
 */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    Expected<JsonValue> parse_document()
    {
        skip_ws();
        JsonValue root;
        if (Status s = parse_value(root, 1); !s.ok())
            return s;
        skip_ws();
        if (pos_ != text_.size())
            return fail("trailing garbage after JSON document");
        return root;
    }

  private:
    Status fail(const std::string &what) const
    {
        return Status(ErrorKind::CorruptData,
                      what + " at offset " + std::to_string(pos_));
    }

    void skip_ws()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool peek(char &c) const
    {
        if (pos_ >= text_.size())
            return false;
        c = text_[pos_];
        return true;
    }

    bool consume_literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    Status parse_value(JsonValue &out, std::size_t depth)
    {
        if (depth > kJsonMaxDepth)
            return fail("JSON nested deeper than " +
                        std::to_string(kJsonMaxDepth));
        char c;
        if (!peek(c))
            return fail("unexpected end of JSON input");
        switch (c) {
          case '{': return parse_object(out, depth);
          case '[': return parse_array(out, depth);
          case '"': {
            std::string s;
            if (Status st = parse_string(s); !st.ok())
                return st;
            out = JsonValue::make_string(std::move(s));
            return Status();
          }
          case 't':
            if (!consume_literal("true"))
                return fail("bad literal");
            out = JsonValue::make_bool(true);
            return Status();
          case 'f':
            if (!consume_literal("false"))
                return fail("bad literal");
            out = JsonValue::make_bool(false);
            return Status();
          case 'n':
            if (!consume_literal("null"))
                return fail("bad literal");
            out = JsonValue::make_null();
            return Status();
          default: return parse_number(out);
        }
    }

    Status parse_object(JsonValue &out, std::size_t depth)
    {
        ++pos_; // '{'
        std::vector<JsonValue::Member> members;
        skip_ws();
        char c;
        if (peek(c) && c == '}') {
            ++pos_;
            out = JsonValue::make_object(std::move(members));
            return Status();
        }
        for (;;) {
            skip_ws();
            std::string key;
            if (Status st = parse_string(key); !st.ok())
                return st;
            skip_ws();
            if (!peek(c) || c != ':')
                return fail("expected ':' in object");
            ++pos_;
            skip_ws();
            JsonValue value;
            if (Status st = parse_value(value, depth + 1); !st.ok())
                return st;
            members.emplace_back(std::move(key), std::move(value));
            skip_ws();
            if (!peek(c))
                return fail("unterminated object");
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                out = JsonValue::make_object(std::move(members));
                return Status();
            }
            return fail("expected ',' or '}' in object");
        }
    }

    Status parse_array(JsonValue &out, std::size_t depth)
    {
        ++pos_; // '['
        std::vector<JsonValue> elements;
        skip_ws();
        char c;
        if (peek(c) && c == ']') {
            ++pos_;
            out = JsonValue::make_array(std::move(elements));
            return Status();
        }
        for (;;) {
            skip_ws();
            JsonValue value;
            if (Status st = parse_value(value, depth + 1); !st.ok())
                return st;
            elements.push_back(std::move(value));
            skip_ws();
            if (!peek(c))
                return fail("unterminated array");
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                out = JsonValue::make_array(std::move(elements));
                return Status();
            }
            return fail("expected ',' or ']' in array");
        }
    }

    Status parse_string(std::string &out)
    {
        char c;
        if (!peek(c) || c != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            c = text_[pos_++];
            if (c == '"')
                return Status();
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("dangling escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                std::uint32_t code;
                if (Status st = parse_hex4(code); !st.ok())
                    return st;
                if (code >= 0xd800 && code <= 0xdbff) {
                    // High surrogate: require the matching low half.
                    if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                        text_[pos_ + 1] != 'u')
                        return fail("unpaired surrogate");
                    pos_ += 2;
                    std::uint32_t low;
                    if (Status st = parse_hex4(low); !st.ok())
                        return st;
                    if (low < 0xdc00 || low > 0xdfff)
                        return fail("bad low surrogate");
                    code = 0x10000 + ((code - 0xd800) << 10) +
                           (low - 0xdc00);
                } else if (code >= 0xdc00 && code <= 0xdfff) {
                    return fail("unpaired surrogate");
                }
                append_utf8(out, code);
                break;
              }
              default: return fail("bad escape character");
            }
        }
        return fail("unterminated string");
    }

    Status parse_hex4(std::uint32_t &out)
    {
        if (pos_ + 4 > text_.size())
            return fail("truncated \\u escape");
        out = 0;
        for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            out <<= 4;
            if (h >= '0' && h <= '9')
                out |= static_cast<std::uint32_t>(h - '0');
            else if (h >= 'a' && h <= 'f')
                out |= static_cast<std::uint32_t>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
                out |= static_cast<std::uint32_t>(h - 'A' + 10);
            else
                return fail("bad hex digit in \\u escape");
        }
        return Status();
    }

    static void append_utf8(std::string &out, std::uint32_t code)
    {
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else if (code < 0x10000) {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
        }
    }

    Status parse_number(JsonValue &out)
    {
        const std::size_t start = pos_;
        bool negative = false;
        bool integral = true;
        if (pos_ < text_.size() && text_[pos_] == '-') {
            negative = true;
            ++pos_;
        }
        auto digits = [this] {
            std::size_t n = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                ++n;
            }
            return n;
        };
        const std::size_t int_digits = digits();
        if (int_digits == 0)
            return fail("expected a JSON value");
        // JSON forbids leading zeros ("01"); strtod would accept them.
        if (int_digits > 1 && text_[start + (negative ? 1 : 0)] == '0')
            return fail("leading zero in number");
        if (pos_ < text_.size() && text_[pos_] == '.') {
            integral = false;
            ++pos_;
            if (digits() == 0)
                return fail("digits required after decimal point");
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            if (digits() == 0)
                return fail("digits required in exponent");
        }
        const std::string token(text_.substr(start, pos_ - start));
        if (integral && !negative) {
            errno = 0;
            char *end = nullptr;
            const std::uint64_t v = std::strtoull(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0') {
                out = JsonValue::make_u64(v);
                return Status();
            }
        }
        errno = 0;
        char *end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            return fail("malformed number");
        out = JsonValue::make_number(v);
        return Status();
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

} // namespace

Expected<JsonValue>
json_parse(std::string_view text)
{
    return JsonParser(text).parse_document();
}

Status
write_text_file(const std::string &path, const std::string &contents)
{
    std::FILE *file = fault::should_fail(fault::Site::OpenWrite, path)
                          ? nullptr
                          : std::fopen(path.c_str(), "wb");
    if (!file)
        return Status(ErrorKind::IoError, "cannot create file: " + path);
    bool wrote = std::fwrite(contents.data(), 1, contents.size(), file) ==
                 contents.size();
    if (wrote && fault::should_fail(fault::Site::ShortWrite, path))
        wrote = false;
    std::fclose(file);
    if (!wrote)
        return Status(ErrorKind::IoError, "short write to " + path);
    return Status();
}

} // namespace leakbound::util
