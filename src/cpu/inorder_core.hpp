/**
 * @file
 * Four-wide in-order timing core (the SimpleScalar/Alpha-21264
 * substitute; DESIGN.md §3).
 *
 * Each cycle the core fetches up to `fetch_width` sequential
 * instructions from a single instruction cache line (one L1I access
 * per fetch group), issues the group's loads/stores to the L1D, and
 * advances time by one cycle plus any miss penalties.  This produces
 * the cycle-stamped per-frame access streams the interval analysis
 * consumes; the limit study needs relative access timing, not precise
 * out-of-order overlap.
 */

#ifndef LEAKBOUND_CPU_INORDER_CORE_HPP
#define LEAKBOUND_CPU_INORDER_CORE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/hierarchy.hpp"
#include "trace/record.hpp"
#include "workload/workload.hpp"

namespace leakbound::cpu {

/** Core parameters. */
struct CoreConfig
{
    std::uint32_t fetch_width = 4; ///< instructions per fetch group
    std::uint32_t instr_bytes = 4; ///< fixed-width Alpha-style encoding
    /**
     * Fraction (percent) of the worst miss penalty in a fetch group
     * that actually stalls the core.  Approximates the out-of-order
     * 21264's ability to overlap misses with useful work and with each
     * other: misses within a group fully overlap (max, not sum), and
     * the remainder is discounted by this factor.  100 = fully
     * blocking, 0 = misses are free.
     */
    std::uint32_t miss_overlap_percent = 50;
};

/**
 * Observer of the core's cache accesses; the experiment glue implements
 * this to drive interval collection and prefetch bookkeeping.
 */
class AccessListener
{
  public:
    virtual ~AccessListener() = default;

    /** A fetch-group access to L1I at @p cycle for the line of @p pc. */
    virtual void on_instr_access(Cycle cycle, Pc pc,
                                 const sim::HierarchyResult &result) = 0;

    /** A load/store by @p pc to @p addr at @p cycle. */
    virtual void on_data_access(Cycle cycle, Pc pc, Addr addr,
                                bool is_store,
                                const sim::HierarchyResult &result) = 0;
};

/** Statistics of one core run. */
struct CoreRunStats
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    std::uint64_t fetch_groups = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Cycles instr_stall_cycles = 0; ///< cycles lost to L1I misses
    Cycles data_stall_cycles = 0;  ///< cycles lost to L1D misses

    /** Instructions per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * The timing core.  Construct, then run() once; the final cycle count
 * is the interval analysis' end-of-run timestamp.
 */
class InOrderCore
{
  public:
    /**
     * @param config core parameters
     * @param hierarchy the memory system (not owned)
     * @param source the workload generating instructions (not owned)
     * @param listener optional access observer (not owned)
     */
    InOrderCore(const CoreConfig &config, sim::Hierarchy *hierarchy,
                workload::Workload *source,
                AccessListener *listener = nullptr);

    /**
     * Observer called between fetch groups with the running stats
     * (stats.cycles is kept current).  Returning false stops the run
     * early; the instruction stream position is preserved, so a later
     * run() continues exactly where this one stopped.
     */
    using GroupHook = std::function<bool(const CoreRunStats &)>;

    /** Execute up to @p max_instructions; returns run statistics. */
    CoreRunStats run(std::uint64_t max_instructions);

    /** run() with a between-groups observer (see GroupHook). */
    CoreRunStats run(std::uint64_t max_instructions,
                     const GroupHook &hook);

    /** Current cycle (end-of-run timestamp after run()). */
    Cycle cycle() const { return cycle_; }

    /**
     * Advance the clock by @p delta without executing anything — the
     * analytic fast path's time warp across skipped periods.
     */
    void warp_cycles(Cycles delta) { cycle_ += delta; }

    /**
     * Append the fetch stage's mutable state (the buffered lookahead
     * instruction) to @p out — part of the analytic state signature.
     */
    void
    append_state(std::vector<std::uint64_t> &out) const
    {
        out.push_back(have_pending_ ? 1 : 0);
        out.push_back(have_pending_ ? pending_.pc : 0);
        out.push_back(have_pending_
                          ? static_cast<std::uint64_t>(pending_.kind)
                          : 0);
        out.push_back(have_pending_ ? pending_.addr : 0);
    }

  private:
    bool fetch_op(trace::MicroOp &op);
    bool peek_op(trace::MicroOp &op);

    CoreConfig config_;
    sim::Hierarchy *hierarchy_;
    workload::Workload *source_;
    AccessListener *listener_;
    Cycle cycle_ = 0;

    trace::MicroOp pending_{};
    bool have_pending_ = false;
};

} // namespace leakbound::cpu

#endif // LEAKBOUND_CPU_INORDER_CORE_HPP
