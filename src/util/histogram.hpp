/**
 * @file
 * Generic edge-list histogram over unsigned 64-bit samples.
 *
 * Bins are half-open ranges defined by a sorted edge list
 * `[e0, e1, ..., en]`: bin i covers `[e_i, e_{i+1})`, with an implicit
 * overflow bin `[e_n, +inf)`.  Each bin tracks both the sample count and
 * the sum of samples, which lets linear functions of the samples be
 * evaluated *exactly* per bin — the key trick exploited by
 * interval::IntervalHistogram (see DESIGN.md §5).
 *
 * Binning goes through a shared immutable util::EdgeIndex (O(1) per
 * sample); histograms built from the same index share it instead of
 * copying the edge list.
 */

#ifndef LEAKBOUND_UTIL_HISTOGRAM_HPP
#define LEAKBOUND_UTIL_HISTOGRAM_HPP

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "util/binary_io.hpp"
#include "util/edge_index.hpp"

namespace leakbound::util {

/** Count and sum of the samples falling into one histogram bin. */
struct HistBin
{
    std::uint64_t count = 0; ///< number of samples in the bin
    std::uint64_t sum = 0;   ///< sum of sample values in the bin
};

/**
 * Edge-list histogram of u64 samples with per-bin count and sum.
 */
class Histogram
{
  public:
    /**
     * Construct from sorted, deduplicated edges.  Edges that are
     * unsorted or duplicated are a caller bug (panics).
     * @param edges bin boundaries; must contain at least one element.
     */
    explicit Histogram(std::vector<std::uint64_t> edges);

    /** Braced-list convenience: `Histogram h({0, 10, 100})`. */
    Histogram(std::initializer_list<std::uint64_t> edges)
        : Histogram(std::vector<std::uint64_t>(edges))
    {
    }

    /**
     * Construct over a prebuilt shared edge index; histograms over the
     * same edge list should share one index (see IntervalHistogramSet).
     */
    explicit Histogram(std::shared_ptr<const EdgeIndex> index);

    /** Add one sample (inline — the simulation kernel's hot sink). */
    void add(std::uint64_t value) { add_many(value, 1); }

    /** Add @p n identical samples of @p value. */
    void
    add_many(std::uint64_t value, std::uint64_t n)
    {
        HistBin &b = bins_[index_->bin_index(value)];
        b.count += n;
        b.sum += value * n;
    }

    /** Merge a histogram with identical edges into this one. */
    void merge(const Histogram &other);

    /**
     * Add @p k copies of the per-bin difference (b - a) into this
     * histogram: `bins += k * (b.bins - a.bins)`.  All three histograms
     * must share one edge list, and @p b must dominate @p a bin-wise
     * (b grew out of a by adding samples).  @p b may alias `this` —
     * each bin is updated independently.
     */
    void add_scaled_diff(const Histogram &b, const Histogram &a,
                         std::uint64_t k);

    /** Number of bins, including the overflow bin. */
    std::size_t num_bins() const { return bins_.size(); }

    /** Lower edge of bin @p i. */
    std::uint64_t lower_edge(std::size_t i) const;

    /**
     * Upper edge of bin @p i (exclusive); UINT64_MAX for the overflow
     * bin.
     */
    std::uint64_t upper_edge(std::size_t i) const;

    /** Bin contents. */
    const HistBin &bin(std::size_t i) const;

    /** Index of the bin containing @p value. */
    std::size_t bin_index(std::uint64_t value) const
    {
        return index_->bin_index(value);
    }

    /** Total samples across all bins. */
    std::uint64_t total_count() const;

    /** Total sum across all bins. */
    std::uint64_t total_sum() const;

    /** The edge list this histogram was built from. */
    const std::vector<std::uint64_t> &edges() const
    {
        return index_->edges();
    }

    /** The shared edge index binning goes through. */
    const std::shared_ptr<const EdgeIndex> &edge_index() const
    {
        return index_;
    }

    /** Render a compact textual summary (one line per non-empty bin). */
    std::string dump() const;

    /**
     * Append the bin contents (count/sum pairs, length-prefixed) to
     * @p w.  The edge list is *not* written — sets of histograms over
     * one edge list store it once (see IntervalHistogramSet).
     */
    void write_bins(BinaryWriter &w) const;

    /**
     * Replace the bin contents with bins read from @p r, written by
     * write_bins over an identical edge list.  @return false (leaving
     * the histogram unspecified) when the input is truncated or its
     * bin count does not match this histogram's edges.
     */
    bool read_bins(BinaryReader &r);

    /**
     * Build a log2-spaced edge list covering [1, max_value], useful for
     * distribution reporting.
     */
    static std::vector<std::uint64_t> log2_edges(std::uint64_t max_value);

  private:
    std::shared_ptr<const EdgeIndex> index_;
    std::vector<HistBin> bins_;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_HISTOGRAM_HPP
