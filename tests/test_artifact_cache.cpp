/**
 * @file
 * Tests of the persistent artifact cache (core/artifact_cache.hpp):
 * serialization round-trip fuzz, fingerprint sensitivity to every
 * config field, corrupt/truncated-entry recovery, the lock protocol,
 * and cold-vs-warm run_suite byte-identity.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "util/random.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;

namespace {

namespace fs = std::filesystem;

/** A fresh, empty cache directory under the test temp dir. */
std::string
fresh_cache_dir(const char *name)
{
    const std::string dir = ::testing::TempDir() + name;
    fs::remove_all(dir);
    return dir;
}

ExperimentConfig
small_config()
{
    ExperimentConfig config;
    config.instructions = 50'000;
    config.extra_edges = standard_extra_edges();
    return config;
}

/** One small real run to serialize (static: simulate once per binary). */
const ExperimentResult &
sample_result()
{
    static const ExperimentResult result = [] {
        auto w = workload::make_benchmark("gzip");
        return run_experiment(*w, small_config());
    }();
    return result;
}

/** As above but with the L2 observation populated. */
const ExperimentResult &
sample_result_l2()
{
    static const ExperimentResult result = [] {
        auto w = workload::make_benchmark("ammp");
        ExperimentConfig config = small_config();
        config.collect_l2 = true;
        return run_experiment(*w, config);
    }();
    return result;
}

/** Draw a fuzzed interval covering all kinds/classes and edge lengths. */
interval::Interval
fuzz_interval(util::Rng &rng)
{
    interval::Interval iv;
    switch (rng.next_below(8)) {
      case 0: iv.length = 0; break;
      case 1: iv.length = 1; break;
      case 2: iv.length = ~static_cast<Cycles>(0) >> 1; break;
      default: iv.length = rng.next_below(1 << 22); break;
    }
    iv.kind = static_cast<interval::IntervalKind>(rng.next_below(4));
    iv.pf = static_cast<interval::PrefetchClass>(rng.next_below(3));
    iv.ends_in_reuse = rng.next_bool(0.5);
    return iv;
}

} // namespace

// ---------------------------------------------------------------------
// Serialization round-trips.
// ---------------------------------------------------------------------

TEST(ArtifactCache, HistogramSetRoundTripFuzz)
{
    // Random populations -> bytes -> set -> bytes must be a fixed
    // point: the second serialization is byte-identical to the first.
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        util::Rng rng(seed * 0x9e37'79b9ULL);
        std::vector<Cycles> extras;
        for (std::size_t i = rng.next_below(6); i > 0; --i)
            extras.push_back(rng.next_below(1 << 20));
        auto set =
            interval::IntervalHistogramSet::with_default_edges(extras);
        const std::size_t n = 100 + rng.next_below(2000);
        for (std::size_t i = 0; i < n; ++i)
            set.add(fuzz_interval(rng));
        set.set_run_info(512 + rng.next_below(4096),
                         1 + rng.next_u64() % (1ULL << 40));

        util::BinaryWriter w;
        set.serialize(w);
        const std::string bytes = w.take();

        util::BinaryReader r(bytes);
        auto restored = interval::IntervalHistogramSet::deserialize(r);
        ASSERT_TRUE(restored.has_value()) << "seed " << seed;
        EXPECT_TRUE(r.at_end()) << "seed " << seed;

        util::BinaryWriter w2;
        restored->serialize(w2);
        EXPECT_EQ(bytes, w2.take()) << "seed " << seed;
        EXPECT_EQ(restored->total_intervals(), set.total_intervals());
        EXPECT_EQ(restored->total_length(), set.total_length());
        EXPECT_EQ(restored->num_frames(), set.num_frames());
        EXPECT_EQ(restored->total_cycles(), set.total_cycles());
    }
}

TEST(ArtifactCache, ResultRoundTripsExactly)
{
    for (const ExperimentResult *result :
         {&sample_result(), &sample_result_l2()}) {
        const std::string bytes = serialize_result(*result);
        auto restored = deserialize_result(bytes);
        ASSERT_TRUE(restored.has_value());
        // Byte-identity is the contract the cache depends on.
        EXPECT_EQ(serialize_result(*restored), bytes);
        EXPECT_EQ(restored->workload, result->workload);
        EXPECT_EQ(restored->core.cycles, result->core.cycles);
        EXPECT_EQ(restored->core.instructions, result->core.instructions);
        EXPECT_EQ(restored->dcache.stats.misses,
                  result->dcache.stats.misses);
        EXPECT_EQ(restored->l2cache.has_value(),
                  result->l2cache.has_value());
        EXPECT_EQ(restored->l2.accesses, result->l2.accesses);
    }
}

TEST(ArtifactCache, ReportingFieldsExcludedFromPayload)
{
    ExperimentResult copy = sample_result();
    copy.wall_seconds = 123.456;
    copy.from_cache = true;
    EXPECT_EQ(serialize_result(copy), serialize_result(sample_result()));
}

TEST(ArtifactCache, DeserializeRejectsMangledPayloads)
{
    const std::string bytes = serialize_result(sample_result());
    // Truncations at every prefix length in a coarse sweep, plus the
    // empty string, must fail cleanly (no crash, no partial result).
    EXPECT_FALSE(deserialize_result(std::string()).has_value());
    for (std::size_t len = 0; len < bytes.size();
         len += 1 + bytes.size() / 97)
        EXPECT_FALSE(deserialize_result(bytes.substr(0, len)).has_value())
            << "prefix " << len;
    // Trailing garbage is rejected too (at_end() contract).
    EXPECT_FALSE(deserialize_result(bytes + "x").has_value());
}

// ---------------------------------------------------------------------
// Fingerprint sensitivity.
// ---------------------------------------------------------------------

TEST(ArtifactCache, FingerprintIsDeterministic)
{
    const ExperimentConfig a = small_config();
    const ExperimentConfig b = small_config();
    EXPECT_EQ(fingerprint_config(a), fingerprint_config(b));
    EXPECT_EQ(fingerprint_experiment("gzip", a),
              fingerprint_experiment("gzip", b));
}

TEST(ArtifactCache, FingerprintSensitiveToEveryField)
{
    // Every mutation below changes simulation output, so each must
    // yield a distinct key — and all of them differ from the base.
    const ExperimentConfig base = small_config();
    std::vector<std::pair<const char *, ExperimentConfig>> variants;
    auto add = [&](const char *name, auto &&mutate) {
        ExperimentConfig c = small_config();
        mutate(c);
        variants.emplace_back(name, std::move(c));
    };
    add("instructions", [](auto &c) { c.instructions += 1; });
    add("l1i.size", [](auto &c) { c.hierarchy.l1i.size_bytes *= 2; });
    add("l1d.size", [](auto &c) { c.hierarchy.l1d.size_bytes *= 2; });
    add("l2.size", [](auto &c) { c.hierarchy.l2.size_bytes *= 2; });
    add("l1d.line", [](auto &c) { c.hierarchy.l1d.line_bytes *= 2; });
    add("l1d.assoc", [](auto &c) { c.hierarchy.l1d.associativity *= 2; });
    add("l1d.latency", [](auto &c) { c.hierarchy.l1d.hit_latency += 1; });
    add("l1d.repl", [](auto &c) {
        c.hierarchy.l1d.replacement = sim::ReplacementKind::Random;
    });
    add("mem.latency", [](auto &c) { c.hierarchy.memory_latency += 10; });
    add("fetch_width", [](auto &c) { c.core.fetch_width += 1; });
    add("instr_bytes", [](auto &c) { c.core.instr_bytes *= 2; });
    add("overlap", [](auto &c) { c.core.miss_overlap_percent += 5; });
    add("stride.entries", [](auto &c) { c.stride.table_entries *= 2; });
    add("stride.confirm", [](auto &c) { c.stride.confirmations += 1; });
    add("nl_lead_time", [](auto &c) { c.nl_lead_time += 100; });
    add("collect_l2", [](auto &c) { c.collect_l2 = !c.collect_l2; });
    add("extra_edges", [](auto &c) { c.extra_edges.push_back(777'777); });

    std::vector<std::pair<std::string, std::uint64_t>> keys;
    keys.emplace_back("base", fingerprint_config(base));
    for (const auto &[name, config] : variants)
        keys.emplace_back(name, fingerprint_config(config));
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i].second, keys[j].second)
                << keys[i].first << " vs " << keys[j].first;
}

TEST(ArtifactCache, FingerprintIgnoresNonSemanticFields)
{
    // jobs, cache_dir, keep_raw and cosmetic cache names change where
    // or how results are produced, never what they contain.
    const std::uint64_t base = fingerprint_config(small_config());

    ExperimentConfig c = small_config();
    c.jobs = 7;
    EXPECT_EQ(fingerprint_config(c), base);

    c = small_config();
    c.cache_dir = "/somewhere/else";
    EXPECT_EQ(fingerprint_config(c), base);

    c = small_config();
    c.keep_raw = true;
    EXPECT_EQ(fingerprint_config(c), base);

    c = small_config();
    c.hierarchy.l1d.name = "renamed-dcache";
    EXPECT_EQ(fingerprint_config(c), base);
}

TEST(ArtifactCache, FingerprintCanonicalizesExtraEdges)
{
    // Extras are hashed through the derived sorted+deduped edge list:
    // permutations and duplicates of the same set share an entry.
    ExperimentConfig a = small_config();
    a.extra_edges = {5'000, 100, 100, 9'999};
    ExperimentConfig b = small_config();
    b.extra_edges = {9'999, 5'000, 100};
    EXPECT_EQ(fingerprint_config(a), fingerprint_config(b));
}

TEST(ArtifactCache, WorkloadNameFeedsEntryKey)
{
    const ExperimentConfig config = small_config();
    const std::uint64_t fp = fingerprint_config(config);
    EXPECT_NE(fingerprint_entry(fp, "gzip"), fingerprint_entry(fp, "gcc"));
    EXPECT_EQ(fingerprint_entry(fp, "gzip"),
              fingerprint_experiment("gzip", config));
}

// ---------------------------------------------------------------------
// Store/load and corrupt-entry recovery.
// ---------------------------------------------------------------------

TEST(ArtifactCache, StoreThenLoadIsByteIdentical)
{
    const std::string dir = fresh_cache_dir("lb_cache_roundtrip");
    ArtifactCache cache(dir);
    const std::uint64_t key = 0x1234'5678'9abc'def0ULL;
    ASSERT_TRUE(cache.store(key, sample_result()).ok());
    ASSERT_TRUE(fs::exists(cache.entry_path(key)));

    auto loaded = cache.try_load(key);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(serialize_result(*loaded), serialize_result(sample_result()));
    // A different key misses without touching the stored entry.
    EXPECT_FALSE(cache.try_load(key + 1).has_value());
    EXPECT_TRUE(fs::exists(cache.entry_path(key)));
    fs::remove_all(dir);
}

TEST(ArtifactCache, CorruptEntriesAreDiscardedAndResimulated)
{
    const std::string dir = fresh_cache_dir("lb_cache_corrupt");
    ArtifactCache cache(dir);
    const std::uint64_t key = 42;
    ASSERT_TRUE(cache.store(key, sample_result()).ok());

    std::string bytes;
    {
        std::ifstream in(cache.entry_path(key), std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        bytes = buf.str();
    }
    ASSERT_GT(bytes.size(), 100u);

    // Flip one byte at a spread of offsets: header (magic, version,
    // key, size), payload body, and the trailing checksum.  Every
    // mutation must be detected, the entry removed, and a subsequent
    // probe must miss cleanly.
    const std::size_t offsets[] = {0,  5,  8,  11, 12, 19,
                                   20, 27, 40, bytes.size() / 2,
                                   bytes.size() - 1};
    for (const std::size_t off : offsets) {
        std::string mangled = bytes;
        mangled[off] = static_cast<char>(mangled[off] ^ 0x5a);
        {
            std::ofstream out(cache.entry_path(key), std::ios::binary);
            out << mangled;
        }
        EXPECT_FALSE(cache.try_load(key).has_value()) << "offset " << off;
        EXPECT_FALSE(fs::exists(cache.entry_path(key)))
            << "offset " << off << " entry not discarded";
    }

    // Truncations (including an empty file) are likewise rejected.
    for (const std::size_t len :
         {std::size_t{0}, std::size_t{7}, std::size_t{20},
          bytes.size() / 3, bytes.size() - 1}) {
        {
            std::ofstream out(cache.entry_path(key), std::ios::binary);
            out << bytes.substr(0, len);
        }
        EXPECT_FALSE(cache.try_load(key).has_value()) << "length " << len;
    }

    // After a discard, load_or_run transparently re-simulates, stores
    // a good entry, and returns the correct result.
    {
        std::ofstream out(cache.entry_path(key), std::ios::binary);
        out << bytes.substr(0, bytes.size() / 2);
    }
    const ExperimentResult rerun =
        cache.load_or_run(key, "gzip", [] { return sample_result(); });
    EXPECT_FALSE(rerun.from_cache);
    EXPECT_EQ(serialize_result(rerun), serialize_result(sample_result()));
    auto reloaded = cache.try_load(key);
    ASSERT_TRUE(reloaded.has_value());
    EXPECT_EQ(serialize_result(*reloaded),
              serialize_result(sample_result()));
    // Every rejected mutation was counted, and none of them demoted
    // the cache — corruption is recoverable, not degrading.
    EXPECT_GE(cache.health().corrupt_entries, 11u);
    EXPECT_FALSE(cache.degraded());
    fs::remove_all(dir);
}

TEST(ArtifactCache, LoadOrRunMissSimulatesHitLoads)
{
    const std::string dir = fresh_cache_dir("lb_cache_loadorrun");
    ArtifactCache cache(dir);
    const std::uint64_t key = fingerprint_experiment("gzip", small_config());

    int simulations = 0;
    auto simulate = [&simulations]() {
        ++simulations;
        return sample_result();
    };
    const ExperimentResult cold = cache.load_or_run(key, "gzip", simulate);
    EXPECT_EQ(simulations, 1);
    EXPECT_FALSE(cold.from_cache);

    const ExperimentResult warm = cache.load_or_run(key, "gzip", simulate);
    EXPECT_EQ(simulations, 1) << "hit must not simulate";
    EXPECT_TRUE(warm.from_cache);
    EXPECT_EQ(serialize_result(warm), serialize_result(cold));
    // The lock is released either way.
    EXPECT_FALSE(fs::exists(cache.entry_path(key) + ".lock"));
    fs::remove_all(dir);
}

TEST(ArtifactCache, StaleLockIsBroken)
{
    const std::string dir = fresh_cache_dir("lb_cache_stale");
    ArtifactCache::LockOptions options;
    options.wait_timeout = std::chrono::milliseconds(2'000);
    options.stale_age = std::chrono::milliseconds(0); // everything stale
    ArtifactCache cache(dir, options);
    const std::uint64_t key = 7;

    fs::create_directories(dir);
    { std::ofstream lock(cache.entry_path(key) + ".lock"); }
    const ExperimentResult result =
        cache.load_or_run(key, "gzip", [] { return sample_result(); });
    EXPECT_FALSE(result.from_cache);
    // The dead writer's lock was broken, the entry published, ours
    // released.
    EXPECT_TRUE(fs::exists(cache.entry_path(key)));
    EXPECT_FALSE(fs::exists(cache.entry_path(key) + ".lock"));
    EXPECT_GE(cache.health().lock_breaks, 1u);
    EXPECT_EQ(cache.health().lock_timeouts, 0u);
    fs::remove_all(dir);
}

TEST(ArtifactCache, LockHeldBySigkilledProcessIsBrokenAndCounted)
{
    // The crash-hygiene case behind the shard fleet: a shard that
    // acquired an entry lock and was then SIGKILLed leaves its `.lock`
    // behind with no process to release it.  Survivors must break the
    // stale lock (counted — CacheHealth::lock_breaks feeds the
    // daemon's /stats `locks_broken`), simulate, publish, and release,
    // with zero degradation.
    const std::string dir = fresh_cache_dir("lb_cache_sigkill");
    fs::create_directories(dir);
    ArtifactCache::LockOptions options;
    options.wait_timeout = std::chrono::milliseconds(10'000);
    options.stale_age = std::chrono::milliseconds(100);
    ArtifactCache cache(dir, options);
    const std::uint64_t key = 11;
    const std::string lock = cache.entry_path(key) + ".lock";

    // The doomed writer takes the lock exactly as a real one would
    // (O_CREAT | O_EXCL), then parks until killed.  Only
    // async-signal-safe calls after fork().
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        const int fd =
            ::open(lock.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd < 0)
            ::_exit(3);
        for (;;)
            ::pause();
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!fs::exists(lock) &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(fs::exists(lock)) << "lock holder never started";
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    ASSERT_EQ(::waitpid(pid, nullptr, 0), pid);

    // Age the orphaned lock past stale_age, then miss into it.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    const ExperimentResult result =
        cache.load_or_run(key, "gzip", [] { return sample_result(); });
    EXPECT_FALSE(result.from_cache);
    EXPECT_EQ(serialize_result(result),
              serialize_result(sample_result()));
    EXPECT_TRUE(fs::exists(cache.entry_path(key)))
        << "recovery must still publish the entry";
    EXPECT_FALSE(fs::exists(lock));
    EXPECT_GE(cache.health().lock_breaks, 1u);
    EXPECT_EQ(cache.health().lock_timeouts, 0u);
    EXPECT_FALSE(cache.degraded());
    fs::remove_all(dir);
}

TEST(ArtifactCache, HeldLockTimesOutWithoutStoring)
{
    const std::string dir = fresh_cache_dir("lb_cache_held");
    ArtifactCache::LockOptions options;
    options.wait_timeout = std::chrono::milliseconds(50);
    options.stale_age = std::chrono::hours(1); // never stale
    ArtifactCache cache(dir, options);
    const std::uint64_t key = 9;

    fs::create_directories(dir);
    { std::ofstream lock(cache.entry_path(key) + ".lock"); }
    const ExperimentResult result =
        cache.load_or_run(key, "gzip", [] { return sample_result(); });
    // Correct result anyway, but nothing published and the foreign
    // lock left alone.
    EXPECT_FALSE(result.from_cache);
    EXPECT_EQ(serialize_result(result), serialize_result(sample_result()));
    EXPECT_FALSE(fs::exists(cache.entry_path(key)));
    EXPECT_TRUE(fs::exists(cache.entry_path(key) + ".lock"));
    // The wait was counted (with its retries) but did not demote the
    // cache: lock contention is per-entry, not a dead backing store.
    EXPECT_EQ(cache.health().lock_timeouts, 1u);
    EXPECT_GE(cache.health().lock_retries, 1u);
    EXPECT_FALSE(cache.degraded());
    fs::remove_all(dir);
}

TEST(ArtifactCache, UnwritableDirectoryDegradesToSimulation)
{
    // Point the cache at a path that can never become a directory (a
    // regular file occupies it).  The first load_or_run demotes the
    // cache with a warning and every job simulates without caching —
    // results stay correct, no exception escapes.
    const std::string blocker =
        ::testing::TempDir() + "lb_cache_blocker_file";
    fs::remove_all(blocker);
    { std::ofstream out(blocker); out << "not a directory"; }

    ArtifactCache cache(blocker + "/nested");
    int simulations = 0;
    for (int i = 0; i < 3; ++i) {
        const ExperimentResult r =
            cache.load_or_run(7 + i, "gzip", [&simulations] {
                ++simulations;
                return sample_result();
            });
        EXPECT_FALSE(r.from_cache);
        EXPECT_EQ(serialize_result(r), serialize_result(sample_result()));
    }
    EXPECT_EQ(simulations, 3);
    EXPECT_TRUE(cache.degraded());
    EXPECT_EQ(cache.health().degraded_jobs, 3u)
        << "the demoting job and both after it ran uncached";
    fs::remove_all(blocker);
}

// ---------------------------------------------------------------------
// run_suite integration: cold vs warm byte-identity.
// ---------------------------------------------------------------------

TEST(ArtifactCache, WarmSuiteIsByteIdenticalToCold)
{
    const std::string dir = fresh_cache_dir("lb_cache_suite");
    const std::vector<std::string> names = {"gzip", "ammp"};

    ExperimentConfig uncached = small_config();
    const auto reference = run_suite(names, uncached);

    ExperimentConfig cached = small_config();
    cached.cache_dir = dir;
    const auto cold = run_suite(names, cached);
    const auto warm = run_suite(names, cached);

    // Warm results load; and every variant — uncached, cold, warm —
    // serializes to exactly the same bytes per benchmark.
    ASSERT_EQ(cold.size(), names.size());
    ASSERT_EQ(warm.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_FALSE(cold[i].from_cache) << names[i];
        EXPECT_TRUE(warm[i].from_cache) << names[i];
        const std::string want = serialize_result(reference[i]);
        EXPECT_EQ(serialize_result(cold[i]), want) << names[i];
        EXPECT_EQ(serialize_result(warm[i]), want) << names[i];
    }

    // The parallel path loads the same bytes too.
    ExperimentConfig parallel = cached;
    parallel.jobs = 2;
    const auto warm_parallel = run_suite(names, parallel);
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_TRUE(warm_parallel[i].from_cache) << names[i];
        EXPECT_EQ(serialize_result(warm_parallel[i]),
                  serialize_result(reference[i]))
            << names[i];
    }
    fs::remove_all(dir);
}

TEST(ArtifactCache, KeepRawRunsBypassTheCache)
{
    const std::string dir = fresh_cache_dir("lb_cache_keepraw");
    ExperimentConfig config = small_config();
    config.cache_dir = dir;
    config.keep_raw = true;
    const auto first = run_suite({"gzip"}, config);
    const auto second = run_suite({"gzip"}, config);
    // Raw intervals are never persisted: both runs simulate, both keep
    // their raw vectors, and no cache directory ever appears.
    EXPECT_FALSE(first[0].from_cache);
    EXPECT_FALSE(second[0].from_cache);
    EXPECT_FALSE(first[0].dcache.raw.empty());
    EXPECT_FALSE(second[0].dcache.raw.empty());
    EXPECT_FALSE(fs::exists(dir));
}

TEST(ArtifactCache, ResolveCacheDirPrecedence)
{
    ::unsetenv("LEAKBOUND_CACHE_DIR");
    EXPECT_EQ(resolve_cache_dir(""), "");
    EXPECT_EQ(resolve_cache_dir("/flag/dir"), "/flag/dir");
    ::setenv("LEAKBOUND_CACHE_DIR", "/env/dir", 1);
    EXPECT_EQ(resolve_cache_dir(""), "/env/dir");
    EXPECT_EQ(resolve_cache_dir("/flag/dir"), "/flag/dir");
    ::unsetenv("LEAKBOUND_CACHE_DIR");
}
