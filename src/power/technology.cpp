/**
 * @file
 * Calibrated technology-node tables.
 *
 * The refetch_energy values are derived by inverting paper Eq. 3
 * against the inflection points printed in paper Table 1:
 *
 *   b = (K_S + CD - K_D) / (P_D - P_S)
 *   K_D = (P_A - P_D) * (d1 + d3)           = 4.0   (P_D = 1/3)
 *   K_S = (P_A - P_S) * (s1 + s3 + s4)      = 37.0  (P_S = 0)
 *   =>  CD = b * P_D - K_S + K_D = b/3 - 33
 *
 * yielding CD(70nm)=319.333, CD(100nm)=1663, CD(130nm)=3409.667,
 * CD(180nm)=34328.333 LU·cycles.  Vdd/Vth per node are the paper's
 * Table 2 values.
 */

#include "power/technology.hpp"

#include "util/logging.hpp"

namespace leakbound::power {

ModeTimings
ModeTimings::with_l2_latency(Cycles l2_latency)
{
    ModeTimings t;
    t.s4 = l2_latency > t.s3 ? l2_latency - t.s3 : 0;
    return t;
}

void
TechnologyParams::validate() const
{
    using util::fatal;
    if (active_power <= 0.0)
        fatal("technology '", name, "': active_power must be positive");
    if (drowsy_power < 0.0 || drowsy_power >= active_power) {
        fatal("technology '", name,
              "': drowsy_power must be in [0, active_power)");
    }
    if (sleep_power < 0.0 || sleep_power > drowsy_power) {
        fatal("technology '", name,
              "': sleep_power must be in [0, drowsy_power]");
    }
    if (refetch_energy < 0.0)
        fatal("technology '", name, "': refetch_energy must be >= 0");
    if (decay_counter_overhead < 0.0)
        fatal("technology '", name, "': counter overhead must be >= 0");
    if (timings.drowsy_overhead() == 0)
        fatal("technology '", name, "': drowsy transitions cannot be 0");
    if (timings.sleep_overhead() <= timings.drowsy_overhead()) {
        // Lemma 1 of the paper requires the drowsy transitions to be
        // strictly cheaper in time than the sleep transitions.
        fatal("technology '", name,
              "': sleep overhead must exceed drowsy overhead (Lemma 1)");
    }
}

namespace {

TechnologyParams
make_node(const char *name, double feature_nm, double vdd, double vth,
          Energy refetch_energy)
{
    TechnologyParams p;
    p.name = name;
    p.feature_nm = feature_nm;
    p.vdd = vdd;
    p.vth = vth;
    p.refetch_energy = refetch_energy;
    return p;
}

// Paper Table 2 Vdd/Vth; refetch energy calibrated to Table 1 (header
// comment above).
const TechnologyParams kNode70 =
    make_node("70nm", 70.0, 0.9, 0.1902, 1057.0 / 3.0 - 33.0);
const TechnologyParams kNode100 =
    make_node("100nm", 100.0, 1.0, 0.2607, 5088.0 / 3.0 - 33.0);
const TechnologyParams kNode130 =
    make_node("130nm", 130.0, 1.5, 0.3353, 10328.0 / 3.0 - 33.0);
const TechnologyParams kNode180 =
    make_node("180nm", 180.0, 2.0, 0.3979, 103084.0 / 3.0 - 33.0);

} // namespace

const std::vector<TechNode> &
all_nodes()
{
    static const std::vector<TechNode> nodes = {
        TechNode::Nm70, TechNode::Nm100, TechNode::Nm130, TechNode::Nm180};
    return nodes;
}

const TechnologyParams &
node_params(TechNode node)
{
    switch (node) {
      case TechNode::Nm70:
        return kNode70;
      case TechNode::Nm100:
        return kNode100;
      case TechNode::Nm130:
        return kNode130;
      case TechNode::Nm180:
        return kNode180;
    }
    LEAKBOUND_PANIC("unreachable: bad TechNode");
}

const TechnologyParams &
node_params_by_name(const std::string &name)
{
    for (TechNode node : all_nodes()) {
        const TechnologyParams &p = node_params(node);
        if (p.name == name)
            return p;
    }
    util::fatal("unknown technology node '", name,
                "' (expected 70nm, 100nm, 130nm or 180nm)");
}

const char *
node_name(TechNode node)
{
    return node_params(node).name.c_str();
}

} // namespace leakbound::power
