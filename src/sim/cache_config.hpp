/**
 * @file
 * Cache geometry configuration and the paper's Alpha-21264-like
 * hierarchy presets (Section 4.1): 64KB 2-way L1I (1-cycle hit),
 * 64KB 2-way L1D (3-cycle hit), 2MB direct-mapped unified L2 (7-cycle
 * hit), LRU everywhere.
 */

#ifndef LEAKBOUND_SIM_CACHE_CONFIG_HPP
#define LEAKBOUND_SIM_CACHE_CONFIG_HPP

#include <cstdint>
#include <string>

#include "util/types.hpp"

namespace leakbound::sim {

/** Replacement policies the cache model supports. */
enum class ReplacementKind : std::uint8_t {
    Lru,    ///< least recently used (the paper's choice)
    Fifo,   ///< insertion order
    Random, ///< uniform random victim (deterministic seed)
};

/** Printable replacement policy name. */
const char *replacement_name(ReplacementKind kind);

/**
 * Which implementation of the per-access decision logic a cache (and
 * the hierarchy built from it) runs.  Kernel selects the devirtualized
 * rank-word fast path specialized per ReplacementKind; Reference keeps
 * the virtual ReplacementPolicy objects.  The two are byte-identical
 * in every observable — access results, statistics, state snapshots —
 * which the kernel differential fuzzer (`ctest -L kernel`) proves;
 * Reference exists as the debug-checked oracle, the same convention
 * EdgeIndex and the analytic engine use (DESIGN.md "Simulation
 * kernel").
 */
enum class SimMode : std::uint8_t {
    Kernel,    ///< inlined per-kind kernel (default)
    Reference, ///< virtual replacement-policy path (oracle)
};

/** Geometry and timing of one cache level. */
struct CacheConfig
{
    std::string name = "cache";     ///< for stats/logging
    std::uint64_t size_bytes = 64 * 1024;
    std::uint32_t line_bytes = 64;  ///< power of two
    std::uint32_t associativity = 2;
    Cycles hit_latency = 1;
    ReplacementKind replacement = ReplacementKind::Lru;

    /** Number of sets (size / (line * assoc)). */
    std::uint64_t num_sets() const;

    /** Number of physical frames (sets * assoc). */
    std::uint64_t num_frames() const;

    /** Block number of a byte address (addr / line_bytes). */
    Addr block_of(Addr addr) const { return addr >> line_shift(); }

    /** Set index of a block number. */
    std::uint64_t set_of_block(Addr block) const;

    /**
     * log2(line_bytes): addr >> line_shift() == addr / line_bytes.
     * Meaningful only for validated geometries (line_bytes is a power
     * of two); Cache precomputes it once at construction.
     */
    std::uint32_t line_shift() const;

    /**
     * num_sets() - 1: block & set_mask() == block % num_sets().
     * Meaningful only for validated geometries (num_sets is a power of
     * two); Cache precomputes it once at construction.
     */
    std::uint64_t set_mask() const;

    /** Check invariants (powers of two, divisibility); fatal() on bad
     *  user configuration. */
    void validate() const;

    /** The paper's L1 instruction cache. */
    static CacheConfig alpha_l1i();
    /** The paper's L1 data cache. */
    static CacheConfig alpha_l1d();
    /** The paper's unified L2. */
    static CacheConfig alpha_l2();
};

} // namespace leakbound::sim

#endif // LEAKBOUND_SIM_CACHE_CONFIG_HPP
