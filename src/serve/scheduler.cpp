/**
 * @file
 * Implementation of the dedup/backpressure scheduler.
 */

#include "serve/scheduler.hpp"

#include <exception>

#include "serve/protocol.hpp"

namespace leakbound::serve {

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config))
{
    const unsigned workers = config_.workers == 0 ? 1 : config_.workers;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler()
{
    drain();
}

util::Expected<std::shared_ptr<const std::string>>
Scheduler::submit(core::ExperimentRequest request)
{
    const std::uint64_t fingerprint = core::fingerprint_request(request);

    std::unique_lock<std::mutex> lock(mutex_);
    ++counters_.submitted;
    if (draining_) {
        ++counters_.rejected_shutting_down;
        return util::Status(util::ErrorKind::ShuttingDown,
                            "daemon is draining; request not admitted");
    }

    std::shared_ptr<Job> job;
    bool joined = false;
    if (auto it = inflight_.find(fingerprint); it != inflight_.end()) {
        // An identical request is already admitted: join it.  The
        // waiter gets the same rendered response object, so dedup
        // groups are byte-identical by construction.
        job = it->second;
        joined = true;
        ++counters_.dedup_hits;
    } else {
        if (queue_.size() >= config_.max_queue) {
            ++counters_.rejected_overloaded;
            return util::Status(
                util::ErrorKind::Overloaded,
                "admission queue full (" +
                    std::to_string(config_.max_queue) +
                    " requests waiting); retry later");
        }
        job = std::make_shared<Job>();
        job->request = std::move(request);
        job->fingerprint = fingerprint;
        inflight_.emplace(fingerprint, job);
        queue_.push_back(job);
        ++counters_.queue_depth;
        cv_.notify_all();
    }

    cv_.wait(lock, [&] { return job->done; });
    // Every waiter lands in exactly one bucket: served when the run
    // completed, rejected_shutting_down when drain() failed the job
    // (drain counts the job's admitting waiter; joiners count here).
    if (job->failed_by_drain) {
        if (joined)
            ++counters_.rejected_shutting_down;
    } else {
        ++counters_.served;
    }
    return job->response;
}

void
Scheduler::worker_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (draining_)
                return;
            continue;
        }
        std::shared_ptr<Job> job = std::move(queue_.front());
        queue_.pop_front();
        job->started = true;
        --counters_.queue_depth;
        ++counters_.running;
        ++counters_.simulations;

        core::ExperimentRequest request = job->request;
        const std::uint64_t fingerprint = job->fingerprint;
        lock.unlock();
        std::shared_ptr<const std::string> response =
            execute(request, fingerprint);
        lock.lock();

        job->response = std::move(response);
        job->done = true;
        --counters_.running;
        inflight_.erase(job->fingerprint);
        cv_.notify_all();
    }
}

std::shared_ptr<const std::string>
Scheduler::execute(const core::ExperimentRequest &request,
                   std::uint64_t fingerprint)
{
    try {
        core::ExperimentConfig config = request.config;
        // Server-owned knobs the wire decoder refused to accept, plus
        // the drain contract: a started experiment always completes.
        config.jobs = config_.suite_jobs;
        config.cache_dir = config_.cache_dir;
        config.ignore_interrupts = true;

        core::SuiteOutcome outcome = core::run_suite_isolated(
            request.benchmarks, config, config_.before_job);

        std::uint64_t loaded = 0;
        std::uint64_t analytic = 0;
        std::uint64_t simulated = 0;
        for (const auto &slot : outcome.slots) {
            if (!slot)
                continue;
            if (slot->from_cache)
                ++loaded;
            else if (slot->analytic)
                ++analytic;
            else
                ++simulated;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            counters_.cache_hits += loaded;
            counters_.analytic_runs += analytic;
            counters_.sim_runs += simulated;
        }
        return std::make_shared<const std::string>(
            render_run_response(outcome, request, fingerprint));
    } catch (const util::StatusError &error) {
        return std::make_shared<const std::string>(
            render_error(error.status()));
    } catch (const std::exception &error) {
        return std::make_shared<const std::string>(render_error(
            util::Status(util::ErrorKind::Internal, error.what())));
    }
}

void
Scheduler::drain()
{
    std::vector<std::thread> workers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
        workers.swap(workers_); // a concurrent drain() joins nothing
        // Queued-not-started jobs never run: their waiters all wake
        // with one shared ShuttingDown response.
        if (!queue_.empty()) {
            auto rejected = std::make_shared<const std::string>(
                render_error(util::Status(
                    util::ErrorKind::ShuttingDown,
                    "daemon drained before this request started")));
            for (const std::shared_ptr<Job> &job : queue_) {
                job->response = rejected;
                job->failed_by_drain = true;
                job->done = true;
                inflight_.erase(job->fingerprint);
            }
            counters_.rejected_shutting_down += queue_.size();
            counters_.queue_depth = 0;
            queue_.clear();
        }
        cv_.notify_all();
    }
    for (std::thread &worker : workers)
        worker.join();
}

SchedulerCounters
Scheduler::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace leakbound::serve
