/**
 * @file
 * Reproduces paper Figure 10 (Appendix): the per-interval energy of
 * the three operating modes as a function of interval length, whose
 * lower envelope — active on (0,a], drowsy on (a,b], sleep on
 * (b,inf) — is the optimal policy.  Also prints the Fig. 6 transition
 * energies (the model's edge weights).
 */

#include "bench_common.hpp"
#include "core/inflection.hpp"
#include "core/state_model.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("fig10_envelope",
                        "Figure 10: mode energies and the optimal "
                        "envelope");
    cli.parse(argc, argv);

    const auto &tech = power::node_params(power::TechNode::Nm70);
    const core::EnergyModel model(tech);
    const auto points = core::compute_inflection(model);

    util::Table table("Figure 10: interval energy by mode, 70nm "
                      "(LU-cycles; * = lower envelope)");
    table.set_header(
        {"interval L", "E_active", "E_drowsy", "E_sleep", "optimal"});
    const Cycles samples[] = {1,    4,    6,    7,     20,   37,
                              100,  300,  700,  1056,  1057, 1058,
                              2000, 5000, 20000, 100000};
    for (Cycles len : samples) {
        using interval::IntervalKind;
        const auto fmt = [&](core::Mode mode) -> std::string {
            if (!model.applicable(mode, len, IntervalKind::Inner))
                return "n/a";
            return util::format_fixed(
                model.energy(mode, len, IntervalKind::Inner), 1);
        };
        const core::Mode best =
            model.optimal_mode(len, IntervalKind::Inner);
        table.add_row({util::format_commas(len), fmt(core::Mode::Active),
                       fmt(core::Mode::Drowsy), fmt(core::Mode::Sleep),
                       core::mode_name(best)});
    }
    emit(table, cli, "fig10_envelope");

    std::printf("inflection points: a = %llu, b = %llu "
                "(paper Table 1: 6, 1057)\n\n",
                static_cast<unsigned long long>(points.active_drowsy),
                static_cast<unsigned long long>(points.drowsy_sleep));

    const core::TransitionEnergies e = core::transition_energies(tech);
    util::Table edges("Figure 6 edge weights (transition energies)");
    edges.set_header({"edge", "energy (LU-cycles)"});
    edges.add_row({"E_AD (active->drowsy)",
                   util::format_fixed(e.active_to_drowsy, 1)});
    edges.add_row({"E_DA (drowsy->active)",
                   util::format_fixed(e.drowsy_to_active, 1)});
    edges.add_row({"E_AS (active->sleep)",
                   util::format_fixed(e.active_to_sleep, 1)});
    edges.add_row({"E_SA (sleep->active, incl. re-fetch CD)",
                   util::format_fixed(e.sleep_to_active, 1)});
    emit(edges, cli, "fig6_edges");
    return bench::finish(cli);
}
