/**
 * @file
 * Implementation of statistics accumulators and stat groups.
 */

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hpp"

namespace leakbound::util {

void
Accumulator::add(double x)
{
    ++count_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Accumulator::merge(const Accumulator &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

LatencyRecorder::LatencyRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 2))
{
    samples_.reserve(capacity_);
}

void
LatencyRecorder::add(double value)
{
    summary_.add(value);
    if (total_++ % stride_ == 0) {
        if (samples_.size() == capacity_) {
            // Buffer full: thin to every other retained sample and
            // double the stride, so memory stays bounded while the
            // kept samples remain spread over the whole history.
            std::size_t kept = 0;
            for (std::size_t i = 0; i < samples_.size(); i += 2)
                samples_[kept++] = samples_[i];
            samples_.resize(kept);
            stride_ *= 2;
        }
        samples_.push_back(value);
    }
}

double
LatencyRecorder::quantile(double q) const
{
    if (samples_.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> sorted = samples_;
    const std::size_t rank = std::min(
        sorted.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(sorted.size())));
    std::nth_element(sorted.begin(),
                     sorted.begin() + static_cast<std::ptrdiff_t>(rank),
                     sorted.end());
    return sorted[rank];
}

void
LatencyRecorder::reset()
{
    total_ = 0;
    stride_ = 1;
    samples_.clear();
    summary_.reset();
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

std::size_t
StatGroup::add(std::string name, std::string desc)
{
    for (std::size_t i = 0; i < stats_.size(); ++i) {
        if (stats_[i].name == name)
            return i;
    }
    stats_.push_back(Stat{std::move(name), std::move(desc), 0.0});
    return stats_.size() - 1;
}

void
StatGroup::inc(std::size_t idx, double delta)
{
    LEAKBOUND_ASSERT(idx < stats_.size(), "stat index out of range");
    stats_[idx].value += delta;
}

void
StatGroup::set(std::size_t idx, double value)
{
    LEAKBOUND_ASSERT(idx < stats_.size(), "stat index out of range");
    stats_[idx].value = value;
}

double
StatGroup::get(std::size_t idx) const
{
    LEAKBOUND_ASSERT(idx < stats_.size(), "stat index out of range");
    return stats_[idx].value;
}

const Stat *
StatGroup::find(const std::string &name) const
{
    for (const auto &s : stats_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &s : stats_) {
        os << s.name;
        for (std::size_t pad = s.name.size(); pad < 40; ++pad)
            os << ' ';
        os << s.value << "  # " << s.desc << '\n';
    }
    return os.str();
}

void
StatGroup::reset_values()
{
    for (auto &s : stats_)
        s.value = 0.0;
}

} // namespace leakbound::util
