/**
 * @file
 * Direct transcription of the paper's Figure 5 algorithm and Appendix
 * theorem: given a set of intervals and the two inflection points,
 * accumulate the optimal leakage power saving interval by interval.
 *
 * The policy machinery (core/policies.hpp + core/savings.hpp)
 * supersedes this for experiments; this module exists as the paper's
 * literal artifact and as an independent cross-check used in tests.
 */

#ifndef LEAKBOUND_CORE_OPTIMAL_HPP
#define LEAKBOUND_CORE_OPTIMAL_HPP

#include <vector>

#include "core/energy_model.hpp"
#include "core/inflection.hpp"
#include "interval/interval.hpp"

namespace leakbound::core {

/** Output of optimal_leakage(): total saving and its decomposition. */
struct OptimalSaving
{
    Energy total_saving = 0.0;  ///< LU·cycles saved vs all-active
    Energy sleep_saving = 0.0;  ///< portion from slept intervals
    Energy drowsy_saving = 0.0; ///< portion from drowsed intervals
    std::uint64_t slept = 0;    ///< intervals put to sleep
    std::uint64_t drowsed = 0;  ///< intervals put into drowsy mode
    std::uint64_t active = 0;   ///< intervals left active
};

/**
 * The Figure 5 algorithm: for every interval Ii, apply sleep when
 * |Ii| > b, drowsy when |Ii| > a, nothing otherwise, and accumulate
 * the savings.  Interval kinds are honoured the same way the policy
 * evaluator does (Inner intervals pay CD on sleep, etc.).
 *
 * @param model energy model of the technology under study
 * @param points inflection points (pass compute_inflection(model))
 * @param intervals the interval population I
 */
OptimalSaving optimal_leakage(const EnergyModel &model,
                              const InflectionPoints &points,
                              const std::vector<interval::Interval> &intervals);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_OPTIMAL_HPP
