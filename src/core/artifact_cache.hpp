/**
 * @file
 * Persistent, content-addressed cache of simulation artifacts.
 *
 * Every figure/table in the paper is a pure function of the interval
 * populations one suite replay produces, yet each bench binary used to
 * re-replay the full suite from scratch.  The artifact cache splits
 * that: `run_suite` fingerprints everything that determines a
 * benchmark's ExperimentResult (workload name, full ExperimentConfig
 * including the derived histogram edge list, and a format version) and
 * persists the result as one binary entry per (workload, config) under
 * a cache directory.  Warm runs load entries instead of simulating —
 * N bench binaries share 1× the replay cost — and a loaded result is
 * byte-identical to a fresh simulation (tested).
 *
 * On-disk entry (all little-endian; see DESIGN.md §5):
 *
 *   8B magic "lkbart01" | u32 format version | u64 fingerprint |
 *   u64 payload size | payload | u64 FNV-1a(payload)
 *
 * The payload is the serialized ExperimentResult minus wall_seconds
 * (wall time is reporting-only and never cached).  Entries are written
 * to `<name>.tmp.<pid>` and atomically renamed, guarded by a coarse
 * per-entry `.lock` file so concurrent bench binaries neither tear an
 * entry nor simulate the same benchmark twice.  Any mismatch — magic,
 * version, fingerprint, size, checksum, or a bounds-check inside the
 * payload — discards the entry and re-simulates; a cache entry is
 * never trusted.
 *
 * Degradation ladder (see CacheHealth): the cache accelerates, it is
 * never load-bearing.  An unwritable directory demotes the whole cache
 * to pass-through (simulate, don't store) with a one-time warning;
 * repeated store failures do the same; a contended lock backs off with
 * capped exponential delay and deterministic jitter, and on timeout
 * the one job simulates without caching.  Every rung is counted and
 * surfaced via health().
 */

#ifndef LEAKBOUND_CORE_ARTIFACT_CACHE_HPP
#define LEAKBOUND_CORE_ARTIFACT_CACHE_HPP

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>

#include "core/cache_health.hpp"
#include "core/experiment.hpp"
#include "util/status.hpp"

namespace leakbound::core {

/** Bump whenever the serialized layout or its semantics change. */
inline constexpr std::uint32_t kArtifactFormatVersion = 1;

/**
 * Version of the analytic fast path (src/analytic), mixed into config
 * fingerprints alongside the engine selector.  Bump on any change to
 * the detector or skip math so entries produced by an older fast path
 * can never satisfy a newer build's lookups.
 */
inline constexpr std::uint64_t kAnalyticEngineVersion = 1;

/**
 * Fingerprint of every ExperimentConfig field that influences
 * simulation output: instruction budget, hierarchy and core geometry,
 * stride table shape, nl_lead_time, collect_l2, and the final
 * sorted+deduped histogram edge list derived from extra_edges.
 * Excluded by design: jobs (merge order is deterministic), keep_raw
 * (raw-keeping runs bypass the cache), cache_dir itself, and the
 * cosmetic per-cache name strings.
 */
std::uint64_t fingerprint_config(const ExperimentConfig &config);

/**
 * Entry key from a precomputed config fingerprint and a workload name
 * (run_suite hashes the config once and derives per-benchmark keys).
 */
std::uint64_t fingerprint_entry(std::uint64_t config_fingerprint,
                                const std::string &workload);

/** Entry key: fingerprint_config extended with the workload name. */
std::uint64_t fingerprint_experiment(const std::string &workload,
                                     const ExperimentConfig &config);

/**
 * Serialize @p result (minus wall_seconds/from_cache, which are
 * reporting-only) to the cache payload layout.  Also the byte-identity
 * oracle used by the tests: fresh and cached results must serialize
 * identically.
 */
std::string serialize_result(const ExperimentResult &result);

/** Rebuild a result from serialize_result bytes; nullopt if corrupt. */
std::optional<ExperimentResult>
deserialize_result(const std::string &bytes);

/**
 * The cache directory for a run: @p flag_value if non-empty, else the
 * LEAKBOUND_CACHE_DIR environment variable, else "" (cache off).
 */
std::string resolve_cache_dir(const std::string &flag_value);

/** One cache directory; cheap to construct, safe to share per suite. */
class ArtifactCache
{
  public:
    /** Tunables for the per-entry lock protocol (tests shrink these). */
    struct LockOptions
    {
        /** How long a miss waits for another writer's entry. */
        std::chrono::milliseconds wait_timeout =
            std::chrono::seconds(60);
        /** Locks older than this are presumed dead and broken. */
        std::chrono::milliseconds stale_age = std::chrono::seconds(120);
        /** First backoff sleep while waiting on a held lock. */
        std::chrono::milliseconds backoff_initial{2};
        /** Backoff ceiling; doubling stops here. */
        std::chrono::milliseconds backoff_cap{80};
    };

    /** Store failures tolerated before the cache demotes itself. */
    static constexpr std::uint64_t kMaxStoreFailures = 3;

    /** @param dir created on first store if missing. */
    explicit ArtifactCache(std::string dir);

    /** As above with explicit lock tunables (tests use tiny ones). */
    ArtifactCache(std::string dir, LockOptions options);

    /**
     * Load the entry for @p key, or simulate and store it.
     *
     * Miss protocol: acquire `<entry>.lock` (O_CREAT|O_EXCL), run
     * @p simulate, publish tmp-file + rename, release.  If another
     * process holds the lock, back off exponentially (capped, with
     * deterministic per-key jitter) until its entry appears (then load
     * it) or the lock goes stale (break it) or the wait times out
     * (then simulate locally without storing).  Either way the caller
     * gets a correct result; the cache only ever changes *where* it
     * comes from.  The lock is released even when @p simulate throws.
     *
     * @param workload for log messages only.
     */
    ExperimentResult
    load_or_run(std::uint64_t key, const std::string &workload,
                const std::function<ExperimentResult()> &simulate);

    /** Probe for @p key without simulating (corrupt entries discard). */
    std::optional<ExperimentResult> try_load(std::uint64_t key) const;

    /**
     * Serialize + checksum + atomically publish @p result under
     * @p key.  A failed store is counted, and kMaxStoreFailures of
     * them demote the cache to pass-through for the rest of the run.
     */
    util::Status store(std::uint64_t key,
                       const ExperimentResult &result) const;

    /** Absolute-ish path of @p key's entry file. */
    std::string entry_path(std::uint64_t key) const;

    /** The directory this cache persists into. */
    const std::string &dir() const { return dir_; }

    /** Whether the cache has demoted itself to pass-through. */
    bool degraded() const
    {
        return degraded_.load(std::memory_order_relaxed);
    }

    /** Snapshot the accumulated health counters. */
    CacheHealth health() const;

  private:
    std::string lock_path(std::uint64_t key) const;

    /** Try to create the lock file; true when this process owns it. */
    bool try_lock(const std::string &path) const;

    /** Demote to pass-through, warning once per cache. */
    void demote(const std::string &why) const;

    std::string dir_;
    LockOptions options_;

    // Health accounting; mutable because a const cache (shared across
    // suite threads) still records the trouble it runs into.
    mutable std::atomic<bool> degraded_{false};
    mutable std::atomic<std::uint64_t> store_failures_{0};
    mutable std::atomic<std::uint64_t> corrupt_entries_{0};
    mutable std::atomic<std::uint64_t> lock_breaks_{0};
    mutable std::atomic<std::uint64_t> lock_timeouts_{0};
    mutable std::atomic<std::uint64_t> lock_retries_{0};
    mutable std::atomic<std::uint64_t> degraded_jobs_{0};
};

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_ARTIFACT_CACHE_HPP
