/**
 * @file
 * End-to-end integration tests: a full workload -> core -> hierarchy
 * -> interval pipeline, checking global invariants (frame-time
 * conservation, histogram/raw equivalence on live data, determinism)
 * and the paper-level orderings on a real benchmark, plus the
 * generalized model facade.
 */

#include <gtest/gtest.h>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "core/generalized_model.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "prefetch/prefetchability.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;

namespace {

ExperimentConfig
small_config(bool keep_raw = false)
{
    ExperimentConfig config;
    config.instructions = 300'000;
    config.extra_edges = standard_extra_edges();
    config.keep_raw = keep_raw;
    return config;
}

const EnergyModel &
model70()
{
    static const EnergyModel m(power::node_params(power::TechNode::Nm70));
    return m;
}

} // namespace

TEST(Experiment, FrameTimeConservationOnRealRun)
{
    auto w = workload::make_benchmark("gzip");
    const ExperimentResult run = run_experiment(*w, small_config());

    // Every frame's timeline fully partitioned: total interval length
    // equals frames * cycles for both caches.
    const auto &icfg = sim::CacheConfig::alpha_l1i();
    const auto &dcfg = sim::CacheConfig::alpha_l1d();
    EXPECT_EQ(run.icache.intervals.total_length(),
              icfg.num_frames() * run.core.cycles);
    EXPECT_EQ(run.dcache.intervals.total_length(),
              dcfg.num_frames() * run.core.cycles);
    EXPECT_EQ(run.icache.intervals.num_frames(), icfg.num_frames());
    EXPECT_EQ(run.icache.intervals.total_cycles(), run.core.cycles);
}

TEST(Experiment, HistogramMatchesRawOnRealRun)
{
    auto w = workload::make_benchmark("mesa");
    const ExperimentResult run = run_experiment(*w, small_config(true));
    ASSERT_FALSE(run.dcache.raw.empty());

    for (const auto &policy :
         {make_opt_hybrid(model70()), make_decay_sleep(model70(), 10'000),
          make_prefetch(model70(), PrefetchVariant::B,
                        {interval::PrefetchClass::NextLine,
                         interval::PrefetchClass::Stride})}) {
        const SavingsResult hist =
            evaluate_policy(*policy, run.dcache.intervals);
        const SavingsResult raw = evaluate_policy_raw(
            *policy, run.dcache.raw,
            run.dcache.intervals.num_frames(),
            run.dcache.intervals.total_cycles());
        EXPECT_NEAR(hist.savings, raw.savings, 1e-10) << policy->name();
    }
}

TEST(Experiment, DeterministicAcrossRuns)
{
    auto w1 = workload::make_benchmark("applu");
    auto w2 = workload::make_benchmark("applu");
    const ExperimentResult a = run_experiment(*w1, small_config());
    const ExperimentResult b = run_experiment(*w2, small_config());
    EXPECT_EQ(a.core.cycles, b.core.cycles);
    EXPECT_EQ(a.icache.stats.misses, b.icache.stats.misses);
    EXPECT_EQ(a.dcache.stats.misses, b.dcache.stats.misses);
    EXPECT_EQ(a.dcache.intervals.total_intervals(),
              b.dcache.intervals.total_intervals());
}

TEST(Experiment, KernelMatchesReferenceOnFixedWorkloads)
{
    // The devirtualized kernel lane and the virtual-dispatch reference
    // path (which also runs unbatched fetch) must serialize to the
    // same bytes on real suite members: gzip exercises LoopProgram
    // batching, gcc the call-graph walker.  The random-geometry sweep
    // lives in test_kernel_equivalence (ctest -L kernel); this pins
    // the stock configuration inside tier 1.
    for (const char *name : {"gzip", "gcc"}) {
        ExperimentConfig kernel_config = small_config();
        kernel_config.sim_path = sim::SimMode::Kernel;
        ExperimentConfig reference_config = small_config();
        reference_config.sim_path = sim::SimMode::Reference;

        auto wk = workload::make_benchmark(name);
        const ExperimentResult k = run_experiment(*wk, kernel_config);
        auto wr = workload::make_benchmark(name);
        const ExperimentResult r = run_experiment(*wr, reference_config);

        EXPECT_EQ(serialize_result(k), serialize_result(r)) << name;
        // sim_path is excluded from config fingerprints: both lanes
        // name the same artifact.
        EXPECT_EQ(fingerprint_config(kernel_config),
                  fingerprint_config(reference_config))
            << name;
    }
}

TEST(Experiment, SchemeOrderingMatchesPaperOnRealRun)
{
    // Fig. 8's structural claims, end to end on one benchmark:
    // OPT-Hybrid >= {OPT-Sleep(10K), Prefetch-B, OPT-Drowsy};
    // OPT-Sleep(10K) >= Sleep(10K); Prefetch-B >= Prefetch-A's power
    // savings; everything in [0, 1].
    auto w = workload::make_benchmark("gzip");
    const ExperimentResult run = run_experiment(*w, small_config());

    const auto points = compute_inflection(model70());
    const std::vector<interval::PrefetchClass> both = {
        interval::PrefetchClass::NextLine,
        interval::PrefetchClass::Stride};

    auto eval = [&](const PolicyPtr &p) {
        const double s = evaluate_policy(*p, run.dcache.intervals).savings;
        EXPECT_GE(s, 0.0) << p->name();
        EXPECT_LE(s, 1.0) << p->name();
        return s;
    };

    const double hybrid = eval(make_opt_hybrid(model70()));
    const double opt_sleep_b =
        eval(make_opt_sleep(model70(), points.drowsy_sleep));
    const double opt_sleep_10k = eval(make_opt_sleep(model70(), 10'000));
    const double decay = eval(make_decay_sleep(model70(), 10'000));
    const double drowsy = eval(make_opt_drowsy(model70()));
    const double pf_a =
        eval(make_prefetch(model70(), PrefetchVariant::A, both));
    const double pf_b =
        eval(make_prefetch(model70(), PrefetchVariant::B, both));
    const double active = eval(make_always_active(model70()));

    EXPECT_NEAR(active, 0.0, 1e-12);
    EXPECT_GE(hybrid, opt_sleep_b - 1e-12);
    EXPECT_GE(opt_sleep_b, opt_sleep_10k - 1e-12);
    EXPECT_GE(opt_sleep_10k, decay - 1e-12);
    EXPECT_GE(hybrid, drowsy - 1e-12);
    EXPECT_GE(hybrid, pf_b - 1e-12);
    EXPECT_GE(pf_b, pf_a - 1e-12);
}

TEST(Experiment, PrefetchabilityFractionsAreSane)
{
    auto w = workload::make_benchmark("gzip");
    const ExperimentResult run = run_experiment(*w, small_config());
    const auto points = compute_inflection(model70());

    const auto icache = prefetch::analyze_prefetchability(
        run.icache.intervals, points);
    const auto dcache = prefetch::analyze_prefetchability(
        run.dcache.intervals, points);

    for (const auto &r : {icache, dcache}) {
        EXPECT_GE(r.total_fraction, 0.0);
        EXPECT_LE(r.total_fraction, 1.0);
        EXPECT_NEAR(r.total_fraction,
                    r.next_line_fraction + r.stride_fraction, 1e-12);
    }
    // gzip streams: both caches must show nonzero NL coverage, and the
    // D-cache must show some stride coverage is possible but NL heavy.
    EXPECT_GT(icache.next_line_fraction, 0.0);
    EXPECT_GT(dcache.next_line_fraction, 0.0);
    // The I-cache never sees stride coverage (no load PCs).
    EXPECT_EQ(icache.stride_fraction, 0.0);
}

TEST(Experiment, StrideCoverageAppearsOnStridedBenchmark)
{
    auto w = workload::make_benchmark("applu");
    const ExperimentResult run = run_experiment(*w, small_config());
    const auto points = compute_inflection(model70());
    const auto dcache = prefetch::analyze_prefetchability(
        run.dcache.intervals, points);
    EXPECT_GT(dcache.stride_fraction, 0.0);
}

TEST(Experiment, GeneralizedModelEndToEnd)
{
    auto w = workload::make_benchmark("ammp");
    ExperimentConfig config = small_config();
    const ExperimentResult run = run_experiment(*w, config);

    for (power::TechNode node : power::all_nodes()) {
        GeneralizedModelInputs inputs;
        inputs.tech = power::node_params(node);
        const GeneralizedModelResult r =
            run_generalized_model(inputs, run.dcache.intervals);
        // Inflection points match the direct computation.
        const auto points = compute_inflection(inputs.tech);
        EXPECT_EQ(r.points.drowsy_sleep, points.drowsy_sleep);
        // The hybrid result dominates both single-technique bounds.
        EXPECT_GE(r.opt_hybrid.savings, r.opt_drowsy.savings - 1e-12);
        EXPECT_GE(r.opt_hybrid.savings, r.opt_sleep.savings - 1e-12);
    }
}

TEST(Experiment, Table2TrendHoldsEndToEnd)
{
    // OPT-Hybrid savings must increase monotonically as technology
    // scales 180nm -> 70nm (paper Table 2's headline trend).
    auto w = workload::make_benchmark("gzip");
    const ExperimentResult run = run_experiment(*w, small_config());

    double prev_i = 0.0, prev_d = 0.0;
    for (auto node : {power::TechNode::Nm180, power::TechNode::Nm130,
                      power::TechNode::Nm100, power::TechNode::Nm70}) {
        GeneralizedModelInputs inputs;
        inputs.tech = power::node_params(node);
        const auto icache =
            run_generalized_model(inputs, run.icache.intervals);
        const auto dcache =
            run_generalized_model(inputs, run.dcache.intervals);
        EXPECT_GE(icache.opt_hybrid.savings, prev_i - 1e-9)
            << inputs.tech.name;
        EXPECT_GE(dcache.opt_hybrid.savings, prev_d - 1e-9)
            << inputs.tech.name;
        prev_i = icache.opt_hybrid.savings;
        prev_d = dcache.opt_hybrid.savings;
    }
}

TEST(Experiment, L2CollectionInvariants)
{
    auto w = workload::make_benchmark("gcc");
    ExperimentConfig config = small_config();
    config.collect_l2 = true;
    const ExperimentResult run = run_experiment(*w, config);

    ASSERT_TRUE(run.l2cache.has_value());
    const auto &l2 = run.l2cache->intervals;
    // Frame-time conservation holds for the L2 too.
    EXPECT_EQ(l2.total_length(),
              sim::CacheConfig::alpha_l2().num_frames() * run.core.cycles);
    // The L2 sees exactly the L1 misses.
    EXPECT_EQ(run.l2cache->stats.accesses,
              run.icache.stats.misses + run.dcache.stats.misses);
    // The bound on the mostly-idle L2 dominates the L1 bounds.
    const auto bound = make_opt_hybrid(model70());
    const double l2_savings = evaluate_policy(*bound, l2).savings;
    EXPECT_GE(l2_savings,
              evaluate_policy(*bound, run.dcache.intervals).savings);
    EXPECT_GT(l2_savings, 0.9);
}

TEST(Experiment, L2CollectionOffByDefault)
{
    auto w = workload::make_benchmark("gzip");
    ExperimentConfig config = small_config();
    config.instructions = 20'000;
    const ExperimentResult run = run_experiment(*w, config);
    EXPECT_FALSE(run.l2cache.has_value());
}

TEST(Experiment, StandardExtraEdgesAreSortedAndUnique)
{
    // Downstream consumers — histogram construction and the artifact
    // cache fingerprint — rely on the canonical sorted+deduped form.
    const std::vector<Cycles> &edges = standard_extra_edges();
    ASSERT_FALSE(edges.empty());
    for (std::size_t i = 1; i < edges.size(); ++i)
        EXPECT_LT(edges[i - 1], edges[i]) << "index " << i;
}

TEST(Experiment, RunSuiteCoversAllBenchmarks)
{
    ExperimentConfig config = small_config();
    config.instructions = 50'000;
    const auto results =
        run_suite({"gzip", "ammp"}, config);
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].workload, "gzip");
    EXPECT_EQ(results[1].workload, "ammp");
    for (const auto &r : results) {
        EXPECT_EQ(r.core.instructions, 50'000u);
        EXPECT_GT(r.core.cycles, 0u);
    }
}
