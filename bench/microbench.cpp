/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrate itself:
 * cache access throughput, interval collection, histogram insertion,
 * exact policy evaluation, the stride predictor and the end-to-end
 * pipeline.  These guard the "laptop-scale in seconds" property the
 * bench suite depends on.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "interval/collector.hpp"
#include "prefetch/stride.hpp"
#include "sim/cache.hpp"
#include "trace/trace_io.hpp"
#include "util/binary_io.hpp"
#include "util/edge_index.hpp"
#include "util/flat_map.hpp"
#include "util/random.hpp"
#include "workload/spec_suite.hpp"

namespace {

using namespace leakbound;

void
BM_CacheAccess(benchmark::State &state)
{
    sim::Cache cache(sim::CacheConfig::alpha_l1d());
    util::Rng rng(1);
    // 256KB working set: a realistic hit/miss mix.
    std::vector<Addr> addrs(4096);
    for (auto &a : addrs)
        a = rng.next_below(256 * 1024);
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_IntervalCollect(benchmark::State &state)
{
    auto set = interval::IntervalHistogramSet::with_default_edges();
    interval::IntervalCollector collector(1024, &set);
    util::Rng rng(2);
    Cycle cycle = 0;
    for (auto _ : state) {
        cycle += rng.next_below(16);
        collector.on_access(
            static_cast<FrameId>(rng.next_below(1024)), cycle,
            rng.next_bool(0.9), false, rng.next_bool(0.2));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalCollect);

void
BM_HistogramAdd(benchmark::State &state)
{
    util::Histogram h(interval::IntervalHistogramSet::default_edges());
    util::Rng rng(3);
    for (auto _ : state)
        h.add(rng.next_below(1 << 20));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramAdd);

void
BM_EdgeIndexBin(benchmark::State &state)
{
    // The O(1) dense + log2-jump-table lookup behind Histogram::add.
    const util::EdgeIndex index(
        interval::IntervalHistogramSet::default_edges());
    util::Rng rng(3);
    for (auto _ : state)
        benchmark::DoNotOptimize(index.bin_index(rng.next_below(1 << 20)));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdgeIndexBin);

void
BM_EdgeIndexBinReference(benchmark::State &state)
{
    // The std::upper_bound reference path EdgeIndex replaced; kept
    // benched so the speedup stays visible in BENCH_micro.json.
    const util::EdgeIndex index(
        interval::IntervalHistogramSet::default_edges());
    util::Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            index.bin_index_reference(rng.next_below(1 << 20)));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EdgeIndexBinReference);

void
BM_FlatMapPutGet(benchmark::State &state)
{
    util::FlatMap map(1 << 16);
    util::Rng rng(4);
    for (auto _ : state) {
        const std::uint64_t k = rng.next_below(1 << 18);
        map.put(k, k);
        benchmark::DoNotOptimize(map.get_or(k ^ 1, 0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMapPutGet);

void
BM_StridePredictor(benchmark::State &state)
{
    prefetch::StridePredictor predictor;
    util::Rng rng(5);
    Addr addr = 0x100000;
    for (auto _ : state) {
        const Pc pc = 0x4000 + (rng.next_below(64) << 2);
        addr += 64;
        benchmark::DoNotOptimize(predictor.access(pc, addr));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StridePredictor);

void
BM_PolicyEvaluation(benchmark::State &state)
{
    // Evaluate OPT-Hybrid over a populated histogram set: this is the
    // inner loop of every figure sweep.
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    const auto policy = core::make_opt_hybrid(model);
    auto set = interval::IntervalHistogramSet::with_default_edges(
        policy->thresholds());
    util::Rng rng(6);
    for (int i = 0; i < 100'000; ++i) {
        interval::Interval iv;
        iv.length = rng.next_below(1 << 21);
        iv.ends_in_reuse = rng.next_bool(0.7);
        set.add(iv);
    }
    set.set_run_info(1024, 4'000'000);
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::evaluate_policy(*policy, set));
    }
}
BENCHMARK(BM_PolicyEvaluation);

void
BM_PolicyGrid(benchmark::State &state)
{
    // The sweep binaries' inner loop: a policy x population grid
    // evaluated on the pool (state.range(0) = jobs; 1 = serial).
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    std::vector<core::PolicyPtr> owned;
    owned.push_back(core::make_opt_drowsy(model));
    owned.push_back(core::make_opt_sleep(model, 10'000));
    owned.push_back(core::make_decay_sleep(model, 10'000));
    owned.push_back(core::make_opt_hybrid(model));
    std::vector<Cycles> thresholds;
    std::vector<const core::Policy *> policies;
    for (const auto &p : owned) {
        for (Cycles t : p->thresholds())
            thresholds.push_back(t);
        policies.push_back(p.get());
    }

    std::vector<interval::IntervalHistogramSet> sets;
    util::Rng rng(7);
    for (int s = 0; s < 6; ++s) {
        sets.push_back(
            interval::IntervalHistogramSet::with_default_edges(thresholds));
        for (int i = 0; i < 50'000; ++i) {
            interval::Interval iv;
            iv.length = rng.next_below(1 << 21);
            iv.ends_in_reuse = rng.next_bool(0.7);
            sets.back().add(iv);
        }
        sets.back().set_run_info(1024, 4'000'000);
    }
    std::vector<const interval::IntervalHistogramSet *> set_ptrs;
    for (const auto &set : sets)
        set_ptrs.push_back(&set);

    const unsigned jobs = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::evaluate_policy_grid(policies, set_ptrs, jobs));
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(policies.size() * sets.size()));
}
BENCHMARK(BM_PolicyGrid)->Arg(1)->Arg(4);

void
BM_TraceIoRoundTrip(benchmark::State &state)
{
    // Streaming throughput of the block-buffered trace writer+reader:
    // one iteration writes and reads back a multi-block trace.
    const std::string path =
        (std::filesystem::temp_directory_path() / "lb_microbench_trace.bin")
            .string();
    constexpr std::size_t kRecords = 8 * trace::kBlockRecords;
    util::Rng rng(11);
    std::vector<trace::TimedAccess> records(kRecords);
    for (auto &rec : records) {
        rec.cycle = rng.next_u64();
        rec.pc = rng.next_u64();
        rec.addr = rng.next_u64();
        rec.kind = static_cast<trace::InstrKind>(rng.next_below(3));
    }
    for (auto _ : state) {
        {
            trace::TraceWriter w(path);
            for (const auto &rec : records)
                w.write(rec);
        }
        trace::TraceReader r(path);
        trace::TimedAccess rec;
        std::uint64_t sum = 0;
        while (r.next(rec))
            sum += rec.addr;
        benchmark::DoNotOptimize(sum);
    }
    std::remove(path.c_str());
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kRecords));
    state.SetBytesProcessed(
        state.iterations() *
        static_cast<std::int64_t>(2 * kRecords * trace::kTraceRecordBytes));
}
BENCHMARK(BM_TraceIoRoundTrip);

void
BM_ResultSerialize(benchmark::State &state)
{
    // Artifact-cache payload encode+decode for one benchmark result;
    // this bounds the per-entry overhead of a warm suite load.
    static const core::ExperimentResult result = [] {
        core::ExperimentConfig config;
        config.instructions = 100'000;
        config.extra_edges = core::standard_extra_edges();
        auto w = workload::make_benchmark("gzip");
        return core::run_experiment(*w, config);
    }();
    std::size_t bytes = 0;
    for (auto _ : state) {
        const std::string payload = core::serialize_result(result);
        bytes = payload.size();
        benchmark::DoNotOptimize(core::deserialize_result(payload));
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * bytes));
}
BENCHMARK(BM_ResultSerialize);

void
BM_EndToEndPipeline(benchmark::State &state)
{
    // Instructions-per-second of the full workload->core->interval
    // pipeline on gzip.
    core::ExperimentConfig config;
    config.instructions = 200'000;
    config.extra_edges = core::standard_extra_edges();
    for (auto _ : state) {
        auto w = workload::make_benchmark("gzip");
        benchmark::DoNotOptimize(core::run_experiment(*w, config));
    }
    state.SetItemsProcessed(state.iterations() * config.instructions);
}
BENCHMARK(BM_EndToEndPipeline);

void
BM_ColdSimNsPerInstr(benchmark::State &state)
{
    // Cold simulation cost per instruction, kernel lane vs reference
    // path (arg 0 = kernel, 1 = reference): the A/B behind the
    // "Simulation kernel" section of DESIGN.md.  Reported items/s is
    // instructions/s; invert for ns/instr.
    core::ExperimentConfig config;
    config.instructions = 200'000;
    config.extra_edges = core::standard_extra_edges();
    config.sim_path = state.range(0) == 0 ? sim::SimMode::Kernel
                                          : sim::SimMode::Reference;
    for (auto _ : state) {
        auto w = workload::make_benchmark("gzip");
        benchmark::DoNotOptimize(core::run_experiment(*w, config));
    }
    state.SetItemsProcessed(state.iterations() * config.instructions);
}
BENCHMARK(BM_ColdSimNsPerInstr)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
