/**
 * @file
 * Implementation of the HotLeakage-style subthreshold model.
 */

#include "power/hotleakage.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace leakbound::power {

double
thermal_voltage(double kelvin)
{
    // kT/q with k/q = 8.617333e-5 V/K.
    return 8.617333262e-5 * kelvin;
}

double
subthreshold_current(const LeakageInputs &in)
{
    const double vt = thermal_voltage(in.temperature_k);
    // Vgs = 0 for the nominally-off transistor; Vds = Vdd.
    const double exponent = (0.0 - in.vth) / (in.subthreshold_swing_n * vt);
    const double drain_term = 1.0 - std::exp(-in.vdd / vt);
    // Prefactor mu0*Cox*(W/L)*vT^2*e^1.8 folded to width_factor*vT^2*e^1.8.
    const double prefactor =
        in.width_factor * vt * vt * std::exp(1.8);
    return prefactor * std::exp(exponent) * drain_term;
}

double
line_leakage_power(const LeakageInputs &in)
{
    return in.vdd * subthreshold_current(in) *
           static_cast<double>(in.transistors_per_line);
}

double
drowsy_ratio(const LeakageInputs &in, double vdd_low, double dibl_coeff)
{
    if (vdd_low <= 0.0 || vdd_low >= in.vdd) {
        util::fatal("drowsy_ratio: vdd_low (", vdd_low,
                    ") must be in (0, vdd=", in.vdd, ")");
    }
    LeakageInputs low = in;
    low.vdd = vdd_low;
    // Lowering Vds raises the effective threshold via reduced DIBL.
    low.vth = in.vth + dibl_coeff * (in.vdd - vdd_low);
    const double high_power = line_leakage_power(in);
    const double low_power = line_leakage_power(low);
    return low_power / high_power;
}

TechnologyParams
derive_technology(const std::string &name, double feature_nm,
                  const LeakageInputs &in, double vdd_low,
                  Energy refetch_energy)
{
    TechnologyParams p;
    p.name = name;
    p.feature_nm = feature_nm;
    p.vdd = in.vdd;
    p.vth = in.vth;
    p.active_power = 1.0;
    p.drowsy_power = drowsy_ratio(in, vdd_low);
    p.sleep_power = 0.0;
    p.refetch_energy = refetch_energy;
    p.validate();
    return p;
}

} // namespace leakbound::power
