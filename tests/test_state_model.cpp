/**
 * @file
 * Tests of the Figure 6 state model: the cycle-by-cycle simulation
 * must reproduce the closed forms of core::EnergyModel exactly (this
 * is the proof that Eq. 1-2 are the state machine's integrals), the
 * edge weights must match their definitions, and schedules must
 * respect the graph (no drowsy<->sleep edge).
 */

#include <gtest/gtest.h>

#include "core/energy_model.hpp"
#include "core/state_model.hpp"
#include "power/technology.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::IntervalKind;

namespace {

const power::TechnologyParams &
tech70()
{
    return power::node_params(power::TechNode::Nm70);
}

} // namespace

TEST(StateModel, StatePowersMatchTechnology)
{
    const StateModel sm(tech70());
    EXPECT_DOUBLE_EQ(sm.state_power(Mode::Active), 1.0);
    EXPECT_NEAR(sm.state_power(Mode::Drowsy), 1.0 / 3.0, 1e-12);
    EXPECT_DOUBLE_EQ(sm.state_power(Mode::Sleep), 0.0);
}

TEST(StateModel, EdgeWeightsMatchDefinitions)
{
    const TransitionEnergies e = transition_energies(tech70());
    const auto &t = tech70().timings;
    EXPECT_DOUBLE_EQ(e.active_to_drowsy, static_cast<double>(t.d1));
    EXPECT_DOUBLE_EQ(e.drowsy_to_active, static_cast<double>(t.d3));
    EXPECT_DOUBLE_EQ(e.active_to_sleep, static_cast<double>(t.s1));
    EXPECT_NEAR(e.sleep_to_active,
                static_cast<double>(t.s3 + t.s4) + tech70().refetch_energy,
                1e-12);
    const TransitionEnergies free =
        transition_energies(tech70(), /*charge_refetch=*/false);
    EXPECT_NEAR(free.sleep_to_active, static_cast<double>(t.s3 + t.s4),
                1e-12);
}

/**
 * Parameterized cross-validation: per-cycle accumulation equals the
 * closed form for every mode/kind over a sweep of lengths.
 */
class StateVsClosedForm : public ::testing::TestWithParam<power::TechNode>
{
};

TEST_P(StateVsClosedForm, Everywhere)
{
    const auto &tech = power::node_params(GetParam());
    const StateModel sm(tech);
    const EnergyModel em(tech);

    for (Mode mode : {Mode::Active, Mode::Drowsy, Mode::Sleep}) {
        for (IntervalKind kind :
             {IntervalKind::Inner, IntervalKind::Leading,
              IntervalKind::Trailing, IntervalKind::Untouched}) {
            for (Cycles len :
                 {0ULL, 1ULL, 6ULL, 7ULL, 30ULL, 37ULL, 38ULL, 100ULL,
                  1057ULL, 1058ULL, 5000ULL, 65536ULL}) {
                if (!em.applicable(mode, len, kind))
                    continue;
                for (bool cd : {true, false}) {
                    EXPECT_NEAR(sm.simulate_interval(mode, len, kind, cd),
                                em.energy(mode, len, kind, cd),
                                1e-7 * std::max<double>(1.0, len))
                        << mode_name(mode) << " "
                        << interval::kind_name(kind) << " len=" << len
                        << " cd=" << cd;
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllNodes, StateVsClosedForm,
    ::testing::Values(power::TechNode::Nm70, power::TechNode::Nm100,
                      power::TechNode::Nm130, power::TechNode::Nm180),
    [](const ::testing::TestParamInfo<power::TechNode> &info) {
        const std::string n = power::node_params(info.param).name;
        return "Nm" + n.substr(0, n.size() - 2);
    });

TEST(StateModel, ScheduleSingleDrowsyResidency)
{
    // Active -> Drowsy (resident R) -> Active must equal the inner
    // drowsy closed form of an interval of length d1 + R + d3.
    const StateModel sm(tech70());
    const EnergyModel em(tech70());
    const auto &t = tech70().timings;
    const Cycles resident = 100;
    const Energy via_schedule =
        sm.simulate_schedule({{Mode::Drowsy, resident}});
    const Energy via_closed =
        em.energy(Mode::Drowsy, t.d1 + resident + t.d3,
                  IntervalKind::Inner);
    EXPECT_NEAR(via_schedule, via_closed, 1e-9);
}

TEST(StateModel, ScheduleSleepResidency)
{
    const StateModel sm(tech70());
    const EnergyModel em(tech70());
    const auto &t = tech70().timings;
    const Cycles resident = 5000;
    const Energy via_schedule =
        sm.simulate_schedule({{Mode::Sleep, resident}});
    const Energy via_closed =
        em.energy(Mode::Sleep, t.s1 + resident + t.s3 + t.s4,
                  IntervalKind::Inner);
    EXPECT_NEAR(via_schedule, via_closed, 1e-9);
}

TEST(StateModel, ScheduleChargesEachTransitionOnce)
{
    // Active(10) -> Drowsy(20) -> Active(10) -> Drowsy(5) -> close.
    const StateModel sm(tech70());
    const TransitionEnergies e = transition_energies(tech70());
    const double expected = 10.0 + e.active_to_drowsy +
                            20.0 / 3.0 + e.drowsy_to_active + 10.0 +
                            e.active_to_drowsy + 5.0 / 3.0 +
                            e.drowsy_to_active;
    const Energy got = sm.simulate_schedule({{Mode::Active, 10},
                                             {Mode::Drowsy, 20},
                                             {Mode::Active, 10},
                                             {Mode::Drowsy, 5}});
    EXPECT_NEAR(got, expected, 1e-9);
}

TEST(StateModel, NoDrowsySleepEdgeInFigure6)
{
    // The Fig. 6 graph has no direct drowsy<->sleep edge; such a
    // schedule is an internal contract violation.
    const StateModel sm(tech70());
    EXPECT_DEATH((void)sm.simulate_schedule(
                     {{Mode::Drowsy, 10}, {Mode::Sleep, 10}}),
                 "edge");
}

TEST(StateModel, MidIntervalSwitchNeverBeatsSingleMode)
{
    // Section 3.1's "interval atomicity" argument: splitting an
    // interval between modes (passing through Active, as the graph
    // requires) cannot beat committing to the best single mode.
    const StateModel sm(tech70());
    const EnergyModel em(tech70());
    const auto &t = tech70().timings;

    for (Cycles total : {200ULL, 1200ULL, 4000ULL, 60'000ULL}) {
        const Energy best = em.optimal_energy(total, IntervalKind::Inner);
        // Drowsy-then-sleep split with an Active hop between.
        for (Cycles first = 10; first + 100 < total; first += total / 7) {
            const Cycles d_res =
                first > t.drowsy_overhead() ? first - t.drowsy_overhead()
                                            : 0;
            const Cycles rest = total - first;
            if (rest <= t.sleep_overhead() + 1)
                continue;
            const Cycles s_res = rest - t.sleep_overhead() - 1;
            const Energy split = sm.simulate_schedule(
                {{Mode::Drowsy, d_res},
                 {Mode::Active, 1},
                 {Mode::Sleep, s_res}});
            EXPECT_GE(split, best - 1e-9)
                << "total=" << total << " first=" << first;
        }
    }
}
