/**
 * @file
 * Analytic exact-LRU fast path (DESIGN.md §"Analytic engine").
 *
 * The whole simulated system — loop-program workload, in-order core,
 * cache hierarchy, interval collectors, prefetch monitors — is a
 * deterministic state machine.  When the workload's instruction stream
 * is exactly periodic (constant trip counts, periodic data patterns)
 * and every replacement policy is RNG-free, the system's state becomes
 * periodic too, up to a uniform time translation: after warm-up,
 * period n+1 replays period n shifted by a constant cycle delta.
 *
 * The fast path detects one such recurrence by comparing canonical,
 * translation-invariant state signatures at checkpoints, then *skips*
 * the remaining whole periods: histogram contents grow by an integer
 * multiple of the per-period delta, timestamps are warped forward, and
 * only the sub-period tail is simulated.  Because a skip is committed
 * only after proving full state equality, the emitted results are
 * byte-identical to plain simulation by construction — there is no
 * approximation to validate, only the equality check.  Workloads that
 * never recur (or are rejected by the classifier) silently complete as
 * ordinary simulations: the fallback is exit-code-neutral and exact.
 */

#ifndef LEAKBOUND_ANALYTIC_ENGINE_HPP
#define LEAKBOUND_ANALYTIC_ENGINE_HPP

#include <cstdint>
#include <optional>
#include <vector>

#include "cpu/inorder_core.hpp"
#include "interval/collector.hpp"
#include "interval/interval_histogram.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/stride.hpp"
#include "sim/hierarchy.hpp"
#include "workload/workload.hpp"

namespace leakbound::analytic {

/**
 * Is (workload, hierarchy, keep_raw) eligible for the fast path?
 * Returns the workload's analytic profile when:
 *  - the workload claims a deterministic periodic stream
 *    (Workload::analytic_profile()), and
 *  - no cache level uses RNG-driven replacement (Random), and
 *  - raw interval retention is off (raw lists cannot be extrapolated).
 * Eligibility is a routing decision, not a correctness claim: an
 * eligible run that never exhibits a provable recurrence still
 * completes as a plain simulation.
 */
std::optional<workload::AnalyticProfile>
analyzable_profile(const workload::Workload &workload,
                   const sim::HierarchyConfig &hierarchy, bool keep_raw);

/** Boolean convenience over analyzable_profile(). */
bool is_analyzable(const workload::Workload &workload,
                   const sim::HierarchyConfig &hierarchy, bool keep_raw);

/** Non-owning references to the experiment rig the fast path observes. */
struct FastPathRefs
{
    workload::Workload *workload = nullptr;
    cpu::InOrderCore *core = nullptr;
    sim::Hierarchy *hierarchy = nullptr;
    interval::IntervalCollector *icollector = nullptr;
    interval::IntervalCollector *dcollector = nullptr;
    interval::IntervalCollector *l2collector = nullptr; ///< optional
    prefetch::NextLineMonitor *imonitor = nullptr;
    prefetch::NextLineMonitor *dmonitor = nullptr;
    prefetch::StridePredictor *stride = nullptr;
    interval::IntervalHistogramSet *isink = nullptr;
    interval::IntervalHistogramSet *dsink = nullptr;
    interval::IntervalHistogramSet *l2sink = nullptr; ///< optional
};

/**
 * The periodicity detector and period skipper.  Usage (see
 * core/experiment.cpp):
 *
 *   PeriodicFastPath fp(refs, N, profile.period_instructions);
 *   CoreRunStats s1 = core.run(N, fp.hook());
 *   CoreRunStats stats = fp.finish(s1);   // skips + tail, or s1 as-is
 *   fp.add_skipped(l1i_stats, l1d_stats, l2_stats);
 */
class PeriodicFastPath
{
  public:
    /**
     * @param refs the rig (all non-optional pointers must be set)
     * @param total_instructions the run's full instruction budget
     * @param period_instructions the workload's structural period
     */
    PeriodicFastPath(const FastPathRefs &refs,
                     std::uint64_t total_instructions,
                     std::uint64_t period_instructions);

    /**
     * The between-groups observer to pass to InOrderCore::run().  Takes
     * state signatures at period-aligned checkpoints, compares against
     * a Brent-style moving anchor, and on a proven recurrence commits
     * the skip (scaled histogram deltas + timestamp warps) and stops
     * the run.
     */
    cpu::InOrderCore::GroupHook hook();

    /**
     * Complete the run: when a skip was committed, simulate the
     * sub-period tail and return the combined statistics (per-field
     * s1 + k * period-delta + tail); otherwise return @p s1 unchanged
     * (the run already completed normally).
     */
    cpu::CoreRunStats finish(const cpu::CoreRunStats &s1);

    /** Whether a recurrence was proven and periods were skipped. */
    bool committed() const { return committed_; }

    /** Add the skipped periods' cache traffic into per-level stats. */
    void add_skipped(sim::CacheStats &l1i, sim::CacheStats &l1d,
                     sim::CacheStats &l2) const;

  private:
    /** A checkpoint the detector may commit against. */
    struct Anchor
    {
        std::vector<std::uint64_t> signature;
        std::uint64_t checkpoint_index = 0;
        cpu::CoreRunStats core;
        sim::CacheStats l1i, l1d, l2;
        interval::IntervalHistogramSet isink;
        interval::IntervalHistogramSet dsink;
        std::optional<interval::IntervalHistogramSet> l2sink;
    };

    bool on_checkpoint(const cpu::CoreRunStats &stats);
    void capture_signature(Cycle now, std::vector<std::uint64_t> &out) const;
    void take_anchor(const cpu::CoreRunStats &stats);
    void commit(const cpu::CoreRunStats &stats);

    FastPathRefs refs_;
    std::uint64_t total_;
    std::uint64_t step_;        ///< checkpoint spacing (multiple of L)
    std::uint64_t next_target_; ///< next checkpoint threshold
    std::uint64_t checkpoints_taken_ = 0;
    bool done_ = false;         ///< stop checkpointing (committed or gave up)
    bool committed_ = false;

    std::optional<Anchor> anchor_;
    std::vector<std::uint64_t> scratch_sig_;

    // Set by commit(): the per-field totals of the skipped periods.
    cpu::CoreRunStats skipped_core_{};
    sim::CacheStats skipped_l1i_{}, skipped_l1d_{}, skipped_l2_{};
};

} // namespace leakbound::analytic

#endif // LEAKBOUND_ANALYTIC_ENGINE_HPP
