/**
 * @file
 * Reproduces paper Figure 7: sleep-only vs hybrid (sleep+drowsy)
 * leakage savings as the minimum sleepable interval length sweeps from
 * the 70nm inflection point (1057) to 10000 cycles, averaged over the
 * six benchmarks, for both L1 caches.
 *
 * Paper shape to reproduce: hybrid >= sleep everywhere, the gap
 * narrows as the threshold approaches the inflection point, and the
 * gap is smaller in the data cache than in the instruction cache.
 */

#include <iterator>

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("fig7_hybrid_sweep",
                        "Figure 7: hybrid vs sleep-only threshold sweep");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    const Cycles sweep[] = {1057, 1200, 1500, 2000, 3000, 4000, 5000,
                            6000, 7000, 8000, 9000, 10000};

    // The whole threshold sweep is one policy grid: rows alternate
    // sleep-only / hybrid per threshold, evaluated in one pooled pass.
    std::vector<core::PolicyPtr> sweep_policies;
    for (Cycles threshold : sweep) {
        sweep_policies.push_back(core::make_opt_sleep(model, threshold));
        sweep_policies.push_back(core::make_hybrid(model, threshold));
    }
    std::vector<const core::Policy *> policies;
    for (const auto &p : sweep_policies)
        policies.push_back(p.get());

    for (CacheSide side : {CacheSide::Instruction, CacheSide::Data}) {
        const char *label = side == CacheSide::Instruction
                                ? "(a) Instruction Cache"
                                : "(b) Data Cache";
        util::Table table(std::string("Figure 7") + label +
                          ": savings vs minimum sleep interval, 70nm");
        table.set_header(
            {"interval (cycles)", "Sleep", "Sleep+Drowsy", "gap"});
        const GridEvaluation grid =
            evaluate_grid(policies, runs, side, cli);
        for (std::size_t t = 0; t < std::size(sweep); ++t) {
            const auto &sleep_only = grid.averages[2 * t];
            const auto &hybrid = grid.averages[2 * t + 1];
            table.add_row(
                {util::format_commas(sweep[t]), pct(sleep_only.savings),
                 pct(hybrid.savings),
                 util::format_percent(hybrid.savings -
                                      sleep_only.savings)});
        }
        emit(table, cli,
             side == CacheSide::Instruction ? "fig7a_icache"
                                            : "fig7b_dcache");
    }

    std::printf(
        "paper shape: Sleep+Drowsy dominates Sleep alone, the gap\n"
        "shrinks toward the 1057-cycle inflection point, and the gap is\n"
        "smaller for the data cache (its intervals are longer, so sleep\n"
        "does most of the work there).\n");
    return bench::finish(cli);
}
