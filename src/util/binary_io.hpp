/**
 * @file
 * Little-endian binary (de)serialization primitives and atomic file
 * replacement, shared by the experiment artifact cache and the bench
 * report writers.
 *
 * BinaryWriter appends fixed-width little-endian fields to an
 * in-memory byte buffer; BinaryReader consumes the same layout with
 * bounds checking on every read.  A reader never trusts its input:
 * running past the end (or an oversized length prefix) latches a
 * failure flag instead of reading garbage, so corrupt or truncated
 * cache entries are detected and discarded rather than propagated.
 */

#ifndef LEAKBOUND_UTIL_BINARY_IO_HPP
#define LEAKBOUND_UTIL_BINARY_IO_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util {

/** Append-only little-endian byte buffer builder. */
class BinaryWriter
{
  public:
    /** Append one byte. */
    void put_u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

    /** Append a 32-bit value, little-endian. */
    void put_u32(std::uint32_t v);

    /** Append a 64-bit value, little-endian. */
    void put_u64(std::uint64_t v);

    /** Append a double via its IEEE-754 bit pattern. */
    void put_double(double v);

    /** Append a length-prefixed (u64) byte string. */
    void put_string(const std::string &s);

    /** Append a length-prefixed (u64) vector of u64 values. */
    void put_u64_vector(const std::vector<std::uint64_t> &v);

    /** The bytes written so far. */
    const std::string &bytes() const { return out_; }

    /** Move the buffer out (the writer is empty afterwards). */
    std::string take() { return std::move(out_); }

    /** Bytes written so far. */
    std::size_t size() const { return out_.size(); }

  private:
    std::string out_;
};

/**
 * Bounds-checked reader over a byte span (not owned).  Every read
 * validates the remaining length first; a short or malformed input
 * sets failed() and makes all subsequent reads return zero values, so
 * callers can decode an entire record and check failed() once.
 */
class BinaryReader
{
  public:
    /** Read from @p data (must outlive the reader). */
    BinaryReader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    /** Read from a string's contents (must outlive the reader). */
    explicit BinaryReader(const std::string &bytes)
        : BinaryReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t get_u8();
    std::uint32_t get_u32();
    std::uint64_t get_u64();
    double get_double();

    /** Read a length-prefixed byte string (empty on failure). */
    std::string get_string();

    /** Read a length-prefixed u64 vector (empty on failure). */
    std::vector<std::uint64_t> get_u64_vector();

    /** Whether any read so far ran out of bounds. */
    bool failed() const { return failed_; }

    /** Bytes not yet consumed. */
    std::size_t remaining() const { return size_ - pos_; }

    /** Fail unless the input was consumed exactly. */
    bool at_end() const { return !failed_ && pos_ == size_; }

  private:
    /** Check that @p n more bytes exist; latch failed_ otherwise. */
    bool want(std::size_t n);

    const char *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    bool failed_ = false;
};

/**
 * Write @p contents to @p path atomically: write `<path>.tmp.<pid>`,
 * fsync, rename over @p path, then fsync the containing directory so
 * the publication itself survives power loss.  Readers of @p path
 * therefore see either the old or the new contents, never a torn mix,
 * and a "published" entry cannot silently vanish on crash.  Never fatal:
 * the temporary is cleaned up and an ErrorKind::IoError Status
 * describes what failed, so callers choose between degrading (cache
 * store), recording the failure (report flush), and dying (CLI-level
 * callers that cannot proceed).
 */
Status write_file_atomic(const std::string &path,
                         const std::string &contents);

/**
 * Read an entire file into @p out.  Returns ErrorKind::NotFound when
 * the file does not exist (cache probes routinely miss) and
 * ErrorKind::IoError for open/read failures on a file that does;
 * @p out is unspecified on error.
 */
Status read_file_bytes(const std::string &path, std::string &out);

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_BINARY_IO_HPP
