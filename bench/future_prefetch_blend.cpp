/**
 * @file
 * The paper's stated future work (Section 5.2): "the best design
 * trade-off of power and performance is somewhere in between the
 * Prefetch-A and Prefetch-B methods".
 *
 * Prefetch-C(T) drowses non-prefetchable intervals only beyond T
 * cycles: T = a reproduces Prefetch-B (max power saving), T = inf
 * reproduces Prefetch-A (no unhidden wakeups).  Each drowsed
 * non-prefetchable interval costs an unhidden d3-cycle wakeup stall at
 * its closing access — the performance proxy — so sweeping T traces
 * the power/performance Pareto curve the paper pointed at.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("future_prefetch_blend",
                        "future work: the Prefetch A..B design space");
    cli.parse(argc, argv);

    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    using interval::PrefetchClass;
    const std::vector<PrefetchClass> dcls = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};

    // The blend thresholds under study; gather their histogram edges
    // before simulating.
    const Cycles sweep[] = {6, 100, 1000, 10'000, 100'000};
    std::vector<Cycles> extra;
    for (Cycles t : sweep) {
        for (Cycles e :
             core::make_prefetch_blend(model, t, dcls)->thresholds()) {
            extra.push_back(e);
        }
    }
    const auto runs =
        run_standard_suite(cli, extra);

    // Prefetch-A's drowsy tally counts only *hidden* (prefetch-covered)
    // drowses; subtracting it from a blend's tally isolates the
    // unhidden non-prefetchable wakeups, the performance cost.
    const auto a_policy =
        core::make_prefetch(model, core::PrefetchVariant::A, dcls);
    const auto a_result =
        suite_average(*a_policy, runs, CacheSide::Data);
    const Cycles d3 = model.tech().timings.d3;

    util::Table table("Prefetch-C(T) power/performance trade-off "
                      "(D-cache, 70nm, suite average)");
    table.set_header({"scheme", "savings", "unhidden wakeups",
                      "stall-cycle proxy"});
    table.add_row({"Prefetch-A (= C(inf))", pct(a_result.savings), "0",
                   "0"});
    for (Cycles t : sweep) {
        const auto blend = core::make_prefetch_blend(model, t, dcls);
        const auto r = suite_average(*blend, runs, CacheSide::Data);
        const std::uint64_t wakeups =
            r.drowsy_intervals > a_result.drowsy_intervals
                ? r.drowsy_intervals - a_result.drowsy_intervals
                : 0;
        std::string label = blend->name();
        if (t == 6)
            label += " (= B)";
        table.add_row({label, pct(r.savings),
                       util::format_commas(wakeups),
                       util::format_commas(wakeups * d3)});
    }
    emit(table, cli, "future_prefetch_blend");

    std::printf(
        "raising T sheds most of the wakeup stalls long before it\n"
        "sheds much power: long non-prefetchable intervals carry the\n"
        "energy, short ones carry the wakeup count — the in-between\n"
        "design point the paper anticipated.\n");
    return bench::finish(cli);
}
