/**
 * @file
 * Tests of the interval histogram set: cell partitioning by
 * (kind, prefetch class, reuse), exact count/sum bookkeeping, merge,
 * the default edge list's coverage of every stock decision threshold,
 * and the bucket count helpers used by the Fig. 9 analysis.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/experiment.hpp"
#include "interval/interval_histogram.hpp"

using namespace leakbound;
using namespace leakbound::interval;

namespace {

Interval
make_interval(Cycles len, IntervalKind kind = IntervalKind::Inner,
              PrefetchClass pf = PrefetchClass::NonPrefetchable,
              bool reuse = true)
{
    Interval iv;
    iv.length = len;
    iv.kind = kind;
    iv.pf = pf;
    iv.ends_in_reuse = reuse;
    return iv;
}

} // namespace

TEST(IntervalHistogram, TotalsTrackAdds)
{
    auto set = IntervalHistogramSet::with_default_edges();
    set.add(make_interval(10));
    set.add(make_interval(2000, IntervalKind::Inner,
                          PrefetchClass::NextLine));
    set.add(make_interval(500, IntervalKind::Trailing));
    set.add(make_interval(100, IntervalKind::Leading));
    set.add(make_interval(99, IntervalKind::Untouched));
    EXPECT_EQ(set.total_intervals(), 5u);
    EXPECT_EQ(set.total_inner_intervals(), 2u);
    EXPECT_EQ(set.total_length(), 10u + 2000 + 500 + 100 + 99);
}

TEST(IntervalHistogram, CellsCarryFullIdentity)
{
    auto set = IntervalHistogramSet::with_default_edges();
    set.add(make_interval(2000, IntervalKind::Inner, PrefetchClass::Stride,
                          false));
    bool seen = false;
    set.for_each_cell([&](const CellRef &cell) {
        EXPECT_FALSE(seen) << "exactly one populated cell expected";
        seen = true;
        EXPECT_EQ(cell.kind, IntervalKind::Inner);
        EXPECT_EQ(cell.pf, PrefetchClass::Stride);
        EXPECT_FALSE(cell.ends_in_reuse);
        EXPECT_LE(cell.lower, 2000u);
        EXPECT_GT(cell.upper, 2000u);
        EXPECT_EQ(cell.count, 1u);
        EXPECT_EQ(cell.sum, 2000u);
    });
    EXPECT_TRUE(seen);
}

TEST(IntervalHistogram, ReuseVariantsAreSeparated)
{
    auto set = IntervalHistogramSet::with_default_edges();
    set.add(make_interval(5000, IntervalKind::Inner,
                          PrefetchClass::NonPrefetchable, true));
    set.add(make_interval(5000, IntervalKind::Inner,
                          PrefetchClass::NonPrefetchable, false));
    int cells = 0;
    set.for_each_cell([&](const CellRef &cell) {
        ++cells;
        EXPECT_EQ(cell.count, 1u);
    });
    EXPECT_EQ(cells, 2);
}

TEST(IntervalHistogram, MergeAddsCellwise)
{
    auto a = IntervalHistogramSet::with_default_edges();
    auto b = IntervalHistogramSet::with_default_edges();
    a.add(make_interval(100));
    b.add(make_interval(100));
    b.add(make_interval(7777, IntervalKind::Trailing));
    a.merge(b);
    EXPECT_EQ(a.total_intervals(), 3u);
    EXPECT_EQ(a.total_length(), 100u + 100 + 7777);
}

TEST(IntervalHistogram, DefaultEdgesContainEveryStockThreshold)
{
    // The contract the exact evaluator rests on: every decision
    // boundary of every stock experiment policy is a bin edge once
    // standard_extra_edges() is folded in.
    const auto &extra = core::standard_extra_edges();
    const auto edges = IntervalHistogramSet::default_edges(extra);
    for (Cycles t : extra) {
        EXPECT_TRUE(std::binary_search(edges.begin(), edges.end(), t))
            << "missing threshold " << t;
    }
    // The paper's fixed landmarks must be edges even without extras.
    const auto bare = IntervalHistogramSet::default_edges();
    for (Cycles t : {0ULL, 6ULL, 7ULL, 37ULL, 1057ULL, 5088ULL, 10328ULL,
                     103084ULL, 10000ULL, 10001ULL}) {
        EXPECT_TRUE(std::binary_search(bare.begin(), bare.end(), t))
            << "missing landmark " << t;
    }
}

TEST(IntervalHistogram, EdgesAreSortedUnique)
{
    const auto edges =
        IntervalHistogramSet::default_edges({9999, 9999, 5});
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
    EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end());
    EXPECT_EQ(edges.front(), 0u);
}

TEST(IntervalHistogram, InnerCountInRangeByClass)
{
    auto set = IntervalHistogramSet::with_default_edges();
    set.add(make_interval(100, IntervalKind::Inner,
                          PrefetchClass::NextLine));
    set.add(make_interval(200, IntervalKind::Inner,
                          PrefetchClass::NextLine, false));
    set.add(make_interval(5000, IntervalKind::Inner,
                          PrefetchClass::Stride));
    set.add(make_interval(3, IntervalKind::Inner));
    // Non-inner intervals never count.
    set.add(make_interval(150, IntervalKind::Trailing));

    EXPECT_EQ(set.inner_count_in(PrefetchClass::NextLine, 7, 1058), 2u);
    EXPECT_EQ(set.inner_count_in(PrefetchClass::Stride, 1058, ~0ULL), 1u);
    EXPECT_EQ(set.inner_count_in(0, 7), 1u);
    EXPECT_EQ(set.inner_count_in(0, ~0ULL), 4u);
}

TEST(IntervalHistogram, RunInfoFeedsBaseline)
{
    auto set = IntervalHistogramSet::with_default_edges();
    set.set_run_info(1024, 2'000'000);
    EXPECT_DOUBLE_EQ(set.baseline_energy(), 1024.0 * 2'000'000.0);
}

TEST(IntervalHistogramDeath, MergeRequiresSameEdges)
{
    auto a = IntervalHistogramSet::with_default_edges();
    IntervalHistogramSet b(std::vector<std::uint64_t>{0, 10});
    EXPECT_DEATH(a.merge(b), "edges");
}
