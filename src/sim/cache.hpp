/**
 * @file
 * Set-associative cache model (block-granular, tag-only).
 *
 * The model tracks residency, replacement and statistics; data values
 * are irrelevant to the leakage study.  Frames are identified by
 * FrameId = set * ways + way, the identifier the interval machinery
 * keys on (leakage is a property of the physical frame, not of the
 * block resident in it).
 */

#ifndef LEAKBOUND_SIM_CACHE_HPP
#define LEAKBOUND_SIM_CACHE_HPP

#include <memory>
#include <vector>

#include "sim/cache_config.hpp"
#include "sim/replacement.hpp"
#include "util/types.hpp"

namespace leakbound::sim {

/** Outcome of one cache access. */
struct AccessResult
{
    bool hit = false;          ///< block was resident
    FrameId frame = kInvalidFrame; ///< frame accessed (or filled)
    bool evicted = false;      ///< a valid block was displaced
    Addr victim_block = kInvalidAddr; ///< displaced block number
};

/** Running cache statistics. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;

    /** misses / accesses (0 when idle). */
    double miss_rate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

/**
 * One cache level.  Accesses are by byte address; allocate-on-miss,
 * no inclusion/exclusion enforcement (the hierarchy composes levels).
 */
class Cache
{
  public:
    /** @param config validated geometry; @param seed for Random repl. */
    explicit Cache(const CacheConfig &config, std::uint64_t seed = 1);

    /** Access byte address @p addr: hit or allocate. */
    AccessResult access(Addr addr);

    /**
     * Frame currently holding @p block (a block number, not a byte
     * address); kInvalidFrame when not resident.
     */
    FrameId frame_of_block(Addr block) const;

    /** Block number resident in @p frame; kInvalidAddr when invalid. */
    Addr block_in_frame(FrameId frame) const;

    /** Geometry. */
    const CacheConfig &config() const { return config_; }

    /** Physical frame count. */
    std::uint64_t num_frames() const { return config_.num_frames(); }

    /** Statistics so far. */
    const CacheStats &stats() const { return stats_; }

    /** Invalidate everything and clear statistics. */
    void reset();

    /**
     * Append the cache's decision state (resident tags, validity, and
     * the replacement policy's canonical recency order) to @p out;
     * @return false when the replacement policy is not snapshot-able
     * (Random).  Statistics are excluded — they never influence future
     * behaviour.
     */
    bool append_state(std::vector<std::uint64_t> &out) const;

  private:
    CacheConfig config_;
    // Geometry precomputed once at construction (all geometries are
    // validated powers of two): block = addr >> line_shift_,
    // set = block & set_mask_.
    std::uint32_t ways_ = 1;
    std::uint32_t line_shift_ = 0;
    std::uint64_t set_mask_ = 0;
    // Frame state stored structure-of-arrays: the hit scan touches only
    // the tag array, laid out contiguously per set.
    std::vector<Addr> tags_;          ///< resident block number per frame
    std::vector<std::uint8_t> valid_; ///< validity per frame
    std::unique_ptr<ReplacementPolicy> repl_;
    CacheStats stats_;
    std::uint64_t seed_;
};

} // namespace leakbound::sim

#endif // LEAKBOUND_SIM_CACHE_HPP
