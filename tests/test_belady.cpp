/**
 * @file
 * Tests of the offline Belady-MIN simulator: exactness on crafted
 * sequences and the optimality property against every online
 * replacement policy on seeded random streams.
 */

#include <gtest/gtest.h>

#include "sim/belady.hpp"
#include "sim/cache.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::sim;

namespace {

/** Single-set, 2-way, 64B-line cache (classic MIN textbook setting). */
CacheConfig
one_set()
{
    CacheConfig c;
    c.name = "oneset";
    c.size_bytes = 128;
    c.line_bytes = 64;
    c.associativity = 2;
    return c;
}

std::vector<Addr>
blocks(std::initializer_list<Addr> ids)
{
    std::vector<Addr> out;
    for (Addr b : ids)
        out.push_back(b * 64);
    return out;
}

std::uint64_t
online_misses(const CacheConfig &config, const std::vector<Addr> &addrs,
              std::uint64_t seed = 1)
{
    Cache cache(config, seed);
    for (Addr a : addrs)
        cache.access(a);
    return cache.stats().misses;
}

} // namespace

TEST(Belady, TextbookSequenceBeatsLru)
{
    // A B C A B C ... with 2 ways: LRU thrashes (every access after
    // warmup misses); MIN keeps A resident and alternates the other
    // way, hitting A every round.
    std::vector<Addr> seq;
    for (int round = 0; round < 10; ++round)
        for (Addr b : {0, 1, 2})
            seq.push_back(b * 64);

    const BeladyResult opt = simulate_belady(one_set(), seq);
    CacheConfig lru = one_set();
    const std::uint64_t lru_misses = online_misses(lru, seq);

    EXPECT_LT(opt.stats.misses, lru_misses);
    // MIN on a cyclic loop of N blocks with C ways hits (C-1)/(N-1)
    // of the non-compulsory accesses: here 1/2 of 28, i.e. 14 hits.
    EXPECT_EQ(opt.stats.hits, 14u);
    EXPECT_EQ(opt.stats.misses, 16u);
    EXPECT_EQ(lru_misses, 30u); // LRU thrashes completely
}

TEST(Belady, ExactHitFlags)
{
    // Blocks 0,2,4 map to the single set; sequence 0 2 0 4 0 2:
    // MIN evicts 2 for 4 (2's next use is after 0's), so 0 hits at
    // positions 2 and 4, 2 misses again at position 5.
    const auto seq = blocks({0, 2, 0, 4, 0, 2});
    const BeladyResult r = simulate_belady(one_set(), seq);
    ASSERT_EQ(r.hits.size(), 6u);
    EXPECT_FALSE(r.hits[0]);
    EXPECT_FALSE(r.hits[1]);
    EXPECT_TRUE(r.hits[2]);
    EXPECT_FALSE(r.hits[3]);
    EXPECT_TRUE(r.hits[4]);
    EXPECT_FALSE(r.hits[5]);
    EXPECT_EQ(r.stats.hits, 2u);
    EXPECT_EQ(r.stats.misses, 4u);
}

TEST(Belady, StatsAreConsistent)
{
    util::Rng rng(7);
    std::vector<Addr> seq;
    for (int i = 0; i < 5000; ++i)
        seq.push_back(rng.next_below(512) * 64);
    const BeladyResult r = simulate_belady(one_set(), seq);
    EXPECT_EQ(r.stats.accesses, seq.size());
    EXPECT_EQ(r.stats.hits + r.stats.misses, r.stats.accesses);
    std::uint64_t hit_flags = 0;
    for (bool h : r.hits)
        hit_flags += h;
    EXPECT_EQ(hit_flags, r.stats.hits);
}

/** MIN never misses more than any online policy (the defining bound). */
class BeladyOptimality
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(BeladyOptimality, BoundsEveryOnlinePolicy)
{
    util::Rng rng(GetParam());
    // A mix of loops, strides and random accesses over a small space,
    // on a 4-set 2-way cache.
    CacheConfig config;
    config.size_bytes = 512;
    config.line_bytes = 64;
    config.associativity = 2;

    std::vector<Addr> seq;
    for (int i = 0; i < 20'000; ++i) {
        switch (rng.next_below(3)) {
          case 0:
            seq.push_back((i % 24) * 64); // loop
            break;
          case 1:
            seq.push_back((i * 3 % 96) * 64); // stride
            break;
          default:
            seq.push_back(rng.next_below(64) * 64); // random
            break;
        }
    }

    const BeladyResult opt = simulate_belady(config, seq);
    for (ReplacementKind kind : {ReplacementKind::Lru,
                                 ReplacementKind::Fifo,
                                 ReplacementKind::Random}) {
        CacheConfig online = config;
        online.replacement = kind;
        EXPECT_LE(opt.stats.misses, online_misses(online, seq))
            << replacement_name(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BeladyOptimality,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Belady, EmptyStream)
{
    const BeladyResult r = simulate_belady(one_set(), {});
    EXPECT_EQ(r.stats.accesses, 0u);
    EXPECT_TRUE(r.hits.empty());
}
