/**
 * @file
 * FNV-1a streaming fingerprint hasher.
 *
 * The experiment artifact cache keys entries by a 64-bit fingerprint
 * of everything that determines a simulation's output (workload name,
 * full ExperimentConfig, histogram edge list, format version).  FNV-1a
 * is not cryptographic — the cache defends against *accidents*
 * (version skew, config drift, torn writes), not adversaries — but it
 * is fast, dependency-free, and stable across platforms and runs,
 * which is exactly what a content-addressed filename needs.
 */

#ifndef LEAKBOUND_UTIL_FINGERPRINT_HPP
#define LEAKBOUND_UTIL_FINGERPRINT_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace leakbound::util {

/** Streaming 64-bit FNV-1a hasher. */
class Fingerprint
{
  public:
    /** Absorb raw bytes. */
    void mix_bytes(const void *data, std::size_t size);

    /** Absorb one 64-bit value (as 8 little-endian bytes). */
    void mix_u64(std::uint64_t v);

    /**
     * Absorb a string, length-prefixed so ("ab","c") and ("a","bc")
     * hash differently.
     */
    void mix_string(const std::string &s);

    /** Absorb a u64 vector, length-prefixed. */
    void mix_u64_vector(const std::vector<std::uint64_t> &v);

    /** The digest of everything absorbed so far. */
    std::uint64_t digest() const { return state_; }

  private:
    /** FNV-1a 64-bit offset basis / prime. */
    static constexpr std::uint64_t kOffset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t kPrime = 0x100000001b3ULL;

    std::uint64_t state_ = kOffset;
};

/** One-shot convenience: FNV-1a of a byte buffer. */
std::uint64_t fnv1a(const void *data, std::size_t size);

/** @return @p v as a fixed-width 16-digit lowercase hex string. */
std::string hex64(std::uint64_t v);

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_FINGERPRINT_HPP
