/**
 * @file
 * Leakage management policy interface.
 *
 * A policy decides, per access interval, how the cache frame spends the
 * interval (active / drowsy / sleep / active-then-sleep for decay).
 * Policies report the interval's total energy pointwise; the evaluator
 * (core/savings.hpp) exploits that every policy's energy is piecewise
 * linear in the interval length, with breakpoints published through
 * thresholds(), to compute exact totals from histograms.
 */

#ifndef LEAKBOUND_CORE_POLICY_HPP
#define LEAKBOUND_CORE_POLICY_HPP

#include <memory>
#include <string>
#include <vector>

#include "core/energy_model.hpp"
#include "interval/interval.hpp"
#include "util/types.hpp"

namespace leakbound::core {

/**
 * Abstract leakage management policy.  Implementations are stateless
 * with respect to evaluation: interval_energy() must be a pure function
 * of its arguments so histogram evaluation is valid.
 */
class Policy
{
  public:
    virtual ~Policy() = default;

    /** Human-readable scheme name, e.g. "OPT-Hybrid". */
    virtual std::string name() const = 0;

    /**
     * Leakage (+ induced dynamic) energy one interval costs under this
     * policy, in LU·cycles.
     *
     * Contract: piecewise linear in @p length with breakpoints only at
     * values returned by thresholds() and at the energy model's
     * min_length() boundaries (which are all <= 64 and covered by the
     * default histogram edges).
     */
    virtual Energy interval_energy(Cycles length,
                                   interval::IntervalKind kind,
                                   interval::PrefetchClass pf,
                                   bool ends_in_reuse) const = 0;

    /**
     * Every interval length at which the policy's decision (and hence
     * its energy function's slope/intercept) may change.  Used by the
     * evaluator to verify the histogram bin edges are fine enough for
     * exact evaluation.
     */
    virtual std::vector<Cycles> thresholds() const = 0;

    /**
     * The mode the frame spends most of the interval in (for
     * time-in-mode reporting; decay reports Sleep once it fires).
     */
    virtual Mode dominant_mode(Cycles length, interval::IntervalKind kind,
                               interval::PrefetchClass pf,
                               bool ends_in_reuse) const = 0;

    /**
     * Always-on per-frame overhead power in LU/cycle (e.g. the decay
     * scheme's per-line counters).  Charged as overhead * frames *
     * cycles on top of the interval energies.
     */
    virtual Power standing_overhead() const { return 0.0; }

    /**
     * True when the policy needs oracle knowledge of the future trace
     * (reported in scheme tables; affects nothing else).
     */
    virtual bool is_oracle() const = 0;
};

/** Owning handle used throughout the experiment harness. */
using PolicyPtr = std::unique_ptr<Policy>;

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_POLICY_HPP
