/**
 * @file
 * Deduplicating, bounded-admission scheduler of the leakboundd daemon.
 *
 * The scheduler owns the daemon's compute: a small pool of suite
 * workers draining a FIFO of admitted run requests.  Three properties
 * the server layer builds on:
 *
 *  - **Dedup.** Requests are keyed by core::fingerprint_request — the
 *    artifact cache's config fingerprint extended with the benchmark
 *    list and payload flag.  A request whose key matches one already
 *    admitted (queued *or* running) joins that job instead of
 *    enqueueing: N identical concurrent requests cost one simulation,
 *    and every waiter receives the *same* rendered response string, so
 *    responses across a dedup group are byte-identical by
 *    construction.
 *
 *  - **Backpressure.** Admission is bounded: when max_queue jobs are
 *    admitted-but-not-started, a new (non-duplicate) request is
 *    rejected with ErrorKind::Overloaded immediately — the daemon
 *    sheds load explicitly instead of growing an unbounded queue.
 *
 *  - **Graceful drain.** drain() stops admission (new requests get
 *    ShuttingDown), fails every queued-not-started job with a
 *    ShuttingDown response (waking its waiters), and waits for running
 *    jobs to finish — an admitted-and-started experiment always
 *    completes, even under SIGTERM, because the scheduler stamps
 *    ExperimentConfig::ignore_interrupts on every job it starts.
 */

#ifndef LEAKBOUND_SERVE_SCHEDULER_HPP
#define LEAKBOUND_SERVE_SCHEDULER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_request.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Shape of the scheduler (the daemon's flags fill this in). */
struct SchedulerConfig
{
    /** Concurrent suite runs (worker threads). */
    unsigned workers = 1;
    /** Jobs admitted-but-not-started before Overloaded rejections. */
    std::size_t max_queue = 8;
    /** Artifact cache directory stamped on every job ("" = off). */
    std::string cache_dir;
    /** ExperimentConfig::jobs stamped on every job (0 = all threads). */
    unsigned suite_jobs = 1;
    /** Test seam forwarded to core::run_suite_isolated per job. */
    core::SuiteJobHook before_job;
};

/** Counters the /stats endpoint reads (monotonic unless noted). */
struct SchedulerCounters
{
    std::uint64_t submitted = 0;    ///< admission attempts
    std::uint64_t served = 0;       ///< completed-run responses delivered
    std::uint64_t dedup_hits = 0;   ///< joined an in-flight twin
    std::uint64_t cache_hits = 0;   ///< benchmarks loaded from the cache
    std::uint64_t analytic_runs = 0; ///< benchmarks the fast path skipped
    std::uint64_t sim_runs = 0;     ///< benchmarks simulated end to end
    std::uint64_t simulations = 0;  ///< suite runs actually executed
    std::uint64_t rejected_overloaded = 0;
    std::uint64_t rejected_shutting_down = 0;
    std::uint64_t queue_depth = 0;  ///< instantaneous: admitted, waiting
    std::uint64_t running = 0;      ///< instantaneous: executing now
};

/**
 * The dedup/backpressure scheduler.  Thread-safe; one instance per
 * daemon.  The destructor drains.
 */
class Scheduler
{
  public:
    explicit Scheduler(SchedulerConfig config);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit @p request and block until its response is rendered.
     * Returns the shared response string (identical object for every
     * member of a dedup group), or Overloaded / ShuttingDown when the
     * request was never admitted.
     */
    util::Expected<std::shared_ptr<const std::string>>
    submit(core::ExperimentRequest request);

    /**
     * Stop admitting, fail queued jobs with ShuttingDown, wait for
     * running jobs and join the workers.  Idempotent.
     */
    void drain();

    /** Snapshot the counters (consistent under one lock). */
    SchedulerCounters counters() const;

  private:
    struct Job
    {
        core::ExperimentRequest request;
        std::uint64_t fingerprint = 0;
        bool started = false;
        bool done = false;
        /** True when drain() failed the job before it ran; its
         *  waiters are counted as rejected_shutting_down, not served. */
        bool failed_by_drain = false;
        /** Set exactly once, before done; shared by all waiters. */
        std::shared_ptr<const std::string> response;
    };

    void worker_loop();
    std::shared_ptr<const std::string>
    execute(const core::ExperimentRequest &request,
            std::uint64_t fingerprint);

    SchedulerConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool draining_ = false;
    std::deque<std::shared_ptr<Job>> queue_;
    /** Every admitted, not-yet-done job by dedup key. */
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>> inflight_;
    SchedulerCounters counters_;
    std::vector<std::thread> workers_;
};

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_SCHEDULER_HPP
