/**
 * @file
 * Implementation of the CSV writer.
 */

#include "util/csv.hpp"

#include "util/fault_injection.hpp"

namespace leakbound::util {

CsvWriter::CsvWriter(const std::string &path)
    : out_(path)
{
    if (fault::should_fail(fault::Site::OpenWrite, path))
        out_.setstate(std::ios::failbit);
    if (!out_) {
        status_ = Status(ErrorKind::IoError,
                         "cannot open CSV output file: " + path);
    }
}

void
CsvWriter::write_row(const std::vector<std::string> &fields)
{
    if (!ok())
        return;
    for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(fields[i]);
    }
    out_ << '\n';
    wrote_ = true;
}

std::string
CsvWriter::escape(const std::string &field)
{
    const bool needs_quotes =
        field.find_first_of(",\"\n\r") != std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += "\"\"";
        else
            out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace leakbound::util
