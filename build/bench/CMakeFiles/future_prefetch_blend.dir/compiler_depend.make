# Empty compiler generated dependencies file for future_prefetch_blend.
# This may be replaced when dependencies are built.
