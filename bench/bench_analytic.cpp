/**
 * @file
 * Cold-request latency bench of the analytic fast path, end to end
 * through leakboundd.
 *
 * Starts an in-process daemon, then issues three requests for the
 * same analyzable benchmark:
 *
 *   1. cold, --engine sim       (full simulation)
 *   2. cold, --engine analytic  (fast path; distinct fingerprint, so
 *                                the sim entry cannot warm it)
 *   3. warm, --engine sim       (artifact-cache load, for scale)
 *
 * and emits BENCH_analytic.json with the three wall times, the
 * sim/analytic speedup, and the daemon's engine counters.  The check
 * the bench enforces (exit 3 otherwise): both cold responses carry
 * the same result digest — the fast path must be exact, not merely
 * fast — the analytic request actually committed, and the speedup
 * clears --min-speedup.  The headline claim is that a *cold* analytic
 * request costs on the order of a *warm* cache load, not of a fresh
 * simulation.
 *
 * Flags come from the shared core/suite_flags.hpp family; the engine
 * flag is omitted because this bench pins an engine per request.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/artifact_cache.hpp"
#include "core/suite_flags.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/binary_io.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;

namespace {

/** One timed round trip; fatals (after draining) on transport error. */
struct TimedResponse
{
    double seconds = 0.0;
    std::string result_fnv;
    std::string engine;
    bool from_cache = false;
};

TimedResponse
timed_call(const serve::Endpoint &endpoint,
           const serve::RunRequest &request, serve::Server &server,
           std::thread &serving)
{
    const auto begun = std::chrono::steady_clock::now();
    auto response = serve::call_endpoint(
        endpoint, serve::build_run_request(request));
    TimedResponse out;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - begun)
                      .count();
    if (!response) {
        server.request_drain();
        serving.join();
        util::fatal("request failed: ", response.status().to_string());
    }
    const util::JsonValue &body = response.value();
    const util::JsonValue *runs = body.find("benchmarks");
    if (runs == nullptr || !runs->is_array() || runs->array().empty()) {
        server.request_drain();
        serving.join();
        util::fatal("malformed run response");
    }
    const util::JsonValue &run = runs->array()[0];
    out.result_fnv = run.find("result_fnv")->string_value();
    out.engine = run.find("engine")->string_value();
    out.from_cache = run.find("from_cache")->bool_value();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    util::install_signal_handlers();
    util::fault::configure_from_env();

    util::Cli cli("bench_analytic",
                  "cold analytic vs cold sim request latency");
    core::SuiteFlagSpec spec;
    spec.csv_dir = false;
    spec.suite_passes = false;
    spec.engine = false; // this bench pins an engine per request
    spec.default_instructions = 16'000'000;
    core::register_suite_flags(cli, spec);
    cli.add_flag("benchmark", "analyzable benchmark to request",
                 "stream");
    cli.add_flag("min-speedup",
                 "fail (exit 3) when sim/analytic falls below this",
                 "1.0");
    cli.add_flag("workers", "scheduler suite workers in the daemon",
                 "2");
    cli.parse(argc, argv);

    const std::string benchmark = cli.get("benchmark");
    if (!workload::is_benchmark(benchmark))
        util::fatal("unknown benchmark \"", benchmark, "\"");

    serve::ServerConfig config;
    config.listen_tcp = true; // ephemeral loopback port
    config.scheduler.workers =
        static_cast<unsigned>(cli.get_u64("workers"));
    config.scheduler.suite_jobs = core::suite_jobs(cli);
    config.scheduler.cache_dir =
        core::resolve_cache_dir(cli.get("cache-dir"));
    // This bench measures the *artifact cache* warm path: the warm
    // probe repeats the cold request and must load from disk
    // (from_cache=true).  With the rendered-response LRU on it would
    // be answered from memory with the cold render's exact bytes —
    // byte-identical, but proving nothing about the commit.
    config.scheduler.response_cache_bytes = 0;

    serve::Server server(config);
    if (util::Status started = server.start(); !started.ok())
        util::fatal("cannot start the daemon: ", started.to_string());
    std::thread serving([&server] {
        if (util::Status served = server.serve(); !served.ok())
            util::warn("serve failed: ", served.to_string());
    });

    serve::Endpoint endpoint;
    endpoint.tcp_port = server.tcp_port();

    serve::RunRequest request;
    request.benchmarks = {benchmark};
    request.instructions = cli.get_u64("instructions");

    request.engine = "sim";
    const TimedResponse cold_sim =
        timed_call(endpoint, request, server, serving);
    request.engine = "analytic";
    const TimedResponse cold_analytic =
        timed_call(endpoint, request, server, serving);
    request.engine = "sim"; // same fingerprint as the first request
    const TimedResponse warm_sim =
        timed_call(endpoint, request, server, serving);

    const serve::StatsSnapshot stats = server.stats();
    server.request_drain();
    serving.join();

    const bool digests_equal =
        !cold_sim.result_fnv.empty() &&
        cold_sim.result_fnv == cold_analytic.result_fnv;
    const bool committed = cold_analytic.engine == "analytic" &&
                           !cold_analytic.from_cache &&
                           !cold_sim.from_cache && warm_sim.from_cache;
    const double speedup = cold_analytic.seconds > 0.0
                               ? cold_sim.seconds / cold_analytic.seconds
                               : 0.0;

    std::printf("cold sim: %.3fs   cold analytic: %.3fs (%.1fx)   "
                "warm: %.3fs\ndigests %s, analytic %s\n",
                cold_sim.seconds, cold_analytic.seconds, speedup,
                warm_sim.seconds, digests_equal ? "equal" : "DIFFER",
                committed ? "committed" : "DID NOT COMMIT");

    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("bench_analytic");
    w.key("description")
        .value("cold analytic vs cold sim request latency");
    w.key("flags").begin_object();
    for (const auto &[name, value] : cli.snapshot())
        w.key(name).value(value);
    w.end_object();
    w.key("benchmark").value(benchmark);
    w.key("instructions").value(request.instructions);
    w.key("cold_sim_seconds").value(cold_sim.seconds);
    w.key("cold_analytic_seconds").value(cold_analytic.seconds);
    w.key("warm_sim_seconds").value(warm_sim.seconds);
    w.key("speedup").value(speedup);
    w.key("digests_equal").value(digests_equal);
    w.key("analytic_committed").value(committed);
    w.key("stats").begin_object();
    w.key("requests_served").value(stats.requests_served);
    w.key("analytic_runs").value(stats.analytic_runs);
    w.key("sim_runs").value(stats.sim_runs);
    w.key("cache_hits").value(stats.cache_hits);
    w.end_object();
    w.end_object();

    const std::string contents = w.str() + "\n";
    const std::string path = cli.get("json");
    if (!path.empty()) {
        if (util::Status wrote = util::write_file_atomic(path, contents);
            !wrote.ok())
            util::warn("cannot write report: ", wrote.to_string());
    }

    const double min_speedup = cli.get_double("min-speedup");
    return digests_equal && committed && speedup >= min_speedup ? 0 : 3;
}
