file(REMOVE_RECURSE
  "CMakeFiles/extension_l2_bound.dir/extension_l2_bound.cpp.o"
  "CMakeFiles/extension_l2_bound.dir/extension_l2_bound.cpp.o.d"
  "extension_l2_bound"
  "extension_l2_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_l2_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
