file(REMOVE_RECURSE
  "CMakeFiles/fig8_schemes.dir/fig8_schemes.cpp.o"
  "CMakeFiles/fig8_schemes.dir/fig8_schemes.cpp.o.d"
  "fig8_schemes"
  "fig8_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
