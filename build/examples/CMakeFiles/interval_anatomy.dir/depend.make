# Empty dependencies file for interval_anatomy.
# This may be replaced when dependencies are built.
