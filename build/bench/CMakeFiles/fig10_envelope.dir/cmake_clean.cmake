file(REMOVE_RECURSE
  "CMakeFiles/fig10_envelope.dir/fig10_envelope.cpp.o"
  "CMakeFiles/fig10_envelope.dir/fig10_envelope.cpp.o.d"
  "fig10_envelope"
  "fig10_envelope.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_envelope.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
