/**
 * @file
 * Ablation: replacement policy sensitivity + a Belady-MIN reference.
 *
 * The paper fixes LRU throughout the hierarchy (Section 4.1).  This
 * bench (a) re-runs the suite under FIFO and Random replacement to
 * show how robust the leakage bounds are to that choice, and (b)
 * compares the online policies' L1D miss rates against offline
 * Belady-MIN on a captured reference stream — the replacement
 * analogue of the leakage limit this library is about.
 */

#include "bench_common.hpp"
#include "sim/belady.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_replacement",
                        "ablation: replacement policy sensitivity");
    cli.parse(argc, argv);
    const std::uint64_t instructions = cli.get_u64("instructions");

    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    // Part (a): leakage bounds under each replacement policy.
    util::Table table("replacement sensitivity of the 70nm bound");
    table.set_header({"replacement", "l1d miss rate", "OPT-Hybrid I",
                      "OPT-Hybrid D"});
    for (sim::ReplacementKind kind :
         {sim::ReplacementKind::Lru, sim::ReplacementKind::Fifo,
          sim::ReplacementKind::Random}) {
        core::ExperimentConfig config;
        config.instructions = instructions;
        config.jobs = suite_jobs(cli);
        config.extra_edges = core::standard_extra_edges();
        config.hierarchy.l1i.replacement = kind;
        config.hierarchy.l1d.replacement = kind;
        const auto runs =
            run_suite_reported(workload::suite_names(), config, cli);

        double misses = 0, accesses = 0;
        for (const auto &run : runs) {
            misses += static_cast<double>(run.dcache.stats.misses);
            accesses += static_cast<double>(run.dcache.stats.accesses);
        }
        const auto hybrid = core::make_opt_hybrid(model);
        table.add_row(
            {sim::replacement_name(kind),
             util::format_percent(accesses ? misses / accesses : 0, 2),
             pct(suite_average(*hybrid, runs, CacheSide::Instruction)
                     .savings),
             pct(suite_average(*hybrid, runs, CacheSide::Data).savings)});
    }
    emit(table, cli, "replacement_bound");

    // Part (b): Belady-MIN vs the online policies on one benchmark's
    // data stream (addresses only; timing is irrelevant to miss rate).
    const std::uint64_t stream_len = std::min<std::uint64_t>(
        instructions, 1'000'000);
    workload::WorkloadPtr bench = workload::make_benchmark("gcc");
    std::vector<Addr> stream;
    trace::MicroOp op;
    while (stream.size() < stream_len && bench->next(op)) {
        if (op.kind != trace::InstrKind::Op)
            stream.push_back(op.addr);
    }

    util::Table minvs("L1D miss rates on gcc's data stream (" +
                      util::format_commas(stream.size()) + " accesses)");
    minvs.set_header({"policy", "misses", "miss rate"});
    const sim::CacheConfig l1d = sim::CacheConfig::alpha_l1d();
    for (sim::ReplacementKind kind :
         {sim::ReplacementKind::Lru, sim::ReplacementKind::Fifo,
          sim::ReplacementKind::Random}) {
        sim::CacheConfig config = l1d;
        config.replacement = kind;
        sim::Cache cache(config);
        for (Addr a : stream)
            cache.access(a);
        minvs.add_row({sim::replacement_name(kind),
                       util::format_commas(cache.stats().misses),
                       util::format_percent(cache.stats().miss_rate(), 2)});
    }
    const sim::BeladyResult opt = sim::simulate_belady(l1d, stream);
    minvs.add_separator();
    minvs.add_row({"Belady-MIN (offline bound)",
                   util::format_commas(opt.stats.misses),
                   util::format_percent(opt.stats.miss_rate(), 2)});
    emit(minvs, cli, "belady_min");

    std::printf("the leakage bound barely moves with the replacement\n"
                "policy (intervals are a frame-level property), and MIN\n"
                "bounds every online policy — the same bound-vs-policy\n"
                "relationship the paper builds for leakage.\n");
    return bench::finish(cli);
}
