/**
 * @file
 * Four-wide in-order timing core (the SimpleScalar/Alpha-21264
 * substitute; DESIGN.md §3).
 *
 * Each cycle the core fetches up to `fetch_width` sequential
 * instructions from a single instruction cache line (one L1I access
 * per fetch group), issues the group's loads/stores to the L1D, and
 * advances time by one cycle plus any miss penalties.  This produces
 * the cycle-stamped per-frame access streams the interval analysis
 * consumes; the limit study needs relative access timing, not precise
 * out-of-order overlap.
 *
 * The run loop is a template over the access listener, so the kernel
 * path (core::run_one with a concrete listener type) compiles into one
 * devirtualized routine; the classic AccessListener interface rides on
 * the same loop through a thin adapter.  Instruction fetch consumes
 * from a small ring refilled via Workload::next_batch — one virtual
 * call per ring instead of one per µop — except while a GroupHook is
 * installed (the analytic fast path), where the workload must never
 * run ahead of the µop the core consumes next.
 */

#ifndef LEAKBOUND_CPU_INORDER_CORE_HPP
#define LEAKBOUND_CPU_INORDER_CORE_HPP

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/hierarchy.hpp"
#include "trace/record.hpp"
#include "util/status.hpp"
#include "workload/workload.hpp"

namespace leakbound::cpu {

/** Core parameters. */
struct CoreConfig
{
    std::uint32_t fetch_width = 4; ///< instructions per fetch group
    std::uint32_t instr_bytes = 4; ///< fixed-width Alpha-style encoding
    /**
     * Fraction (percent) of the worst miss penalty in a fetch group
     * that actually stalls the core.  Approximates the out-of-order
     * 21264's ability to overlap misses with useful work and with each
     * other: misses within a group fully overlap (max, not sum), and
     * the remainder is discounted by this factor.  100 = fully
     * blocking, 0 = misses are free.
     */
    std::uint32_t miss_overlap_percent = 50;

    /**
     * Check invariants; InvalidArgument when fetch_width is zero.
     * InOrderCore's constructor throws util::StatusError on a bad
     * config, so a malformed request fails its own job instead of
     * killing the process.
     */
    util::Status validate() const;
};

/**
 * Observer of the core's cache accesses; the experiment glue implements
 * this to drive interval collection and prefetch bookkeeping.
 */
class AccessListener
{
  public:
    virtual ~AccessListener() = default;

    /** A fetch-group access to L1I at @p cycle for the line of @p pc. */
    virtual void on_instr_access(Cycle cycle, Pc pc,
                                 const sim::HierarchyResult &result) = 0;

    /** A load/store by @p pc to @p addr at @p cycle. */
    virtual void on_data_access(Cycle cycle, Pc pc, Addr addr,
                                bool is_store,
                                const sim::HierarchyResult &result) = 0;
};

/** Statistics of one core run. */
struct CoreRunStats
{
    std::uint64_t instructions = 0;
    Cycles cycles = 0;
    std::uint64_t fetch_groups = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Cycles instr_stall_cycles = 0; ///< cycles lost to L1I misses
    Cycles data_stall_cycles = 0;  ///< cycles lost to L1D misses

    /** Instructions per cycle. */
    double ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/**
 * The timing core.  Construct, then run() once; the final cycle count
 * is the interval analysis' end-of-run timestamp.
 */
class InOrderCore
{
  public:
    /**
     * @param config core parameters (validated; util::StatusError on a
     *        malformed config)
     * @param hierarchy the memory system (not owned)
     * @param source the workload generating instructions (not owned)
     * @param listener optional access observer (not owned)
     */
    InOrderCore(const CoreConfig &config, sim::Hierarchy *hierarchy,
                workload::Workload *source,
                AccessListener *listener = nullptr);

    /**
     * Observer called between fetch groups with the running stats
     * (stats.cycles is kept current).  Returning false stops the run
     * early; the instruction stream position is preserved, so a later
     * run() continues exactly where this one stopped.
     */
    using GroupHook = std::function<bool(const CoreRunStats &)>;

    /** Execute up to @p max_instructions; returns run statistics. */
    CoreRunStats run(std::uint64_t max_instructions);

    /** run() with a between-groups observer (see GroupHook). */
    CoreRunStats run(std::uint64_t max_instructions,
                     const GroupHook &hook);

    /**
     * run() with a concrete (non-virtual) listener: the kernel path.
     * @p L provides on_instr(cycle, pc, result), on_data(cycle, pc,
     * addr, is_store, result) and on_group_end(), all of which inline
     * into the loop.  The op stream, timing, and statistics are
     * byte-identical to run() over an equivalent AccessListener.
     */
    template <typename L>
    CoreRunStats
    run_with(std::uint64_t max_instructions, L &listener)
    {
        return run_loop(max_instructions, GroupHook(), listener);
    }

    /**
     * Enable/disable batched fetch (default on).  The op stream is
     * identical either way — batching only changes *when* the workload
     * generates ops, never which — but the reference arm of the kernel
     * differential fuzzer turns it off to exercise the one-virtual-call
     * -per-µop path.
     */
    void set_batch_fetch(bool on) { batch_fetch_ = on; }

    /** Current cycle (end-of-run timestamp after run()). */
    Cycle cycle() const { return cycle_; }

    /**
     * Advance the clock by @p delta without executing anything — the
     * analytic fast path's time warp across skipped periods.
     */
    void warp_cycles(Cycles delta) { cycle_ += delta; }

    /**
     * Append the fetch stage's mutable state (the buffered lookahead
     * instruction and any ring-buffered batch) to @p out — part of the
     * analytic state signature.  Hooked runs never refill the ring, so
     * in analytic signatures the ring contribution is a constant 0.
     */
    void
    append_state(std::vector<std::uint64_t> &out) const
    {
        out.push_back(have_pending_ ? 1 : 0);
        out.push_back(have_pending_ ? pending_.pc : 0);
        out.push_back(have_pending_
                          ? static_cast<std::uint64_t>(pending_.kind)
                          : 0);
        out.push_back(have_pending_ ? pending_.addr : 0);
        out.push_back(ring_len_ - ring_pos_);
        for (std::uint32_t i = ring_pos_; i < ring_len_; ++i) {
            out.push_back(ring_[i].pc);
            out.push_back(static_cast<std::uint64_t>(ring_[i].kind));
            out.push_back(ring_[i].addr);
        }
    }

  private:
    /** Ops buffered per Workload::next_batch refill. */
    static constexpr std::uint32_t kFetchRing = 64;

    /**
     * Expose the next op without consuming it, or nullptr when the
     * workload is exhausted.  The pointer aims into the fetch ring (or
     * the pending slot) and stays valid until the next peek — consume()
     * never moves data, so the run loop reads op fields in place
     * instead of copying 24-byte MicroOps through a peek/fetch shuffle.
     * Ring leftovers always drain first, so mixed batched/unbatched
     * run() sequences still consume the stream in order; refills only
     * happen here, and only while batching is active.
     */
    const trace::MicroOp *
    peek_ptr()
    {
        if (have_pending_)
            return &pending_;
        if (ring_pos_ < ring_len_)
            return &ring_[ring_pos_];
        if (batch_active_) {
            ring_len_ = static_cast<std::uint32_t>(
                source_->next_batch(ring_.data(), kFetchRing));
            ring_pos_ = 0;
            return ring_len_ != 0 ? &ring_[0] : nullptr;
        }
        if (source_->next(pending_)) {
            have_pending_ = true;
            return &pending_;
        }
        return nullptr;
    }

    /** Consume the op peek_ptr() last returned. */
    void
    consume()
    {
        if (have_pending_)
            have_pending_ = false;
        else
            ++ring_pos_;
    }

    /** The run loop, shared by every entry point (see run_with). */
    template <typename L>
    CoreRunStats
    run_loop(std::uint64_t max_instructions, const GroupHook &hook,
             L &listener)
    {
        // A hooked run takes state signatures between groups; the
        // workload must not be driven ahead of consumption, so the
        // ring never refills (leftovers from an earlier batched run
        // still drain, and the signature captures them).
        batch_active_ = batch_fetch_ && !hook;

        CoreRunStats stats;
        const Cycles l1i_hit = hierarchy_->config().l1i.hit_latency;
        const Cycles l1d_hit = hierarchy_->config().l1d.hit_latency;
        const std::uint32_t line_shift =
            hierarchy_->config().l1i.line_shift();

        while (stats.instructions < max_instructions) {
            const trace::MicroOp *op = peek_ptr();
            if (!op)
                break; // finite workload exhausted

            // Form the fetch group: sequential PCs within one I-line,
            // up to the fetch width.  A taken branch (PC discontinuity)
            // ends the group, as does a line boundary.
            const Pc group_pc = op->pc;
            const Addr group_line = group_pc >> line_shift;

            Cycles worst_data_penalty = 0;
            std::uint32_t group_size = 0;
            Pc expected_pc = group_pc;
            for (;;) {
                // `op` is the accepted instruction at `expected_pc`;
                // consume it before processing (the next peek may
                // refill the ring, but only after `op` is done).
                consume();
                ++group_size;
                ++stats.instructions;
                if (op->kind != trace::InstrKind::Op) {
                    const bool is_store =
                        op->kind == trace::InstrKind::Store;
                    const sim::HierarchyResult dres =
                        hierarchy_->access_data(op->addr);
                    if (is_store)
                        ++stats.stores;
                    else
                        ++stats.loads;
                    listener.on_data(cycle_, op->pc, op->addr, is_store,
                                     dres);
                    if (dres.latency > l1d_hit) {
                        worst_data_penalty =
                            std::max(worst_data_penalty,
                                     dres.latency - l1d_hit);
                    }
                }

                if (group_size >= config_.fetch_width ||
                    stats.instructions >= max_instructions) {
                    break;
                }
                expected_pc += config_.instr_bytes;
                const trace::MicroOp *next_op = peek_ptr();
                if (!next_op || next_op->pc != expected_pc ||
                    next_op->pc >> line_shift != group_line) {
                    break;
                }
                op = next_op;
            }

            // One instruction-cache access per fetch group.
            const sim::HierarchyResult ires =
                hierarchy_->access_instr(group_pc);
            listener.on_instr(cycle_, group_pc, ires);
            const Cycles instr_penalty =
                ires.latency > l1i_hit ? ires.latency - l1i_hit : 0;

            // Misses within the group overlap with each other (take the
            // max) and partially with downstream work (the discount);
            // see CoreConfig::miss_overlap_percent.
            const Cycles worst =
                std::max(instr_penalty, worst_data_penalty);
            const Cycles stall =
                (worst * config_.miss_overlap_percent + 50) / 100;

            ++stats.fetch_groups;
            if (worst == instr_penalty)
                stats.instr_stall_cycles += stall;
            else
                stats.data_stall_cycles += stall;

            cycle_ += 1 + stall;
            listener.on_group_end();

            if (hook) {
                stats.cycles = cycle_;
                if (!hook(stats))
                    break;
            }
        }

        stats.cycles = cycle_;
        return stats;
    }

    CoreConfig config_;
    sim::Hierarchy *hierarchy_;
    workload::Workload *source_;
    AccessListener *listener_;
    Cycle cycle_ = 0;

    trace::MicroOp pending_{};
    bool have_pending_ = false;

    std::array<trace::MicroOp, kFetchRing> ring_{};
    std::uint32_t ring_pos_ = 0;
    std::uint32_t ring_len_ = 0;
    bool batch_fetch_ = true;  ///< batching enabled (see set_batch_fetch)
    bool batch_active_ = false; ///< batching in force for the active run
};

} // namespace leakbound::cpu

#endif // LEAKBOUND_CPU_INORDER_CORE_HPP
