/**
 * @file
 * Ablation: L2 latency sensitivity (the Li/Parikh et al. [10]
 * comparison the paper builds on).  A slower L2 lengthens the s4
 * re-fetch wait, raising the sleep overhead K_S and pushing the
 * drowsy-sleep inflection point b upward — drowsy gains ground
 * against gated-Vdd exactly as [10] reported for slower L2s.
 *
 * The simulation is re-run per latency (timing feeds back into the
 * interval populations), and the three optimal bounds are evaluated
 * with the latency-adjusted energy model.
 */

#include "bench_common.hpp"
#include "core/generalized_model.hpp"
#include "core/inflection.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_l2_latency",
                        "ablation: L2 latency vs inflection and bounds");
    cli.parse(argc, argv);

    const Cycles latencies[] = {7, 14, 30, 60};

    // Gather thresholds of every latency-adjusted model up front so a
    // single histogram edge list serves all evaluations.
    std::vector<Cycles> extra;
    std::vector<power::TechnologyParams> techs;
    for (Cycles d : latencies) {
        power::TechnologyParams tech =
            power::node_params(power::TechNode::Nm70);
        tech.timings = power::ModeTimings::with_l2_latency(d);
        techs.push_back(tech);
        core::GeneralizedModelInputs inputs;
        inputs.tech = tech;
        for (Cycles t : core::generalized_model_thresholds(inputs))
            extra.push_back(t);
    }

    util::Table table("L2 latency ablation, 70nm (suite average)");
    table.set_header({"L2 latency D", "inflection b", "OPT-Drowsy I/D",
                      "OPT-Sleep I/D", "OPT-Hybrid I/D"});

    for (std::size_t i = 0; i < techs.size(); ++i) {
        // Re-simulate with the slower L2 so the timing feedback (longer
        // stalls stretch every interval) is included.
        core::ExperimentConfig config;
        apply_suite_flags(config, cli);
        config.hierarchy.l2.hit_latency = latencies[i];
        config.hierarchy.memory_latency =
            std::max<Cycles>(100, latencies[i] * 4);
        config.extra_edges = core::standard_extra_edges();
        config.extra_edges.insert(config.extra_edges.end(), extra.begin(),
                                  extra.end());
        const auto runs =
            run_suite_reported(workload::suite_names(), config, cli);

        core::GeneralizedModelInputs inputs;
        inputs.tech = techs[i];
        const auto points = core::compute_inflection(inputs.tech);

        auto pooled = [&](CacheSide side, int which) {
            std::vector<core::SavingsResult> parts;
            for (const auto &run : runs) {
                const auto r = core::run_generalized_model(
                    inputs, population(run, side));
                parts.push_back(which == 0   ? r.opt_drowsy
                                : which == 1 ? r.opt_sleep
                                             : r.opt_hybrid);
            }
            return core::combine_results(parts).savings;
        };

        table.add_row(
            {std::to_string(latencies[i]),
             util::format_commas(points.drowsy_sleep),
             pct(pooled(CacheSide::Instruction, 0)) + " / " +
                 pct(pooled(CacheSide::Data, 0)),
             pct(pooled(CacheSide::Instruction, 1)) + " / " +
                 pct(pooled(CacheSide::Data, 1)),
             pct(pooled(CacheSide::Instruction, 2)) + " / " +
                 pct(pooled(CacheSide::Data, 2))});
    }
    emit(table, cli, "l2_latency");

    std::printf("as the L2 slows, b rises (sleep needs longer intervals\n"
                "to amortize the wait), OPT-Sleep degrades and drowsy\n"
                "holds steady — the state-preserving vs state-destroying\n"
                "trade-off of Li et al. [10].\n");
    return bench::finish(cli);
}
