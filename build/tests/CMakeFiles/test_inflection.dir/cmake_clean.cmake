file(REMOVE_RECURSE
  "CMakeFiles/test_inflection.dir/test_inflection.cpp.o"
  "CMakeFiles/test_inflection.dir/test_inflection.cpp.o.d"
  "test_inflection"
  "test_inflection.pdb"
  "test_inflection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inflection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
