/**
 * @file
 * Implementation of the Figure 6 state model simulator.
 */

#include "core/state_model.hpp"

#include "util/logging.hpp"

namespace leakbound::core {

using interval::IntervalKind;

TransitionEnergies
transition_energies(const power::TechnologyParams &tech,
                    bool charge_refetch)
{
    const auto &t = tech.timings;
    const double pa = tech.active_power;
    TransitionEnergies e;
    // Ramps dissipate at full active power (same convention as the
    // closed forms; see core/energy_model.hpp).
    e.active_to_drowsy = pa * static_cast<double>(t.d1);
    e.drowsy_to_active = pa * static_cast<double>(t.d3);
    e.active_to_sleep = pa * static_cast<double>(t.s1);
    e.sleep_to_active = pa * static_cast<double>(t.s3 + t.s4) +
                        (charge_refetch ? tech.refetch_energy : 0.0);
    return e;
}

StateModel::StateModel(const power::TechnologyParams &tech)
    : tech_(tech)
{
    tech_.validate();
}

Power
StateModel::state_power(Mode mode) const
{
    switch (mode) {
      case Mode::Active:
        return tech_.active_power;
      case Mode::Drowsy:
        return tech_.drowsy_power;
      case Mode::Sleep:
        return tech_.sleep_power;
    }
    LEAKBOUND_PANIC("unreachable: bad Mode");
}

Energy
StateModel::simulate_interval(Mode mode, Cycles length, IntervalKind kind,
                              bool charge_refetch) const
{
    const auto &t = tech_.timings;
    const double pa = tech_.active_power;

    // Build the per-cycle power trace of the interval and integrate it
    // one cycle at a time (deliberately brute-force: this function is
    // the ground truth the closed forms are checked against).
    Cycles entry_ramp = 0;
    Cycles exit_ramp = 0;
    Energy lump = 0.0; // refetch energy, charged as a lump

    switch (mode) {
      case Mode::Active:
        break;
      case Mode::Drowsy:
        switch (kind) {
          case IntervalKind::Inner:
            entry_ramp = t.d1;
            exit_ramp = t.d3;
            break;
          case IntervalKind::Trailing:
            entry_ramp = t.d1;
            break;
          case IntervalKind::Leading:
          case IntervalKind::Untouched:
            break;
        }
        break;
      case Mode::Sleep:
        switch (kind) {
          case IntervalKind::Inner:
            entry_ramp = t.s1;
            exit_ramp = t.s3 + t.s4;
            if (charge_refetch)
                lump = tech_.refetch_energy;
            break;
          case IntervalKind::Trailing:
            entry_ramp = t.s1;
            break;
          case IntervalKind::Leading:
          case IntervalKind::Untouched:
            break;
        }
        break;
    }

    LEAKBOUND_ASSERT(length >= entry_ramp + exit_ramp,
                     "interval too short for the ", mode_name(mode),
                     " schedule");
    const Cycles resident = length - entry_ramp - exit_ramp;
    const Power resident_power = state_power(mode);

    Energy total = lump;
    for (Cycles c = 0; c < entry_ramp; ++c)
        total += pa;
    for (Cycles c = 0; c < resident; ++c)
        total += resident_power;
    for (Cycles c = 0; c < exit_ramp; ++c)
        total += pa;
    return total;
}

Energy
StateModel::simulate_schedule(const std::vector<Segment> &schedule,
                              bool charge_refetch) const
{
    const TransitionEnergies edges =
        transition_energies(tech_, charge_refetch);

    Energy total = 0.0;
    Mode prev = Mode::Active;
    for (const Segment &seg : schedule) {
        // Charge the edge from the previous state into this one.
        if (prev != seg.mode) {
            if (prev == Mode::Active && seg.mode == Mode::Drowsy)
                total += edges.active_to_drowsy;
            else if (prev == Mode::Drowsy && seg.mode == Mode::Active)
                total += edges.drowsy_to_active;
            else if (prev == Mode::Active && seg.mode == Mode::Sleep)
                total += edges.active_to_sleep;
            else if (prev == Mode::Sleep && seg.mode == Mode::Active)
                total += edges.sleep_to_active;
            else
                LEAKBOUND_PANIC("Fig. 6 has no ",
                                mode_name(prev), " -> ",
                                mode_name(seg.mode), " edge; schedules "
                                "must pass through Active");
        }
        total += state_power(seg.mode) * static_cast<double>(seg.resident);
        prev = seg.mode;
    }
    // Close the schedule back to Active (the next access).
    if (prev == Mode::Drowsy)
        total += edges.drowsy_to_active;
    else if (prev == Mode::Sleep)
        total += edges.sleep_to_active;
    return total;
}

} // namespace leakbound::core
