/**
 * @file
 * Implementation of the dedup/backpressure scheduler: admission (LRU
 * lookup, dedup join, deadline shed, queue bound), the worker loop,
 * and completion fan-out to blocking waiters and async callbacks.
 */

#include "serve/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include "serve/protocol.hpp"

namespace leakbound::serve {

namespace {

/** Accounting overhead per LRU entry (list/map nodes, shared_ptr). */
constexpr std::size_t kLruEntryOverhead = 64;

} // namespace

Scheduler::Scheduler(SchedulerConfig config) : config_(std::move(config))
{
    job_ms_ewma_ = config_.assumed_job_ms;
    const unsigned workers = config_.workers == 0 ? 1 : config_.workers;
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

Scheduler::~Scheduler()
{
    drain();
}

std::shared_ptr<const std::string>
Scheduler::lru_lookup(std::uint64_t fingerprint)
{
    auto it = lru_index_.find(fingerprint);
    if (it == lru_index_.end())
        return nullptr;
    lru_list_.splice(lru_list_.begin(), lru_list_, it->second);
    return lru_list_.front().response;
}

void
Scheduler::lru_insert(std::uint64_t fingerprint,
                      std::shared_ptr<const std::string> response)
{
    if (config_.response_cache_bytes == 0 || response == nullptr)
        return;
    const std::size_t cost = response->size() + kLruEntryOverhead;
    if (cost > config_.response_cache_bytes)
        return; // one response bigger than the whole budget
    if (auto it = lru_index_.find(fingerprint); it != lru_index_.end()) {
        // A racing twin re-rendered the same key (identical bytes by
        // construction): refresh recency, keep one copy.
        lru_list_.splice(lru_list_.begin(), lru_list_, it->second);
        return;
    }
    lru_list_.push_front(LruEntry{fingerprint, std::move(response)});
    lru_index_.emplace(fingerprint, lru_list_.begin());
    lru_bytes_ += cost;
    while (lru_bytes_ > config_.response_cache_bytes &&
           !lru_list_.empty()) {
        const LruEntry &victim = lru_list_.back();
        lru_bytes_ -= victim.response->size() + kLruEntryOverhead;
        lru_index_.erase(victim.fingerprint);
        lru_list_.pop_back();
        ++counters_.response_lru_evictions;
    }
}

Scheduler::Admission
Scheduler::admit(core::ExperimentRequest &&request,
                 std::unique_lock<std::mutex> &lock)
{
    (void)lock; // held by contract; admission is one critical section
    Admission admission;
    ++counters_.submitted;
    if (draining_) {
        ++counters_.rejected_shutting_down;
        admission.rejected =
            util::Status(util::ErrorKind::ShuttingDown,
                         "daemon is draining; request not admitted");
        return admission;
    }

    const std::uint64_t fingerprint = core::fingerprint_request(request);

    // Past-fingerprint hit: the rendered bytes of a completed twin are
    // still resident — answer immediately, bypassing the queue, the
    // artifact cache and the renderer.
    if (auto hit = lru_lookup(fingerprint); hit != nullptr) {
        ++counters_.response_lru_hits;
        ++counters_.served;
        admission.immediate = std::move(hit);
        return admission;
    }

    if (auto it = inflight_.find(fingerprint); it != inflight_.end()) {
        // An identical request is already admitted: join it.  The
        // waiter gets the same rendered response object, so dedup
        // groups are byte-identical by construction.
        admission.job = it->second;
        ++counters_.dedup_hits;
        return admission;
    }

    // Deadline shed: when the backlog says this request cannot finish
    // in time, rejecting now is strictly kinder than queueing it into
    // a guaranteed timeout.  Joins and LRU hits never reach here.
    if (request.deadline_ms > 0 && job_ms_ewma_ > 0.0) {
        const unsigned workers =
            config_.workers == 0 ? 1 : config_.workers;
        const double backlog =
            static_cast<double>(queue_.size()) +
            0.5 * static_cast<double>(counters_.running) + 1.0;
        const double estimate_ms = job_ms_ewma_ * backlog / workers;
        if (estimate_ms > static_cast<double>(request.deadline_ms)) {
            ++counters_.rejected_deadline;
            admission.rejected = util::Status(
                util::ErrorKind::Overloaded,
                "deadline " + std::to_string(request.deadline_ms) +
                    " ms unmeetable (estimated " +
                    std::to_string(
                        static_cast<std::uint64_t>(estimate_ms)) +
                    " ms to completion); retry later or raise the "
                    "deadline");
            return admission;
        }
    }

    if (queue_.size() >= config_.max_queue) {
        ++counters_.rejected_overloaded;
        admission.rejected = util::Status(
            util::ErrorKind::Overloaded,
            "admission queue full (" +
                std::to_string(config_.max_queue) +
                " requests waiting); retry later");
        return admission;
    }

    auto job = std::make_shared<Job>();
    job->request = std::move(request);
    job->fingerprint = fingerprint;
    inflight_.emplace(fingerprint, job);
    queue_.push_back(job);
    ++counters_.queue_depth;
    cv_.notify_all();
    admission.job = std::move(job);
    return admission;
}

util::Expected<std::shared_ptr<const std::string>>
Scheduler::submit(core::ExperimentRequest request)
{
    std::unique_lock<std::mutex> lock(mutex_);
    Admission admission = admit(std::move(request), lock);
    if (!admission.rejected.ok())
        return admission.rejected;
    if (admission.immediate != nullptr)
        return admission.immediate;

    std::shared_ptr<Job> job = std::move(admission.job);
    cv_.wait(lock, [&] { return job->done; });
    // Every waiter lands in exactly one bucket: served when the run
    // completed, rejected_shutting_down when drain() failed the job.
    if (job->failed_by_drain)
        ++counters_.rejected_shutting_down;
    else
        ++counters_.served;
    return job->response;
}

void
Scheduler::submit_async(core::ExperimentRequest request, Completion done)
{
    std::shared_ptr<const std::string> immediate;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Admission admission = admit(std::move(request), lock);
        if (admission.job != nullptr) {
            admission.job->callbacks.push_back(std::move(done));
            return;
        }
        immediate =
            admission.immediate != nullptr
                ? std::move(admission.immediate)
                : std::make_shared<const std::string>(
                      render_error(admission.rejected));
    }
    // Outside the lock: the callback may re-enter the scheduler.
    done(std::move(immediate));
}

void
Scheduler::finish_job(const std::shared_ptr<Job> &job, Rendered rendered,
                      std::unique_lock<std::mutex> &lock)
{
    job->response = std::move(rendered.response);
    job->done = true;
    --counters_.running;
    inflight_.erase(job->fingerprint);
    if (rendered.cacheable)
        lru_insert(job->fingerprint, job->response);
    std::vector<Completion> callbacks;
    callbacks.swap(job->callbacks);
    counters_.served += callbacks.size();
    cv_.notify_all();

    lock.unlock();
    for (Completion &callback : callbacks)
        callback(job->response);
    lock.lock();
}

void
Scheduler::worker_loop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        cv_.wait(lock, [&] { return draining_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (draining_)
                return;
            continue;
        }
        std::shared_ptr<Job> job = std::move(queue_.front());
        queue_.pop_front();
        job->started = true;
        --counters_.queue_depth;
        ++counters_.running;
        ++counters_.simulations;

        core::ExperimentRequest request = job->request;
        const std::uint64_t fingerprint = job->fingerprint;
        lock.unlock();
        const auto begun = std::chrono::steady_clock::now();
        Rendered rendered = execute(request, fingerprint);
        const double job_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - begun)
                .count();
        lock.lock();

        // The deadline shedder's cost model: a slow-moving EWMA of
        // job wall times, seeded by config (0 = learn from here).
        job_ms_ewma_ = job_ms_ewma_ <= 0.0
                           ? job_ms
                           : 0.7 * job_ms_ewma_ + 0.3 * job_ms;
        finish_job(job, std::move(rendered), lock);
    }
}

Scheduler::Rendered
Scheduler::execute(const core::ExperimentRequest &request,
                   std::uint64_t fingerprint)
{
    Rendered rendered;
    try {
        core::ExperimentConfig config = request.config;
        // Server-owned knobs the wire decoder refused to accept, plus
        // the drain contract: a started experiment always completes.
        config.jobs = config_.suite_jobs;
        config.cache_dir = config_.cache_dir;
        config.ignore_interrupts = true;

        core::SuiteOutcome outcome = core::run_suite_isolated(
            request.benchmarks, config, config_.before_job);

        std::uint64_t loaded = 0;
        std::uint64_t analytic = 0;
        std::uint64_t simulated = 0;
        std::uint64_t kernel_lane = 0;
        std::uint64_t reference_lane = 0;
        std::uint64_t mixed_lane = 0;
        for (const auto &slot : outcome.slots) {
            if (!slot)
                continue;
            if (slot->from_cache) {
                ++loaded;
                continue;
            }
            if (slot->analytic)
                ++analytic;
            else
                ++simulated;
            // Which decision-logic lane the fresh simulation actually
            // took (the kernel silently falls back to reference logic
            // for geometries it cannot pack, e.g. a 16-way L2).
            if (slot->sim_path_effective == "kernel")
                ++kernel_lane;
            else if (slot->sim_path_effective == "reference")
                ++reference_lane;
            else if (slot->sim_path_effective == "mixed")
                ++mixed_lane;
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            counters_.cache_hits += loaded;
            counters_.analytic_runs += analytic;
            counters_.sim_runs += simulated;
            counters_.kernel_path_runs += kernel_lane;
            counters_.reference_path_runs += reference_lane;
            counters_.mixed_path_runs += mixed_lane;
            // Crash hygiene: a shard that SIGKILLed mid-store leaves a
            // stale .lock behind; the breaker count surfacing here is
            // how an operator sees the fleet healing itself.
            counters_.locks_broken += outcome.cache.lock_breaks;
        }
        // Only flawless outcomes are worth pinning in the LRU: a
        // degraded or partially-failed response must not outlive the
        // transient trouble that produced it.
        rendered.cacheable = !outcome.interrupted &&
                             outcome.failures.empty() &&
                             !outcome.cache.degraded;
        rendered.response = std::make_shared<const std::string>(
            render_run_response(outcome, request, fingerprint));
    } catch (const util::StatusError &error) {
        rendered.response = std::make_shared<const std::string>(
            render_error(error.status()));
    } catch (const std::exception &error) {
        rendered.response =
            std::make_shared<const std::string>(render_error(
                util::Status(util::ErrorKind::Internal, error.what())));
    }
    return rendered;
}

void
Scheduler::drain()
{
    std::vector<std::thread> workers;
    std::vector<Completion> callbacks;
    std::shared_ptr<const std::string> rejected;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        draining_ = true;
        workers.swap(workers_); // a concurrent drain() joins nothing
        // Queued-not-started jobs never run: their waiters all wake
        // with one shared ShuttingDown response.  Blocking waiters
        // count themselves on wake; async callbacks are counted (and
        // collected to fire) here.
        if (!queue_.empty()) {
            rejected = std::make_shared<const std::string>(
                render_error(util::Status(
                    util::ErrorKind::ShuttingDown,
                    "daemon drained before this request started")));
            for (const std::shared_ptr<Job> &job : queue_) {
                job->response = rejected;
                job->failed_by_drain = true;
                job->done = true;
                inflight_.erase(job->fingerprint);
                counters_.rejected_shutting_down +=
                    job->callbacks.size();
                for (Completion &callback : job->callbacks)
                    callbacks.push_back(std::move(callback));
                job->callbacks.clear();
            }
            counters_.queue_depth = 0;
            queue_.clear();
        }
        cv_.notify_all();
    }
    for (Completion &callback : callbacks)
        callback(rejected);
    for (std::thread &worker : workers)
        worker.join();
}

SchedulerCounters
Scheduler::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    SchedulerCounters snapshot = counters_;
    snapshot.response_lru_entries = lru_list_.size();
    snapshot.response_lru_bytes = lru_bytes_;
    return snapshot;
}

} // namespace leakbound::serve
