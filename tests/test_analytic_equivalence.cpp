/**
 * @file
 * Differential fuzzing of the analytic fast path against the
 * simulator (ISSUE: the analytic engine's acceptance gate).
 *
 * The analytic engine claims byte-identity: for any workload it
 * commits a period skip on, serialize_result(analytic) must equal
 * serialize_result(simulated) exactly.  This harness generates
 * thousands of seeded random LoopPrograms — across cache geometries,
 * with zero-trip and single-iteration loops, and with set-aliasing
 * strides — runs each under Engine::Analytic and Engine::Sim, and
 * compares the serialized payloads byte for byte.  On a mismatch it
 * prints the failing seed plus a greedily minimized program so the
 * failure is directly re-runnable.
 *
 * The fuzzer also counts commits: byte-identity would hold vacuously
 * if the fast path never engaged, so the corpus must make it commit a
 * healthy number of times.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analytic/engine.hpp"
#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "util/random.hpp"
#include "workload/data_pattern.hpp"
#include "workload/loop_program.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;
using workload::BlockSpec;
using workload::NodeSpec;

namespace {

constexpr Addr kCodeBase = 0x0040'0000;
constexpr Addr kHeapBase = 0x1000'0000;

/** One pattern-pool entry, regenerable (the minimizer rebuilds). */
struct PatternSpec
{
    enum class Kind { Sequential, Strided, Chase } kind;
    std::uint64_t a = 0; ///< region bytes / elements / nodes
    std::uint64_t b = 0; ///< step / stride / node bytes
    std::uint64_t seed = 0;
};

/** A regenerable fuzz program: spec tree + pattern pool + geometry. */
struct ProgramSpec
{
    std::uint64_t seed = 0;
    std::vector<NodeSpec> nodes;
    std::vector<PatternSpec> patterns;
    sim::HierarchyConfig hierarchy;
    std::uint64_t instructions = 0;
};

workload::DataPatternPtr
build_pattern(const PatternSpec &spec, std::size_t index)
{
    const Addr base = kHeapBase + static_cast<Addr>(index) * (1 << 22);
    switch (spec.kind) {
      case PatternSpec::Kind::Sequential:
        return workload::make_sequential(
            base, spec.a, static_cast<std::uint32_t>(spec.b));
      case PatternSpec::Kind::Strided:
        return workload::make_strided(base, spec.a, 8, spec.b);
      case PatternSpec::Kind::Chase:
        return workload::make_pointer_chase(
            base, spec.a, static_cast<std::uint32_t>(spec.b), spec.seed);
    }
    return nullptr;
}

workload::WorkloadPtr
build_program(const ProgramSpec &spec)
{
    std::vector<workload::DataPatternPtr> pool;
    for (std::size_t i = 0; i < spec.patterns.size(); ++i)
        pool.push_back(build_pattern(spec.patterns[i], i));
    // Copy the node tree: LoopProgram consumes it.
    std::vector<NodeSpec> nodes = spec.nodes;
    return std::make_unique<workload::LoopProgram>(
        "fuzz", kCodeBase, std::move(nodes), std::move(pool), spec.seed);
}

/**
 * Small geometries keep 2000+ simulations fast while still exercising
 * direct-mapped, low- and high-associativity shapes, multiple line
 * sizes and an L2 that is sometimes barely bigger than the L1s.
 */
sim::HierarchyConfig
random_hierarchy(util::Rng &rng)
{
    sim::HierarchyConfig h;
    const std::uint32_t line = 32u << rng.next_below(2); // 32 or 64

    h.l1i.name = "fz-l1i";
    h.l1i.line_bytes = line;
    h.l1i.associativity = 1u << rng.next_below(3); // 1, 2, 4
    h.l1i.size_bytes =
        (1024u << rng.next_below(3)) * h.l1i.associativity;
    h.l1i.hit_latency = 1;

    h.l1d.name = "fz-l1d";
    h.l1d.line_bytes = line;
    h.l1d.associativity = 1u << rng.next_below(3);
    h.l1d.size_bytes =
        (1024u << rng.next_below(3)) * h.l1d.associativity;
    h.l1d.hit_latency = 1 + rng.next_below(3);

    h.l2.name = "fz-l2";
    h.l2.line_bytes = line;
    h.l2.associativity = 1u << rng.next_below(4); // 1..8
    h.l2.size_bytes =
        (8192u << rng.next_below(3)) * h.l2.associativity;
    h.l2.hit_latency = 5 + rng.next_below(5);

    // FIFO is RNG-free and analytically eligible; mix it in.
    if (rng.next_bool(0.25))
        h.l1d.replacement = sim::ReplacementKind::Fifo;
    if (rng.next_bool(0.25))
        h.l2.replacement = sim::ReplacementKind::Fifo;

    h.memory_latency = 20 + rng.next_below(80);
    return h;
}

PatternSpec
random_pattern(util::Rng &rng)
{
    PatternSpec p{};
    switch (rng.next_below(3)) {
      case 0:
        p.kind = PatternSpec::Kind::Sequential;
        p.a = 512u << rng.next_below(5); // 512B..8KB region
        p.b = 4u << rng.next_below(2);   // 4 or 8 byte step
        break;
      case 1:
        p.kind = PatternSpec::Kind::Strided;
        p.a = 256u << rng.next_below(4); // 256..2048 elements
        // Large power-of-two element strides produce the set-aliasing
        // walks the issue calls out (stride * 8B spans whole sets).
        p.b = 1u << rng.next_below(10); // 1..512 elements
        break;
      default:
        p.kind = PatternSpec::Kind::Chase;
        p.a = 16u << rng.next_below(5); // 16..256 nodes
        p.b = 32u << rng.next_below(3); // 32..128 byte nodes
        p.seed = rng.next_u64();
        break;
    }
    return p;
}

/** A constant-trip node tree of depth <= 3 with adversarial shapes. */
NodeSpec
random_node(util::Rng &rng, int depth, std::size_t num_patterns)
{
    const bool leaf = depth >= 3 || rng.next_bool(0.45);
    if (leaf) {
        BlockSpec block;
        block.instrs = static_cast<std::uint32_t>(rng.next_in(4, 48));
        block.store_fraction = rng.next_double();
        if (rng.next_bool(0.8)) {
            block.pattern =
                static_cast<int>(rng.next_below(num_patterns));
            block.mem_fraction = 0.1 + 0.5 * rng.next_double();
        } else {
            block.pattern = -1; // pure compute block
            block.mem_fraction = 0.0;
        }
        return NodeSpec::make_block(block);
    }
    std::uint64_t trips;
    const std::uint64_t shape = rng.next_below(8);
    if (shape == 0)
        trips = 0; // zero-trip: emits nothing, still draws its count
    else if (shape == 1)
        trips = 1; // single-iteration
    else
        trips = rng.next_in(2, 12);
    const std::size_t children = rng.next_in(1, 3);
    std::vector<NodeSpec> body;
    for (std::size_t i = 0; i < children; ++i)
        body.push_back(random_node(rng, depth + 1, num_patterns));
    return NodeSpec::make_loop(trips, trips, std::move(body));
}

ProgramSpec
random_program(std::uint64_t seed)
{
    util::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
    ProgramSpec spec;
    spec.seed = seed;
    const std::size_t npatterns = rng.next_in(1, 4);
    for (std::size_t i = 0; i < npatterns; ++i)
        spec.patterns.push_back(random_pattern(rng));
    const std::size_t nnodes = rng.next_in(1, 4);
    for (std::size_t i = 0; i < nnodes; ++i)
        spec.nodes.push_back(random_node(rng, 0, npatterns));
    spec.hierarchy = random_hierarchy(rng);
    // Budgets straddle the checkpoint spacing: some runs end before the
    // first checkpoint, some commit and skip dozens of periods.
    spec.instructions = 6'000 + rng.next_below(34'000);
    return spec;
}

ExperimentConfig
config_for(const ProgramSpec &spec, Engine engine)
{
    ExperimentConfig config;
    config.instructions = spec.instructions;
    config.hierarchy = spec.hierarchy;
    config.engine = engine;
    return config;
}

/** Run one spec under both engines; true iff payloads are identical.
 *  @param committed set to whether the analytic run actually skipped. */
bool
equivalent(const ProgramSpec &spec, bool *committed = nullptr)
{
    auto analytic_workload = build_program(spec);
    const ExperimentResult analytic = run_experiment(
        *analytic_workload, config_for(spec, Engine::Analytic));
    auto sim_workload = build_program(spec);
    const ExperimentResult simulated =
        run_experiment(*sim_workload, config_for(spec, Engine::Sim));
    if (committed)
        *committed = analytic.analytic;
    return serialize_result(analytic) == serialize_result(simulated);
}

std::string
describe_node(const NodeSpec &node)
{
    if (node.kind == NodeSpec::Kind::Block) {
        char buf[128];
        std::snprintf(buf, sizeof buf, "block{instrs=%u mem=%.2f p=%d}",
                      node.block.instrs, node.block.mem_fraction,
                      node.block.pattern);
        return buf;
    }
    std::string out =
        "loop{trips=" + std::to_string(node.min_trips) + " [";
    for (const NodeSpec &child : node.body)
        out += describe_node(child) + " ";
    out += "]}";
    return out;
}

/**
 * Greedy structural minimization: repeatedly drop top-level nodes and
 * pool patterns while the mismatch persists, then print what is left.
 */
std::string
minimize_and_describe(ProgramSpec spec)
{
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (std::size_t i = 0; i < spec.nodes.size() && spec.nodes.size() > 1;
             ++i) {
            ProgramSpec candidate = spec;
            candidate.nodes.erase(candidate.nodes.begin() +
                                  static_cast<std::ptrdiff_t>(i));
            if (!equivalent(candidate)) {
                spec = std::move(candidate);
                shrunk = true;
                break;
            }
        }
    }
    std::string out = "seed=" + std::to_string(spec.seed) +
                      " instructions=" +
                      std::to_string(spec.instructions) + "\n";
    for (const NodeSpec &node : spec.nodes)
        out += "  " + describe_node(node) + "\n";
    out += "  patterns=" + std::to_string(spec.patterns.size()) +
           " l1i=" + std::to_string(spec.hierarchy.l1i.size_bytes) +
           "B/" + std::to_string(spec.hierarchy.l1i.associativity) +
           "w l1d=" + std::to_string(spec.hierarchy.l1d.size_bytes) +
           "B/" + std::to_string(spec.hierarchy.l1d.associativity) +
           "w l2=" + std::to_string(spec.hierarchy.l2.size_bytes) + "B";
    return out;
}

} // namespace

/**
 * The main gate: 1000 random programs, every one byte-identical across
 * engines, with a non-trivial number of actual fast-path commits.
 */
TEST(AnalyticEquivalence, FuzzedProgramsAreByteIdentical)
{
    constexpr std::uint64_t kPrograms = 1000;
    std::uint64_t commits = 0;
    for (std::uint64_t seed = 1; seed <= kPrograms; ++seed) {
        const ProgramSpec spec = random_program(seed);
        bool committed = false;
        if (!equivalent(spec, &committed)) {
            FAIL() << "analytic/sim divergence; minimized:\n"
                   << minimize_and_describe(spec);
        }
        commits += committed ? 1 : 0;
    }
    // Byte-identity must not be vacuous: the corpus has to drive the
    // fast path through real commits (observed: several hundred).
    EXPECT_GE(commits, 50u) << "fast path almost never engaged";
    EXPECT_LT(commits, kPrograms) << "fallback path never exercised";
}

/** Zero-trip-only programs: the stream is pure latches. */
TEST(AnalyticEquivalence, ZeroTripLoopsOnly)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        ProgramSpec spec = random_program(seed);
        spec.nodes.clear();
        spec.nodes.push_back(NodeSpec::make_loop(
            0, 0, {NodeSpec::make_block({16, 0.5, 0.2, 0})}));
        spec.nodes.push_back(NodeSpec::make_loop(
            1, 1, {NodeSpec::make_block({8, 0.4, 0.1, 0})}));
        // Pin the pool to one short-cycle sequential pattern and give
        // the run room for several checkpoints: state recurrence is
        // then guaranteed well inside the budget, so these must all
        // commit (the random corpus covers the fallback side).
        spec.patterns.clear();
        PatternSpec seq{};
        seq.kind = PatternSpec::Kind::Sequential;
        seq.a = 128;
        seq.b = 8;
        spec.patterns.push_back(seq);
        spec.instructions = 200'000;
        bool committed = false;
        EXPECT_TRUE(equivalent(spec, &committed)) << "seed " << seed;
        EXPECT_TRUE(committed) << "seed " << seed;
    }
}

/** Single-line programs whose strides alias one cache set. */
TEST(AnalyticEquivalence, SetAliasingStrides)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        ProgramSpec spec = random_program(seed);
        spec.patterns.clear();
        PatternSpec alias{};
        alias.kind = PatternSpec::Kind::Strided;
        alias.a = 2048;
        // 512-element (4KB) stride: every reference lands in the same
        // set of the small fuzz L1Ds.
        alias.b = 512;
        spec.patterns.push_back(alias);
        spec.nodes.clear();
        spec.nodes.push_back(NodeSpec::make_loop(
            6, 6, {NodeSpec::make_block({24, 0.6, 0.3, 0})}));
        EXPECT_TRUE(equivalent(spec)) << "seed " << seed;
    }
}

/**
 * Identical suite-level results under auto vs sim: the wire the bench
 * binaries use.  Also checks that the two engines occupy different
 * artifact-cache key spaces.
 */
TEST(AnalyticEquivalence, AutoMatchesSimOnEligibleBenchmarks)
{
    for (const char *name : {"stream", "stencil", "chase"}) {
        ExperimentConfig auto_config;
        auto_config.instructions = 400'000;
        auto_config.engine = Engine::Auto;
        ExperimentConfig sim_config = auto_config;
        sim_config.engine = Engine::Sim;

        auto wa = workload::make_benchmark(name);
        const ExperimentResult a = run_experiment(*wa, auto_config);
        auto ws = workload::make_benchmark(name);
        const ExperimentResult s = run_experiment(*ws, sim_config);

        EXPECT_TRUE(a.analytic) << name << ": auto never committed";
        EXPECT_FALSE(s.analytic) << name;
        EXPECT_EQ(serialize_result(a), serialize_result(s)) << name;
        EXPECT_NE(fingerprint_config(auto_config),
                  fingerprint_config(sim_config));
    }
}

/** The stock suite is ineligible: auto must not change anything. */
TEST(AnalyticEquivalence, StockSuiteIsNeverClaimed)
{
    for (const std::string &name : workload::suite_names()) {
        auto w = workload::make_benchmark(name);
        ExperimentConfig config;
        config.instructions = 50'000;
        EXPECT_FALSE(analytic::is_analyzable(*w, config.hierarchy,
                                             config.keep_raw))
            << name;
    }
}
