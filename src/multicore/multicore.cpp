/**
 * @file
 * Implementation of the multicore shared-L2 engine.
 */

#include "multicore/multicore.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/collecting_listener.hpp"
#include "interval/collector.hpp"
#include "prefetch/stride.hpp"
#include "sim/hierarchy.hpp"
#include "util/logging.hpp"
#include "util/status.hpp"
#include "workload/spec_suite.hpp"

namespace leakbound::multicore {

namespace {

/** Seed of the shared L2 (the historical single-core L2 seed). */
constexpr std::uint64_t kSharedL2Seed = 17;

/**
 * L2 banks the interval collection is sharded over.  Power of two,
 * capped by the set count; set index bits select the bank (the usual
 * low-order interleaving).  Purely an observation-side partition: the
 * cache itself is one instance, and the merged histogram is
 * byte-identical to a single collector over the whole frame space.
 */
std::uint64_t
l2_bank_count(const sim::CacheConfig &config)
{
    return std::min<std::uint64_t>(8, config.num_sets());
}

void
add_cache_stats(sim::CacheStats &into, const sim::CacheStats &from)
{
    into.accesses += from.accesses;
    into.hits += from.hits;
    into.misses += from.misses;
    into.evictions += from.evictions;
}

class Engine;

/**
 * Per-core access listener: feeds the core's own collectors through
 * the shared CollectingListener (same classification code as the
 * single-core engine), then routes the access to the engine for the
 * shared-L2 collectors and the invalidation directory.
 */
class NodeListener final : public cpu::AccessListener
{
  public:
    NodeListener(Engine *engine, std::uint32_t core_id,
                 const sim::HierarchyConfig &config,
                 interval::IntervalCollector *icollector,
                 interval::IntervalCollector *dcollector,
                 prefetch::StridePredictor *stride, Cycles nl_lead_time)
        : engine_(engine), core_id_(core_id),
          inner_(config, icollector, dcollector, stride, nl_lead_time)
    {
        // The inner listener never gets an L2 collector: the shared
        // L2's population is owned by the engine's per-bank collectors
        // (a per-core collector could not see other cores' touches).
    }

    void on_instr_access(Cycle cycle, Pc pc,
                         const sim::HierarchyResult &result) override;
    void on_data_access(Cycle cycle, Pc pc, Addr addr, bool is_store,
                        const sim::HierarchyResult &result) override;

  private:
    Engine *engine_;
    std::uint32_t core_id_;
    core::CollectingListener inner_;
};

/** The interleaver, the directory, and all per-core machinery. */
class Engine
{
  public:
    Engine(std::vector<std::string> names,
           const core::ExperimentConfig &config)
        : l2_(config.hierarchy.l2, kSharedL2Seed, config.sim_path),
          l1d_line_shift_(config.hierarchy.l1d.line_shift()),
          l2_line_shift_(config.hierarchy.l2.line_shift()),
          l2_ways_(config.hierarchy.l2.associativity),
          banks_(l2_bank_count(config.hierarchy.l2)),
          bank_mask_(banks_ - 1),
          bank_shift_(static_cast<std::uint32_t>(
              std::countr_zero(banks_)))
    {
        const auto edges = interval::IntervalHistogramSet::default_edges(
            config.extra_edges);

        if (config.collect_l2) {
            const std::uint64_t frames_per_bank =
                config.hierarchy.l2.num_frames() / banks_;
            bank_sinks_.reserve(banks_);
            bank_collectors_.reserve(banks_);
            for (std::uint64_t b = 0; b < banks_; ++b) {
                bank_sinks_.emplace_back(edges);
                bank_collectors_.push_back(
                    std::make_unique<interval::IntervalCollector>(
                        frames_per_bank, &bank_sinks_.back()));
            }
        }

        nodes_.reserve(names.size());
        for (std::uint32_t i = 0;
             i < static_cast<std::uint32_t>(names.size()); ++i) {
            auto node = std::make_unique<Node>();
            node->workload_name = names[i];
            node->isink.emplace(edges);
            node->dsink.emplace(edges);
            node->hierarchy = std::make_unique<sim::Hierarchy>(
                config.hierarchy, &l2_, i, config.sim_path);
            node->icollector =
                std::make_unique<interval::IntervalCollector>(
                    node->hierarchy->l1i().num_frames(), &*node->isink);
            node->dcollector =
                std::make_unique<interval::IntervalCollector>(
                    node->hierarchy->l1d().num_frames(), &*node->dsink);
            node->stride =
                std::make_unique<prefetch::StridePredictor>(config.stride);
            node->listener = std::make_unique<NodeListener>(
                this, i, config.hierarchy, node->icollector.get(),
                node->dcollector.get(), node->stride.get(),
                config.nl_lead_time);
            node->workload = workload::make_benchmark(names[i]);
            node->core = std::make_unique<cpu::InOrderCore>(
                config.core, node->hierarchy.get(), node->workload.get(),
                node->listener.get());
            node->remaining = config.instructions;
            node->running = node->remaining != 0;
            nodes_.push_back(std::move(node));
        }
    }

    MulticoreResult run();

    /**
     * Shared-L2 observation hook: every L1 miss of every core touched
     * the L2, closing the touched frame's open interval in its bank.
     */
    void
    on_l2(Cycle cycle, const sim::HierarchyResult &result)
    {
        if (bank_collectors_.empty() || result.l1.hit)
            return; // the L2 is only touched on L1 misses
        observe_l2_frame(result.l2.frame, cycle, result.l2.hit);
    }

    /**
     * Invalidation directory: maintain the per-block sharer bitmask
     * from this L1D access, and on a store kill every other core's
     * copy — closing their open L1D intervals, and the shared line's
     * L2 interval when the store itself never reached the L2.
     */
    void
    on_data(std::uint32_t core_id, Cycle cycle, Addr addr, bool is_store,
            const sim::AccessResult &l1)
    {
        const Addr block = addr >> l1d_line_shift_;
        const std::uint64_t bit = std::uint64_t{1} << core_id;

        if (!l1.hit && l1.evicted) {
            // The victim left core_id's L1D without a coherence event;
            // the directory tracks residency exactly, so its bit must
            // be on.
            auto victim = sharers_.find(l1.victim_block);
            LEAKBOUND_ASSERT(victim != sharers_.end() &&
                                 (victim->second & bit) != 0,
                             "directory lost track of an evicted block");
            victim->second &= ~bit;
            if (victim->second == 0)
                sharers_.erase(victim);
        }

        std::uint64_t &mask = sharers_[block];
        mask |= bit;
        if (!is_store)
            return;

        std::uint64_t others = mask & ~bit;
        if (others == 0)
            return; // exclusive already; no coherence traffic

        ++invalidating_stores_;
        while (others != 0) {
            const std::uint32_t j = static_cast<std::uint32_t>(
                std::countr_zero(others));
            others &= others - 1;
            const FrameId frame =
                nodes_[j]->hierarchy->l1d().invalidate_block(block);
            LEAKBOUND_ASSERT(frame != kInvalidFrame,
                             "directory named a non-resident sharer");
            // The kill closes the victim frame's open interval — the
            // line must leave low-leakage state to be snooped/dropped —
            // with no reuse (the resident block is destroyed, not
            // served) and no prefetch class.
            nodes_[j]->dcollector->on_access(frame, cycle,
                                             /*reuse=*/false,
                                             /*stride_predicted=*/false,
                                             /*nl_covered=*/false);
            ++nodes_[j]->invalidations_received;
            ++invalidations_;
        }
        mask = bit; // the writer is now the sole sharer

        // A store that *missed* its L1D already touched the L2 through
        // the access itself (on_l2 above); only an L1-hit store reaches
        // the shared line purely through the coherence fabric.  The L2
        // may no longer hold the line (no back-invalidation, so the
        // hierarchy is not inclusive) — then there is no interval to
        // close.
        if (l1.hit && !bank_collectors_.empty()) {
            const Addr l2block =
                (block << l1d_line_shift_) >> l2_line_shift_;
            const FrameId frame = l2_.frame_of_block(l2block);
            if (frame != kInvalidFrame) {
                // The line stays resident in the L2 (the directory
                // kill is about L1 copies), so this close is a reuse.
                observe_l2_frame(frame, cycle, /*reuse=*/true);
                ++l2_interval_closes_;
            }
        }
    }

  private:
    struct Node
    {
        std::string workload_name;
        std::optional<interval::IntervalHistogramSet> isink;
        std::optional<interval::IntervalHistogramSet> dsink;
        std::unique_ptr<sim::Hierarchy> hierarchy;
        std::unique_ptr<interval::IntervalCollector> icollector;
        std::unique_ptr<interval::IntervalCollector> dcollector;
        std::unique_ptr<prefetch::StridePredictor> stride;
        std::unique_ptr<NodeListener> listener;
        workload::WorkloadPtr workload;
        std::unique_ptr<cpu::InOrderCore> core;
        std::uint64_t remaining = 0;
        bool running = false;
        cpu::CoreRunStats stats; ///< accumulated deltas; cycles at end
        std::uint64_t invalidations_received = 0;
    };

    /** Route a shared-L2 frame event into its bank's collector. */
    void
    observe_l2_frame(FrameId frame, Cycle cycle, bool reuse)
    {
        const std::uint64_t set = frame / l2_ways_;
        const std::uint64_t way = frame % l2_ways_;
        const std::uint64_t bank = set & bank_mask_;
        const FrameId local = static_cast<FrameId>(
            (set >> bank_shift_) * l2_ways_ + way);
        bank_collectors_[bank]->on_access(local, cycle, reuse,
                                          /*stride_predicted=*/false,
                                          /*nl_covered=*/false);
    }

    sim::Cache l2_;
    std::uint32_t l1d_line_shift_;
    std::uint32_t l2_line_shift_;
    std::uint64_t l2_ways_;
    std::uint64_t banks_;
    std::uint64_t bank_mask_;
    std::uint32_t bank_shift_;
    std::vector<interval::IntervalHistogramSet> bank_sinks_;
    std::vector<std::unique_ptr<interval::IntervalCollector>>
        bank_collectors_;
    std::vector<std::unique_ptr<Node>> nodes_;
    /**
     * The sparse directory: L1D block number -> bitmask of cores whose
     * L1D holds the block.  Maintained exactly from each access result
     * (fill sets the bit, eviction and invalidation clear it), so a
     * lookup never over- or under-reports sharers.
     */
    std::unordered_map<Addr, std::uint64_t> sharers_;
    std::uint64_t invalidations_ = 0;
    std::uint64_t invalidating_stores_ = 0;
    std::uint64_t l2_interval_closes_ = 0;
};

void
NodeListener::on_instr_access(Cycle cycle, Pc pc,
                              const sim::HierarchyResult &result)
{
    inner_.on_instr_access(cycle, pc, result);
    engine_->on_l2(cycle, result);
}

void
NodeListener::on_data_access(Cycle cycle, Pc pc, Addr addr, bool is_store,
                             const sim::HierarchyResult &result)
{
    inner_.on_data_access(cycle, pc, addr, is_store, result);
    engine_->on_l2(cycle, result);
    engine_->on_data(core_id_, cycle, addr, is_store, result.l1);
}

MulticoreResult
Engine::run()
{
    // One fetch group per step: the hook fires after the first group
    // and stops the run, with the stream position preserved for the
    // next step.  Hooked runs disable fetch batching, but the op
    // stream and timing are contractually identical either way (see
    // InOrderCore::set_batch_fetch), which the N=1 byte-identity test
    // pins down.
    const cpu::InOrderCore::GroupHook one_group =
        [](const cpu::CoreRunStats &) { return false; };

    for (;;) {
        // Step the core with the minimum (cycle, core_id): the strict
        // < over an in-order scan breaks cycle ties toward the lower
        // id, so the event interleaving is a pure function of the
        // configuration.  Because the minimum only ever increases,
        // every event — including cross-core invalidations landing in
        // other cores' collectors — carries a globally non-decreasing
        // cycle stamp, which is what the collectors' time-ordering
        // invariant requires.
        Node *next = nullptr;
        for (auto &node : nodes_) {
            if (node->running &&
                (!next || node->core->cycle() < next->core->cycle())) {
                next = node.get();
            }
        }
        if (!next)
            break;

        const cpu::CoreRunStats delta =
            next->core->run(next->remaining, one_group);
        if (delta.instructions == 0) {
            next->running = false; // finite workload exhausted
            continue;
        }
        next->stats.instructions += delta.instructions;
        next->stats.fetch_groups += delta.fetch_groups;
        next->stats.loads += delta.loads;
        next->stats.stores += delta.stores;
        next->stats.instr_stall_cycles += delta.instr_stall_cycles;
        next->stats.data_stall_cycles += delta.data_stall_cycles;
        next->remaining -= delta.instructions;
        if (next->remaining == 0)
            next->running = false;
    }

    Cycle end_cycle = 0;
    for (auto &node : nodes_) {
        node->stats.cycles = node->core->cycle();
        end_cycle = std::max(end_cycle, node->core->cycle());
    }

    MulticoreResult result;
    result.end_cycle = end_cycle;
    result.invalidations = invalidations_;
    result.invalidating_stores = invalidating_stores_;
    result.l2_interval_closes = l2_interval_closes_;
    result.l2 = l2_.stats();

    std::size_t kernel_caches = l2_.kernel_active() ? 1 : 0;
    result.cores.reserve(nodes_.size());
    for (auto &node : nodes_) {
        node->icollector->finalize(end_cycle);
        node->dcollector->finalize(end_cycle);
        CoreOutcome outcome{
            core::CacheObservation(std::move(*node->isink)),
            core::CacheObservation(std::move(*node->dsink))};
        outcome.workload = node->workload_name;
        outcome.stats = node->stats;
        outcome.icache.stats = node->hierarchy->l1i().stats();
        outcome.dcache.stats = node->hierarchy->l1d().stats();
        outcome.invalidations_received = node->invalidations_received;
        kernel_caches +=
            static_cast<std::size_t>(node->hierarchy->l1i().kernel_active()) +
            static_cast<std::size_t>(node->hierarchy->l1d().kernel_active());
        result.cores.push_back(std::move(outcome));
    }
    result.sim_path_effective = core::sim_path_effective_name(
        kernel_caches, 2 * nodes_.size() + 1);

    if (!bank_collectors_.empty()) {
        for (std::uint64_t b = 0; b < banks_; ++b)
            bank_collectors_[b]->finalize(end_cycle);
        core::CacheObservation merged(
            interval::IntervalHistogramSet(bank_sinks_.front()));
        for (std::uint64_t b = 1; b < banks_; ++b)
            merged.intervals.merge(bank_sinks_[b]);
        merged.stats = l2_.stats();
        result.l2cache.emplace(std::move(merged));
        result.l2_banks = std::move(bank_sinks_);
    }
    return result;
}

} // namespace

std::vector<std::string>
resolve_mix(const std::string &benchmark,
            const core::ExperimentConfig &config)
{
    if (!config.workload_mix.empty())
        return config.workload_mix;
    if (!workload::is_benchmark(benchmark)) {
        throw util::StatusError(util::Status(
            util::ErrorKind::InvalidArgument,
            "homogeneous multicore runs need a suite benchmark, got '" +
                benchmark + "'"));
    }
    return std::vector<std::string>(config.core_count, benchmark);
}

std::string
mix_label(const std::vector<std::string> &names)
{
    if (names.size() == 1)
        return names.front();
    std::string label = "mc" + std::to_string(names.size()) + ":";
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0)
            label += "+";
        label += names[i];
    }
    return label;
}

MulticoreResult
run_multicore(const std::string &benchmark,
              const core::ExperimentConfig &config)
{
    if (util::Status valid = config.validate(); !valid.ok())
        throw util::StatusError(std::move(valid));
    if (config.keep_raw) {
        throw util::StatusError(util::Status(
            util::ErrorKind::InvalidArgument,
            "raw-interval retention (keep_raw) is single-core only"));
    }
    config.hierarchy.validate();

    const std::vector<std::string> names = resolve_mix(benchmark, config);
    Engine engine(names, config);
    MulticoreResult result = engine.run();
    result.label = mix_label(names);

    std::uint64_t instructions = 0;
    for (const CoreOutcome &core : result.cores)
        instructions += core.stats.instructions;
    util::debug("multicore '", result.label, "': ", names.size(),
                " cores, ", instructions, " instrs, ", result.end_cycle,
                " cycles, ", result.invalidations, " invalidations (",
                result.sim_path_effective, ")");
    return result;
}

core::ExperimentResult
MulticoreResult::to_experiment_result() const
{
    core::CacheObservation ic = cores.front().icache;
    core::CacheObservation dc = cores.front().dcache;
    cpu::CoreRunStats stats = cores.front().stats;
    for (std::size_t i = 1; i < cores.size(); ++i) {
        ic.intervals.merge(cores[i].icache.intervals);
        add_cache_stats(ic.stats, cores[i].icache.stats);
        dc.intervals.merge(cores[i].dcache.intervals);
        add_cache_stats(dc.stats, cores[i].dcache.stats);
        stats.instructions += cores[i].stats.instructions;
        stats.fetch_groups += cores[i].stats.fetch_groups;
        stats.loads += cores[i].stats.loads;
        stats.stores += cores[i].stats.stores;
        stats.instr_stall_cycles += cores[i].stats.instr_stall_cycles;
        stats.data_stall_cycles += cores[i].stats.data_stall_cycles;
    }
    // The run's wall-clock extent is the slowest core's, not a sum —
    // exactly the end-of-run timestamp every collector finalized at.
    stats.cycles = end_cycle;

    core::ExperimentResult result(std::move(ic), std::move(dc));
    result.workload = label;
    result.core = stats;
    result.l2cache = l2cache;
    result.l2 = l2;
    result.sim_path_effective = sim_path_effective;
    return result;
}

core::ExperimentResult
run_multicore_summary(const std::string &benchmark,
                      const core::ExperimentConfig &config)
{
    const auto wall_start = std::chrono::steady_clock::now();
    core::ExperimentResult result =
        run_multicore(benchmark, config).to_experiment_result();
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();
    return result;
}

} // namespace leakbound::multicore
