/**
 * @file
 * Implementation of the Figure 5 optimal-saving accumulation.
 */

#include "core/optimal.hpp"

namespace leakbound::core {

using interval::Interval;
using interval::IntervalKind;

OptimalSaving
optimal_leakage(const EnergyModel &model, const InflectionPoints &points,
                const std::vector<Interval> &intervals)
{
    OptimalSaving out;
    for (const Interval &iv : intervals) {
        const Energy active =
            model.energy(Mode::Active, iv.length, iv.kind);
        // Figure 5: if |Ii| > b -> sleep_saving; else if |Ii| > a ->
        // drowsy_saving; else no saving.  Kind-specific applicability
        // guards keep the transcription honest for the boundary
        // interval kinds (e.g. a trailing interval shorter than s1).
        if (iv.length > points.drowsy_sleep &&
            model.applicable(Mode::Sleep, iv.length, iv.kind)) {
            const Energy saved =
                active - model.energy(Mode::Sleep, iv.length, iv.kind);
            out.sleep_saving += saved;
            out.total_saving += saved;
            ++out.slept;
        } else if (iv.length > points.active_drowsy &&
                   model.applicable(Mode::Drowsy, iv.length, iv.kind)) {
            const Energy saved =
                active - model.energy(Mode::Drowsy, iv.length, iv.kind);
            out.drowsy_saving += saved;
            out.total_saving += saved;
            ++out.drowsed;
        } else {
            // No leakage power saving can be obtained.
            ++out.active;
        }
    }
    return out;
}

} // namespace leakbound::core
