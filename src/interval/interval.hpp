/**
 * @file
 * Core vocabulary of the limit study: cache access intervals.
 *
 * An interval is the stretch of time a physical cache frame rests
 * between two consecutive accesses (paper Section 3.1).  Every frame's
 * timeline is fully partitioned into intervals so that per-frame
 * leakage energy can be accounted exactly:
 *
 *   power-on ... first access .... access ... last access ... sim end
 *   |-- Leading --|-- Inner --| ... |------ Trailing ---------|
 *
 * Frames never touched during the run carry a single Untouched interval
 * spanning the whole simulation.
 */

#ifndef LEAKBOUND_INTERVAL_INTERVAL_HPP
#define LEAKBOUND_INTERVAL_INTERVAL_HPP

#include <cstdint>

#include "util/types.hpp"

namespace leakbound::interval {

/**
 * Position of an interval inside its frame's lifetime; determines which
 * transition/re-fetch overheads apply (see core::EnergyModel).
 */
enum class IntervalKind : std::uint8_t {
    /**
     * Between two accesses.  Ends with an access, so a slept line pays
     * the full wakeup path (s3 + s4) and the induced-miss re-fetch
     * energy CD; a drowsy line pays the d3 wakeup.
     */
    Inner,
    /**
     * From power-on to the frame's first access.  The frame holds no
     * data yet; the first access is a compulsory miss that fetches
     * regardless, so sleeping this interval has no transition cost and
     * no CD.
     */
    Leading,
    /**
     * From the last access to the end of simulation.  Never re-read, so
     * sleep pays only the entry transition (s1), never CD.
     */
    Trailing,
    /** A frame never accessed during the run; sleep is free. */
    Untouched,
};

/** Number of IntervalKind values (for array sizing). */
inline constexpr std::size_t kNumIntervalKinds = 4;

/**
 * Prefetchability class of an interval (paper Section 5.2): could a
 * hardware prefetcher have re-fetched the line just in time at the end
 * of this interval?
 */
enum class PrefetchClass : std::uint8_t {
    /** No studied prefetcher covers the closing access. */
    NonPrefetchable,
    /** Covered by next-line prefetching (access to the previous line
     *  occurred inside the interval). */
    NextLine,
    /** Covered by stride-based prefetching (closing access's load PC
     *  had a twice-confirmed stride predicting this line). */
    Stride,
};

/** Number of PrefetchClass values (for array sizing). */
inline constexpr std::size_t kNumPrefetchClasses = 3;

/** One extracted interval. */
struct Interval
{
    Cycles length = 0;          ///< duration in cycles
    IntervalKind kind = IntervalKind::Inner;
    PrefetchClass pf = PrefetchClass::NonPrefetchable;
    /**
     * True when the access closing the interval re-references the block
     * already resident in the frame (a would-be hit: sleeping induces a
     * real extra miss).  False when the closing access replaces the
     * block (the fetch happens anyway, so sleeping was free).  The
     * paper's accounting deliberately ignores this (Section 3.1 "we
     * ignore the effect of live and dead intervals"); an ablation bench
     * turns the refinement on.
     */
    bool ends_in_reuse = true;
};

/** Printable name of an IntervalKind. */
const char *kind_name(IntervalKind kind);

/** Printable name of a PrefetchClass. */
const char *prefetch_class_name(PrefetchClass pf);

} // namespace leakbound::interval

#endif // LEAKBOUND_INTERVAL_INTERVAL_HPP
