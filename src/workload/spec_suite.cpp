/**
 * @file
 * Construction of the six synthetic SPEC2000-like benchmarks.
 *
 * Address map: code regions live at 0x0040_0000+, heap data regions at
 * 0x1000_0000+ (spaced far apart), stacks at 0x7fff_f000.  The exact
 * values only need to keep regions disjoint.
 *
 * Tuning goals (DESIGN.md §3 and §8): L1 miss rates of a few percent
 * (hot stack/structure data takes the majority of references), code
 * resident sets that are a meaningful fraction of the 64KB L1I, a
 * broad population of *medium* (10^2..10^4 cycle) re-access intervals
 * from section/loop rotation (these separate Hybrid from Sleep-only in
 * Fig. 7 and OPT from decay in Fig. 8), long cross-phase intervals for
 * the 180nm regime of Table 2, and long-interval mass dominated by
 * sequential/strided (prefetchable) traffic with an irregular
 * (non-prefetchable) minority, which is what lets Prefetch-B approach
 * the bound in Fig. 8.
 */

#include "workload/spec_suite.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "workload/callgraph.hpp"
#include "workload/data_pattern.hpp"
#include "workload/loop_program.hpp"

namespace leakbound::workload {

namespace {

constexpr Addr kCodeBase = 0x0040'0000;
constexpr Addr kHeapBase = 0x1000'0000;
constexpr Addr kStackTop = 0x7fff'f000;
constexpr Addr kRegionGap = 0x0100'0000; // 16MB between data regions

Addr
heap(std::uint32_t index)
{
    return kHeapBase + static_cast<Addr>(index) * kRegionGap;
}

/**
 * A "section": a two-level loop nest over @p nblocks straight-line
 * blocks drawn round-robin from @p rotation.  Blocks are grouped into
 * sub-loops of three that each repeat 4-12 times, and the whole chain
 * repeats reps_min..reps_max times.  The resulting code-line interval
 * spectrum is the paper-shaped one: ~10^2-cycle revisits while a
 * sub-loop spins, ~10^3-10^4-cycle revisits per section iteration
 * (the band that separates Hybrid from Sleep-only in Fig. 7), and
 * rotation-period ides of 10^5+ cycles between section visits (the
 * 180nm regime of Table 2).
 */
NodeSpec
make_section(std::uint64_t reps_min, std::uint64_t reps_max,
             std::uint32_t nblocks, const std::vector<BlockSpec> &rotation)
{
    std::vector<NodeSpec> chain;
    std::vector<NodeSpec> group;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        group.push_back(
            NodeSpec::make_block(rotation[i % rotation.size()]));
        if (group.size() == 3 || i + 1 == nblocks) {
            chain.push_back(
                NodeSpec::make_loop(4, 12, std::move(group)));
            group.clear();
        }
    }
    return NodeSpec::make_loop(reps_min, reps_max, std::move(chain));
}

/**
 * gzip: compression inner loops.  Small hot code (~8KB), a hot 32KB
 * sliding window, and streaming input/output buffers — the next-line
 * showcase.
 */
WorkloadPtr
make_gzip(std::uint64_t seed)
{
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_random(heap(0), 192 << 10, 4, seed ^ 1)); // 0 window (warm)
    patterns.push_back(make_sequential(heap(1), 2 << 20, 4));         // 1 input
    patterns.push_back(make_sequential(heap(2), 2 << 20, 4));         // 2 output
    patterns.push_back(make_stack(kStackTop, 2 << 10, seed ^ 3));     // 3 stack (hot)
    patterns.push_back(make_random(heap(3), 4 << 10, 4, seed ^ 5));   // 4 head table (hot)

    // Four sections: hash+match, literal copy, huffman emit, window
    // refill.  Rotation period lands in the low thousands of cycles.
    std::vector<NodeSpec> body;
    body.push_back(make_section(12, 40, 14,
                                {{44, 0.45, 0.20, 3},
                                 {40, 0.05, 0.05, 1},
                                 {36, 0.06, 0.20, 0},
                                 {40, 0.40, 0.20, 4}}));
    body.push_back(make_section(8, 24, 12,
                                {{40, 0.05, 0.05, 1},
                                 {44, 0.45, 0.40, 3},
                                 {32, 0.05, 0.80, 2}}));
    body.push_back(make_section(10, 30, 14,
                                {{48, 0.05, 0.70, 2},
                                 {36, 0.06, 0.10, 0},
                                 {32, 0.45, 0.25, 3},
                                 {36, 0.35, 0.20, 4}}));
    body.push_back(make_section(4, 12, 10,
                                {{40, 0.06, 0.45, 0},
                                 {36, 0.45, 0.15, 3}}));

    return std::make_unique<LoopProgram>(
        "gzip", kCodeBase, std::move(body), std::move(patterns), seed);
}

/**
 * ammp: molecular dynamics.  ~28KB of hot solver code sweeping
 * multi-megabyte atom/force arrays with unit stride, plus a hot
 * per-molecule scratch region.
 */
WorkloadPtr
make_ammp(std::uint64_t seed)
{
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_sequential(heap(0), 4 << 20, 8));         // 0 atoms
    patterns.push_back(make_random(heap(1), 6 << 10, 8, seed ^ 2));   // 1 scratch (hot)
    patterns.push_back(make_sequential(heap(2), 4 << 20, 8));         // 2 forces
    patterns.push_back(make_random(heap(3), 96 << 10, 8, seed ^ 4));  // 3 nbr lists (warm)
    patterns.push_back(make_stack(kStackTop, 2 << 10, seed ^ 5));     // 4 stack (hot)

    std::vector<NodeSpec> body;
    // Non-bonded force sweep: the dominant phase.
    body.push_back(make_section(20, 60, 24,
                                {{52, 0.05, 0.10, 0},
                                 {48, 0.45, 0.30, 1},
                                 {44, 0.06, 0.15, 3},
                                 {40, 0.04, 0.75, 2},
                                 {36, 0.40, 0.25, 4}}));
    // Bonded terms: smaller, hotter.
    body.push_back(make_section(15, 45, 20,
                                {{48, 0.45, 0.30, 1},
                                 {40, 0.40, 0.20, 4},
                                 {44, 0.04, 0.60, 2}}));
    // Integration/update pass.
    body.push_back(make_section(8, 20, 18,
                                {{56, 0.05, 0.50, 0},
                                 {44, 0.04, 0.55, 2},
                                 {36, 0.45, 0.25, 1}}));

    return std::make_unique<LoopProgram>(
        "ammp", kCodeBase, std::move(body), std::move(patterns), seed);
}

/**
 * applu: SSOR solver.  Deep loop nests over a 3D grid referenced at
 * unit, row and plane strides — the stride-prefetch showcase — with a
 * hot coefficient block.
 */
WorkloadPtr
make_applu(std::uint64_t seed)
{
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_sequential(heap(0), 4 << 20, 8));        // 0 grid unit
    patterns.push_back(make_strided(heap(0), 1 << 19, 8, 128));      // 1 rows
    patterns.push_back(make_strided(heap(0), 1 << 19, 8, 8192));     // 2 planes
    patterns.push_back(make_random(heap(1), 6 << 10, 8, seed ^ 3));  // 3 coeffs (hot)
    patterns.push_back(make_sequential(heap(2), 2 << 20, 8));        // 4 rhs
    patterns.push_back(make_stack(kStackTop, 2 << 10, seed ^ 5));    // 5 stack

    std::vector<NodeSpec> body;
    // Lower-triangular sweep.
    body.push_back(make_section(24, 72, 22,
                                {{56, 0.08, 0.20, 0},
                                 {48, 0.03, 0.15, 1},
                                 {44, 0.45, 0.35, 3},
                                 {36, 0.40, 0.25, 5}}));
    // Upper-triangular sweep (plane-strided).
    body.push_back(make_section(24, 72, 22,
                                {{56, 0.03, 0.20, 2},
                                 {48, 0.03, 0.15, 1},
                                 {40, 0.45, 0.35, 3},
                                 {36, 0.40, 0.20, 5}}));
    // Residual/RHS update.
    body.push_back(make_section(10, 28, 16,
                                {{52, 0.07, 0.60, 4},
                                 {44, 0.06, 0.20, 0},
                                 {36, 0.45, 0.30, 5}}));

    return std::make_unique<LoopProgram>(
        "applu", kCodeBase, std::move(body), std::move(patterns), seed);
}

/** Pattern pool shared by the call-graph benchmarks: index weights
 *  control the reference mix (hot structures + stack dominate). */
std::vector<DataPatternPtr>
callgraph_patterns(std::uint32_t region, std::uint64_t seed,
                   bool pointer_heavy)
{
    std::vector<DataPatternPtr> p;
    // Madly-hot data: top of stack and a tiny descriptor table take
    // the bulk of references (duplicated entries raise selection
    // weight; functions pick a pattern uniformly from the pool).
    for (int i = 0; i < 4; ++i) {
        p.push_back(make_stack(kStackTop - region * (1 << 20), 2 << 10,
                               seed ^ (100 + i)));
    }
    for (int i = 0; i < 3; ++i) {
        p.push_back(make_random(heap(region), 6 << 10, 8,
                                seed ^ (200 + i)));
    }
    // Warm structures: per-line re-access in the thousands of cycles.
    p.push_back(make_random(heap(region) + (1 << 20), 64 << 10, 8,
                            seed ^ 5));
    p.push_back(make_random(heap(region) + (2 << 20), 64 << 10, 8,
                            seed ^ 6));
    // Cold, mostly-sequential bulk data (symbol tables, object pools).
    p.push_back(make_sequential(heap(region + 1), 3 << 20, 8));
    p.push_back(make_sequential(heap(region + 2), 2 << 20, 8));
    if (pointer_heavy) {
        p.push_back(make_pointer_chase(heap(region + 3), 1 << 14, 128,
                                       seed ^ 7));
    } else {
        p.push_back(make_random(heap(region + 3), 1 << 20, 8, seed ^ 7));
    }
    return p;
}

/**
 * gcc: a compiler's phases.  Three disjoint large code regions
 * (parse / optimize / emit) visited in rotation; the walk keeps a hot
 * neighbourhood (resident set ~30KB) while the full footprint dwarfs
 * the L1I, and phase changes create the very long intervals the 180nm
 * regime needs.
 */
WorkloadPtr
make_gcc(std::uint64_t seed)
{
    auto make_phase = [&](const char *phase, std::uint32_t index,
                          std::uint32_t functions) -> WorkloadPtr {
        CallGraphSpec spec;
        spec.num_functions = functions;
        spec.min_instrs = 24;
        spec.max_instrs = 360;
        spec.fanout = 5;
        spec.locality = 0.82;
        spec.neighbourhood = 18;
        spec.repeat_min = 1;
        spec.repeat_max = 3;
        spec.mem_fraction = 0.30;
        spec.store_fraction = 0.35;
        return std::make_unique<CallGraphProgram>(
            phase, kCodeBase + index * (4 << 20), spec,
            callgraph_patterns(index * 5, seed ^ (index + 1),
                               /*pointer_heavy=*/index == 1),
            seed ^ (index * 7919));
    };

    std::vector<CompositeWorkload::Phase> phases;
    phases.push_back({make_phase("gcc-parse", 0, 240), 240'000});
    phases.push_back({make_phase("gcc-opt", 1, 300), 300'000});
    phases.push_back({make_phase("gcc-emit", 2, 200), 170'000});
    return std::make_unique<CompositeWorkload>("gcc", std::move(phases));
}

/**
 * mesa: 3D rasterization.  A moderate driver call graph alternating
 * with tight vertex-transform loops streaming vertex arrays.
 */
WorkloadPtr
make_mesa(std::uint64_t seed)
{
    CallGraphSpec cg;
    cg.num_functions = 130;
    cg.min_instrs = 32;
    cg.max_instrs = 320;
    cg.fanout = 4;
    cg.locality = 0.82;
    cg.neighbourhood = 14;
    cg.repeat_min = 1;
    cg.repeat_max = 3;
    cg.mem_fraction = 0.28;
    auto driver = std::make_unique<CallGraphProgram>(
        "mesa-driver", kCodeBase, cg,
        callgraph_patterns(0, seed ^ 21, /*pointer_heavy=*/false),
        seed ^ 77);

    std::vector<DataPatternPtr> tf_patterns;
    tf_patterns.push_back(make_sequential(heap(6), 2 << 20, 8));  // 0 in
    tf_patterns.push_back(make_sequential(heap(7), 2 << 20, 8));  // 1 out
    tf_patterns.push_back(make_random(heap(8), 6 << 10, 4, seed ^ 3)); // 2 state (hot)
    tf_patterns.push_back(make_stack(kStackTop, 2 << 10, seed ^ 4)); // 3
    tf_patterns.push_back(make_random(heap(9), 64 << 10, 4, seed ^ 5)); // 4 textures (warm)
    std::vector<NodeSpec> tf_body;
    tf_body.push_back(make_section(20, 60, 18,
                                   {{48, 0.06, 0.10, 0},
                                    {44, 0.05, 0.75, 1},
                                    {40, 0.45, 0.25, 2},
                                    {32, 0.40, 0.25, 3},
                                    {36, 0.10, 0.10, 4}}));
    tf_body.push_back(make_section(10, 30, 14,
                                   {{44, 0.45, 0.30, 2},
                                    {40, 0.40, 0.20, 3},
                                    {36, 0.08, 0.10, 4}}));
    auto transform = std::make_unique<LoopProgram>(
        "mesa-tnl", kCodeBase + (4 << 20), std::move(tf_body),
        std::move(tf_patterns), seed ^ 99);

    std::vector<CompositeWorkload::Phase> phases;
    phases.push_back({std::move(driver), 120'000});
    phases.push_back({std::move(transform), 180'000});
    return std::make_unique<CompositeWorkload>("mesa", std::move(phases));
}

/**
 * vortex: object-oriented database.  Two large code regions (schema
 * manipulation vs. transaction processing); object graphs are pointer
 * chased, giving the least prefetchable data traffic in the suite.
 */
WorkloadPtr
make_vortex(std::uint64_t seed)
{
    auto make_phase = [&](const char *phase, std::uint32_t index,
                          std::uint32_t functions) -> WorkloadPtr {
        CallGraphSpec spec;
        spec.num_functions = functions;
        spec.min_instrs = 40;
        spec.max_instrs = 360;
        spec.fanout = 4;
        spec.locality = 0.80;
        spec.neighbourhood = 16;
        spec.repeat_min = 1;
        spec.repeat_max = 3;
        spec.mem_fraction = 0.32;
        spec.store_fraction = 0.40;
        return std::make_unique<CallGraphProgram>(
            phase, kCodeBase + index * (4 << 20), spec,
            callgraph_patterns(index * 5 + 10, seed ^ (index + 31),
                               /*pointer_heavy=*/true),
            seed ^ (index * 104729));
    };

    std::vector<CompositeWorkload::Phase> phases;
    phases.push_back({make_phase("vortex-schema", 0, 200), 200'000});
    phases.push_back({make_phase("vortex-txn", 1, 260), 330'000});
    return std::make_unique<CompositeWorkload>("vortex", std::move(phases));
}

/**
 * stream: a STREAM-like copy/scale/add kernel.  Constant trip counts
 * and purely sequential data patterns make it exactly periodic — the
 * analytic engine's bread-and-butter case.  Pattern cycles are short
 * powers of two so the full system state recurs within a few top-level
 * passes.
 */
WorkloadPtr
make_stream(std::uint64_t seed)
{
    // Pattern cycles are 16 accesses (128B regions): the full system
    // state then recurs within ~16 checkpoint periods, so the fast
    // path commits early even under modest instruction budgets.
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_sequential(heap(0), 128, 8)); // 0 src a
    patterns.push_back(make_sequential(heap(1), 128, 8)); // 1 src b
    patterns.push_back(make_sequential(heap(2), 128, 8)); // 2 dst
    patterns.push_back(make_sequential(heap(3), 128, 8)); // 3 coeffs

    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_loop(
        16, 16,
        {NodeSpec::make_block({32, 0.40, 0.00, 0}),
         NodeSpec::make_block({32, 0.40, 0.00, 1}),
         NodeSpec::make_loop(8, 8,
                             {NodeSpec::make_block({16, 0.35, 0.90, 2})}),
         NodeSpec::make_block({16, 0.30, 0.00, 3})}));

    return std::make_unique<LoopProgram>(
        "stream", kCodeBase, std::move(body), std::move(patterns), seed);
}

/**
 * stencil: constant-trip sweeps at unit, row and plane strides over one
 * grid.  The 4KB-stride plane walk aliases a single L1 set — the
 * set-conflict case the differential fuzzer also probes — while
 * staying exactly periodic.
 */
WorkloadPtr
make_stencil(std::uint64_t seed)
{
    // A strided walk visits every element once per full cycle, so the
    // cycle length IS the element count; short power-of-two cycles
    // (16/32/32/16 accesses) keep the state recurrence quick.  The
    // "planes" walk uses 512-byte elements with an 8-element stride, so
    // each reference still hops 4KB — whole-way set aliasing — while
    // cycling in 32 accesses.
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_sequential(heap(0), 128, 8));  // 0 unit
    patterns.push_back(make_strided(heap(0), 32, 8, 4));   // 1 rows
    patterns.push_back(make_strided(heap(0), 32, 512, 8)); // 2 planes
    patterns.push_back(make_sequential(heap(1), 128, 8));  // 3 rhs

    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_loop(
        12, 12,
        {NodeSpec::make_block({40, 0.35, 0.10, 0}),
         NodeSpec::make_block({32, 0.30, 0.10, 1}),
         NodeSpec::make_loop(6, 6,
                             {NodeSpec::make_block({24, 0.30, 0.40, 2})}),
         NodeSpec::make_block({24, 0.35, 0.60, 3})}));

    return std::make_unique<LoopProgram>(
        "stencil", kCodeBase, std::move(body), std::move(patterns), seed);
}

/**
 * chase: linked-list traversal over fixed permutation cycles.  The
 * chase order is random but frozen at construction, so the stream is
 * still exactly periodic — the least cache-friendly workload the
 * analytic engine still claims.
 */
WorkloadPtr
make_chase(std::uint64_t seed)
{
    // 32- and 16-node cycles: irregular within the period, exactly
    // periodic across it, and quick to recur.
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_pointer_chase(heap(0), 32, 64, seed ^ 1)); // 0
    patterns.push_back(make_pointer_chase(heap(1), 16, 128, seed ^ 2)); // 1
    patterns.push_back(make_sequential(heap(2), 128, 8));               // 2

    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_loop(
        16, 16,
        {NodeSpec::make_block({40, 0.40, 0.15, 0}),
         NodeSpec::make_loop(4, 4,
                             {NodeSpec::make_block({24, 0.35, 0.20, 1})}),
         NodeSpec::make_block({24, 0.30, 0.30, 2})}));

    return std::make_unique<LoopProgram>(
        "chase", kCodeBase, std::move(body), std::move(patterns), seed);
}

/** The analytically-eligible extras: servable via make_benchmark but
 *  kept out of suite_names() so stock suite reports are unchanged. */
const std::vector<std::string> &
analytic_names()
{
    static const std::vector<std::string> names = {"stream", "stencil",
                                                   "chase"};
    return names;
}

} // namespace

const std::vector<std::string> &
suite_names()
{
    static const std::vector<std::string> names = {
        "ammp", "applu", "gcc", "gzip", "mesa", "vortex"};
    return names;
}

bool
is_benchmark(const std::string &name)
{
    const auto &names = suite_names();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return true;
    const auto &extras = analytic_names();
    return std::find(extras.begin(), extras.end(), name) != extras.end();
}

WorkloadPtr
make_benchmark(const std::string &name, std::uint64_t seed)
{
    if (name == "ammp")
        return make_ammp(seed ? seed : 0xa001);
    if (name == "applu")
        return make_applu(seed ? seed : 0xa002);
    if (name == "gcc")
        return make_gcc(seed ? seed : 0xa003);
    if (name == "gzip")
        return make_gzip(seed ? seed : 0xa004);
    if (name == "mesa")
        return make_mesa(seed ? seed : 0xa005);
    if (name == "vortex")
        return make_vortex(seed ? seed : 0xa006);
    if (name == "stream")
        return make_stream(seed ? seed : 0xa007);
    if (name == "stencil")
        return make_stencil(seed ? seed : 0xa008);
    if (name == "chase")
        return make_chase(seed ? seed : 0xa009);
    util::fatal("unknown benchmark '", name,
                "' (expected one of ammp, applu, gcc, gzip, mesa, "
                "vortex, stream, stencil, chase)");
}

WorkloadPtr
make_hr_loop(std::uint64_t inner_min, std::uint64_t inner_max,
             std::uint64_t seed)
{
    // The Figure 2 program: for each of 12 months, sum an employee
    // array slice (inner loop of varying range), then execute the
    // `add` instruction (total += sum) — whose re-access interval is
    // set by the slice length.
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_sequential(heap(0), 32 << 10, 4)); // a[j]

    // Blocks are padded to 16 instructions so the inner-loop body and
    // the `add` statement land on distinct cache lines (otherwise the
    // whole program shares one line and the effect is invisible).
    std::vector<NodeSpec> month;
    month.push_back(NodeSpec::make_loop(
        inner_min, inner_max,
        {NodeSpec::make_block({16, 0.25, 0.0, 0})})); // sum += a[j]
    month.push_back(NodeSpec::make_block({16, 0.0, 0.0, -1})); // add:

    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_loop(12, 12, std::move(month)));

    return std::make_unique<LoopProgram>(
        "hr-loop", kCodeBase, std::move(body), std::move(patterns), seed);
}

} // namespace leakbound::workload
