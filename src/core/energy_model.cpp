/**
 * @file
 * Implementation of the closed-form interval energy model.
 */

#include "core/energy_model.hpp"

#include "util/logging.hpp"

namespace leakbound::core {

using interval::IntervalKind;

const char *
mode_name(Mode mode)
{
    switch (mode) {
      case Mode::Active:
        return "active";
      case Mode::Drowsy:
        return "drowsy";
      case Mode::Sleep:
        return "sleep";
    }
    return "?";
}

EnergyModel::EnergyModel(const power::TechnologyParams &tech)
    : tech_(tech)
{
    tech_.validate();
}

Cycles
EnergyModel::min_length(Mode mode, IntervalKind kind) const
{
    const auto &t = tech_.timings;
    switch (mode) {
      case Mode::Active:
        return 0;
      case Mode::Drowsy:
        switch (kind) {
          case IntervalKind::Inner:
            return t.drowsy_overhead(); // d1 + d3
          case IntervalKind::Trailing:
            return t.d1; // entered, never woken
          case IntervalKind::Leading:
          case IntervalKind::Untouched:
            return 0; // nothing resident; no transitions needed
        }
        break;
      case Mode::Sleep:
        switch (kind) {
          case IntervalKind::Inner:
            return t.sleep_overhead(); // s1 + s3 + s4
          case IntervalKind::Trailing:
            return t.s1; // entered, never woken
          case IntervalKind::Leading:
          case IntervalKind::Untouched:
            return 0; // frame starts without valid data
        }
        break;
    }
    LEAKBOUND_PANIC("unreachable: bad mode/kind");
}

bool
EnergyModel::applicable(Mode mode, Cycles length, IntervalKind kind) const
{
    return length >= min_length(mode, kind);
}

LinearEnergy
EnergyModel::linear(Mode mode, IntervalKind kind, bool charge_refetch) const
{
    const auto &t = tech_.timings;
    const double pa = tech_.active_power;
    const double pd = tech_.drowsy_power;
    const double ps = tech_.sleep_power;

    LinearEnergy le;
    switch (mode) {
      case Mode::Active:
        le.slope = pa;
        le.intercept = 0.0;
        return le;

      case Mode::Drowsy:
        le.slope = pd;
        switch (kind) {
          case IntervalKind::Inner:
            // Transitions dissipate at full active power (see header:
            // this makes a = d1 + d3 the exact active-drowsy tie
            // point, matching the paper's definition); resident time
            // at P_D.
            le.intercept =
                (pa - pd) * static_cast<double>(t.d1 + t.d3);
            return le;
          case IntervalKind::Trailing:
            le.intercept = (pa - pd) * static_cast<double>(t.d1);
            return le;
          case IntervalKind::Leading:
          case IntervalKind::Untouched:
            le.intercept = 0.0;
            return le;
        }
        break;

      case Mode::Sleep:
        le.slope = ps;
        switch (kind) {
          case IntervalKind::Inner:
            le.intercept =
                (pa - ps) * static_cast<double>(t.s1 + t.s3 + t.s4) +
                (charge_refetch ? tech_.refetch_energy : 0.0);
            return le;
          case IntervalKind::Trailing:
            le.intercept = (pa - ps) * static_cast<double>(t.s1);
            return le;
          case IntervalKind::Leading:
          case IntervalKind::Untouched:
            le.intercept = 0.0;
            return le;
        }
        break;
    }
    LEAKBOUND_PANIC("unreachable: bad mode/kind");
}

Energy
EnergyModel::energy(Mode mode, Cycles length, IntervalKind kind,
                    bool charge_refetch) const
{
    LEAKBOUND_ASSERT(applicable(mode, length, kind), "mode ",
                     mode_name(mode), " does not fit a ",
                     interval::kind_name(kind), " interval of length ",
                     length);
    return linear(mode, kind, charge_refetch).at(length);
}

Mode
EnergyModel::optimal_mode(Cycles length, IntervalKind kind,
                          bool charge_refetch) const
{
    Mode best = Mode::Active;
    Energy best_energy = energy(Mode::Active, length, kind, charge_refetch);
    // Prefer lower-power modes on ties: evaluate Drowsy then Sleep with
    // `<=` so Sleep wins an exact tie at the inflection point.
    for (Mode mode : {Mode::Drowsy, Mode::Sleep}) {
        if (!applicable(mode, length, kind))
            continue;
        const Energy e = energy(mode, length, kind, charge_refetch);
        if (e <= best_energy) {
            best = mode;
            best_energy = e;
        }
    }
    return best;
}

Energy
EnergyModel::optimal_energy(Cycles length, IntervalKind kind,
                            bool charge_refetch) const
{
    return energy(optimal_mode(length, kind, charge_refetch), length, kind,
                  charge_refetch);
}

} // namespace leakbound::core
