# Empty compiler generated dependencies file for table2_tech_scaling.
# This may be replaced when dependencies are built.
