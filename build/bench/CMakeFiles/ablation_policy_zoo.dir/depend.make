# Empty dependencies file for ablation_policy_zoo.
# This may be replaced when dependencies are built.
