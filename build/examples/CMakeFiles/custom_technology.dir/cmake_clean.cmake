file(REMOVE_RECURSE
  "CMakeFiles/custom_technology.dir/custom_technology.cpp.o"
  "CMakeFiles/custom_technology.dir/custom_technology.cpp.o.d"
  "custom_technology"
  "custom_technology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
