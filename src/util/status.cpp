/**
 * @file
 * Implementation of the typed error value.
 */

#include "util/status.hpp"

namespace leakbound::util {

const char *
error_kind_name(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::None: return "ok";
      case ErrorKind::IoError: return "io_error";
      case ErrorKind::NotFound: return "not_found";
      case ErrorKind::CorruptData: return "corrupt_data";
      case ErrorKind::LockTimeout: return "lock_timeout";
      case ErrorKind::Interrupted: return "interrupted";
      case ErrorKind::InvalidArgument: return "invalid_argument";
      case ErrorKind::FaultInjected: return "fault_injected";
      case ErrorKind::Internal: return "internal";
      case ErrorKind::Overloaded: return "overloaded";
      case ErrorKind::ShuttingDown: return "shutting_down";
      case ErrorKind::ConnectionClosed: return "connection_closed";
      case ErrorKind::CrashLoop: return "crash_loop";
    }
    return "unknown";
}

std::optional<ErrorKind>
error_kind_from_name(std::string_view name)
{
    static constexpr ErrorKind kAll[] = {
        ErrorKind::None,           ErrorKind::IoError,
        ErrorKind::NotFound,       ErrorKind::CorruptData,
        ErrorKind::LockTimeout,    ErrorKind::Interrupted,
        ErrorKind::InvalidArgument, ErrorKind::FaultInjected,
        ErrorKind::Internal,       ErrorKind::Overloaded,
        ErrorKind::ShuttingDown,   ErrorKind::ConnectionClosed,
        ErrorKind::CrashLoop,
    };
    for (ErrorKind kind : kAll)
        if (name == error_kind_name(kind))
            return kind;
    return std::nullopt;
}

std::string
Status::to_string() const
{
    if (ok())
        return "ok";
    std::string out = error_kind_name(kind_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace leakbound::util
