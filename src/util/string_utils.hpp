/**
 * @file
 * Small string formatting helpers used by the table/CSV printers and
 * bench harnesses: percentages, thousands separators, fixed-width
 * doubles, and basic split/trim.
 */

#ifndef LEAKBOUND_UTIL_STRING_UTILS_HPP
#define LEAKBOUND_UTIL_STRING_UTILS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace leakbound::util {

/** Format @p fraction (0..1) as a percentage string, e.g. "96.4%". */
std::string format_percent(double fraction, int decimals = 1);

/** Format a double with a fixed number of decimals. */
std::string format_fixed(double value, int decimals);

/** Format an integer with thousands separators, e.g. "103,084". */
std::string format_commas(std::uint64_t value);

/** Format a byte count with a binary suffix, e.g. "64KiB". */
std::string format_bytes(std::uint64_t bytes);

/** Split @p text on @p sep; empty fields are preserved. */
std::vector<std::string> split(std::string_view text, char sep);

/** Strip ASCII whitespace from both ends. */
std::string trim(std::string_view text);

/** True if @p text starts with @p prefix. */
bool starts_with(std::string_view text, std::string_view prefix);

/** Lowercase an ASCII string. */
std::string to_lower(std::string_view text);

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_STRING_UTILS_HPP
