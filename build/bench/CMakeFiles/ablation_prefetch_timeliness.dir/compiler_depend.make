# Empty compiler generated dependencies file for ablation_prefetch_timeliness.
# This may be replaced when dependencies are built.
