/**
 * @file
 * Tests of the workload substrate: data-pattern semantics, loop
 * program structure and determinism, the call-graph walker, phase
 * composition, and the six-benchmark suite registry.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/callgraph.hpp"
#include "workload/data_pattern.hpp"
#include "workload/loop_program.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::workload;
using trace::InstrKind;
using trace::MicroOp;

// -------------------------------------------------------- data patterns

TEST(DataPattern, SequentialWrapsRegion)
{
    auto p = make_sequential(0x1000, 32, 8);
    EXPECT_EQ(p->next(), 0x1000u);
    EXPECT_EQ(p->next(), 0x1008u);
    EXPECT_EQ(p->next(), 0x1010u);
    EXPECT_EQ(p->next(), 0x1018u);
    EXPECT_EQ(p->next(), 0x1000u); // wrapped
    p->reset();
    EXPECT_EQ(p->next(), 0x1000u);
}

TEST(DataPattern, StridedVisitsStridePoints)
{
    auto p = make_strided(0, 16, 8, 4);
    EXPECT_EQ(p->next(), 0u);
    EXPECT_EQ(p->next(), 32u);
    EXPECT_EQ(p->next(), 64u);
    EXPECT_EQ(p->next(), 96u);
    // Wrap advances the phase so the next sweep covers new elements.
    EXPECT_EQ(p->next(), 8u);
}

TEST(DataPattern, RandomStaysInRegionAndIsSeeded)
{
    auto a = make_random(0x2000, 256, 8, 5);
    auto b = make_random(0x2000, 256, 8, 5);
    for (int i = 0; i < 1000; ++i) {
        const Addr x = a->next();
        EXPECT_EQ(x, b->next());
        EXPECT_GE(x, 0x2000u);
        EXPECT_LT(x, 0x2100u);
        EXPECT_EQ(x % 8, 0u);
    }
}

TEST(DataPattern, PointerChaseIsFullCyclePermutation)
{
    const std::uint64_t nodes = 64;
    auto p = make_pointer_chase(0, nodes, 64, 9);
    std::set<Addr> seen;
    for (std::uint64_t i = 0; i < nodes; ++i)
        seen.insert(p->next());
    EXPECT_EQ(seen.size(), nodes); // visits every node once
    // The next draw restarts the same cycle.
    const Addr again = p->next();
    EXPECT_TRUE(seen.count(again));
}

TEST(DataPattern, StackStaysBelowTop)
{
    auto p = make_stack(0x7000, 256, 3);
    for (int i = 0; i < 1000; ++i) {
        const Addr x = p->next();
        EXPECT_LT(x, 0x7000u);
        EXPECT_GE(x, 0x7000u - 256 - 64);
    }
}

// --------------------------------------------------------- loop program

namespace {

LoopProgram
two_level_loop()
{
    std::vector<DataPatternPtr> patterns;
    patterns.push_back(make_sequential(0x10000, 1024, 4));
    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_loop(
        3, 3,
        {NodeSpec::make_block({8, 0.5, 0.25, 0}),
         NodeSpec::make_loop(2, 2, {NodeSpec::make_block({4, 0.0, 0.0, -1})})}));
    return LoopProgram("two-level", 0x1000, std::move(body),
                       std::move(patterns), 42);
}

} // namespace

TEST(LoopProgram, DeterministicAcrossInstancesAndReset)
{
    LoopProgram a = two_level_loop();
    LoopProgram b = two_level_loop();
    std::vector<MicroOp> first;
    for (int i = 0; i < 500; ++i) {
        MicroOp oa, ob;
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.kind, ob.kind);
        EXPECT_EQ(oa.addr, ob.addr);
        first.push_back(oa);
    }
    a.reset();
    for (int i = 0; i < 500; ++i) {
        MicroOp op;
        ASSERT_TRUE(a.next(op));
        EXPECT_EQ(op.pc, first[i].pc);
        EXPECT_EQ(op.addr, first[i].addr);
    }
}

TEST(LoopProgram, PcsStayInsideFootprint)
{
    LoopProgram p = two_level_loop();
    for (int i = 0; i < 10'000; ++i) {
        MicroOp op;
        ASSERT_TRUE(p.next(op));
        EXPECT_GE(op.pc, 0x1000u);
        EXPECT_LT(op.pc, 0x1000u + p.code_bytes());
        if (op.kind != InstrKind::Op) {
            EXPECT_GE(op.addr, 0x10000u);
            EXPECT_LT(op.addr, 0x10000u + 1024u);
        } else {
            EXPECT_EQ(op.addr, kInvalidAddr);
        }
    }
}

TEST(LoopProgram, BlockKindsAreStaticPerPc)
{
    // A static instruction must always be the same kind (the layout is
    // fixed at construction).
    LoopProgram p = two_level_loop();
    std::map<Pc, InstrKind> kinds;
    for (int i = 0; i < 20'000; ++i) {
        MicroOp op;
        ASSERT_TRUE(p.next(op));
        auto [it, inserted] = kinds.emplace(op.pc, op.kind);
        if (!inserted) {
            EXPECT_EQ(it->second, op.kind) << "pc " << op.pc;
        }
    }
}

TEST(LoopProgram, VariableTripsVaryPerEntry)
{
    // A loop with trips in [1, 100] must produce different iteration
    // counts across entries (Fig. 2's varying inner range).
    std::vector<DataPatternPtr> patterns;
    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_block({4, 0.0, 0.0, -1})); // marker
    body.push_back(NodeSpec::make_loop(
        1, 100, {NodeSpec::make_block({4, 0.0, 0.0, -1})}));
    LoopProgram p("varloop", 0x1000, std::move(body), std::move(patterns),
                  7);
    // Count inner-block instructions between marker sightings.
    std::set<int> counts;
    int since_marker = 0;
    MicroOp op;
    for (int i = 0; i < 50'000 && counts.size() < 5; ++i) {
        ASSERT_TRUE(p.next(op));
        if (op.pc == 0x1000) { // marker block start
            counts.insert(since_marker);
            since_marker = 0;
        }
        ++since_marker;
    }
    EXPECT_GE(counts.size(), 5u) << "trip counts never varied";
}

TEST(LoopProgram, RejectsBadPatternIndex)
{
    std::vector<DataPatternPtr> patterns; // empty pool
    std::vector<NodeSpec> body;
    body.push_back(NodeSpec::make_block({4, 0.5, 0.0, 0}));
    EXPECT_EXIT(LoopProgram("bad", 0x1000, std::move(body),
                            std::move(patterns), 1),
                ::testing::ExitedWithCode(2), "pattern");
}

// ------------------------------------------------------------ callgraph

TEST(CallGraph, DeterministicAndInFootprint)
{
    CallGraphSpec spec;
    spec.num_functions = 16;
    spec.min_instrs = 8;
    spec.max_instrs = 32;
    std::vector<DataPatternPtr> pa, pb;
    pa.push_back(make_random(0x100000, 4096, 8, 1));
    pb.push_back(make_random(0x100000, 4096, 8, 1));
    CallGraphProgram a("cg", 0x4000, spec, std::move(pa), 11);
    CallGraphProgram b("cg", 0x4000, spec, std::move(pb), 11);
    for (int i = 0; i < 5000; ++i) {
        MicroOp oa, ob;
        ASSERT_TRUE(a.next(oa));
        ASSERT_TRUE(b.next(ob));
        EXPECT_EQ(oa.pc, ob.pc);
        EXPECT_EQ(oa.addr, ob.addr);
        EXPECT_GE(oa.pc, 0x4000u);
        EXPECT_LT(oa.pc, 0x4000u + a.code_bytes());
    }
}

TEST(CallGraph, VisitsManyFunctions)
{
    CallGraphSpec spec;
    spec.num_functions = 64;
    spec.min_instrs = 8;
    spec.max_instrs = 16;
    spec.mem_fraction = 0.0;
    CallGraphProgram p("cg", 0x4000, spec, {}, 5);
    std::set<Pc> lines;
    for (int i = 0; i < 100'000; ++i) {
        MicroOp op;
        ASSERT_TRUE(p.next(op));
        lines.insert(op.pc / 64);
    }
    // The walk must cover a large share of the code footprint.
    EXPECT_GT(lines.size() * 64, p.code_bytes() / 2);
}

TEST(CallGraph, RejectsBadSpecs)
{
    CallGraphSpec spec;
    spec.min_instrs = 10;
    spec.max_instrs = 5;
    EXPECT_EXIT(CallGraphProgram("bad", 0x4000, spec, {}, 1),
                ::testing::ExitedWithCode(2), "body size");
    CallGraphSpec spec2;
    spec2.mem_fraction = 0.5;
    EXPECT_EXIT(CallGraphProgram("bad2", 0x4000, spec2, {}, 1),
                ::testing::ExitedWithCode(2), "data patterns");
}

// ------------------------------------------------------------ composite

TEST(Composite, RotatesPhasesByQuantum)
{
    auto make_marker = [](Pc base) {
        std::vector<DataPatternPtr> none;
        std::vector<NodeSpec> body;
        body.push_back(NodeSpec::make_block({4, 0.0, 0.0, -1}));
        return std::make_unique<LoopProgram>("m", base, std::move(body),
                                             std::move(none), 1);
    };
    std::vector<CompositeWorkload::Phase> phases;
    phases.push_back({make_marker(0x1000), 10});
    phases.push_back({make_marker(0x9000), 10});
    CompositeWorkload comp("comp", std::move(phases));

    int switches = 0;
    bool in_first = true;
    for (int i = 0; i < 100; ++i) {
        MicroOp op;
        ASSERT_TRUE(comp.next(op));
        const bool first = op.pc < 0x9000;
        if (first != in_first) {
            ++switches;
            in_first = first;
        }
    }
    EXPECT_GE(switches, 8); // 100 instructions / 10-instruction quanta
}

// ----------------------------------------------------------- spec suite

TEST(SpecSuite, AllSixBenchmarksConstructAndRun)
{
    for (const std::string &name : suite_names()) {
        WorkloadPtr w = make_benchmark(name);
        ASSERT_NE(w, nullptr) << name;
        EXPECT_EQ(w->name(), name);
        MicroOp op;
        for (int i = 0; i < 10'000; ++i)
            ASSERT_TRUE(w->next(op)) << name;
    }
}

TEST(SpecSuite, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)make_benchmark("perlbmk"),
                ::testing::ExitedWithCode(2), "unknown benchmark");
}

TEST(SpecSuite, BenchmarksAreDeterministic)
{
    for (const std::string &name : suite_names()) {
        WorkloadPtr a = make_benchmark(name);
        WorkloadPtr b = make_benchmark(name);
        for (int i = 0; i < 2000; ++i) {
            MicroOp oa, ob;
            ASSERT_TRUE(a->next(oa));
            ASSERT_TRUE(b->next(ob));
            ASSERT_EQ(oa.pc, ob.pc) << name << " diverged at op " << i;
            ASSERT_EQ(oa.addr, ob.addr) << name;
        }
    }
}

TEST(SpecSuite, HrLoopIntervalTracksInnerRange)
{
    // Fig. 2's point, measured at the generator level: a larger inner
    // range means more instructions between successive visits to the
    // `add` block.
    auto measure = [](std::uint64_t range) {
        WorkloadPtr w = make_hr_loop(range, range); // fixed trips
        // The add block is the second top-of-month block; find its pc
        // by scanning for the second distinct non-loop block.
        MicroOp op;
        std::map<Pc, std::uint64_t> gaps;
        std::map<Pc, std::uint64_t> last;
        for (std::uint64_t i = 0; i < 200'000; ++i) {
            if (!w->next(op))
                break;
            if (last.count(op.pc))
                gaps[op.pc] = std::max(gaps[op.pc], i - last[op.pc]);
            last[op.pc] = i;
        }
        // The `add` block's re-visit gap is the largest periodic gap
        // inside the month loop; use the maximum over all pcs.
        std::uint64_t best = 0;
        for (auto &[pc, gap] : gaps)
            best = std::max(best, gap);
        return best;
    };
    const std::uint64_t small = measure(4);
    const std::uint64_t large = measure(128);
    EXPECT_GT(large, small * 4);
}
