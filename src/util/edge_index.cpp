/**
 * @file
 * Construction of the O(1) histogram edge index.
 */

#include "util/edge_index.hpp"

#include <algorithm>
#include <mutex>

namespace leakbound::util {

std::shared_ptr<const EdgeIndex>
EdgeIndex::make(std::vector<std::uint64_t> edges)
{
    // Every experiment derives the same ~190-entry default edge list;
    // interning makes the table build a once-per-process cost instead
    // of a per-run one.  Expired entries are pruned during the scan, so
    // short-lived ad-hoc edge lists (tests, reports) don't accumulate.
    static std::mutex mutex;
    static std::vector<std::weak_ptr<const EdgeIndex>> interned;

    std::lock_guard<std::mutex> lock(mutex);
    for (auto it = interned.begin(); it != interned.end();) {
        if (auto index = it->lock()) {
            if (index->edges() == edges)
                return index;
            ++it;
        } else {
            it = interned.erase(it);
        }
    }
    auto index = std::make_shared<const EdgeIndex>(std::move(edges));
    interned.push_back(index);
    return index;
}

EdgeIndex::EdgeIndex(std::vector<std::uint64_t> edges)
    : edges_(std::move(edges))
{
    LEAKBOUND_ASSERT(!edges_.empty(), "edge index needs at least one edge");
    LEAKBOUND_ASSERT(std::is_sorted(edges_.begin(), edges_.end()),
                     "edge index edges must be sorted");
    LEAKBOUND_ASSERT(
        std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end(),
        "edge index edges must be unique");

    constexpr std::size_t dense_size = std::size_t{1} << kDenseBits;
    dense_.resize(dense_size);
    for (std::size_t v = 0; v < dense_size; ++v)
        dense_[v] = static_cast<std::uint32_t>(bin_index_reference(v));

    // One row of sub-slots per log2 bucket kDenseBits..63; slot s of
    // bucket k starts at 2^k + (s << (k - kSubBits)).
    constexpr std::size_t buckets = 64 - kDenseBits;
    constexpr std::size_t slots_per_bucket = std::size_t{1} << kSubBits;
    slot_bin_.resize(buckets * slots_per_bucket);
    for (unsigned k = kDenseBits; k < 64; ++k) {
        for (std::size_t s = 0; s < slots_per_bucket; ++s) {
            const std::uint64_t start =
                (std::uint64_t{1} << k) +
                (static_cast<std::uint64_t>(s) << (k - kSubBits));
            slot_bin_[(k - kDenseBits) * slots_per_bucket + s] =
                static_cast<std::uint32_t>(bin_index_reference(start));
        }
    }
}

std::size_t
EdgeIndex::bin_index_reference(std::uint64_t value) const
{
    // upper_bound returns the first edge strictly greater than value;
    // the containing bin is the one before it.  Below-range values
    // clamp into bin 0.
    auto it = std::upper_bound(edges_.begin(), edges_.end(), value);
    if (it == edges_.begin())
        return 0;
    return static_cast<std::size_t>(it - edges_.begin()) - 1;
}

} // namespace leakbound::util
