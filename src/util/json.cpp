/**
 * @file
 * Implementation of the streaming JSON writer.
 */

#include "util/json.hpp"

#include <cstdio>

#include "util/fault_injection.hpp"
#include "util/logging.hpp"

namespace leakbound::util {

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter() = default;

void
JsonWriter::newline_indent()
{
    out_ << '\n';
    for (std::size_t i = 0; i < scopes_.size(); ++i)
        out_ << "  ";
}

void
JsonWriter::before_value()
{
    if (scopes_.empty())
        return; // root value
    if (scopes_.back() == Scope::Object) {
        LEAKBOUND_ASSERT(pending_key_,
                         "JSON object value emitted without a key");
        pending_key_ = false;
        return; // key() already handled comma/indent
    }
    if (has_entries_.back())
        out_ << ',';
    newline_indent();
    has_entries_.back() = true;
}

JsonWriter &
JsonWriter::begin_object()
{
    before_value();
    out_ << '{';
    scopes_.push_back(Scope::Object);
    has_entries_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_object()
{
    LEAKBOUND_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Object,
                     "end_object with no open object");
    LEAKBOUND_ASSERT(!pending_key_, "end_object after a dangling key");
    const bool had = has_entries_.back();
    scopes_.pop_back();
    has_entries_.pop_back();
    if (had)
        newline_indent();
    out_ << '}';
    return *this;
}

JsonWriter &
JsonWriter::begin_array()
{
    before_value();
    out_ << '[';
    scopes_.push_back(Scope::Array);
    has_entries_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::end_array()
{
    LEAKBOUND_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Array,
                     "end_array with no open array");
    const bool had = has_entries_.back();
    scopes_.pop_back();
    has_entries_.pop_back();
    if (had)
        newline_indent();
    out_ << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    LEAKBOUND_ASSERT(!scopes_.empty() && scopes_.back() == Scope::Object,
                     "JSON key outside an object");
    LEAKBOUND_ASSERT(!pending_key_, "two JSON keys in a row");
    if (has_entries_.back())
        out_ << ',';
    newline_indent();
    has_entries_.back() = true;
    out_ << '"' << json_escape(name) << "\": ";
    pending_key_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    before_value();
    out_ << '"' << json_escape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    before_value();
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out_ << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    before_value();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    before_value();
    out_ << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    before_value();
    out_ << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    before_value();
    out_ << "null";
    return *this;
}

JsonWriter &
JsonWriter::value(const std::vector<std::string> &v)
{
    begin_array();
    for (const std::string &s : v)
        value(s);
    return end_array();
}

Status
write_text_file(const std::string &path, const std::string &contents)
{
    std::FILE *file = fault::should_fail(fault::Site::OpenWrite, path)
                          ? nullptr
                          : std::fopen(path.c_str(), "wb");
    if (!file)
        return Status(ErrorKind::IoError, "cannot create file: " + path);
    bool wrote = std::fwrite(contents.data(), 1, contents.size(), file) ==
                 contents.size();
    if (wrote && fault::should_fail(fault::Site::ShortWrite, path))
        wrote = false;
    std::fclose(file);
    if (!wrote)
        return Status(ErrorKind::IoError, "short write to " + path);
    return Status();
}

} // namespace leakbound::util
