/**
 * @file
 * O(1) bin lookup over an immutable, shared histogram edge list.
 *
 * Histogram::bin_index used to binary-search the ~190-entry edge list
 * on every sample — the single hottest operation of the simulator (one
 * lookup per closed interval per access).  EdgeIndex precomputes two
 * small tables once per edge list:
 *
 *   - a *dense* direct-index table answering every value below 4096 in
 *     one load (the default interval edges are densest in 0..64 and
 *     the 1057-cycle inflection region);
 *   - a *log2-bucketed jump table* for the tail: the bucket of a value
 *     is its bit width, each bucket is split into 64 equal sub-slots,
 *     and each sub-slot stores the bin of its first value.  A lookup
 *     lands at most a couple of edges away from the answer, so the
 *     final walk is a short bounded scan (0 steps for most slots).
 *
 * The index is immutable after construction, so one instance is safely
 * shared — across the 9 histograms of an interval::IntervalHistogramSet
 * and across threads of the pooled evaluators.  Debug builds
 * cross-check every lookup against the std::upper_bound reference.
 */

#ifndef LEAKBOUND_UTIL_EDGE_INDEX_HPP
#define LEAKBOUND_UTIL_EDGE_INDEX_HPP

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.hpp"

namespace leakbound::util {

/**
 * Immutable O(1) value->bin index over a sorted, unique edge list.
 * Bin semantics match Histogram: bin i covers [edges[i], edges[i+1]),
 * the last bin is [edges.back(), +inf), and values below edges[0]
 * clamp into bin 0.
 */
class EdgeIndex
{
  public:
    /** Build from sorted, deduplicated, non-empty edges (panics else). */
    explicit EdgeIndex(std::vector<std::uint64_t> edges);

    /**
     * Build an index ready for sharing.  Indexes are interned: calls
     * with an edge list seen before (and still alive somewhere) return
     * the existing instance instead of rebuilding the tables, so the
     * per-experiment default edge list is indexed once per process.
     */
    static std::shared_ptr<const EdgeIndex>
    make(std::vector<std::uint64_t> edges);

    /** Index of the bin containing @p value (debug-checked O(1)). */
    std::size_t
    bin_index(std::uint64_t value) const
    {
        const std::size_t fast = lookup(value);
#ifndef NDEBUG
        LEAKBOUND_ASSERT(fast == bin_index_reference(value),
                         "EdgeIndex lookup mismatch at value ", value);
#endif
        return fast;
    }

    /**
     * Reference implementation via std::upper_bound; the correctness
     * oracle for bin_index (tests and debug builds compare the two).
     */
    std::size_t bin_index_reference(std::uint64_t value) const;

    /** The edge list (one bin per edge, last bin unbounded). */
    const std::vector<std::uint64_t> &edges() const { return edges_; }

    /** Number of bins, including the overflow bin. */
    std::size_t num_bins() const { return edges_.size(); }

  private:
    /** Values below 2^kDenseBits resolve via the dense table. */
    static constexpr unsigned kDenseBits = 12;
    /** Each log2 bucket of the tail splits into 2^kSubBits sub-slots. */
    static constexpr unsigned kSubBits = 6;

    std::size_t
    lookup(std::uint64_t value) const
    {
        if (value < (std::uint64_t{1} << kDenseBits))
            return dense_[static_cast<std::size_t>(value)];
        // Bucket = floor(log2(value)); sub-slot = next kSubBits bits.
        const unsigned k =
            63u - static_cast<unsigned>(std::countl_zero(value));
        const std::size_t slot =
            (static_cast<std::size_t>(k - kDenseBits) << kSubBits) +
            static_cast<std::size_t>((value - (std::uint64_t{1} << k)) >>
                                     (k - kSubBits));
        std::size_t bin = slot_bin_[slot];
        // Walk the few edges (usually none) between the sub-slot start
        // and the value.
        const std::size_t last = edges_.size() - 1;
        while (bin < last && edges_[bin + 1] <= value)
            ++bin;
        return bin;
    }

    std::vector<std::uint64_t> edges_;
    std::vector<std::uint32_t> dense_;    ///< bin of every value < 2^12
    std::vector<std::uint32_t> slot_bin_; ///< bin of each sub-slot start
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_EDGE_INDEX_HPP
