/**
 * @file
 * Implementation of the set-associative cache model: construction,
 * the reference (virtual-policy) access path, and state snapshots.
 * The kernel access path lives in cache.hpp so it inlines into the
 * simulation loop.
 */

#include "sim/cache.hpp"

#include "util/logging.hpp"

namespace leakbound::sim {

namespace {

/** Widest associativity one 64-bit rank word can pack. */
constexpr std::uint32_t kMaxKernelWays = 8;

} // namespace

Cache::Cache(const CacheConfig &config, std::uint64_t seed, SimMode mode)
    : config_(config), kernel_rng_(seed), seed_(seed)
{
    config_.validate();
    ways_ = config_.associativity;
    line_shift_ = config_.line_shift();
    set_mask_ = config_.set_mask();
    tags_.assign(config_.num_frames(), kInvalidAddr);
    valid_.assign(config_.num_frames(), 0);
    repl_ = make_replacement(config_.replacement, config_.num_sets(),
                             config_.associativity, seed_);
    kernel_ = mode == SimMode::Kernel && ways_ <= kMaxKernelWays;
    if (kernel_)
        rank_.assign(config_.num_sets(), initial_rank(ways_));
}

AccessResult
Cache::access_reference(Addr addr)
{
    const Addr block = addr >> line_shift_;
    const std::uint64_t set = block & set_mask_;
    const std::uint64_t base = set * ways_;

    ++stats_.accesses;

    AccessResult result;
    // One pass over the set: find the resident block and remember the
    // first invalid way for the miss path.
    std::uint32_t invalid_way = ways_; // sentinel
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!valid_[base + w]) {
            if (invalid_way == ways_)
                invalid_way = w;
            continue;
        }
        if (tags_[base + w] == block) {
            repl_->on_hit(set, w);
            ++stats_.hits;
            result.hit = true;
            result.frame = static_cast<FrameId>(base + w);
            return result;
        }
    }

    // Miss path: prefer the invalid way found above; otherwise ask the
    // policy for a victim, which must name a valid resident way.
    ++stats_.misses;
    std::uint32_t way = invalid_way;
    if (way == ways_) {
        way = repl_->victim_way(set);
        LEAKBOUND_ASSERT(way < ways_, "replacement returned bad way ", way);
        LEAKBOUND_ASSERT(valid_[base + way],
                         "replacement evicted invalid way ", way,
                         " of set ", set);
        result.evicted = true;
        result.victim_block = tags_[base + way];
        ++stats_.evictions;
    }

    tags_[base + way] = block;
    valid_[base + way] = 1;
    repl_->on_fill(set, way);
    result.frame = static_cast<FrameId>(base + way);
    return result;
}

FrameId
Cache::frame_of_block(Addr block) const
{
    const std::uint64_t base = (block & set_mask_) * ways_;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (valid_[base + w] && tags_[base + w] == block)
            return static_cast<FrameId>(base + w);
    }
    return kInvalidFrame;
}

FrameId
Cache::invalidate_block(Addr block)
{
    const FrameId frame = frame_of_block(block);
    if (frame == kInvalidFrame)
        return kInvalidFrame;
    valid_[frame] = 0;
    tags_[frame] = kInvalidAddr;
    // The same-block filter must forget an invalidated block, or the
    // next access to it would short-circuit into a phantom hit on a
    // frame that no longer holds it.
    if (block == last_block_) {
        last_block_ = kInvalidAddr;
        last_frame_ = kInvalidFrame;
    }
    return frame;
}

Addr
Cache::block_in_frame(FrameId frame) const
{
    LEAKBOUND_ASSERT(frame < tags_.size(), "frame id out of range");
    return valid_[frame] ? tags_[frame] : kInvalidAddr;
}

bool
Cache::append_state(std::vector<std::uint64_t> &out) const
{
    for (std::size_t i = 0; i < tags_.size(); ++i)
        out.push_back(valid_[i] ? tags_[i] : kInvalidAddr);
    // Validity packed separately: an invalid frame and a resident
    // kInvalidAddr tag must not compare equal (the latter cannot occur
    // with real addresses, but keep the snapshot self-contained).
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < valid_.size(); ++i) {
        word = (word << 1) | (valid_[i] ? 1 : 0);
        if ((i & 63) == 63) {
            out.push_back(word);
            word = 0;
        }
    }
    if (valid_.size() & 63)
        out.push_back(word);
    if (kernel_) {
        // The rank word *is* the canonical recency permutation: byte p
        // holds the way at rank p, exactly the sequence the reference
        // policies' append_rank_state emits (stamps sorted ascending,
        // ties toward the lower way).
        if (config_.replacement == ReplacementKind::Random)
            return false;
        for (const std::uint64_t r : rank_)
            for (std::uint32_t p = 0; p < ways_; ++p)
                out.push_back((r >> (8 * p)) & 0xff);
        return true;
    }
    return repl_->append_state(out);
}

void
Cache::reset()
{
    tags_.assign(tags_.size(), kInvalidAddr);
    valid_.assign(valid_.size(), 0);
    stats_ = CacheStats{};
    repl_ = make_replacement(config_.replacement, config_.num_sets(),
                             config_.associativity, seed_);
    kernel_rng_ = util::Rng(seed_);
    last_block_ = kInvalidAddr;
    last_frame_ = kInvalidFrame;
    if (kernel_)
        rank_.assign(rank_.size(), initial_rank(ways_));
}

} // namespace leakbound::sim
