/**
 * @file
 * Fixed-size worker thread pool with exception-propagating futures.
 *
 * The suite runner (core::run_suite) fans independent benchmark
 * simulations out over this pool and re-collects them in submission
 * order, which keeps parallel output bit-identical to the serial path.
 * Tasks may be move-only callables; an exception thrown inside a task
 * is captured in its future and rethrown at get(), never lost in a
 * worker.
 */

#ifndef LEAKBOUND_UTIL_THREAD_POOL_HPP
#define LEAKBOUND_UTIL_THREAD_POOL_HPP

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace leakbound::util {

/**
 * Fixed pool of worker threads draining a FIFO task queue.  Usage:
 * @code
 *   ThreadPool pool(4);
 *   auto f = pool.submit([] { return simulate(); });
 *   auto result = f.get(); // rethrows anything simulate() threw
 * @endcode
 *
 * The destructor drains the queue (all submitted tasks run) and joins
 * every worker; submit() after destruction begins is undefined.
 */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers; 0 selects default_jobs().  A pool of
     * size 1 is a valid (if pointless) serial executor.
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Runs all queued tasks to completion, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /**
     * Enqueue @p fn and return a future for its result.  @p fn may be
     * move-only; exceptions it throws surface at future::get().
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return future;
    }

    /**
     * Resolve a jobs request: 0 means hardware_concurrency (itself
     * clamped to at least 1); nonzero passes through.
     */
    static unsigned effective_jobs(unsigned requested);

    /** hardware_concurrency clamped to at least 1. */
    static unsigned default_jobs();

  private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_THREAD_POOL_HPP
