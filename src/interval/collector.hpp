/**
 * @file
 * Streaming extraction of per-frame access intervals.
 *
 * The collector observes the cache's access stream — (frame, cycle)
 * events plus prefetchability annotations — and partitions every
 * frame's timeline into Leading / Inner / Trailing / Untouched
 * intervals (see interval.hpp), feeding them into an
 * IntervalHistogramSet and optionally retaining the raw intervals for
 * validation.
 *
 * Prefetchability flags are computed by the caller (the experiment
 * glue), which owns the per-block last-access tables and the stride
 * predictor: next-line coverage must be judged against the block the
 * closing access touches, which may not have been resident during the
 * interval (miss-closing intervals), so the collector cannot decide it
 * alone.  open_since() exposes the open interval's start time for that
 * judgement.
 */

#ifndef LEAKBOUND_INTERVAL_COLLECTOR_HPP
#define LEAKBOUND_INTERVAL_COLLECTOR_HPP

#include <cstdint>
#include <vector>

#include "interval/interval.hpp"
#include "interval/interval_histogram.hpp"
#include "util/logging.hpp"
#include "util/types.hpp"

namespace leakbound::interval {

/**
 * Per-cache interval collector.  Drive it with on_access() /
 * mark_next_line() during simulation and call finalize() once at the
 * end; results accumulate in the sink histogram set.
 */
class IntervalCollector
{
  public:
    /**
     * @param num_frames physical frames in the observed cache
     * @param sink histogram set receiving the intervals (not owned;
     *             must outlive the collector)
     * @param keep_raw also retain every Interval in raw() (test use;
     *             costs memory proportional to the access count)
     */
    IntervalCollector(std::uint64_t num_frames, IntervalHistogramSet *sink,
                      bool keep_raw = false);

    /**
     * Record an access to @p frame at @p cycle, closing the frame's
     * open interval and opening a new one.
     *
     * @param reuse true when the access hits the resident block (so a
     *              slept line would have induced a real extra miss)
     * @param stride_predicted true when the stride predictor covered
     *              this access (classifies the *closing* interval)
     * @param nl_covered true when the line preceding the accessed
     *              block was touched inside the closing interval (a
     *              next-line prefetcher would have covered this access)
     */
    void
    on_access(FrameId frame, Cycle cycle, bool reuse,
              bool stride_predicted, bool nl_covered)
    {
        const Interval iv =
            observe(frame, cycle, reuse, stride_predicted, nl_covered);
        sink_->add(iv);
        if (keep_raw_)
            raw_.push_back(iv);
    }

    /**
     * on_access() minus the sink: classify the access, close the
     * frame's open interval and open a new one, and hand the closed
     * Interval back instead of adding it to the histogram set.  The
     * simulation kernel uses this to stage additions in a per-group
     * buffer (histogram adds commute, so deferring them is
     * byte-transparent; the frame bookkeeping itself must be immediate
     * because a later access in the same group may read it).
     */
    Interval
    observe(FrameId frame, Cycle cycle, bool reuse, bool stride_predicted,
            bool nl_covered)
    {
        LEAKBOUND_ASSERT(!finalized_, "access after finalize()");
        LEAKBOUND_ASSERT(frame < frames_.size(), "frame id out of range");
        FrameState &fs = frames_[frame];
        ++num_accesses_;

        Interval iv;
        if (!fs.touched) {
            // Close the Leading interval: power-on to first access.
            // The first access is a compulsory fill; no prefetch
            // class, no CD.
            iv.kind = IntervalKind::Leading;
            iv.length = cycle;
            iv.pf = PrefetchClass::NonPrefetchable;
            iv.ends_in_reuse = false;
        } else {
            LEAKBOUND_ASSERT(cycle >= fs.last_access,
                             "accesses must be time-ordered per frame");
            iv.kind = IntervalKind::Inner;
            iv.length = cycle - fs.last_access;
            // Next-line coverage takes precedence; stride catches the
            // non-sequential patterns next-line misses (paper Section
            // 5.2 counts them disjointly the same way).
            if (nl_covered)
                iv.pf = PrefetchClass::NextLine;
            else if (stride_predicted)
                iv.pf = PrefetchClass::Stride;
            else
                iv.pf = PrefetchClass::NonPrefetchable;
            iv.ends_in_reuse = reuse;
        }

        fs.touched = true;
        fs.last_access = cycle;
        return iv;
    }

    /**
     * Start time of @p frame's open interval (its last access), or
     * false if the frame has never been accessed.
     */
    bool
    open_since(FrameId frame, Cycle &since) const
    {
        LEAKBOUND_ASSERT(frame < frames_.size(), "frame id out of range");
        const FrameState &fs = frames_[frame];
        if (!fs.touched)
            return false;
        since = fs.last_access;
        return true;
    }

    /**
     * Close all open intervals at @p end_cycle, emitting Trailing
     * intervals for touched frames and Untouched intervals for frames
     * never accessed, and stamp the sink's run info.
     */
    void finalize(Cycle end_cycle);

    /** Raw intervals (empty unless keep_raw was requested). */
    const std::vector<Interval> &raw() const { return raw_; }

    /**
     * Append the per-frame state to @p out as ages relative to @p now
     * (touched flag, now - last_access), so two snapshots taken at
     * different absolute times compare equal iff the collectors would
     * behave identically going forward.
     */
    void append_state(std::vector<std::uint64_t> &out, Cycle now) const;

    /**
     * Shift every touched frame's last access forward by @p delta —
     * the analytic fast path's time warp across skipped periods.
     */
    void warp(Cycles delta);

    /** Accesses observed so far. */
    std::uint64_t num_accesses() const { return num_accesses_; }

  private:
    struct FrameState
    {
        Cycle last_access = 0;
        bool touched = false;
    };

    void emit(const Interval &iv);

    std::vector<FrameState> frames_;
    IntervalHistogramSet *sink_;
    bool keep_raw_;
    bool finalized_ = false;
    std::uint64_t num_accesses_ = 0;
    std::vector<Interval> raw_;
};

} // namespace leakbound::interval

#endif // LEAKBOUND_INTERVAL_COLLECTOR_HPP
