/**
 * @file
 * Minimal CSV writer.  Benches optionally mirror their tables to CSV so
 * downstream plotting scripts can regenerate the paper's figures.
 */

#ifndef LEAKBOUND_UTIL_CSV_HPP
#define LEAKBOUND_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace leakbound::util {

/**
 * Streams rows of string fields to a CSV file, quoting fields that need
 * it.  The file is flushed and closed on destruction (RAII).
 */
class CsvWriter
{
  public:
    /**
     * Open @p path for writing; calls fatal() if the file cannot be
     * created (user-environment problem, not a library bug).
     */
    explicit CsvWriter(const std::string &path);

    /** Write one row. */
    void write_row(const std::vector<std::string> &fields);

    /** True once at least one row has been written. */
    bool wrote_anything() const { return wrote_; }

    /** Quote a field per RFC 4180 if it contains , " or newline. */
    static std::string escape(const std::string &field);

  private:
    std::ofstream out_;
    bool wrote_ = false;
};

} // namespace leakbound::util

#endif // LEAKBOUND_UTIL_CSV_HPP
