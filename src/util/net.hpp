/**
 * @file
 * Thin, Status-returning wrapper over Unix-domain and TCP stream
 * sockets for the serve subsystem (serve/server, serve/client).
 *
 * Two tiers of API.  The blocking tier (send_all / recv_exact plus the
 * poll-based readiness waits) serves clients and tests: byte-exact,
 * EINTR- and EAGAIN-correct even on sockets someone flipped
 * non-blocking, retrying short writes internally.  The readiness tier
 * (set_nonblocking, read_some / write_some, try_accept, and the Epoll
 * RAII wrapper) serves the daemon's event loop: every call makes at
 * most one pass over the socket and reports "would block" as data, not
 * as an error, so an edge-triggered loop can drain a socket to EAGAIN
 * without ever parking a thread.  Every failure path returns a typed
 * util::Status — library code never kills the process over a flaky
 * peer — and clean peer close is its own kind
 * (ErrorKind::ConnectionClosed) so protocol code can tell "client went
 * away" from "stream corrupted".
 *
 * Chaos builds compile net_accept / net_read / net_write /
 * net_short_write fault seams into the syscall wrappers (see
 * util/fault_injection.hpp): the first three fail the operation typed,
 * net_short_write truncates a write to half its bytes — so the
 * daemon's robustness against vanishing peers, mid-frame write
 * failures and partial writes is testable without a misbehaving
 * network.
 */

#ifndef LEAKBOUND_UTIL_NET_HPP
#define LEAKBOUND_UTIL_NET_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util::net {

/** Owning file-descriptor handle; move-only, closes on destruction. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent; the destructor also calls this). */
    void close();

    /**
     * Half-close the read side: a peer blocked in recv on the other
     * end sees EOF, while responses still in flight keep flowing.
     * The drain path uses this to unstick idle sessions.
     */
    void shutdown_read();

  private:
    int fd_ = -1;
};

/**
 * Default listen() backlog.  Deep on purpose: the event loop accepts
 * in batches, and a connection storm (thousands of clients connecting
 * at once) must land in the kernel's accept queue rather than drop
 * SYNs into multi-second retransmit stalls.  The kernel clamps it to
 * net.core.somaxconn.
 */
inline constexpr int kListenBacklog = 4096;

/**
 * Create, bind and listen on a Unix-domain stream socket at @p path.
 * A stale socket file at @p path is unlinked first (the daemon owns
 * its socket path; two daemons sharing one path is a config error the
 * second bind cannot detect portably anyway).
 */
Expected<Socket> listen_unix(const std::string &path,
                             int backlog = kListenBacklog);

/**
 * Create, bind and listen on a TCP socket at @p host:@p port.
 * @p host must be a numeric IPv4 address (e.g. "127.0.0.1"); port 0
 * lets the kernel pick — read it back with local_port().
 */
Expected<Socket> listen_tcp(const std::string &host, std::uint16_t port,
                            int backlog = kListenBacklog);

/** Connect to a Unix-domain listener at @p path. */
Expected<Socket> connect_unix(const std::string &path);

/** Connect to a TCP listener at numeric @p host:@p port. */
Expected<Socket> connect_tcp(const std::string &host, std::uint16_t port);

/** The locally bound TCP port of @p socket (0 on failure). */
std::uint16_t local_port(const Socket &socket);

/**
 * Wait up to @p timeout_ms for @p socket to become readable.
 * @return 1 readable, 0 timed out, -1 error.  EINTR reports as a
 * timeout so callers re-check the interrupt flag and come back.
 */
int wait_readable(const Socket &socket, int timeout_ms);

/**
 * Wait up to @p timeout_ms for any of @p sockets to become readable.
 * @return the index of the first readable socket, -1 on timeout (or
 * EINTR — re-check the interrupt flag), -2 on poll error.
 */
int wait_any_readable(const std::vector<const Socket *> &sockets,
                      int timeout_ms);

/**
 * Accept one pending connection from @p listener (call after
 * wait_readable said so; blocks otherwise).  Transient accept
 * failures (aborted handshakes, fd pressure, the net_accept fault
 * seam) return IoError — the accept loop logs and keeps serving.
 */
Expected<Socket> accept_connection(const Socket &listener);

/** Put @p socket into (or out of) non-blocking mode. */
Status set_nonblocking(const Socket &socket, bool on = true);

/**
 * Accept one pending connection from a non-blocking @p listener
 * without ever blocking: an invalid Socket value means nothing was
 * pending (EAGAIN).  Transient failures (aborted handshakes, fd
 * pressure, the net_accept fault seam) are IoError, same as
 * accept_connection.
 */
Expected<Socket> try_accept(const Socket &listener);

/**
 * What one non-blocking read/write pass observed.  Exactly one of the
 * flags is interesting: bytes > 0 means progress; would_block means
 * the socket is drained (edge-triggered loops re-arm and move on);
 * closed (reads only) means clean EOF.
 */
struct IoResult
{
    std::size_t bytes = 0;
    bool would_block = false;
    bool closed = false;
};

/**
 * One recv pass: read up to @p size bytes into @p buffer.  Never
 * blocks on a non-blocking socket; EINTR retries internally.  A reset
 * peer is ConnectionClosed; other failures IoError.
 */
Expected<IoResult> read_some(const Socket &socket, void *buffer,
                             std::size_t size);

/**
 * One send pass: write up to @p size bytes (SIGPIPE suppressed).
 * Short writes are *returned*, not retried — the caller owns the
 * resume-from-offset state (that is the point of an event loop).  The
 * net_short_write chaos seam truncates the attempt to half its bytes.
 * A dead peer is ConnectionClosed; other failures IoError.
 */
Expected<IoResult> write_some(const Socket &socket, const void *data,
                              std::size_t size);

/** One readiness event out of Epoll::wait. */
struct EpollEvent
{
    std::uint64_t tag = 0;  ///< caller's cookie from add()/modify()
    bool readable = false;  ///< EPOLLIN
    bool writable = false;  ///< EPOLLOUT
    bool error = false;     ///< EPOLLERR
    bool hangup = false;    ///< EPOLLHUP | EPOLLRDHUP
};

/**
 * RAII wrapper over an epoll instance.  Registration is by raw fd +
 * caller cookie (the event loop maps cookies back to connections, so
 * a completion for an already-closed connection is droppable by
 * construction).  Edge-triggered when @p edge_triggered — the caller
 * must then drain to EAGAIN on every event.  wait() reports EINTR as
 * zero events so callers re-check their interrupt flag and come back.
 */
class Epoll
{
  public:
    Epoll();
    ~Epoll();

    Epoll(const Epoll &) = delete;
    Epoll &operator=(const Epoll &) = delete;

    bool valid() const { return fd_ >= 0; }

    /** Register @p fd for @p want_read/@p want_write under @p tag. */
    Status add(int fd, std::uint64_t tag, bool want_read,
               bool want_write, bool edge_triggered = true);

    /** Change the interest set of an already-registered @p fd. */
    Status modify(int fd, std::uint64_t tag, bool want_read,
                  bool want_write, bool edge_triggered = true);

    /** Deregister @p fd (closing an fd also deregisters it). */
    Status remove(int fd);

    /**
     * Wait up to @p timeout_ms, filling @p out (cleared first).
     * Returns the event count; 0 on timeout or EINTR.
     */
    Expected<std::size_t> wait(std::vector<EpollEvent> &out,
                               int timeout_ms, std::size_t max_events = 256);

  private:
    Status control(int op, int fd, std::uint64_t tag, bool want_read,
                   bool want_write, bool edge_triggered);

    int fd_ = -1;
};

/**
 * A level-triggered self-wakeup line (eventfd): any thread may
 * signal(); the owning event loop registers fd() for reads and calls
 * consume() when it fires.  Used to kick epoll_wait when a scheduler
 * worker finishes a job or drain is requested.
 */
class WakeupFd
{
  public:
    WakeupFd();
    ~WakeupFd();

    WakeupFd(const WakeupFd &) = delete;
    WakeupFd &operator=(const WakeupFd &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Make the fd readable (thread-safe, async-signal-safe). */
    void signal();

    /** Drain the pending signal(s); the fd goes quiet again. */
    void consume();

  private:
    int fd_ = -1;
};

/**
 * Write all @p size bytes to @p socket (retrying short writes and
 * EINTR; SIGPIPE suppressed).  A dead peer returns
 * ConnectionClosed; other failures IoError.
 */
Status send_all(const Socket &socket, const void *data, std::size_t size);

/**
 * Read exactly @p size bytes into @p out (cleared first).  EOF before
 * the first byte is ConnectionClosed (the peer hung up between
 * frames); EOF mid-buffer is CorruptData (a truncated frame — the
 * peer died mid-message or lied in its length prefix).
 */
Status recv_exact(const Socket &socket, std::size_t size,
                  std::string &out);

/**
 * recv_exact with a wall-clock bound: gives up with IoError once
 * @p deadline_ms elapse without the full @p size bytes arriving.  The
 * shard supervisor's health probes use this — a probe must never park
 * forever behind a wedged shard, which is exactly what recv_exact's
 * EAGAIN handling would do.
 */
Status recv_exact_deadline(const Socket &socket, std::size_t size,
                           std::string &out, int deadline_ms);

} // namespace leakbound::util::net

#endif // LEAKBOUND_UTIL_NET_HPP
