/**
 * @file
 * The interval-collecting access listener, hoisted out of
 * experiment.cpp so the multicore engine (src/multicore) can drive the
 * exact same classification logic per core.  Textual sharing is part
 * of the N=1 byte-identity argument: a multicore node classifies an
 * access with the same code path a single-core run does, so identical
 * access streams produce identical interval populations.
 */

#ifndef LEAKBOUND_CORE_COLLECTING_LISTENER_HPP
#define LEAKBOUND_CORE_COLLECTING_LISTENER_HPP

#include "cpu/inorder_core.hpp"
#include "interval/collector.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/stride.hpp"
#include "sim/hierarchy.hpp"

namespace leakbound::core {

/**
 * Drives the interval collectors and prefetch bookkeeping from the
 * core's access callbacks (see DESIGN.md §5 for the flag semantics).
 */
class CollectingListener final : public cpu::AccessListener
{
  public:
    CollectingListener(const sim::HierarchyConfig &config,
                       interval::IntervalCollector *icollector,
                       interval::IntervalCollector *dcollector,
                       prefetch::StridePredictor *stride,
                       Cycles nl_lead_time)
        : iline_shift_(config.l1i.line_shift()),
          dline_shift_(config.l1d.line_shift()),
          dline_(config.l1d.line_bytes), icollector_(icollector),
          dcollector_(dcollector), stride_(stride), nl_lead_(nl_lead_time)
    {
    }

    void
    on_instr_access(Cycle cycle, Pc pc,
                    const sim::HierarchyResult &result) override
    {
        const Addr block = pc >> iline_shift_;
        bool nl = false;
        Cycle since;
        if (icollector_->open_since(result.l1.frame, since))
            nl = imonitor_.covers(block, since, cycle, nl_lead_);
        icollector_->on_access(result.l1.frame, cycle, result.l1.hit,
                               /*stride_predicted=*/false, nl);
        imonitor_.record(block, cycle);
        on_l2(cycle, result);
    }

    void
    on_data_access(Cycle cycle, Pc pc, Addr addr, bool /*is_store*/,
                   const sim::HierarchyResult &result) override
    {
        const Addr block = addr >> dline_shift_;
        const bool stride_hit = stride_->access(pc, addr, dline_);
        bool nl = false;
        Cycle since;
        if (dcollector_->open_since(result.l1.frame, since))
            nl = dmonitor_.covers(block, since, cycle, nl_lead_);
        dcollector_->on_access(result.l1.frame, cycle, result.l1.hit,
                               stride_hit, nl);
        dmonitor_.record(block, cycle);
        on_l2(cycle, result);
    }

    /** Optional L2 observer (extension; no prefetch classification). */
    void
    set_l2_collector(interval::IntervalCollector *collector)
    {
        l2collector_ = collector;
    }

    /** The L1I next-line monitor (analytic fast-path state capture). */
    prefetch::NextLineMonitor &imonitor() { return imonitor_; }

    /** The L1D next-line monitor (analytic fast-path state capture). */
    prefetch::NextLineMonitor &dmonitor() { return dmonitor_; }

  private:
    void
    on_l2(Cycle cycle, const sim::HierarchyResult &result)
    {
        if (!l2collector_ || result.l1.hit)
            return; // the L2 is only touched on L1 misses
        l2collector_->on_access(result.l2.frame, cycle, result.l2.hit,
                                /*stride_predicted=*/false,
                                /*nl_covered=*/false);
    }

    std::uint32_t iline_shift_;
    std::uint32_t dline_shift_;
    std::uint32_t dline_; ///< line size the stride predictor keys on
    interval::IntervalCollector *icollector_;
    interval::IntervalCollector *dcollector_;
    interval::IntervalCollector *l2collector_ = nullptr;
    prefetch::StridePredictor *stride_;
    Cycles nl_lead_;
    prefetch::NextLineMonitor imonitor_;
    prefetch::NextLineMonitor dmonitor_;
};

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_COLLECTING_LISTENER_HPP
