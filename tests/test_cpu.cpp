/**
 * @file
 * Tests of the in-order timing core: fetch-group formation, one L1I
 * access per group, miss stall accounting with the overlap model, and
 * listener callback plumbing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/inorder_core.hpp"
#include "sim/hierarchy.hpp"
#include "workload/workload.hpp"

using namespace leakbound;
using namespace leakbound::cpu;
using trace::InstrKind;
using trace::MicroOp;

namespace {

/** Scripted workload: replays a fixed vector of micro-ops. */
class ScriptedWorkload final : public workload::Workload
{
  public:
    explicit ScriptedWorkload(std::vector<MicroOp> ops)
        : ops_(std::move(ops))
    {
    }

    std::string name() const override { return "scripted"; }

    bool
    next(MicroOp &op) override
    {
        if (pos_ >= ops_.size())
            return false;
        op = ops_[pos_++];
        return true;
    }

    void reset() override { pos_ = 0; }

  private:
    std::vector<MicroOp> ops_;
    std::size_t pos_ = 0;
};

/** Records every callback. */
class RecordingListener final : public AccessListener
{
  public:
    struct InstrEvent
    {
        Cycle cycle;
        Pc pc;
        bool hit;
    };
    struct DataEvent
    {
        Cycle cycle;
        Pc pc;
        Addr addr;
        bool is_store;
        bool hit;
    };

    void
    on_instr_access(Cycle cycle, Pc pc,
                    const sim::HierarchyResult &result) override
    {
        instr.push_back({cycle, pc, result.l1.hit});
    }

    void
    on_data_access(Cycle cycle, Pc pc, Addr addr, bool is_store,
                   const sim::HierarchyResult &result) override
    {
        data.push_back({cycle, pc, addr, is_store, result.l1.hit});
    }

    std::vector<InstrEvent> instr;
    std::vector<DataEvent> data;
};

MicroOp
op_at(Pc pc, InstrKind kind = InstrKind::Op, Addr addr = kInvalidAddr)
{
    MicroOp op;
    op.pc = pc;
    op.kind = kind;
    op.addr = addr;
    return op;
}

/** N sequential non-memory ops starting at pc. */
std::vector<MicroOp>
straight_line(Pc pc, int n)
{
    std::vector<MicroOp> ops;
    for (int i = 0; i < n; ++i)
        ops.push_back(op_at(pc + 4 * i));
    return ops;
}

} // namespace

TEST(InOrderCore, FourWideGroupsOneFetchEach)
{
    // 16 sequential instructions in one cache line -> 4 groups.
    ScriptedWorkload w(straight_line(0x1000, 16));
    sim::Hierarchy h{sim::HierarchyConfig{}};
    RecordingListener listener;
    InOrderCore core(CoreConfig{}, &h, &w, &listener);
    const CoreRunStats stats = core.run(1'000'000);

    EXPECT_EQ(stats.instructions, 16u);
    EXPECT_EQ(stats.fetch_groups, 4u);
    EXPECT_EQ(listener.instr.size(), 4u);
    EXPECT_EQ(h.l1i().stats().accesses, 4u);
    // Only the first group misses (cold); the line then stays warm.
    EXPECT_EQ(h.l1i().stats().misses, 1u);
}

TEST(InOrderCore, GroupBreaksAtLineBoundary)
{
    // Two instructions straddling a 64B line boundary cannot share a
    // group even though the PCs are sequential.
    std::vector<MicroOp> ops = {op_at(0x1038), op_at(0x103c),
                                op_at(0x1040), op_at(0x1044)};
    ScriptedWorkload w(ops);
    sim::Hierarchy h{sim::HierarchyConfig{}};
    RecordingListener listener;
    InOrderCore core(CoreConfig{}, &h, &w, &listener);
    const CoreRunStats stats = core.run(100);
    EXPECT_EQ(stats.fetch_groups, 2u);
    EXPECT_EQ(listener.instr[0].pc, 0x1038u);
    EXPECT_EQ(listener.instr[1].pc, 0x1040u);
}

TEST(InOrderCore, GroupBreaksAtTakenBranch)
{
    // A PC discontinuity (taken branch) ends the group.
    std::vector<MicroOp> ops = {op_at(0x1000), op_at(0x1004),
                                op_at(0x2000), op_at(0x2004)};
    ScriptedWorkload w(ops);
    sim::Hierarchy h{sim::HierarchyConfig{}};
    InOrderCore core(CoreConfig{}, &h, &w, nullptr);
    const CoreRunStats stats = core.run(100);
    EXPECT_EQ(stats.fetch_groups, 2u);
    EXPECT_EQ(stats.instructions, 4u);
}

TEST(InOrderCore, CyclesAdvancePerGroupPlusStalls)
{
    // All hits after warmup: 1 cycle per group.
    std::vector<MicroOp> ops = straight_line(0x1000, 8);
    ScriptedWorkload warm(ops);
    sim::HierarchyConfig cfg;
    sim::Hierarchy h{cfg};
    // Pre-warm the caches.
    h.access_instr(0x1000);
    InOrderCore core(CoreConfig{}, &h, &warm, nullptr);
    const CoreRunStats stats = core.run(100);
    EXPECT_EQ(stats.fetch_groups, 2u);
    EXPECT_EQ(stats.cycles, 2u);
    EXPECT_EQ(stats.instr_stall_cycles, 0u);
}

TEST(InOrderCore, MissStallUsesOverlapDiscount)
{
    // Cold fetch: L1I+L2 miss -> memory (100) - 1 = 99 raw penalty,
    // discounted to 50% -> 49-50 cycles of stall (rounding).
    ScriptedWorkload w(straight_line(0x1000, 4));
    sim::HierarchyConfig cfg;
    sim::Hierarchy h{cfg};
    CoreConfig core_cfg;
    core_cfg.miss_overlap_percent = 50;
    InOrderCore core(core_cfg, &h, &w, nullptr);
    const CoreRunStats stats = core.run(100);
    EXPECT_EQ(stats.fetch_groups, 1u);
    const Cycles raw_penalty = cfg.memory_latency - cfg.l1i.hit_latency;
    EXPECT_EQ(stats.cycles, 1 + (raw_penalty * 50 + 50) / 100);

    // Fully blocking configuration charges the whole penalty.
    ScriptedWorkload w2(straight_line(0x9000, 4));
    sim::Hierarchy h2{cfg};
    core_cfg.miss_overlap_percent = 100;
    InOrderCore blocking(core_cfg, &h2, &w2, nullptr);
    EXPECT_EQ(blocking.run(100).cycles, 1 + raw_penalty);
}

TEST(InOrderCore, DataAccessesReachTheL1D)
{
    std::vector<MicroOp> ops = {
        op_at(0x1000, InstrKind::Load, 0x80000),
        op_at(0x1004, InstrKind::Store, 0x80008),
        op_at(0x1008),
    };
    ScriptedWorkload w(ops);
    sim::Hierarchy h{sim::HierarchyConfig{}};
    RecordingListener listener;
    InOrderCore core(CoreConfig{}, &h, &w, &listener);
    const CoreRunStats stats = core.run(100);

    EXPECT_EQ(stats.loads, 1u);
    EXPECT_EQ(stats.stores, 1u);
    ASSERT_EQ(listener.data.size(), 2u);
    EXPECT_FALSE(listener.data[0].is_store);
    EXPECT_TRUE(listener.data[1].is_store);
    EXPECT_EQ(listener.data[1].addr, 0x80008u);
    EXPECT_EQ(h.l1d().stats().accesses, 2u);
    // Same line: first misses, second hits.
    EXPECT_EQ(h.l1d().stats().hits, 1u);
}

TEST(InOrderCore, ZeroFetchWidthIsATypedError)
{
    CoreConfig bad;
    bad.fetch_width = 0;
    const util::Status status = bad.validate();
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.kind(), util::ErrorKind::InvalidArgument);

    // The constructor surfaces the same status as an exception — a
    // malformed request fails its own job instead of aborting.
    ScriptedWorkload w(straight_line(0x1000, 4));
    sim::Hierarchy h{sim::HierarchyConfig{}};
    EXPECT_THROW(InOrderCore(bad, &h, &w, nullptr), util::StatusError);
    EXPECT_TRUE(CoreConfig{}.validate().ok());
}

TEST(InOrderCore, BatchedAndUnbatchedFetchAgree)
{
    // set_batch_fetch(false) is the differential fuzzer's reference
    // arm: the op stream and all statistics must be identical.
    ScriptedWorkload wa(straight_line(0x1000, 100));
    ScriptedWorkload wb(straight_line(0x1000, 100));
    sim::Hierarchy ha{sim::HierarchyConfig{}};
    sim::Hierarchy hb{sim::HierarchyConfig{}};
    InOrderCore batched(CoreConfig{}, &ha, &wa, nullptr);
    InOrderCore unbatched(CoreConfig{}, &hb, &wb, nullptr);
    unbatched.set_batch_fetch(false);
    const CoreRunStats a = batched.run(1'000'000);
    const CoreRunStats b = unbatched.run(1'000'000);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetch_groups, b.fetch_groups);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
}

TEST(InOrderCore, RespectsInstructionBudget)
{
    ScriptedWorkload w(straight_line(0x1000, 100));
    sim::Hierarchy h{sim::HierarchyConfig{}};
    InOrderCore core(CoreConfig{}, &h, &w, nullptr);
    const CoreRunStats stats = core.run(10);
    EXPECT_EQ(stats.instructions, 10u);
}

TEST(InOrderCore, StopsWhenWorkloadEnds)
{
    ScriptedWorkload w(straight_line(0x1000, 5));
    sim::Hierarchy h{sim::HierarchyConfig{}};
    InOrderCore core(CoreConfig{}, &h, &w, nullptr);
    const CoreRunStats stats = core.run(1'000'000);
    EXPECT_EQ(stats.instructions, 5u);
    EXPECT_GT(stats.cycles, 0u);
}

TEST(InOrderCore, ListenerSeesMonotoneCycles)
{
    // Interval collection depends on per-frame time-ordering; the
    // core must emit callbacks with non-decreasing cycles.
    std::vector<MicroOp> ops;
    for (int i = 0; i < 64; ++i) {
        ops.push_back(op_at(0x1000 + 4 * i,
                            i % 3 ? InstrKind::Op : InstrKind::Load,
                            i % 3 ? kInvalidAddr : 0x90000 + 64 * i));
    }
    ScriptedWorkload w(ops);
    sim::Hierarchy h{sim::HierarchyConfig{}};
    RecordingListener listener;
    InOrderCore core(CoreConfig{}, &h, &w, &listener);
    core.run(1'000'000);
    Cycle prev = 0;
    for (const auto &e : listener.instr) {
        EXPECT_GE(e.cycle, prev);
        prev = e.cycle;
    }
    prev = 0;
    for (const auto &e : listener.data) {
        EXPECT_GE(e.cycle, prev);
        prev = e.cycle;
    }
}
