# Empty compiler generated dependencies file for fig1_itrs.
# This may be replaced when dependencies are built.
