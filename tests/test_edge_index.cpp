/**
 * @file
 * Tests of util::EdgeIndex, the O(1) histogram binning path: exact
 * equivalence with the std::upper_bound reference over fuzzed edge
 * lists and values (below-range clamp, exact edges, edge +/- 1,
 * overflow bin, huge magnitudes), plus the sharing contract with
 * Histogram and IntervalHistogramSet.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "interval/interval_histogram.hpp"
#include "util/edge_index.hpp"
#include "util/histogram.hpp"
#include "util/random.hpp"

using namespace leakbound;
using util::EdgeIndex;

namespace {

/** Draw a sorted, deduplicated random edge list. */
std::vector<std::uint64_t>
fuzz_edges(util::Rng &rng)
{
    std::vector<std::uint64_t> edges;
    const std::size_t count = 1 + rng.next_below(64);
    // Mix magnitudes: dense small values, mid-range thresholds, and
    // huge tail edges all in one list.
    for (std::size_t i = 0; i < count; ++i) {
        switch (rng.next_below(4)) {
          case 0:
            edges.push_back(rng.next_below(70));
            break;
          case 1:
            edges.push_back(rng.next_below(5000));
            break;
          case 2:
            edges.push_back(rng.next_below(1ULL << 21));
            break;
          default:
            edges.push_back(rng.next_u64() >> rng.next_below(40));
            break;
        }
    }
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

} // namespace

TEST(EdgeIndex, MatchesReferenceOnHandPickedCases)
{
    const EdgeIndex index({10, 100, 1000});
    // Below-range values clamp into bin 0.
    EXPECT_EQ(index.bin_index(0), 0u);
    EXPECT_EQ(index.bin_index(9), 0u);
    // Exact edges open their own bin.
    EXPECT_EQ(index.bin_index(10), 0u);
    EXPECT_EQ(index.bin_index(100), 1u);
    EXPECT_EQ(index.bin_index(1000), 2u);
    // Interior and overflow values.
    EXPECT_EQ(index.bin_index(99), 0u);
    EXPECT_EQ(index.bin_index(101), 1u);
    EXPECT_EQ(index.bin_index(~0ULL), 2u);
}

TEST(EdgeIndex, MatchesReferenceOnDefaultIntervalEdges)
{
    const EdgeIndex index(interval::IntervalHistogramSet::default_edges());
    // Every edge, its neighbours, and a value sweep across the full
    // dynamic range agree with the reference.
    for (std::uint64_t e : index.edges()) {
        EXPECT_EQ(index.bin_index(e), index.bin_index_reference(e));
        EXPECT_EQ(index.bin_index(e + 1), index.bin_index_reference(e + 1));
        if (e > 0) {
            EXPECT_EQ(index.bin_index(e - 1),
                      index.bin_index_reference(e - 1));
        }
    }
    util::Rng rng(101);
    for (int i = 0; i < 200'000; ++i) {
        const std::uint64_t v = rng.next_u64() >> rng.next_below(64);
        ASSERT_EQ(index.bin_index(v), index.bin_index_reference(v))
            << "value " << v;
    }
}

TEST(EdgeIndex, FuzzedEdgeListsMatchReferenceEverywhere)
{
    util::Rng rng(202);
    for (int round = 0; round < 200; ++round) {
        const EdgeIndex index(fuzz_edges(rng));
        const auto &edges = index.edges();

        // Deterministic probes: below range, every edge and its
        // neighbours, and the overflow bin.
        std::vector<std::uint64_t> probes = {0, 1, ~0ULL, ~0ULL - 1};
        for (std::uint64_t e : edges) {
            probes.push_back(e);
            probes.push_back(e + 1);
            if (e > 0)
                probes.push_back(e - 1);
        }
        for (std::uint64_t v : probes) {
            ASSERT_EQ(index.bin_index(v), index.bin_index_reference(v))
                << "round " << round << " value " << v;
        }
        // Random probes across all magnitudes.
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t v = rng.next_u64() >> rng.next_below(64);
            ASSERT_EQ(index.bin_index(v), index.bin_index_reference(v))
                << "round " << round << " value " << v;
        }
        // The last bin is the overflow bin.
        EXPECT_EQ(index.bin_index(~0ULL), edges.size() - 1);
    }
}

TEST(EdgeIndex, HistogramsShareOneIndex)
{
    auto index = EdgeIndex::make({0, 10, 100});
    util::Histogram a(index);
    util::Histogram b(index);
    EXPECT_EQ(a.edge_index().get(), b.edge_index().get());
    EXPECT_EQ(a.edges(), b.edges());

    a.add(5);
    b.add(50);
    b.merge(a); // shared index: merge must accept without copying edges
    EXPECT_EQ(b.total_count(), 2u);
    EXPECT_EQ(b.bin(0).count, 1u);
    EXPECT_EQ(b.bin(1).count, 1u);
}

TEST(EdgeIndex, IntervalSetHistogramsShareTheSetIndex)
{
    auto set = interval::IntervalHistogramSet::with_default_edges();
    // Feed every slot and confirm totals; the set shares one index
    // across its nine histograms, so totals must still be exact.
    util::Rng rng(303);
    std::uint64_t expected_sum = 0;
    for (int i = 0; i < 10'000; ++i) {
        interval::Interval iv;
        iv.kind = static_cast<interval::IntervalKind>(rng.next_below(4));
        iv.pf = static_cast<interval::PrefetchClass>(rng.next_below(3));
        iv.ends_in_reuse = rng.next_bool(0.5);
        iv.length = rng.next_u64() >> rng.next_below(50);
        expected_sum += iv.length;
        set.add(iv);
    }
    EXPECT_EQ(set.total_intervals(), 10'000u);
    EXPECT_EQ(set.total_length(), expected_sum);
}
