/**
 * @file
 * Binary trace file writer/reader.
 *
 * Lets users capture the timed access stream of a run and re-analyze
 * it offline (or feed externally captured traces into the interval
 * machinery).  Format: 16-byte magic+version header followed by
 * fixed-width little-endian records; no compression (traces are
 * intermediate artifacts here, not archives).
 */

#ifndef LEAKBOUND_TRACE_TRACE_IO_HPP
#define LEAKBOUND_TRACE_TRACE_IO_HPP

#include <cstdio>
#include <string>

#include "trace/record.hpp"

namespace leakbound::trace {

/** Streams TimedAccess records to a binary file (RAII close). */
class TraceWriter
{
  public:
    /** Open @p path; fatal() if it cannot be created. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void write(const TimedAccess &rec);

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    std::uint64_t count_ = 0;
};

/** Reads a trace file written by TraceWriter. */
class TraceReader
{
  public:
    /** Open @p path; fatal() on missing file or bad magic. */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Read the next record; false at end of file. */
    bool next(TimedAccess &rec);

    /** Records read so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    std::uint64_t count_ = 0;
};

} // namespace leakbound::trace

#endif // LEAKBOUND_TRACE_TRACE_IO_HPP
