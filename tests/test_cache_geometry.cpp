/**
 * @file
 * Parameterized cache-geometry sweep: the cache model must behave
 * correctly for every (size, line, associativity) combination a user
 * might configure — residency uniqueness, capacity limits, stats
 * conservation, and frame-id bijectivity.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/cache.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::sim;

namespace {

struct Geometry
{
    std::uint64_t size;
    std::uint32_t line;
    std::uint32_t assoc;
};

std::string
geometry_name(const ::testing::TestParamInfo<Geometry> &info)
{
    return "s" + std::to_string(info.param.size) + "_l" +
           std::to_string(info.param.line) + "_w" +
           std::to_string(info.param.assoc);
}

} // namespace

class CacheGeometry : public ::testing::TestWithParam<Geometry>
{
  protected:
    CacheConfig
    config() const
    {
        CacheConfig c;
        c.name = "sweep";
        c.size_bytes = GetParam().size;
        c.line_bytes = GetParam().line;
        c.associativity = GetParam().assoc;
        return c;
    }
};

TEST_P(CacheGeometry, GeometryArithmetic)
{
    const CacheConfig c = config();
    c.validate();
    EXPECT_EQ(c.num_sets() * c.associativity * c.line_bytes,
              c.size_bytes);
    EXPECT_EQ(c.num_frames(), c.num_sets() * c.associativity);
}

TEST_P(CacheGeometry, WorkingSetWithinCapacityNeverEvicts)
{
    // Touch exactly one block per frame (each set filled to its ways):
    // everything must fit, and a second pass must be all hits.
    const CacheConfig cfg = config();
    Cache cache(cfg);
    std::vector<Addr> blocks;
    for (std::uint64_t set = 0; set < cfg.num_sets(); ++set) {
        for (std::uint32_t w = 0; w < cfg.associativity; ++w) {
            // Distinct blocks mapping to `set`: block = set + k*sets.
            blocks.push_back((set + static_cast<Addr>(w) * cfg.num_sets()) *
                             cfg.line_bytes);
        }
    }
    for (Addr a : blocks)
        cache.access(a);
    EXPECT_EQ(cache.stats().evictions, 0u);
    for (Addr a : blocks)
        EXPECT_TRUE(cache.access(a).hit);
    EXPECT_EQ(cache.stats().hits, blocks.size());
}

TEST_P(CacheGeometry, FrameIdsAreUniqueAndInRange)
{
    const CacheConfig cfg = config();
    Cache cache(cfg);
    std::set<FrameId> seen;
    for (std::uint64_t set = 0; set < cfg.num_sets(); ++set) {
        for (std::uint32_t w = 0; w < cfg.associativity; ++w) {
            const Addr a =
                (set + static_cast<Addr>(w) * cfg.num_sets()) *
                cfg.line_bytes;
            const AccessResult r = cache.access(a);
            EXPECT_LT(r.frame, cfg.num_frames());
            EXPECT_TRUE(seen.insert(r.frame).second)
                << "frame reused while capacity remains";
        }
    }
    EXPECT_EQ(seen.size(), cfg.num_frames());
}

TEST_P(CacheGeometry, StatsConservation)
{
    const CacheConfig cfg = config();
    Cache cache(cfg);
    util::Rng rng(9);
    const std::uint64_t accesses = 20'000;
    for (std::uint64_t i = 0; i < accesses; ++i)
        cache.access(rng.next_below(4 * cfg.size_bytes));
    const CacheStats &s = cache.stats();
    EXPECT_EQ(s.accesses, accesses);
    EXPECT_EQ(s.hits + s.misses, s.accesses);
    EXPECT_LE(s.evictions, s.misses);
    // Evictions = misses - cold fills; cold fills <= frames.
    EXPECT_GE(s.evictions + cfg.num_frames(), s.misses);
}

TEST_P(CacheGeometry, ResidencyIsExclusive)
{
    // A block is resident in at most one frame at any time.
    const CacheConfig cfg = config();
    Cache cache(cfg);
    util::Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
        const Addr block = rng.next_below(2 * cfg.num_frames());
        cache.access(block * cfg.line_bytes);
        const FrameId frame = cache.frame_of_block(block);
        ASSERT_NE(frame, kInvalidFrame);
        EXPECT_EQ(cache.block_in_frame(frame), block);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Values(Geometry{1024, 32, 1}, Geometry{1024, 32, 2},
                      Geometry{4096, 64, 4}, Geometry{8192, 64, 8},
                      Geometry{65536, 64, 2}, Geometry{65536, 128, 2},
                      Geometry{2097152, 64, 1}, Geometry{4096, 64, 64}),
    geometry_name);
