/**
 * @file
 * Loop-nest program generator.
 *
 * A LoopProgram is a tree of straight-line blocks and counted loops
 * (with per-entry random trip counts), executed forever from the top.
 * It reproduces the interval anatomy of paper Figure 2: the re-access
 * interval of an outer-loop instruction is governed by the inner
 * loop's (possibly varying) trip count.
 *
 * Static properties (PCs, which instructions are loads/stores) are
 * fixed at construction from the seed; dynamic properties (trip
 * counts, data addresses) are drawn during execution, also seeded, so
 * runs are exactly reproducible.
 */

#ifndef LEAKBOUND_WORKLOAD_LOOP_PROGRAM_HPP
#define LEAKBOUND_WORKLOAD_LOOP_PROGRAM_HPP

#include <vector>

#include "util/random.hpp"
#include "workload/data_pattern.hpp"
#include "workload/workload.hpp"

namespace leakbound::workload {

/** A straight-line block of instructions. */
struct BlockSpec
{
    std::uint32_t instrs = 16;    ///< instructions in the block
    double mem_fraction = 0.25;   ///< fraction that reference memory
    double store_fraction = 0.3;  ///< of those, fraction that store
    int pattern = -1;             ///< pattern-pool index; -1 = none
};

/** A node of the loop tree: either a block or a counted loop. */
struct NodeSpec
{
    enum class Kind { Block, Loop };

    Kind kind = Kind::Block;
    BlockSpec block;              ///< valid when kind == Block
    std::uint64_t min_trips = 1;  ///< valid when kind == Loop
    std::uint64_t max_trips = 1;  ///< trip count drawn per loop entry
    std::vector<NodeSpec> body;   ///< valid when kind == Loop

    /** Make a block node. */
    static NodeSpec make_block(const BlockSpec &spec);

    /** Make a loop node with trips drawn uniformly per entry. */
    static NodeSpec make_loop(std::uint64_t min_trips,
                              std::uint64_t max_trips,
                              std::vector<NodeSpec> body);
};

/** The loop-nest workload. */
class LoopProgram final : public Workload
{
  public:
    /**
     * @param name benchmark name
     * @param code_base PC of the first instruction
     * @param top_level program body, executed in an endless loop
     * @param patterns data-pattern pool referenced by BlockSpec::pattern
     * @param seed drives both static layout and dynamic draws
     */
    LoopProgram(std::string name, Pc code_base,
                std::vector<NodeSpec> top_level,
                std::vector<DataPatternPtr> patterns, std::uint64_t seed);

    std::string name() const override { return name_; }
    bool next(trace::MicroOp &op) override;
    std::size_t next_batch(trace::MicroOp *out, std::size_t max) override;
    void reset() override;

    /**
     * A profile when every loop has a constant trip count
     * (min == max) and every referenced pattern is deterministically
     * periodic; the period is the instruction count of one top-level
     * pass (blocks + latches, counted loops expanded).
     */
    std::optional<AnalyticProfile> analytic_profile() const override;

    /**
     * Interpreter state: stack frames, current block position, latch
     * progress, and each pattern's position.  The run RNG is excluded —
     * analytic_profile() only claims workloads whose trip draws are
     * constants, so the RNG never influences the stream.
     */
    bool append_state(std::vector<std::uint64_t> &out) const override;

    /** Static code footprint in bytes (blocks + loop latches). */
    std::uint64_t code_bytes() const { return code_bytes_; }

  private:
    /** Flattened block: PCs plus the per-instruction static kinds. */
    struct FlatBlock
    {
        Pc base_pc = 0;
        std::vector<trace::InstrKind> kinds;
        /**
         * mem_prefix[i] = memory ops among kinds[0..i) — lets
         * next_batch() count the pattern draws of any span up front
         * and batch them through DataPattern::fill().
         */
        std::vector<std::uint32_t> mem_prefix;
        int pattern = -1;
    };

    /** Flattened node referencing the spec tree. */
    struct FlatNode
    {
        NodeSpec::Kind kind;
        std::size_t block_index = 0;     ///< into blocks_ (Block)
        std::uint64_t min_trips = 1;     ///< (Loop)
        std::uint64_t max_trips = 1;
        std::vector<FlatNode> body;      ///< (Loop)
        Pc latch_pc = 0;                 ///< loop latch block (Loop)
    };

    /** Interpreter stack frame: a loop in progress. */
    struct Frame
    {
        const FlatNode *loop;   ///< nullptr = the implicit top loop
        std::uint64_t trips_left;
        std::size_t pos;        ///< next child to execute
    };

    FlatNode flatten(const NodeSpec &spec, Pc &next_pc,
                     util::Rng &layout_rng);
    void start_run();
    const std::vector<FlatNode> &body_of(const Frame &frame) const;

    /** All loops under @p node (inclusive) have min == max trips. */
    bool node_constant_trips(const FlatNode &node) const;

    /** Instructions one execution of @p node emits (constant trips). */
    std::uint64_t node_instrs(const FlatNode &node) const;

    std::string name_;
    Pc code_base_;
    std::vector<FlatBlock> blocks_;
    std::vector<FlatNode> top_;
    Pc top_latch_pc_ = 0;
    std::uint64_t code_bytes_ = 0;
    std::vector<DataPatternPtr> patterns_;
    std::uint64_t seed_;

    util::Rng run_rng_;
    std::vector<Frame> stack_;
    const FlatBlock *cur_block_ = nullptr;
    std::uint32_t instr_idx_ = 0;
    Pc latch_pc_ = 0;       ///< nonzero while emitting a latch
    std::uint32_t latch_idx_ = 0;
};

} // namespace leakbound::workload

#endif // LEAKBOUND_WORKLOAD_LOOP_PROGRAM_HPP
