/**
 * @file
 * The multicore engine's contracts (src/multicore):
 *
 *  - N=1 reduction: the multicore interleaver's output is
 *    byte-identical (core::serialize_result) to the single-core
 *    engine's, with and without L2 collection;
 *  - determinism: a multicore suite run is byte-identical between
 *    --jobs 1 and --jobs 4;
 *  - invalidation accounting (seed-fuzzed): every interval boundary
 *    of every collector is attributable — per-core L1 populations
 *    close one interval per access plus one per invalidation
 *    received, the shared L2's merged population closes one per L2
 *    access plus one per invalidation-driven close, and the
 *    invalidation totals reconcile across cores;
 *  - oracle dominance: the generalized-model bounds computed from
 *    multicore populations dominate every stock policy in the zoo,
 *    per level;
 *  - typed validation: malformed multicore configs surface as
 *    InvalidArgument Status/StatusError (never fatal()), through
 *    validate(), run_multicore and the suite runner alike;
 *  - request decode: core_count / workload_mix wire keys (strict
 *    schema, scaled budget check, server-owned knobs still rejected)
 *    and artifact-cache fingerprints that never alias across
 *    core-count or mix changes;
 *  - chaos (fault-injection builds only): a multicore suite job hit
 *    by an injected simulate fault fails typed with retries while its
 *    siblings survive byte-identically.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/artifact_cache.hpp"
#include "core/experiment.hpp"
#include "core/experiment_request.hpp"
#include "core/generalized_model.hpp"
#include "core/inflection.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "multicore/multicore.hpp"
#include "power/technology.hpp"
#include "util/fault_injection.hpp"
#include "util/json.hpp"
#include "util/random.hpp"
#include "util/status.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;

namespace {

/** A small, fast config (no cache, engine pinned to simulation). */
core::ExperimentConfig
small_config(std::uint64_t instructions = 120'000)
{
    core::ExperimentConfig config;
    config.instructions = instructions;
    config.extra_edges = core::standard_extra_edges();
    config.engine = core::Engine::Sim;
    return config;
}

std::string
single_core_bytes(const std::string &name,
                  const core::ExperimentConfig &config)
{
    auto workload = workload::make_benchmark(name);
    return core::serialize_result(core::run_experiment(*workload, config));
}

/** Every stock policy of core/policies.hpp under @p model. */
std::vector<core::PolicyPtr>
policy_zoo(const core::EnergyModel &model)
{
    const core::InflectionPoints points = core::compute_inflection(model);
    const std::vector<interval::PrefetchClass> both = {
        interval::PrefetchClass::NextLine,
        interval::PrefetchClass::Stride};
    std::vector<core::PolicyPtr> zoo;
    zoo.push_back(core::make_always_active(model));
    zoo.push_back(core::make_opt_drowsy(model));
    zoo.push_back(core::make_opt_sleep(model, points.drowsy_sleep));
    zoo.push_back(core::make_opt_sleep(model, 10'000));
    zoo.push_back(core::make_decay_sleep(model, 10'000));
    zoo.push_back(core::make_decay_sleep(model, 2'000));
    zoo.push_back(core::make_hybrid(model, points.drowsy_sleep));
    zoo.push_back(core::make_hybrid(model, 4'000));
    zoo.push_back(core::make_opt_hybrid(model));
    zoo.push_back(core::make_periodic_drowsy(model, 2'000));
    zoo.push_back(core::make_periodic_drowsy(model, 32'000));
    zoo.push_back(core::make_prefetch(model, core::PrefetchVariant::A,
                                      both));
    zoo.push_back(core::make_prefetch(model, core::PrefetchVariant::B,
                                      both));
    zoo.push_back(core::make_prefetch_blend(model, 3'000, both));
    return zoo;
}

util::Expected<core::ExperimentRequest>
decode(const std::string &json,
       std::uint64_t max_instructions =
           core::kDefaultMaxRequestInstructions)
{
    auto parsed = util::json_parse(json);
    EXPECT_TRUE(parsed.has_value()) << json;
    return core::decode_experiment_request(parsed.value(),
                                           max_instructions);
}

} // namespace

TEST(MulticoreReduction, N1IsByteIdenticalToTheSingleCoreEngine)
{
    for (const bool collect_l2 : {false, true}) {
        for (const std::string name : {"gzip", "gcc"}) {
            core::ExperimentConfig config = small_config();
            config.collect_l2 = collect_l2;

            const std::string single = single_core_bytes(name, config);

            // Through the engine directly (core_count=1, empty mix)...
            config.core_count = 1;
            const std::string direct = core::serialize_result(
                multicore::run_multicore_summary(name, config));
            EXPECT_EQ(single, direct)
                << name << " collect_l2=" << collect_l2;

            // ...and through run_experiment's dispatch (a non-empty
            // one-entry mix routes to the interleaver).
            config.workload_mix = {name};
            auto workload = workload::make_benchmark(name);
            const std::string dispatched = core::serialize_result(
                core::run_experiment(*workload, config));
            EXPECT_EQ(single, dispatched)
                << name << " collect_l2=" << collect_l2;
        }
    }
}

TEST(MulticoreReduction, N1ReferencePathAlsoReduces)
{
    // The same reduction must hold on the virtual-dispatch reference
    // lane (the one a >8-way cache silently falls back to).
    core::ExperimentConfig config = small_config(60'000);
    config.sim_path = sim::SimMode::Reference;
    const std::string single = single_core_bytes("gzip", config);
    config.core_count = 1;
    EXPECT_EQ(single, core::serialize_result(
                          multicore::run_multicore_summary("gzip", config)));
}

TEST(MulticoreDeterminism, SuiteIsByteIdenticalAcrossJobsValues)
{
    core::ExperimentConfig config = small_config(40'000);
    config.collect_l2 = true;
    config.core_count = 4;
    const std::vector<std::string> names = {"gzip", "gcc"};

    config.jobs = 1;
    const auto serial = core::run_suite(names, config);
    config.jobs = 4;
    const auto parallel = core::run_suite(names, config);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(core::serialize_result(serial[i]),
                  core::serialize_result(parallel[i]))
            << names[i];
}

TEST(MulticoreDeterminism, RepeatedRunsAreByteIdentical)
{
    core::ExperimentConfig config = small_config(40'000);
    config.collect_l2 = true;
    config.core_count = 2;
    config.workload_mix = {"stream", "chase"};
    const auto once = multicore::run_multicore("stream", config);
    const auto twice = multicore::run_multicore("stream", config);
    EXPECT_EQ(core::serialize_result(once.to_experiment_result()),
              core::serialize_result(twice.to_experiment_result()));
    EXPECT_EQ(once.invalidations, twice.invalidations);
    EXPECT_EQ(once.end_cycle, twice.end_cycle);
}

TEST(MulticoreAccounting, EveryIntervalBoundaryIsAttributable)
{
    // Seed-fuzzed: random core counts, mixes and budgets.  For every
    // collector, total intervals == touches + one finalize interval
    // per frame; multicore touches are accesses plus invalidation
    // closes.
    const std::vector<std::string> pool = {"gzip", "gcc",   "stream",
                                           "chase", "stencil", "vortex"};
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        util::Rng rng(0x5eed'c0deULL ^ (seed * 7919));
        core::ExperimentConfig config =
            small_config(20'000 + rng.next_below(20'000));
        config.collect_l2 = true;
        config.core_count = rng.next_below(2) ? 2 : 4;
        config.workload_mix.clear();
        for (std::uint32_t i = 0; i < config.core_count; ++i)
            config.workload_mix.push_back(
                pool[rng.next_below(pool.size())]);

        const multicore::MulticoreResult run =
            multicore::run_multicore(config.workload_mix.front(), config);
        ASSERT_EQ(run.cores.size(), config.core_count);

        std::uint64_t invalidations_received = 0;
        for (const multicore::CoreOutcome &core : run.cores) {
            EXPECT_EQ(core.icache.intervals.total_intervals(),
                      core.icache.stats.accesses +
                          core.icache.intervals.num_frames());
            EXPECT_EQ(core.dcache.intervals.total_intervals(),
                      core.dcache.stats.accesses +
                          core.invalidations_received +
                          core.dcache.intervals.num_frames());
            EXPECT_EQ(core.dcache.stats.accesses,
                      core.stats.loads + core.stats.stores);
            EXPECT_LE(core.stats.cycles, run.end_cycle);
            invalidations_received += core.invalidations_received;
        }
        EXPECT_EQ(invalidations_received, run.invalidations);
        EXPECT_GE(run.invalidations, run.invalidating_stores);

        ASSERT_TRUE(run.l2cache.has_value());
        EXPECT_EQ(run.l2cache->intervals.total_intervals(),
                  run.l2.accesses + run.l2_interval_closes +
                      run.l2cache->intervals.num_frames());

        // The merged population is exactly the union of the banks.
        std::uint64_t bank_intervals = 0, bank_frames = 0;
        for (const interval::IntervalHistogramSet &bank : run.l2_banks) {
            bank_intervals += bank.total_intervals();
            bank_frames += bank.num_frames();
        }
        EXPECT_EQ(bank_intervals, run.l2cache->intervals.total_intervals());
        EXPECT_EQ(bank_frames, run.l2cache->intervals.num_frames());
    }
}

TEST(MulticoreAccounting, SingleCoreRunsNeverInvalidate)
{
    core::ExperimentConfig config = small_config(40'000);
    config.collect_l2 = true;
    config.core_count = 1;
    const auto run = multicore::run_multicore("gzip", config);
    EXPECT_EQ(run.invalidations, 0u);
    EXPECT_EQ(run.invalidating_stores, 0u);
    EXPECT_EQ(run.l2_interval_closes, 0u);
}

TEST(MulticoreOracle, BoundDominatesEveryStockPolicyPerLevel)
{
    core::ExperimentConfig config = small_config(60'000);
    config.collect_l2 = true;
    config.core_count = 4;
    config.workload_mix = {"stream", "chase", "gzip", "stencil"};
    const auto run = multicore::run_multicore("stream", config);

    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    const auto zoo = policy_zoo(model);
    const auto envelope = core::make_opt_hybrid(model);

    std::vector<const interval::IntervalHistogramSet *> sets;
    for (const multicore::CoreOutcome &core : run.cores) {
        sets.push_back(&core.icache.intervals);
        sets.push_back(&core.dcache.intervals);
    }
    sets.push_back(&run.l2cache->intervals);

    for (const interval::IntervalHistogramSet *set : sets) {
        const double oracle =
            core::evaluate_policy(*envelope, *set).total;
        for (const core::PolicyPtr &policy : zoo) {
            const core::SavingsResult r =
                core::evaluate_policy(*policy, *set);
            const double slack = 1e-9 * std::max(1.0, std::abs(r.total));
            EXPECT_LE(oracle, r.total + slack) << policy->name();
        }
    }
}

TEST(MulticoreValidation, TypedInvalidArgumentNeverFatal)
{
    core::ExperimentConfig config;
    config.core_count = 0;
    EXPECT_EQ(config.validate().kind(),
              util::ErrorKind::InvalidArgument);

    config.core_count = core::kMaxCoreCount + 1;
    EXPECT_EQ(config.validate().kind(),
              util::ErrorKind::InvalidArgument);

    config.core_count = 2;
    config.workload_mix = {"gzip"};
    EXPECT_EQ(config.validate().kind(),
              util::ErrorKind::InvalidArgument);

    config.workload_mix = {"gzip", "no_such_benchmark"};
    EXPECT_EQ(config.validate().kind(),
              util::ErrorKind::InvalidArgument);

    config.workload_mix = {"gzip", "gcc"};
    EXPECT_TRUE(config.validate().ok());
}

TEST(MulticoreValidation, RunMulticoreThrowsTyped)
{
    core::ExperimentConfig config = small_config(20'000);
    config.core_count = 2;
    config.keep_raw = true; // raw retention is single-core only
    try {
        multicore::run_multicore("gzip", config);
        FAIL() << "keep_raw multicore run did not throw";
    } catch (const util::StatusError &e) {
        EXPECT_EQ(e.status().kind(), util::ErrorKind::InvalidArgument);
    }

    config.keep_raw = false;
    config.core_count = 0;
    EXPECT_THROW(multicore::run_multicore("gzip", config),
                 util::StatusError);

    // A non-suite name cannot be replicated across cores.
    config.core_count = 2;
    EXPECT_THROW(multicore::run_multicore("no_such_benchmark", config),
                 util::StatusError);
}

TEST(MulticoreValidation, SuiteRunnerRecordsTheFailureInstead)
{
    core::ExperimentConfig config = small_config(20'000);
    config.core_count = 2;
    config.workload_mix = {"gzip"}; // length mismatch
    core::SuiteOutcome outcome =
        core::run_suite_isolated({"gzip"}, config);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures.front().kind,
              util::ErrorKind::InvalidArgument);
    EXPECT_FALSE(outcome.slots.front().has_value());
}

TEST(MulticoreRequest, DecodeAcceptsTheMulticoreKeys)
{
    auto decoded = decode(
        R"({"type":"run","benchmarks":["gzip"],"instructions":20000,)"
        R"("core_count":4,"workload_mix":["gzip","gcc","stream","chase"]})");
    ASSERT_TRUE(decoded.has_value()) << decoded.status().to_string();
    EXPECT_EQ(decoded.value().config.core_count, 4u);
    ASSERT_EQ(decoded.value().config.workload_mix.size(), 4u);
    EXPECT_EQ(decoded.value().config.workload_mix[3], "chase");
    EXPECT_TRUE(decoded.value().config.validate().ok());
}

TEST(MulticoreRequest, DecodeRejectsMalformedMulticoreKeys)
{
    const std::vector<std::string> bad = {
        // out-of-range / mistyped core_count
        R"({"type":"run","benchmarks":["gzip"],"core_count":0})",
        R"({"type":"run","benchmarks":["gzip"],"core_count":65})",
        R"({"type":"run","benchmarks":["gzip"],"core_count":"4"})",
        // malformed mixes
        R"({"type":"run","benchmarks":["gzip"],"workload_mix":[]})",
        R"({"type":"run","benchmarks":["gzip"],"workload_mix":"gzip"})",
        R"({"type":"run","benchmarks":["gzip"],)"
        R"("core_count":2,"workload_mix":["gzip"]})",
        R"({"type":"run","benchmarks":["gzip"],)"
        R"("core_count":2,"workload_mix":["gzip","warp"]})",
        // server-owned knobs stay rejected in multicore requests
        R"({"type":"run","benchmarks":["gzip"],"core_count":2,"jobs":4})",
        R"({"type":"run","benchmarks":["gzip"],)"
        R"("core_count":2,"keep_raw":true})",
    };
    for (const std::string &text : bad) {
        auto decoded = decode(text);
        ASSERT_FALSE(decoded.has_value()) << text;
        EXPECT_EQ(decoded.status().kind(),
                  util::ErrorKind::InvalidArgument)
            << text;
    }
}

TEST(MulticoreRequest, BudgetScalesWithCoreCount)
{
    // 60k x 4 cores exceeds a 200k ceiling even though 60k alone fits.
    EXPECT_TRUE(decode(R"({"type":"run","benchmarks":["gzip"],)"
                       R"("instructions":60000,"core_count":1})",
                       200'000)
                    .has_value());
    auto decoded = decode(R"({"type":"run","benchmarks":["gzip"],)"
                          R"("instructions":60000,"core_count":4})",
                          200'000);
    ASSERT_FALSE(decoded.has_value());
    EXPECT_EQ(decoded.status().kind(), util::ErrorKind::InvalidArgument);
}

TEST(MulticoreFingerprint, CoreCountAndMixNeverAlias)
{
    core::ExperimentConfig base = small_config(20'000);
    const std::uint64_t single = core::fingerprint_config(base);

    core::ExperimentConfig two = base;
    two.core_count = 2;
    EXPECT_NE(core::fingerprint_config(two), single);

    // An explicit homogeneous mix is a different key from the implicit
    // one (they request the same simulation through different configs;
    // aliasing them would hide decode bugs behind cache hits).
    core::ExperimentConfig explicit_mix = two;
    explicit_mix.workload_mix = {"gzip", "gzip"};
    EXPECT_NE(core::fingerprint_config(explicit_mix),
              core::fingerprint_config(two));

    // Mix content and order both matter.
    core::ExperimentConfig ab = two, ba = two;
    ab.workload_mix = {"gzip", "gcc"};
    ba.workload_mix = {"gcc", "gzip"};
    EXPECT_NE(core::fingerprint_config(ab),
              core::fingerprint_config(ba));
    EXPECT_NE(core::fingerprint_config(ab),
              core::fingerprint_config(explicit_mix));

    // Identical configs still agree, of course.
    core::ExperimentConfig ab2 = ab;
    EXPECT_EQ(core::fingerprint_config(ab),
              core::fingerprint_config(ab2));
}

TEST(MulticoreFingerprint, SerializedResultsRoundTrip)
{
    core::ExperimentConfig config = small_config(30'000);
    config.collect_l2 = true;
    config.core_count = 2;
    config.workload_mix = {"stream", "gzip"};
    const core::ExperimentResult result =
        multicore::run_multicore_summary("stream", config);
    const std::string bytes = core::serialize_result(result);
    auto restored = core::deserialize_result(bytes);
    ASSERT_TRUE(restored.has_value());
    EXPECT_EQ(core::serialize_result(*restored), bytes);
    EXPECT_EQ(restored->workload, "mc2:stream+gzip");
}

TEST(MulticoreChaos, InjectedFaultFailsOneJobAndSparesSiblings)
{
    if (!util::fault::kEnabled)
        GTEST_SKIP() << "fault injector compiled out";

    core::ExperimentConfig config = small_config(20'000);
    config.core_count = 2;

    // Fault-free reference bytes for the surviving sibling.
    ASSERT_TRUE(util::fault::configure("", 7));
    const auto clean = core::run_suite({"gzip", "gcc"}, config);
    ASSERT_EQ(clean.size(), 2u);

    ASSERT_TRUE(util::fault::configure("simulate@gzip=1", 7));
    core::SuiteOutcome outcome =
        core::run_suite_isolated({"gzip", "gcc"}, config);
    util::fault::reset();

    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures.front().workload, "gzip");
    EXPECT_EQ(outcome.failures.front().kind,
              util::ErrorKind::FaultInjected);
    EXPECT_EQ(outcome.failures.front().retries, core::kMaxJobRetries);
    ASSERT_TRUE(outcome.slots[1].has_value());
    EXPECT_EQ(core::serialize_result(*outcome.slots[1]),
              core::serialize_result(clean[1]));
}
