/**
 * @file
 * Implementation of the FNV-1a fingerprint hasher.
 */

#include "util/fingerprint.hpp"

#include <cstdio>

namespace leakbound::util {

void
Fingerprint::mix_bytes(const void *data, std::size_t size)
{
    const auto *bytes = static_cast<const unsigned char *>(data);
    std::uint64_t h = state_;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= bytes[i];
        h *= kPrime;
    }
    state_ = h;
}

void
Fingerprint::mix_u64(std::uint64_t v)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
    mix_bytes(bytes, sizeof(bytes));
}

void
Fingerprint::mix_string(const std::string &s)
{
    mix_u64(s.size());
    mix_bytes(s.data(), s.size());
}

void
Fingerprint::mix_u64_vector(const std::vector<std::uint64_t> &v)
{
    mix_u64(v.size());
    for (std::uint64_t x : v)
        mix_u64(x);
}

std::uint64_t
fnv1a(const void *data, std::size_t size)
{
    Fingerprint fp;
    fp.mix_bytes(data, size);
    return fp.digest();
}

std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
}

} // namespace leakbound::util
