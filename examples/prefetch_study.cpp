/**
 * @file
 * Prefetching as approximate oracle knowledge (paper Section 5): for
 * one benchmark, report the stride predictor's raw coverage, the
 * interval-level prefetchability split, and how far Prefetch-A/B land
 * from the OPT-Hybrid bound — including a sweep over stride-table
 * sizes to show hardware-budget sensitivity.
 *
 * Usage: prefetch_study [--benchmark applu] [--instructions 2000000]
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/inflection.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "prefetch/prefetchability.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;

    util::Cli cli("prefetch_study",
                  "prefetching vs the leakage oracle");
    cli.add_flag("benchmark", "suite benchmark", "applu");
    cli.add_flag("instructions", "dynamic instructions", "2000000");
    cli.parse(argc, argv);

    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    const auto points = core::compute_inflection(model);
    using interval::PrefetchClass;
    const std::vector<PrefetchClass> dcls = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};

    util::Table table("stride-table sweep on " + cli.get("benchmark") +
                      " (D-cache, 70nm)");
    table.set_header({"stride entries", "NL intervals", "stride intervals",
                      "Prefetch-A", "Prefetch-B", "OPT-Hybrid"});

    for (std::uint32_t entries : {64u, 512u, 4096u, 0u /*unbounded*/}) {
        core::ExperimentConfig config;
        config.instructions = cli.get_u64("instructions");
        config.extra_edges = core::standard_extra_edges();
        config.stride.table_entries = entries;

        workload::WorkloadPtr bench =
            workload::make_benchmark(cli.get("benchmark"));
        const core::ExperimentResult run =
            core::run_experiment(*bench, config);
        const auto &set = run.dcache.intervals;

        const auto report =
            prefetch::analyze_prefetchability(set, points);
        auto savings = [&](const core::PolicyPtr &p) {
            return util::format_percent(
                core::evaluate_policy(*p, set).savings);
        };
        table.add_row(
            {entries ? std::to_string(entries) : "unbounded",
             util::format_percent(report.next_line_fraction),
             util::format_percent(report.stride_fraction),
             savings(core::make_prefetch(model, core::PrefetchVariant::A,
                                         dcls)),
             savings(core::make_prefetch(model, core::PrefetchVariant::B,
                                         dcls)),
             savings(core::make_opt_hybrid(model))});
    }
    table.print();

    std::printf(
        "the paper's observation: prefetching, normally a latency\n"
        "tool, lets sleep mode be applied aggressively without the\n"
        "wakeup penalty — pushing a realizable policy to within a few\n"
        "points of the oracle (Prefetch-B vs OPT-Hybrid).  A bigger\n"
        "stride table converts more long intervals to prefetchable.\n");
    return 0;
}
