/**
 * @file
 * Offline trace workflow: capture the timed L1D access stream of a
 * simulated benchmark into a binary trace file, then reload it and
 * rebuild the interval population from the file alone — the path a
 * user with externally captured traces (e.g. from a real simulator)
 * would take to run the limit study on their own workloads.
 *
 * Usage: trace_workflow [--benchmark gzip] [--instructions 500000]
 *                       [--trace /tmp/leakbound_demo.trace]
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "interval/collector.hpp"
#include "sim/cache.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "workload/spec_suite.hpp"

namespace {

using namespace leakbound;

/** Listener that tees every data access into a trace file. */
class TraceCapture final : public cpu::AccessListener
{
  public:
    explicit TraceCapture(trace::TraceWriter *writer) : writer_(writer) {}

    void
    on_instr_access(Cycle, Pc, const sim::HierarchyResult &) override
    {
    }

    void
    on_data_access(Cycle cycle, Pc pc, Addr addr, bool is_store,
                   const sim::HierarchyResult &) override
    {
        trace::TimedAccess rec;
        rec.cycle = cycle;
        rec.pc = pc;
        rec.addr = addr;
        rec.kind = is_store ? trace::InstrKind::Store
                            : trace::InstrKind::Load;
        writer_->write(rec);
    }

  private:
    trace::TraceWriter *writer_;
};

} // namespace

int
main(int argc, char **argv)
{
    util::Cli cli("trace_workflow", "capture and replay a timed trace");
    cli.add_flag("benchmark", "suite benchmark", "gzip");
    cli.add_flag("instructions", "dynamic instructions", "500000");
    cli.add_flag("trace", "trace file path", "/tmp/leakbound_demo.trace");
    cli.parse(argc, argv);
    const std::string path = cli.get("trace");

    // Phase 1: simulate and capture the D-side access stream.
    Cycle end_cycle = 0;
    {
        trace::TraceWriter writer(path);
        if (!writer.ok())
            util::fatal(writer.status().to_string());
        TraceCapture capture(&writer);
        sim::Hierarchy hierarchy{sim::HierarchyConfig{}};
        workload::WorkloadPtr bench =
            workload::make_benchmark(cli.get("benchmark"));
        cpu::InOrderCore core(cpu::CoreConfig{}, &hierarchy, bench.get(),
                              &capture);
        const auto stats = core.run(cli.get_u64("instructions"));
        end_cycle = stats.cycles;
        if (util::Status st = writer.flush(); !st.ok())
            util::fatal(st.to_string());
        std::printf("captured %llu data accesses over %llu cycles "
                    "into %s\n",
                    static_cast<unsigned long long>(writer.count()),
                    static_cast<unsigned long long>(end_cycle),
                    path.c_str());
    }

    // Phase 2: offline analysis from the file alone — replay the trace
    // through a fresh cache model and interval collector.
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));
    auto set = interval::IntervalHistogramSet::with_default_edges(
        core::standard_extra_edges());
    sim::Cache cache(sim::CacheConfig::alpha_l1d());
    interval::IntervalCollector collector(cache.num_frames(), &set);

    trace::TraceReader reader(path);
    if (!reader.ok())
        util::fatal(reader.status().to_string());
    trace::TimedAccess rec;
    while (reader.next(rec)) {
        const sim::AccessResult r = cache.access(rec.addr);
        collector.on_access(r.frame, rec.cycle, r.hit,
                            /*stride_predicted=*/false,
                            /*nl_covered=*/false);
    }
    collector.finalize(end_cycle);

    std::printf("replayed %llu records: %llu intervals, miss rate "
                "%.2f%%\n",
                static_cast<unsigned long long>(reader.count()),
                static_cast<unsigned long long>(set.total_intervals()),
                cache.stats().miss_rate() * 100.0);

    for (const auto &policy :
         {core::make_opt_drowsy(model), core::make_opt_hybrid(model)}) {
        const auto r = core::evaluate_policy(*policy, set);
        std::printf("  %-12s saves %s of the all-active leakage\n",
                    r.policy.c_str(),
                    util::format_percent(r.savings).c_str());
    }
    std::remove(path.c_str());
    return 0;
}
