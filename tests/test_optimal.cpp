/**
 * @file
 * Tests of the Figure 5 algorithm transcription (core/optimal.hpp) and
 * its agreement with the policy machinery, i.e. the Appendix theorem:
 * the bracketed rule (active/(0,a], drowsy/(a,b], sleep/(b,inf)) is
 * the maximal-saving assignment.
 */

#include <gtest/gtest.h>

#include "core/optimal.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "power/technology.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::Interval;
using interval::IntervalKind;

namespace {

const EnergyModel &
model70()
{
    static const EnergyModel m(power::node_params(power::TechNode::Nm70));
    return m;
}

std::vector<Interval>
population(std::uint64_t seed, std::size_t n)
{
    util::Rng rng(seed);
    std::vector<Interval> out;
    for (std::size_t i = 0; i < n; ++i) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = rng.next_below(200'000);
        iv.ends_in_reuse = true;
        out.push_back(iv);
    }
    return out;
}

} // namespace

TEST(OptimalLeakage, ClassifiesByInflectionPoints)
{
    const auto points = compute_inflection(model70());
    std::vector<Interval> ivs;
    for (Cycles len : {3ULL, 6ULL, 7ULL, 1057ULL, 1058ULL, 50'000ULL}) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = len;
        ivs.push_back(iv);
    }
    const OptimalSaving s = optimal_leakage(model70(), points, ivs);
    EXPECT_EQ(s.active, 2u);  // 3 and 6 ((0, a])
    EXPECT_EQ(s.drowsed, 2u); // 7 and 1057 ((a, b])
    EXPECT_EQ(s.slept, 2u);   // 1058 and 50000 ((b, inf))
    EXPECT_GT(s.sleep_saving, 0.0);
    EXPECT_GT(s.drowsy_saving, 0.0);
    EXPECT_NEAR(s.total_saving, s.sleep_saving + s.drowsy_saving, 1e-9);
}

TEST(OptimalLeakage, AgreesWithOptHybridPolicy)
{
    // The Fig. 5 accumulation and the OPT-Hybrid policy are two
    // implementations of the same theorem; their totals must agree.
    const auto points = compute_inflection(model70());
    const auto raw = population(123, 5000);
    const OptimalSaving fig5 = optimal_leakage(model70(), points, raw);

    const auto hybrid = make_opt_hybrid(model70());
    double active_energy = 0;
    for (const auto &iv : raw)
        active_energy += static_cast<double>(iv.length);
    const SavingsResult policy =
        evaluate_policy_raw(*hybrid, raw, 1024, 1); // baseline unused here
    const double policy_saving = active_energy - policy.total;
    EXPECT_NEAR(fig5.total_saving, policy_saving,
                1e-9 * std::max(1.0, active_energy));
}

TEST(OptimalLeakage, AppendixTheoremAgainstRandomAssignments)
{
    // Theorem 1: no per-interval mode assignment beats the bracketed
    // rule.  Try many random assignments and verify none saves more.
    const auto points = compute_inflection(model70());
    const auto raw = population(7, 300);
    const OptimalSaving best = optimal_leakage(model70(), points, raw);

    util::Rng rng(99);
    for (int trial = 0; trial < 200; ++trial) {
        double saving = 0.0;
        for (const auto &iv : raw) {
            const Energy active =
                model70().energy(Mode::Active, iv.length, iv.kind);
            const Mode mode = static_cast<Mode>(rng.next_below(3));
            if (!model70().applicable(mode, iv.length, iv.kind))
                continue; // counts as active: zero saving
            saving +=
                active - model70().energy(mode, iv.length, iv.kind);
        }
        EXPECT_LE(saving, best.total_saving + 1e-6) << "trial " << trial;
    }
}

TEST(OptimalLeakage, EmptySetSavesNothing)
{
    const auto points = compute_inflection(model70());
    const OptimalSaving s = optimal_leakage(model70(), points, {});
    EXPECT_EQ(s.total_saving, 0.0);
    EXPECT_EQ(s.slept + s.drowsed + s.active, 0u);
}

TEST(OptimalLeakage, SavingGrowsWithIntervalLength)
{
    // Longer rest -> at least as much absolute saving (monotonicity of
    // the envelope gap).
    const auto points = compute_inflection(model70());
    double prev = -1.0;
    for (Cycles len = 0; len < 300'000; len += 997) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = len;
        const OptimalSaving s = optimal_leakage(model70(), points, {iv});
        EXPECT_GE(s.total_saving, prev - 1e-9) << len;
        prev = s.total_saving;
    }
}
