file(REMOVE_RECURSE
  "CMakeFiles/fig9_prefetchability.dir/fig9_prefetchability.cpp.o"
  "CMakeFiles/fig9_prefetchability.dir/fig9_prefetchability.cpp.o.d"
  "fig9_prefetchability"
  "fig9_prefetchability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_prefetchability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
