/**
 * @file
 * Implementation of the CACTI-lite dynamic energy model.
 */

#include "power/cacti_lite.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace leakbound::power {

double
relative_read_energy(const CactiGeometry &geom, const TechnologyParams &tech)
{
    using util::fatal;
    if (geom.size_bytes == 0 || geom.line_bytes == 0 ||
        geom.associativity == 0 || geom.banks == 0) {
        fatal("cacti_lite: geometry fields must be nonzero");
    }
    if (geom.size_bytes % (static_cast<std::uint64_t>(geom.line_bytes) *
                           geom.associativity)) {
        fatal("cacti_lite: size must be divisible by line*assoc");
    }

    const double sets =
        static_cast<double>(geom.size_bytes) /
        (static_cast<double>(geom.line_bytes) * geom.associativity);
    const double rows_per_bank = sets / static_cast<double>(geom.banks);
    const double cols = static_cast<double>(geom.line_bytes) * 8.0 *
                        static_cast<double>(geom.associativity);

    // First-order CACTI decomposition.  Energies scale with Vdd^2 and
    // linearly with the capacitance of the driven structure, which
    // scales with feature size and wire length (~ sqrt of array dims).
    const double vdd2 = tech.vdd * tech.vdd;
    const double feature = tech.feature_nm / 70.0;

    const double decode = 2.0 * std::log2(rows_per_bank);
    const double wordline = 0.05 * cols;
    const double bitline = 0.02 * rows_per_bank * cols / 64.0;
    const double sense = 0.5 * cols;
    const double output = 1.0 * geom.line_bytes;

    return vdd2 * feature * (decode + wordline + bitline + sense + output);
}

Energy
scaled_refetch_energy(const CactiGeometry &geom, const TechnologyParams &tech)
{
    const CactiGeometry reference; // the paper's 2MB direct-mapped L2
    const double anchor = relative_read_energy(reference, tech);
    const double target = relative_read_energy(geom, tech);
    return tech.refetch_energy * (target / anchor);
}

} // namespace leakbound::power
