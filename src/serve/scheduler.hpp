/**
 * @file
 * Deduplicating, bounded-admission scheduler of the leakboundd daemon.
 *
 * The scheduler owns the daemon's compute: a small pool of suite
 * workers draining a FIFO of admitted run requests.  Five properties
 * the server layer builds on:
 *
 *  - **Dedup.** Requests are keyed by core::fingerprint_request — the
 *    artifact cache's config fingerprint extended with the benchmark
 *    list and payload flag.  A request whose key matches one already
 *    admitted (queued *or* running) joins that job instead of
 *    enqueueing: N identical concurrent requests cost one simulation,
 *    and every waiter receives the *same* rendered response string, so
 *    responses across a dedup group are byte-identical by
 *    construction.
 *
 *  - **Response LRU.** Completed, fully-successful responses are kept
 *    in a byte-budgeted LRU keyed by the same fingerprint: a repeat of
 *    a *past* request (not just a concurrent twin) is answered from
 *    memory — no artifact-cache probe, no re-simulation, no JSON
 *    re-render — with the exact bytes the cold render produced.
 *
 *  - **Deadline shedding.** A request may carry deadline_ms; when the
 *    scheduler's completion-time estimate (EWMA of recent job wall
 *    times scaled by the backlog) exceeds it, the request is rejected
 *    `overloaded` at admission instead of occupying a queue slot it
 *    cannot convert into a useful answer.  Dedup joins and LRU hits
 *    are never shed — they are (near-)free.
 *
 *  - **Backpressure.** Admission stays bounded regardless of
 *    deadlines: when max_queue jobs are admitted-but-not-started, a
 *    new (non-duplicate) request is rejected with
 *    ErrorKind::Overloaded immediately.
 *
 *  - **Graceful drain.** drain() stops admission (new requests get
 *    ShuttingDown), fails every queued-not-started job with a
 *    ShuttingDown response (waking its waiters and firing its
 *    callbacks), and waits for running jobs to finish — an
 *    admitted-and-started experiment always completes, even under
 *    SIGTERM, because the scheduler stamps
 *    ExperimentConfig::ignore_interrupts on every job it starts.
 *
 * Two submission APIs share all of the above: blocking submit() (tests,
 * simple callers) parks the calling thread; submit_async() (the event
 * loop) never blocks — the completion callback is invoked either
 * synchronously (LRU hit, rejection) on the submitting thread or later
 * on a scheduler worker thread, always with fully rendered response
 * bytes.
 */

#ifndef LEAKBOUND_SERVE_SCHEDULER_HPP
#define LEAKBOUND_SERVE_SCHEDULER_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/experiment.hpp"
#include "core/experiment_request.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Shape of the scheduler (the daemon's flags fill this in). */
struct SchedulerConfig
{
    /** Concurrent suite runs (worker threads). */
    unsigned workers = 1;
    /** Jobs admitted-but-not-started before Overloaded rejections. */
    std::size_t max_queue = 8;
    /** Artifact cache directory stamped on every job ("" = off). */
    std::string cache_dir;
    /** ExperimentConfig::jobs stamped on every job (0 = all threads). */
    unsigned suite_jobs = 1;
    /** Rendered-response LRU byte budget (0 = LRU off). */
    std::size_t response_cache_bytes = 64u << 20;
    /**
     * Seed for the job-cost EWMA the deadline shedder consults, in
     * milliseconds.  0 (the default) means "learn from the first
     * completed job and shed nothing until then"; tests pin it so
     * shedding is deterministic.
     */
    double assumed_job_ms = 0.0;
    /** Test seam forwarded to core::run_suite_isolated per job. */
    core::SuiteJobHook before_job;
};

/** Counters the /stats endpoint reads (monotonic unless noted). */
struct SchedulerCounters
{
    std::uint64_t submitted = 0;    ///< admission attempts
    std::uint64_t served = 0;       ///< completed-run responses delivered
    std::uint64_t dedup_hits = 0;   ///< joined an in-flight twin
    std::uint64_t response_lru_hits = 0; ///< answered from the response LRU
    std::uint64_t response_lru_evictions = 0; ///< entries pushed out by budget
    std::uint64_t cache_hits = 0;   ///< benchmarks loaded from the cache
    std::uint64_t analytic_runs = 0; ///< benchmarks the fast path skipped
    std::uint64_t sim_runs = 0;     ///< benchmarks simulated end to end
    /** sim_runs by effective decision-logic lane (sim_path_effective). */
    std::uint64_t kernel_path_runs = 0;
    std::uint64_t reference_path_runs = 0;
    std::uint64_t mixed_path_runs = 0;
    std::uint64_t simulations = 0;  ///< suite runs actually executed
    std::uint64_t rejected_overloaded = 0; ///< queue-bound rejections
    std::uint64_t rejected_deadline = 0;   ///< deadline-shed rejections
    std::uint64_t rejected_shutting_down = 0;
    std::uint64_t locks_broken = 0; ///< stale cache locks broken mid-suite
    std::uint64_t queue_depth = 0;  ///< instantaneous: admitted, waiting
    std::uint64_t running = 0;      ///< instantaneous: executing now
    std::uint64_t response_lru_entries = 0; ///< instantaneous: cached responses
    std::uint64_t response_lru_bytes = 0;   ///< instantaneous: cached bytes
};

/**
 * The dedup/backpressure scheduler.  Thread-safe; one instance per
 * daemon.  The destructor drains.
 */
class Scheduler
{
  public:
    /**
     * Delivery of one submission's rendered response bytes (ok or
     * error frame — always renderable as-is).  May run on the
     * submitting thread (immediate outcomes) or on a scheduler worker
     * (job completions); never with the scheduler mutex held, so a
     * callback may re-enter the scheduler.
     */
    using Completion =
        std::function<void(std::shared_ptr<const std::string>)>;

    explicit Scheduler(SchedulerConfig config);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /**
     * Admit @p request and block until its response is rendered.
     * Returns the shared response string (identical object for every
     * member of a dedup group), or Overloaded / ShuttingDown when the
     * request was never admitted.
     */
    util::Expected<std::shared_ptr<const std::string>>
    submit(core::ExperimentRequest request);

    /**
     * Admit @p request without blocking; @p done receives the rendered
     * response bytes exactly once (rejections arrive as rendered error
     * frames).  The event loop's submission path.
     */
    void submit_async(core::ExperimentRequest request, Completion done);

    /**
     * Stop admitting, fail queued jobs with ShuttingDown, wait for
     * running jobs and join the workers.  Idempotent.
     */
    void drain();

    /** Snapshot the counters (consistent under one lock). */
    SchedulerCounters counters() const;

  private:
    struct Job
    {
        core::ExperimentRequest request;
        std::uint64_t fingerprint = 0;
        bool started = false;
        bool done = false;
        /** True when drain() failed the job before it ran; its
         *  waiters are counted as rejected_shutting_down, not served. */
        bool failed_by_drain = false;
        /** Set exactly once, before done; shared by all waiters. */
        std::shared_ptr<const std::string> response;
        /** Async waiters, fired exactly once when the job completes. */
        std::vector<Completion> callbacks;
    };

    /** What execute() hands back: bytes + whether the LRU may keep them. */
    struct Rendered
    {
        std::shared_ptr<const std::string> response;
        bool cacheable = false;
    };

    /** One admission decision, made under the lock. */
    struct Admission
    {
        /** Set for LRU hits: answer now, no job involved. */
        std::shared_ptr<const std::string> immediate;
        /** Set for rejections (Overloaded / ShuttingDown). */
        util::Status rejected;
        /** Set when admitted: the job to wait on / register with. */
        std::shared_ptr<Job> job;
    };

    Admission admit(core::ExperimentRequest &&request,
                    std::unique_lock<std::mutex> &lock);
    void worker_loop();
    Rendered execute(const core::ExperimentRequest &request,
                     std::uint64_t fingerprint);
    /** Account a completed job and fire callbacks (lock held on entry,
     *  released around the callbacks, re-held on exit). */
    void finish_job(const std::shared_ptr<Job> &job, Rendered rendered,
                    std::unique_lock<std::mutex> &lock);
    void lru_insert(std::uint64_t fingerprint,
                    std::shared_ptr<const std::string> response);
    std::shared_ptr<const std::string> lru_lookup(std::uint64_t fingerprint);

    SchedulerConfig config_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool draining_ = false;
    std::deque<std::shared_ptr<Job>> queue_;
    /** Every admitted, not-yet-done job by dedup key. */
    std::unordered_map<std::uint64_t, std::shared_ptr<Job>> inflight_;
    /** Rendered-response LRU: front = most recent.  Bytes accounted
     *  as response size + a fixed per-entry overhead. */
    struct LruEntry
    {
        std::uint64_t fingerprint;
        std::shared_ptr<const std::string> response;
    };
    std::list<LruEntry> lru_list_;
    std::unordered_map<std::uint64_t, std::list<LruEntry>::iterator>
        lru_index_;
    std::size_t lru_bytes_ = 0;
    /** EWMA of job wall time, ms (0 until the first job completes). */
    double job_ms_ewma_ = 0.0;
    SchedulerCounters counters_;
    std::vector<std::thread> workers_;
};

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_SCHEDULER_HPP
