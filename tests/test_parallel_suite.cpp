/**
 * @file
 * Tests of the parallel suite runner: util::ThreadPool semantics
 * (ordering, exception propagation, move-only tasks, queue draining)
 * and the serial/parallel equivalence contract of core::run_suite —
 * jobs=1 and jobs=4 must produce identical histograms, savings, and
 * prefetchability annotations for the full suite.
 *
 * This file carries the `sanitize` CTest label: configure with
 * -DLEAKBOUND_SANITIZE=thread and run `ctest -L sanitize` to check the
 * runner under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "prefetch/prefetchability.hpp"
#include "util/thread_pool.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;
using leakbound::util::ThreadPool;

TEST(ThreadPool, RunsEveryTaskAndPreservesFutureOrder)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);

    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    EXPECT_EQ(pool.size(), ThreadPool::default_jobs());
    EXPECT_EQ(ThreadPool::effective_jobs(0), ThreadPool::default_jobs());
    EXPECT_EQ(ThreadPool::effective_jobs(7), 7u);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("worker failure"); });
    auto good = pool.submit([] { return 42; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    EXPECT_EQ(good.get(), 42); // one failure doesn't poison the pool
}

TEST(ThreadPool, AcceptsMoveOnlyTasks)
{
    ThreadPool pool(2);
    auto payload = std::make_unique<int>(7);
    auto future = pool.submit(
        [p = std::move(payload)]() mutable { return *p + 1; });
    EXPECT_EQ(future.get(), 8);
}

TEST(ThreadPool, DestructorDrainsTheQueue)
{
    std::atomic<int> completed{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&completed] {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                ++completed;
            });
        }
    } // ~ThreadPool must run everything before joining
    EXPECT_EQ(completed.load(), 32);
}

namespace {

ExperimentConfig
suite_config(unsigned jobs)
{
    ExperimentConfig config;
    config.instructions = 60'000;
    config.extra_edges = standard_extra_edges();
    config.jobs = jobs;
    return config;
}

const EnergyModel &
model70()
{
    static const EnergyModel m(power::node_params(power::TechNode::Nm70));
    return m;
}

/** Flatten a histogram set into a comparable cell list. */
std::vector<std::tuple<int, int, bool, Cycles, Cycles, std::uint64_t,
                       std::uint64_t>>
cells(const interval::IntervalHistogramSet &set)
{
    std::vector<std::tuple<int, int, bool, Cycles, Cycles, std::uint64_t,
                           std::uint64_t>>
        out;
    set.for_each_cell([&](const interval::CellRef &cell) {
        out.emplace_back(static_cast<int>(cell.kind),
                         static_cast<int>(cell.pf), cell.ends_in_reuse,
                         cell.lower, cell.upper, cell.count, cell.sum);
    });
    return out;
}

/** Assert two observations are bit-identical. */
void
expect_identical(const CacheObservation &a, const CacheObservation &b,
                 const std::string &what)
{
    EXPECT_EQ(a.intervals.num_frames(), b.intervals.num_frames()) << what;
    EXPECT_EQ(a.intervals.total_cycles(), b.intervals.total_cycles())
        << what;
    EXPECT_EQ(a.intervals.edges(), b.intervals.edges()) << what;
    EXPECT_EQ(cells(a.intervals), cells(b.intervals)) << what;
    EXPECT_EQ(a.stats.accesses, b.stats.accesses) << what;
    EXPECT_EQ(a.stats.misses, b.stats.misses) << what;
}

} // namespace

TEST(ParallelSuite, SerialAndParallelRunsAreIdentical)
{
    const auto &names = workload::suite_names();
    const auto serial = run_suite(names, suite_config(1));
    const auto parallel = run_suite(names, suite_config(4));

    ASSERT_EQ(serial.size(), names.size());
    ASSERT_EQ(parallel.size(), names.size());

    const auto points = compute_inflection(model70());
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &s = serial[i];
        const auto &p = parallel[i];
        // Deterministic merge: results come back in suite order.
        EXPECT_EQ(s.workload, names[i]);
        EXPECT_EQ(p.workload, names[i]);
        EXPECT_EQ(s.core.instructions, p.core.instructions);
        EXPECT_EQ(s.core.cycles, p.core.cycles);

        // Histograms are cell-for-cell identical.
        expect_identical(s.icache, p.icache, names[i] + " icache");
        expect_identical(s.dcache, p.dcache, names[i] + " dcache");

        // Savings are bit-identical for every stock scheme (identical
        // histograms + deterministic evaluation order).
        for (const auto &policy :
             {make_opt_hybrid(model70()), make_opt_drowsy(model70()),
              make_opt_sleep(model70(), 10'000),
              make_decay_sleep(model70(), 10'000),
              make_prefetch(model70(), PrefetchVariant::B,
                            {interval::PrefetchClass::NextLine,
                             interval::PrefetchClass::Stride})}) {
            const SavingsResult rs =
                evaluate_policy(*policy, s.dcache.intervals);
            const SavingsResult rp =
                evaluate_policy(*policy, p.dcache.intervals);
            EXPECT_EQ(rs.total, rp.total) << policy->name();
            EXPECT_EQ(rs.savings, rp.savings) << policy->name();
            EXPECT_EQ(rs.induced_misses, rp.induced_misses)
                << policy->name();
        }

        // Prefetchability annotations survive the parallel path.
        for (const auto *side : {"icache", "dcache"}) {
            const auto &si = side == std::string("icache")
                                 ? s.icache.intervals
                                 : s.dcache.intervals;
            const auto &pi = side == std::string("icache")
                                 ? p.icache.intervals
                                 : p.dcache.intervals;
            const auto rs = prefetch::analyze_prefetchability(si, points);
            const auto rp = prefetch::analyze_prefetchability(pi, points);
            EXPECT_EQ(rs.next_line_fraction, rp.next_line_fraction)
                << names[i] << ' ' << side;
            EXPECT_EQ(rs.stride_fraction, rp.stride_fraction)
                << names[i] << ' ' << side;
            EXPECT_EQ(rs.total_fraction, rp.total_fraction)
                << names[i] << ' ' << side;
        }
    }
}

TEST(ParallelSuite, OversubscribedPoolStillMatchesSerial)
{
    // More workers than benchmarks (and than cores): the pool clamps to
    // the benchmark count and results stay identical.
    const std::vector<std::string> names = {"gzip", "ammp"};
    auto config = suite_config(1);
    config.instructions = 30'000;
    const auto serial = run_suite(names, config);
    config.jobs = 16;
    const auto parallel = run_suite(names, config);

    ASSERT_EQ(parallel.size(), 2u);
    for (std::size_t i = 0; i < names.size(); ++i) {
        EXPECT_EQ(parallel[i].workload, names[i]);
        EXPECT_EQ(cells(serial[i].dcache.intervals),
                  cells(parallel[i].dcache.intervals));
        EXPECT_EQ(cells(serial[i].icache.intervals),
                  cells(parallel[i].icache.intervals));
    }
}

TEST(ParallelMapOrdered, PreservesIndexOrderAndPropagatesExceptions)
{
    const auto squares = util::parallel_map_ordered(
        64, 4, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 64u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);

    EXPECT_THROW(util::parallel_map_ordered(8, 4,
                                            [](std::size_t i) -> int {
                                                if (i == 5)
                                                    throw std::runtime_error(
                                                        "worker failure");
                                                return 0;
                                            }),
                 std::runtime_error);

    // Serial path (jobs=1) gives the same answers on the caller.
    const auto serial = util::parallel_map_ordered(
        64, 1, [](std::size_t i) { return i * i; });
    EXPECT_EQ(serial, squares);
}

TEST(PolicyGrid, PooledEvaluationMatchesSerialBitForBit)
{
    // A small suite provides real populations; the pooled policy grid
    // must reproduce the serial double loop exactly for every jobs
    // value (this test carries the `sanitize` label: run it under
    // -DLEAKBOUND_SANITIZE=thread to check the shared read-only sets).
    const std::vector<std::string> names = {"gzip", "ammp", "mesa"};
    auto config = suite_config(2);
    config.instructions = 40'000;
    const auto runs = run_suite(names, config);

    std::vector<PolicyPtr> owned;
    owned.push_back(make_opt_drowsy(model70()));
    owned.push_back(make_opt_sleep(model70(), 10'000));
    owned.push_back(make_decay_sleep(model70(), 10'000));
    owned.push_back(make_opt_hybrid(model70()));
    std::vector<const Policy *> policies;
    for (const auto &p : owned)
        policies.push_back(p.get());

    std::vector<const interval::IntervalHistogramSet *> sets;
    for (const auto &run : runs) {
        sets.push_back(&run.icache.intervals);
        sets.push_back(&run.dcache.intervals);
    }

    const auto serial = evaluate_policy_grid(policies, sets, 1);
    ASSERT_EQ(serial.size(), policies.size() * sets.size());

    // The grid is row-major over (policy, set) and identical to
    // evaluating each cell directly.
    for (std::size_t p = 0; p < policies.size(); ++p) {
        for (std::size_t s = 0; s < sets.size(); ++s) {
            const auto direct = evaluate_policy(*policies[p], *sets[s]);
            const auto &cell = serial[p * sets.size() + s];
            EXPECT_EQ(cell.policy, direct.policy);
            EXPECT_EQ(cell.total, direct.total);
            EXPECT_EQ(cell.savings, direct.savings);
        }
    }

    for (unsigned jobs : {2u, 4u, 16u}) {
        const auto pooled = evaluate_policy_grid(policies, sets, jobs);
        ASSERT_EQ(pooled.size(), serial.size()) << "jobs=" << jobs;
        for (std::size_t i = 0; i < serial.size(); ++i) {
            EXPECT_EQ(pooled[i].policy, serial[i].policy) << i;
            EXPECT_EQ(pooled[i].total, serial[i].total) << i;
            EXPECT_EQ(pooled[i].savings, serial[i].savings) << i;
            EXPECT_EQ(pooled[i].induced_misses, serial[i].induced_misses)
                << i;
            EXPECT_EQ(pooled[i].sleep_cycles, serial[i].sleep_cycles) << i;
        }
    }
}

TEST(ParallelSuite, JobsZeroUsesHardwareConcurrencyAndStaysCorrect)
{
    const std::vector<std::string> names = {"gzip"};
    auto config = suite_config(0);
    config.instructions = 20'000;
    const auto runs = run_suite(names, config);
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_EQ(runs[0].workload, "gzip");
    EXPECT_GT(runs[0].core.cycles, 0u);
    EXPECT_GT(runs[0].wall_seconds, 0.0);
}
