/**
 * @file
 * HotLeakage-style subthreshold leakage estimator.
 *
 * The paper sources absolute per-line leakage powers from the
 * HotLeakage tool [18].  The limit math only needs leakage *ratios*
 * between modes (which are pinned in power/technology.cpp), but to let
 * users define new technology nodes — the generalized model of paper
 * Section 3.3 — we provide a compact BSIM4-flavoured subthreshold
 * current model:
 *
 *   I_sub = mu0 Cox (W/L) vT^2 e^1.8 exp((Vgs - Vth)/(n vT))
 *                 (1 - exp(-Vds/vT))
 *
 * evaluated with Vgs = 0 (the off transistor) and Vds = Vdd, so that
 * P_leak = Vdd * I_sub * (transistors per line).  Constants are folded
 * into a single technology-dependent prefactor; what matters for the
 * limit study is the exponential Vth dependence and the linear Vdd
 * dependence, which this model reproduces.
 */

#ifndef LEAKBOUND_POWER_HOTLEAKAGE_HPP
#define LEAKBOUND_POWER_HOTLEAKAGE_HPP

#include <cstdint>

#include "power/technology.hpp"

namespace leakbound::power {

/** Physical inputs for the subthreshold leakage estimate. */
struct LeakageInputs
{
    double vdd = 0.9;           ///< supply voltage (V)
    double vth = 0.1902;        ///< threshold voltage (V)
    double temperature_k = 353; ///< die temperature (K), 80C default
    double subthreshold_swing_n = 1.5; ///< body-effect coefficient n
    std::uint64_t transistors_per_line = 64 * 8 * 6; ///< 6T cells per 64B line
    double width_factor = 1.0;  ///< effective W/L aggregate multiplier
};

/** Thermal voltage kT/q in volts at temperature @p kelvin. */
double thermal_voltage(double kelvin);

/**
 * Subthreshold leakage current of one off transistor, in arbitrary
 * units proportional to amperes (the prefactor is folded).
 */
double subthreshold_current(const LeakageInputs &in);

/**
 * Leakage power of one cache line in the same arbitrary units times
 * volts.  Ratios between calls with different inputs are meaningful;
 * absolute values are not calibrated to a real process.
 */
double line_leakage_power(const LeakageInputs &in);

/**
 * Predict the drowsy/active leakage ratio when the supply voltage is
 * lowered to @p vdd_low: leakage drops roughly linearly with Vds plus a
 * DIBL-driven Vth increase.  @p dibl_coeff models the threshold rise.
 */
double drowsy_ratio(const LeakageInputs &in, double vdd_low,
                    double dibl_coeff = 0.15);

/**
 * Build a full TechnologyParams for a user-defined node: leakage ratios
 * from this model, refetch energy supplied by the caller (e.g. from
 * cacti_lite), Table-1-style timings.
 */
TechnologyParams derive_technology(const std::string &name,
                                   double feature_nm,
                                   const LeakageInputs &in,
                                   double vdd_low,
                                   Energy refetch_energy);

} // namespace leakbound::power

#endif // LEAKBOUND_POWER_HOTLEAKAGE_HPP
