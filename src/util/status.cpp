/**
 * @file
 * Implementation of the typed error value.
 */

#include "util/status.hpp"

namespace leakbound::util {

const char *
error_kind_name(ErrorKind kind)
{
    switch (kind) {
      case ErrorKind::None: return "ok";
      case ErrorKind::IoError: return "io_error";
      case ErrorKind::NotFound: return "not_found";
      case ErrorKind::CorruptData: return "corrupt_data";
      case ErrorKind::LockTimeout: return "lock_timeout";
      case ErrorKind::Interrupted: return "interrupted";
      case ErrorKind::InvalidArgument: return "invalid_argument";
      case ErrorKind::FaultInjected: return "fault_injected";
      case ErrorKind::Internal: return "internal";
    }
    return "unknown";
}

std::string
Status::to_string() const
{
    if (ok())
        return "ok";
    std::string out = error_kind_name(kind_);
    if (!message_.empty()) {
        out += ": ";
        out += message_;
    }
    return out;
}

} // namespace leakbound::util
