file(REMOVE_RECURSE
  "CMakeFiles/ablation_l2_latency.dir/ablation_l2_latency.cpp.o"
  "CMakeFiles/ablation_l2_latency.dir/ablation_l2_latency.cpp.o.d"
  "ablation_l2_latency"
  "ablation_l2_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_l2_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
