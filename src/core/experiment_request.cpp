/**
 * @file
 * Implementation of serve-request decoding and fingerprinting.
 */

#include "core/experiment_request.hpp"

#include <algorithm>

#include "core/artifact_cache.hpp"
#include "util/fingerprint.hpp"
#include "workload/spec_suite.hpp"

namespace leakbound::core {

namespace {

using util::ErrorKind;
using util::JsonValue;
using util::Status;

Status
bad_request(const std::string &what)
{
    return Status(ErrorKind::InvalidArgument, what);
}

/** Floor below which a simulation tells you nothing about a policy. */
constexpr std::uint64_t kMinRequestInstructions = 1'000;

} // namespace

util::Expected<ExperimentRequest>
decode_experiment_request(const util::JsonValue &body,
                          std::uint64_t max_instructions)
{
    if (!body.is_object())
        return bad_request("request body must be a JSON object");

    ExperimentRequest request;
    bool standard_edges = true;
    bool saw_benchmarks = false;

    for (const auto &[key, value] : body.object()) {
        if (key == "type") {
            // The server dispatched on this before calling us.
            continue;
        }
        if (key == "benchmarks") {
            if (!value.is_array() || value.array().empty())
                return bad_request(
                    "'benchmarks' must be a non-empty array");
            for (const JsonValue &name : value.array()) {
                if (!name.is_string())
                    return bad_request("'benchmarks' entries must be "
                                       "strings");
                if (!workload::is_benchmark(name.string_value()))
                    return bad_request("unknown benchmark: '" +
                                       name.string_value() + "'");
                request.benchmarks.push_back(name.string_value());
            }
            saw_benchmarks = true;
            continue;
        }
        if (key == "instructions") {
            if (!value.is_u64())
                return bad_request("'instructions' must be a "
                                   "non-negative integer");
            const std::uint64_t n = value.u64_value();
            if (n < kMinRequestInstructions || n > max_instructions) {
                return bad_request(
                    "'instructions' out of range [" +
                    std::to_string(kMinRequestInstructions) + ", " +
                    std::to_string(max_instructions) + "]: " +
                    std::to_string(n));
            }
            request.config.instructions = n;
            continue;
        }
        if (key == "nl_lead_time") {
            if (!value.is_u64())
                return bad_request("'nl_lead_time' must be a "
                                   "non-negative integer");
            request.config.nl_lead_time = value.u64_value();
            continue;
        }
        if (key == "collect_l2") {
            if (!value.is_bool())
                return bad_request("'collect_l2' must be a bool");
            request.config.collect_l2 = value.bool_value();
            continue;
        }
        if (key == "standard_edges") {
            if (!value.is_bool())
                return bad_request("'standard_edges' must be a bool");
            standard_edges = value.bool_value();
            continue;
        }
        if (key == "extra_edges") {
            if (!value.is_array())
                return bad_request("'extra_edges' must be an array");
            for (const JsonValue &edge : value.array()) {
                if (!edge.is_u64())
                    return bad_request("'extra_edges' entries must be "
                                       "non-negative integers");
                request.config.extra_edges.push_back(edge.u64_value());
            }
            continue;
        }
        if (key == "payload") {
            if (!value.is_bool())
                return bad_request("'payload' must be a bool");
            request.want_payload = value.bool_value();
            continue;
        }
        if (key == "engine") {
            if (!value.is_string())
                return bad_request("'engine' must be a string");
            const auto engine = parse_engine(value.string_value());
            if (!engine) {
                return bad_request("'engine' must be auto, analytic or "
                                   "sim: '" +
                                   value.string_value() + "'");
            }
            request.config.engine = *engine;
            continue;
        }
        if (key == "core_count") {
            if (!value.is_u64())
                return bad_request("'core_count' must be a "
                                   "non-negative integer");
            const std::uint64_t n = value.u64_value();
            if (n < 1 || n > kMaxCoreCount) {
                return bad_request("'core_count' out of range [1, " +
                                   std::to_string(kMaxCoreCount) +
                                   "]: " + std::to_string(n));
            }
            request.config.core_count = static_cast<std::uint32_t>(n);
            continue;
        }
        if (key == "workload_mix") {
            if (!value.is_array() || value.array().empty())
                return bad_request(
                    "'workload_mix' must be a non-empty array");
            for (const JsonValue &name : value.array()) {
                if (!name.is_string())
                    return bad_request("'workload_mix' entries must be "
                                       "strings");
                if (!workload::is_benchmark(name.string_value()))
                    return bad_request("unknown benchmark in "
                                       "'workload_mix': '" +
                                       name.string_value() + "'");
                request.config.workload_mix.push_back(
                    name.string_value());
            }
            continue;
        }
        if (key == "deadline_ms") {
            if (!value.is_u64())
                return bad_request("'deadline_ms' must be a "
                                   "non-negative integer");
            request.deadline_ms = value.u64_value();
            continue;
        }
        if (key == "jobs" || key == "cache_dir" || key == "keep_raw") {
            return bad_request("'" + key +
                               "' is server-owned and cannot be set "
                               "by a request");
        }
        return bad_request("unknown request key: '" + key + "'");
    }

    if (!saw_benchmarks)
        return bad_request("request is missing 'benchmarks'");

    // Cross-field multicore checks (mix length vs core_count), typed
    // just like the per-key ones above.
    if (util::Status multi = request.config.validate(); !multi.ok())
        return bad_request(multi.message());
    // The instruction budget is per core; keep a multicore request's
    // total simulated work under the same admission ceiling a
    // single-core request gets.
    if (request.config.core_count > 1 &&
        request.config.instructions >
            max_instructions / request.config.core_count) {
        return bad_request(
            "'instructions' x 'core_count' exceeds the per-request "
            "budget of " + std::to_string(max_instructions));
    }

    if (standard_edges) {
        // Union in every stock policy threshold, exactly like the
        // bench binaries, so the result serves any standard evaluation
        // and — crucially — shares cache entries with them.
        std::vector<Cycles> edges = standard_extra_edges();
        edges.insert(edges.end(), request.config.extra_edges.begin(),
                     request.config.extra_edges.end());
        request.config.extra_edges = std::move(edges);
    }
    return request;
}

std::uint64_t
fingerprint_request(const ExperimentRequest &request)
{
    util::Fingerprint fp;
    fp.mix_u64(fingerprint_config(request.config));
    fp.mix_u64(request.benchmarks.size());
    for (const std::string &name : request.benchmarks)
        fp.mix_string(name);
    fp.mix_u64(request.want_payload ? 1 : 0);
    return fp.digest();
}

unsigned
route_shard(std::uint64_t fingerprint, unsigned shard_count)
{
    if (shard_count <= 1)
        return 0;
    // SplitMix64 finalizer before the reduction: Fingerprint digests
    // are already mixed, but the home-shard choice must stay uniform
    // under any future fingerprint scheme, and three multiplies are
    // free next to a network round trip.
    std::uint64_t x = fingerprint + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<unsigned>(x % shard_count);
}

} // namespace leakbound::core
