file(REMOVE_RECURSE
  "CMakeFiles/table3_prefetch_methods.dir/table3_prefetch_methods.cpp.o"
  "CMakeFiles/table3_prefetch_methods.dir/table3_prefetch_methods.cpp.o.d"
  "table3_prefetch_methods"
  "table3_prefetch_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prefetch_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
