/**
 * @file
 * Implementation of the socket wrapper.
 */

#include "util/net.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/fault_injection.hpp"

namespace leakbound::util::net {

namespace {

Status
errno_status(const std::string &what)
{
    return Status(ErrorKind::IoError,
                  what + ": " + std::strerror(errno));
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdown_read()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

Expected<Socket>
listen_unix(const std::string &path, int backlog)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        return Status(ErrorKind::InvalidArgument,
                      "socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create unix socket");
    ::unlink(path.c_str()); // stale socket file from a dead daemon
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return errno_status("cannot bind " + path);
    if (::listen(sock.fd(), backlog) != 0)
        return errno_status("cannot listen on " + path);
    return sock;
}

Expected<Socket>
listen_tcp(const std::string &host, std::uint16_t port, int backlog)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status(ErrorKind::InvalidArgument,
                      "not a numeric IPv4 address: " + host);
    }

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create tcp socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return errno_status("cannot bind " + host + ":" +
                            std::to_string(port));
    }
    if (::listen(sock.fd(), backlog) != 0)
        return errno_status("cannot listen on " + host);
    return sock;
}

Expected<Socket>
connect_unix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        return Status(ErrorKind::InvalidArgument,
                      "socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create unix socket");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return errno_status("cannot connect to " + path);
    return sock;
}

Expected<Socket>
connect_tcp(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status(ErrorKind::InvalidArgument,
                      "not a numeric IPv4 address: " + host);
    }

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create tcp socket");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        return errno_status("cannot connect to " + host + ":" +
                            std::to_string(port));
    }
    return sock;
}

std::uint16_t
local_port(const Socket &socket)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
wait_readable(const Socket &socket, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = socket.fd();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0)
        return errno == EINTR ? 0 : -1;
    return rc > 0 ? 1 : 0;
}

int
wait_any_readable(const std::vector<const Socket *> &sockets,
                  int timeout_ms)
{
    std::vector<pollfd> pfds;
    pfds.reserve(sockets.size());
    for (const Socket *socket : sockets)
        pfds.push_back(pollfd{socket->fd(), POLLIN, 0});
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0)
        return errno == EINTR ? -1 : -2;
    if (rc == 0)
        return -1;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0)
            return static_cast<int>(i);
    }
    return -1;
}

Expected<Socket>
accept_connection(const Socket &listener)
{
    if (fault::should_fail(fault::Site::NetAccept))
        return Status(ErrorKind::FaultInjected, "injected accept fault");
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        return errno_status("accept failed");
    }
}

Status
send_all(const Socket &socket, const void *data, std::size_t size)
{
    const char *bytes = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        if (fault::should_fail(fault::Site::NetWrite)) {
            return Status(ErrorKind::FaultInjected,
                          "injected socket write fault");
        }
        const ssize_t n =
            ::send(socket.fd(), bytes + sent, size - sent, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
            return Status(ErrorKind::ConnectionClosed,
                          "peer closed the connection mid-write");
        }
        return errno_status("socket write failed");
    }
    return Status();
}

Status
recv_exact(const Socket &socket, std::size_t size, std::string &out)
{
    out.clear();
    out.reserve(size);
    char buf[1 << 16];
    while (out.size() < size) {
        if (fault::should_fail(fault::Site::NetRead)) {
            return Status(ErrorKind::FaultInjected,
                          "injected socket read fault");
        }
        const std::size_t want =
            std::min(size - out.size(), sizeof(buf));
        const ssize_t n = ::recv(socket.fd(), buf, want, 0);
        if (n > 0) {
            out.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n == 0) {
            if (out.empty()) {
                return Status(ErrorKind::ConnectionClosed,
                              "peer closed the connection");
            }
            return Status(ErrorKind::CorruptData,
                          "truncated read: got " +
                              std::to_string(out.size()) + " of " +
                              std::to_string(size) + " bytes");
        }
        if (errno == ECONNRESET && out.empty()) {
            return Status(ErrorKind::ConnectionClosed,
                          "connection reset by peer");
        }
        return errno_status("socket read failed");
    }
    return Status();
}

} // namespace leakbound::util::net
