/**
 * @file
 * Implementation of the fixed-size worker pool.
 */

#include "util/thread_pool.hpp"

namespace leakbound::util {

ThreadPool::ThreadPool(unsigned threads)
{
    const unsigned n = effective_jobs(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::worker_loop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and nothing left to drain
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the packaged_task's future
    }
}

unsigned
ThreadPool::effective_jobs(unsigned requested)
{
    return requested == 0 ? default_jobs() : requested;
}

unsigned
ThreadPool::default_jobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

} // namespace leakbound::util
