/**
 * @file
 * Implementation of the streaming interval collector.
 */

#include "interval/collector.hpp"

#include "util/logging.hpp"

namespace leakbound::interval {

IntervalCollector::IntervalCollector(std::uint64_t num_frames,
                                     IntervalHistogramSet *sink,
                                     bool keep_raw)
    : frames_(num_frames), sink_(sink), keep_raw_(keep_raw)
{
    LEAKBOUND_ASSERT(sink_ != nullptr, "collector needs a sink");
    LEAKBOUND_ASSERT(num_frames > 0, "collector needs frames");
}

void
IntervalCollector::emit(const Interval &iv)
{
    sink_->add(iv);
    if (keep_raw_)
        raw_.push_back(iv);
}

void
IntervalCollector::append_state(std::vector<std::uint64_t> &out,
                                Cycle now) const
{
    for (const FrameState &fs : frames_) {
        out.push_back(fs.touched ? 1 : 0);
        out.push_back(fs.touched ? now - fs.last_access : 0);
    }
}

void
IntervalCollector::warp(Cycles delta)
{
    LEAKBOUND_ASSERT(!finalized_, "warp after finalize()");
    for (FrameState &fs : frames_)
        if (fs.touched)
            fs.last_access += delta;
}

void
IntervalCollector::finalize(Cycle end_cycle)
{
    LEAKBOUND_ASSERT(!finalized_, "finalize() called twice");
    finalized_ = true;
    for (const FrameState &fs : frames_) {
        Interval iv;
        iv.pf = PrefetchClass::NonPrefetchable;
        iv.ends_in_reuse = false;
        if (!fs.touched) {
            iv.kind = IntervalKind::Untouched;
            iv.length = end_cycle;
        } else {
            LEAKBOUND_ASSERT(end_cycle >= fs.last_access,
                             "end_cycle before last access");
            iv.kind = IntervalKind::Trailing;
            iv.length = end_cycle - fs.last_access;
        }
        emit(iv);
    }
    sink_->set_run_info(frames_.size(), end_cycle);
}

} // namespace leakbound::interval
