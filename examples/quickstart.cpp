/**
 * @file
 * Quickstart: simulate one benchmark, compute the inflection points for
 * 70nm, and print the leakage savings limit of every scheme the paper
 * compares — the whole library surface in ~60 lines.
 *
 * Usage: quickstart [--benchmark gzip] [--instructions 4000000]
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/generalized_model.hpp"
#include "core/policies.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;

    util::Cli cli("quickstart", "leakbound end-to-end walkthrough");
    cli.add_flag("benchmark", "suite benchmark to simulate", "gzip");
    cli.add_flag("instructions", "dynamic instructions to run", "4000000");
    cli.parse(argc, argv);

    // 1. The circuit side: a technology node and its inflection points.
    const power::TechnologyParams &tech =
        power::node_params(power::TechNode::Nm70);
    const core::EnergyModel model(tech);
    const core::InflectionPoints points = core::compute_inflection(model);
    std::printf("technology %s: active-drowsy point a=%llu cycles, "
                "drowsy-sleep point b=%llu cycles\n",
                tech.name.c_str(),
                static_cast<unsigned long long>(points.active_drowsy),
                static_cast<unsigned long long>(points.drowsy_sleep));

    // 2. The architecture side: simulate a benchmark and collect the
    //    per-frame access intervals of both L1 caches.
    core::ExperimentConfig config;
    config.instructions = cli.get_u64("instructions");
    config.extra_edges = core::standard_extra_edges();
    workload::WorkloadPtr bench =
        workload::make_benchmark(cli.get("benchmark"));
    core::ExperimentResult run = core::run_experiment(*bench, config);

    std::printf("\n%s: %llu instrs in %llu cycles (ipc %.2f); "
                "l1i miss %.2f%%, l1d miss %.2f%%\n",
                run.workload.c_str(),
                static_cast<unsigned long long>(run.core.instructions),
                static_cast<unsigned long long>(run.core.cycles),
                run.core.ipc(), run.icache.stats.miss_rate() * 100.0,
                run.dcache.stats.miss_rate() * 100.0);

    // 3. The limit study: evaluate every scheme on both caches.
    util::Table table("leakage power savings vs always-active, " +
                      tech.name);
    table.set_header({"scheme", "I-cache", "D-cache", "oracle?"});
    auto add_row = [&](const core::PolicyPtr &policy) {
        const auto icache =
            core::evaluate_policy(*policy, run.icache.intervals);
        const auto dcache =
            core::evaluate_policy(*policy, run.dcache.intervals);
        table.add_row({policy->name(),
                       util::format_percent(icache.savings),
                       util::format_percent(dcache.savings),
                       policy->is_oracle() ? "yes" : "no"});
    };
    add_row(core::make_opt_drowsy(model));
    add_row(core::make_decay_sleep(model, 10'000));
    add_row(core::make_opt_sleep(model, 10'000));
    add_row(core::make_opt_sleep(model, points.drowsy_sleep));
    add_row(core::make_opt_hybrid(model));
    add_row(core::make_prefetch(model, core::PrefetchVariant::A,
                                {interval::PrefetchClass::NextLine,
                                 interval::PrefetchClass::Stride}));
    add_row(core::make_prefetch(model, core::PrefetchVariant::B,
                                {interval::PrefetchClass::NextLine,
                                 interval::PrefetchClass::Stride}));
    std::printf("\n");
    table.print();

    std::printf("the OPT-Hybrid rows are the paper's headline bound "
                "(96.4%% I / 99.1%% D at 70nm on SPEC2000).\n");
    return 0;
}
