/**
 * @file
 * Shared plumbing for the bench binaries: run the six-benchmark suite
 * once with edges covering every stock policy, and evaluate schemes
 * per cache with the paper's averaging (energy-pooled across
 * benchmarks).
 *
 * Every bench binary is self-contained: run it with no arguments and
 * it prints the table/figure it reproduces next to the paper's
 * reference numbers.  --instructions scales simulation length.
 */

#ifndef LEAKBOUND_BENCH_BENCH_COMMON_HPP
#define LEAKBOUND_BENCH_BENCH_COMMON_HPP

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

namespace leakbound::bench {

/** Default per-benchmark instruction budget for bench runs. */
inline constexpr std::uint64_t kDefaultInstructions = 4'000'000;

/** Build the standard CLI for a bench binary. */
inline util::Cli
make_cli(const std::string &name, const std::string &desc)
{
    util::Cli cli(name, desc);
    cli.add_flag("instructions", "dynamic instructions per benchmark",
                 std::to_string(kDefaultInstructions));
    cli.add_flag("csv-dir", "also mirror each table to CSV files in "
                            "this directory (empty = off)",
                 "");
    return cli;
}

/**
 * Print @p table and, when --csv-dir was given, mirror it to
 * <csv-dir>/<slug>.csv.
 */
inline void
emit(const util::Table &table, const util::Cli &cli,
     const std::string &slug)
{
    table.print();
    const std::string dir = cli.get("csv-dir");
    if (!dir.empty())
        table.write_csv(dir + "/" + slug + ".csv");
}

/**
 * Simulate the full six-benchmark suite with histogram edges covering
 * every stock experiment (plus @p extra_edges for custom sweeps).
 */
inline std::vector<core::ExperimentResult>
run_standard_suite(std::uint64_t instructions,
                   std::vector<Cycles> extra_edges = {})
{
    core::ExperimentConfig config;
    config.instructions = instructions;
    config.extra_edges = core::standard_extra_edges();
    config.extra_edges.insert(config.extra_edges.end(),
                              extra_edges.begin(), extra_edges.end());
    return core::run_suite(workload::suite_names(), config);
}

/** Which L1 a scheme is evaluated against. */
enum class CacheSide { Instruction, Data };

/** The interval population of @p side in @p run. */
inline const interval::IntervalHistogramSet &
population(const core::ExperimentResult &run, CacheSide side)
{
    return side == CacheSide::Instruction ? run.icache.intervals
                                          : run.dcache.intervals;
}

/** Evaluate a policy on one cache of one run. */
inline core::SavingsResult
evaluate(const core::Policy &policy, const core::ExperimentResult &run,
         CacheSide side)
{
    return core::evaluate_policy(policy, population(run, side));
}

/**
 * The paper's "average" bars: pool energies across all benchmarks
 * (sum of policy energy over sum of baselines).
 */
inline core::SavingsResult
suite_average(const core::Policy &policy,
              const std::vector<core::ExperimentResult> &runs,
              CacheSide side)
{
    std::vector<core::SavingsResult> per_run;
    per_run.reserve(runs.size());
    for (const auto &run : runs)
        per_run.push_back(evaluate(policy, run, side));
    return core::combine_results(per_run);
}

/** "96.4%"-style cell for a savings fraction. */
inline std::string
pct(double fraction)
{
    return util::format_percent(fraction);
}

} // namespace leakbound::bench

#endif // LEAKBOUND_BENCH_BENCH_COMMON_HPP
