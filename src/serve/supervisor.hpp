/**
 * @file
 * The leakboundd shard supervisor: fork N shard processes, each
 * running the PR 7 epoll event loop on its own socket, over one shared
 * artifact cache; keep them alive.
 *
 * Process model (DESIGN.md §6): the supervisor is the parent and is
 * deliberately thread-free — no Scheduler, no Server, no worker pool —
 * so fork() is always safe and a shard crash can never corrupt parent
 * state.  Each shard is a fork()ed child that builds its own Server
 * (and with it its own scheduler threads) from a per-shard copy of the
 * ServerConfig template: unix shard i listens on "<base>.<i>", TCP
 * shard i on base port + 1 + i.  The base endpoint itself belongs to
 * the supervisor's control plane (ping / health / aggregated stats —
 * run requests are redirected to the shards with a typed error).
 *
 * Liveness is judged two ways, because they fail differently:
 *
 *  - a heartbeat pipe per shard — the shard's event loop writes one
 *    byte per interval, so a pulse proves the loop itself is turning;
 *    a SIGKILLed shard additionally closes the pipe, so death is seen
 *    the same tick;
 *  - a periodic /health request with a hard receive deadline — this
 *    catches the wedge the pipe cannot: a process whose loop still
 *    turns but whose listener stopped answering.
 *
 * Dead or wedged shards are restarted with capped-exponential backoff
 * and deterministic jitter (the PR 4 lock-backoff shape).  A shard
 * that dies more than `restart_limit` times inside `restart_window_s`
 * trips the crash-loop circuit breaker: the fleet is torn down and
 * run() returns a typed CrashLoop status whose message is the JSON
 * incident report — a config so broken that every incarnation dies is
 * an operator problem, not something to retry forever.  SIGTERM/SIGINT
 * fan out to every shard with a drain deadline before SIGKILL.
 */

#ifndef LEAKBOUND_SERVE_SUPERVISOR_HPP
#define LEAKBOUND_SERVE_SUPERVISOR_HPP

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include <sys/types.h>

#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/net.hpp"
#include "util/random.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Shape of one shard fleet. */
struct SupervisorConfig
{
    /** Shard processes to run (>= 1). */
    unsigned shards = 2;
    /**
     * Per-shard ServerConfig template.  unix_path / tcp_port are the
     * BASE endpoint: shards derive theirs (see shard_endpoint), the
     * supervisor's control plane listens on the base itself.  Sharded
     * TCP therefore needs an explicit nonzero base port.
     */
    ServerConfig shard;
    /** Supervision loop tick (liveness/restart latency floor). */
    int tick_ms = 50;
    /** Heartbeat silence treated as a wedged event loop (0 = off). */
    int heartbeat_timeout_ms = 5'000;
    /** Spacing of per-shard /health probes (0 = off). */
    int health_interval_ms = 1'000;
    /** Receive deadline of one /health probe. */
    int health_timeout_ms = 1'000;
    /** Consecutive failed probes before the shard is declared wedged. */
    unsigned health_failure_limit = 2;
    /** Restart backoff ladder (PR 4 shape: capped-exp + jitter). */
    int restart_backoff_initial_ms = 100;
    int restart_backoff_cap_ms = 5'000;
    /** Crash-loop breaker: > restart_limit deaths in restart_window_s. */
    unsigned restart_limit = 5;
    int restart_window_s = 30;
    /** Grace between SIGTERM fan-out and SIGKILL on drain. */
    int drain_deadline_ms = 10'000;
    /** Seed of the deterministic restart jitter. */
    std::uint64_t jitter_seed = 0x5afedeadbeefULL;
};

/** Fleet-level accounting, merged into the aggregated /stats. */
struct SupervisorCounters
{
    std::uint64_t restarts_total = 0;     ///< shards respawned
    std::uint64_t heartbeat_timeouts = 0; ///< wedges caught by the pipe
    std::uint64_t health_failures = 0;    ///< failed /health probes
    std::uint64_t wedge_kills = 0;        ///< SIGKILLs of wedged shards
    std::uint64_t chaos_kills = 0;        ///< kill_shard seam firings
    std::uint64_t stats_errors = 0;       ///< shards that missed a /stats fan-out
};

/** One fleet: construct, start(), run(). Single-threaded by design. */
class Supervisor
{
  public:
    explicit Supervisor(SupervisorConfig config);
    ~Supervisor();

    Supervisor(const Supervisor &) = delete;
    Supervisor &operator=(const Supervisor &) = delete;

    /** Bind the control listeners and spawn every shard. */
    util::Status start();

    /**
     * Supervise until SIGINT/SIGTERM (then drain the fleet and return
     * ok) or until the crash-loop breaker trips (then tear down and
     * return a CrashLoop status whose message is the JSON report).
     */
    util::Status run();

    /** Fleet accounting so far (test/bench introspection). */
    const SupervisorCounters &counters() const { return counters_; }

  private:
    enum class ShardState : std::uint8_t {
        Running, ///< process alive as far as we know
        Backoff, ///< dead; restart scheduled
        Failed,  ///< crash-loop breaker tripped
    };

    struct Shard
    {
        unsigned index = 0;
        pid_t pid = -1;
        int heartbeat_fd = -1; ///< read end of the shard's pipe
        ShardState state = ShardState::Backoff;
        std::chrono::steady_clock::time_point started_at;
        std::chrono::steady_clock::time_point last_heartbeat;
        std::chrono::steady_clock::time_point restart_at;
        std::chrono::steady_clock::time_point next_health_at;
        unsigned health_failures = 0; ///< consecutive
        unsigned backoff_level = 0;
        std::uint64_t restarts = 0;
        int last_exit_status = 0; ///< raw waitpid status
        /** Death times inside the breaker window. */
        std::deque<std::chrono::steady_clock::time_point> deaths;
    };

    util::Status spawn(Shard &shard);
    void poll_once();
    void drain_heartbeats();
    void reap();
    void on_death(Shard &shard, int wait_status);
    void check_shards();
    bool probe_health(Shard &shard);
    void chaos_probe();
    void restart_due();
    void handle_control(const util::net::Socket &listener);
    std::string control_reply(const std::string &payload);
    std::string render_fleet_health() const;
    std::string render_fleet_stats();
    std::string render_crash_report(const Shard &shard) const;
    util::Status drain_fleet();
    void kill_everything();
    Endpoint base_endpoint() const;

    SupervisorConfig config_;
    util::Rng jitter_;
    std::vector<Shard> shards_;
    util::net::Socket control_unix_;
    util::net::Socket control_tcp_;
    bool started_ = false;
    bool tripped_ = false;
    unsigned tripped_shard_ = 0;
    unsigned chaos_cursor_ = 0;
    std::chrono::steady_clock::time_point started_at_;
    SupervisorCounters counters_;
};

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_SUPERVISOR_HPP
