/**
 * @file
 * Decoding of serve-protocol "run" requests into ExperimentConfig,
 * plus the request fingerprint the daemon's dedup scheduler keys on.
 *
 * The wire schema is a strict subset of ExperimentConfig: everything a
 * remote client may set is validated here (benchmark names against the
 * suite, instruction budgets against the daemon's cap), everything it
 * may NOT set (jobs, cache_dir, keep_raw — all server-owned resources)
 * is rejected, and unknown keys are errors, mirroring the CLI's
 * unknown-flag policy: a silent typo would corrupt an experiment.
 *
 * The fingerprint reuses the artifact cache's config fingerprint
 * (core/artifact_cache.hpp), so two requests that dedupe to one
 * simulation are exactly the requests that would share cache entries.
 */

#ifndef LEAKBOUND_CORE_EXPERIMENT_REQUEST_HPP
#define LEAKBOUND_CORE_EXPERIMENT_REQUEST_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace leakbound::core {

/** Ceiling a request's instruction budget must stay under by default. */
inline constexpr std::uint64_t kDefaultMaxRequestInstructions =
    64'000'000;

/** One decoded experiment request. */
struct ExperimentRequest
{
    /** Benchmarks to simulate, in response order (validated names). */
    std::vector<std::string> benchmarks;
    /**
     * The derived config.  jobs / cache_dir are left at their defaults
     * by the decoder; the scheduler stamps the server-owned values in
     * before running (they are excluded from fingerprints, so this
     * cannot split dedup groups).
     */
    ExperimentConfig config;
    /**
     * Whether the response should embed each result's full serialized
     * payload (hex of serialize_result) next to its digest.  Heavier
     * frames; clients use it to reconstruct byte-identical
     * ExperimentResults offline.
     */
    bool want_payload = false;
    /**
     * Client completion deadline in milliseconds (0 = none).  Pure
     * admission metadata: when the scheduler estimates the request
     * cannot complete inside the deadline it is shed `overloaded`
     * instead of queued.  Excluded from fingerprint_request — a
     * deadline never changes what is computed or rendered, so it must
     * not split a dedup group or a cache entry.
     */
    std::uint64_t deadline_ms = 0;
};

/**
 * Decode a "run" request object.  Accepted keys: "type" (ignored
 * here; the server dispatched on it), "benchmarks" (required,
 * non-empty string array of valid suite names), "instructions" (u64,
 * 1000..@p max_instructions), "nl_lead_time" (u64 cycles),
 * "collect_l2" (bool), "standard_edges" (bool, default true: absorb
 * standard_extra_edges() so any stock policy can evaluate the result),
 * "extra_edges" (u64 array), "payload" (bool), "engine" ("auto" |
 * "analytic" | "sim"; results are byte-identical for every choice but
 * the engine is part of the dedup/cache key), "deadline_ms" (u64, 0 =
 * none; admission metadata, never part of the dedup key),
 * "core_count" (u64, 1..core::kMaxCoreCount; cores sharing the L2 —
 * values above 1 select the multicore engine and scale the
 * per-request budget check to instructions x core_count), and
 * "workload_mix" (non-empty string array of valid suite names whose
 * length must equal core_count; per-core benchmarks).  Anything
 * else —
 * unknown keys, wrong types, out-of-range values, server-owned knobs
 * like "jobs"/"cache_dir"/"keep_raw" — is an InvalidArgument.
 */
util::Expected<ExperimentRequest>
decode_experiment_request(const util::JsonValue &body,
                          std::uint64_t max_instructions =
                              kDefaultMaxRequestInstructions);

/**
 * The dedup key: fingerprint_config(request.config) extended with the
 * benchmark list and the payload flag (responses with and without
 * payloads render differently, so they must not share one rendered
 * response even though they share cache entries underneath).
 */
std::uint64_t fingerprint_request(const ExperimentRequest &request);

/**
 * The home shard for a request with dedup key @p fingerprint in a
 * fleet of @p shard_count shards.  Both sides of the wire use this:
 * the client routes requests here first, so every copy of one request
 * lands on one shard and the PR 5 dedup map and PR 7 response LRU
 * keep working fleet-wide without any shared state.  Deterministic,
 * uniform (SplitMix64-finalized), and 0 when @p shard_count <= 1.
 */
unsigned route_shard(std::uint64_t fingerprint, unsigned shard_count);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_EXPERIMENT_REQUEST_HPP
