/**
 * @file
 * Implementation of the set-associative cache model.
 */

#include "sim/cache.hpp"

#include "util/logging.hpp"

namespace leakbound::sim {

Cache::Cache(const CacheConfig &config, std::uint64_t seed)
    : config_(config), seed_(seed)
{
    config_.validate();
    frames_.resize(config_.num_frames());
    repl_ = make_replacement(config_.replacement, config_.num_sets(),
                             config_.associativity, seed_);
}

AccessResult
Cache::access(Addr addr)
{
    const Addr block = config_.block_of(addr);
    const std::uint64_t set = config_.set_of_block(block);
    const std::uint32_t ways = config_.associativity;
    const std::uint64_t base = set * ways;

    ++stats_.accesses;

    AccessResult result;
    // Hit path: scan the set for the block.
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Frame &f = frames_[base + w];
        if (f.valid && f.block == block) {
            repl_->on_hit(set, w);
            ++stats_.hits;
            result.hit = true;
            result.frame = static_cast<FrameId>(base + w);
            return result;
        }
    }

    // Miss path: prefer an invalid way; otherwise ask the policy.
    ++stats_.misses;
    std::uint32_t way = ways; // sentinel
    for (std::uint32_t w = 0; w < ways; ++w) {
        if (!frames_[base + w].valid) {
            way = w;
            break;
        }
    }
    if (way == ways) {
        way = repl_->victim_way(set);
        LEAKBOUND_ASSERT(way < ways, "replacement returned bad way ", way);
        result.evicted = true;
        result.victim_block = frames_[base + way].block;
        ++stats_.evictions;
    }

    Frame &f = frames_[base + way];
    f.valid = true;
    f.block = block;
    repl_->on_fill(set, way);
    result.frame = static_cast<FrameId>(base + way);
    return result;
}

FrameId
Cache::frame_of_block(Addr block) const
{
    const std::uint64_t set = config_.set_of_block(block);
    const std::uint32_t ways = config_.associativity;
    const std::uint64_t base = set * ways;
    for (std::uint32_t w = 0; w < ways; ++w) {
        const Frame &f = frames_[base + w];
        if (f.valid && f.block == block)
            return static_cast<FrameId>(base + w);
    }
    return kInvalidFrame;
}

Addr
Cache::block_in_frame(FrameId frame) const
{
    LEAKBOUND_ASSERT(frame < frames_.size(), "frame id out of range");
    return frames_[frame].valid ? frames_[frame].block : kInvalidAddr;
}

void
Cache::reset()
{
    for (auto &f : frames_) {
        f.valid = false;
        f.block = kInvalidAddr;
    }
    stats_ = CacheStats{};
    repl_ = make_replacement(config_.replacement, config_.num_sets(),
                             config_.associativity, seed_);
}

} // namespace leakbound::sim
