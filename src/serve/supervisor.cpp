/**
 * @file
 * Implementation of the leakboundd shard supervisor: fork/exec-free
 * shard spawning, heartbeat + health liveness, capped-exponential
 * restarts, the crash-loop circuit breaker, drain fan-out, and the
 * control plane (ping / fleet health / aggregated stats).
 */

#include "serve/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

namespace leakbound::serve {

namespace {

using Clock = std::chrono::steady_clock;

double
ms_between(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/** Human description of a waitpid status ("exit 1", "signal 9"). */
std::string
describe_exit(int wait_status)
{
    if (WIFEXITED(wait_status))
        return "exit " + std::to_string(WEXITSTATUS(wait_status));
    if (WIFSIGNALED(wait_status))
        return "signal " + std::to_string(WTERMSIG(wait_status));
    return "status " + std::to_string(wait_status);
}

const char *
state_name(int state)
{
    switch (state) {
      case 0: return "running";
      case 1: return "backoff";
      case 2: return "failed";
    }
    return "unknown";
}

/**
 * The child side of spawn(): build this shard's Server from the
 * template and serve until drained.  Runs in a fresh fork with the
 * supervisor's listeners closed; never returns to the caller's frame
 * logic (the caller _Exits with the returned code).
 */
int
run_shard_process(const SupervisorConfig &config, unsigned index,
                  int heartbeat_fd)
{
    ServerConfig shard = config.shard;
    if (!shard.unix_path.empty())
        shard.unix_path += "." + std::to_string(index);
    if (shard.listen_tcp) {
        shard.tcp_port =
            static_cast<std::uint16_t>(shard.tcp_port + 1 + index);
    }
    shard.shard_index = static_cast<int>(index);
    shard.heartbeat_fd = heartbeat_fd;

    Server server(std::move(shard));
    if (util::Status bound = server.start(); !bound.ok()) {
        util::warn("shard ", index, " cannot bind: ", bound.to_string());
        return 1;
    }
    if (util::Status served = server.serve(); !served.ok()) {
        util::warn("shard ", index, " event loop failed: ",
                   served.to_string());
        return 1;
    }
    // A SIGTERM-triggered drain is the supervisor asking nicely; a
    // clean serve() return is exit 0 regardless of what signal caused it.
    return 0;
}

/** u64 StatsSnapshot fields, for sum-merging shard /stats replies. */
struct U64Field
{
    const char *key;
    std::uint64_t StatsSnapshot::*member;
};

constexpr U64Field kU64Fields[] = {
    {"requests_served", &StatsSnapshot::requests_served},
    {"dedup_hits", &StatsSnapshot::dedup_hits},
    {"response_lru_hits", &StatsSnapshot::response_lru_hits},
    {"response_lru_evictions", &StatsSnapshot::response_lru_evictions},
    {"response_lru_entries", &StatsSnapshot::response_lru_entries},
    {"response_lru_bytes", &StatsSnapshot::response_lru_bytes},
    {"cache_hits", &StatsSnapshot::cache_hits},
    {"analytic_runs", &StatsSnapshot::analytic_runs},
    {"sim_runs", &StatsSnapshot::sim_runs},
    {"kernel_path_runs", &StatsSnapshot::kernel_path_runs},
    {"reference_path_runs", &StatsSnapshot::reference_path_runs},
    {"mixed_path_runs", &StatsSnapshot::mixed_path_runs},
    {"rejected_overloaded", &StatsSnapshot::rejected_overloaded},
    {"rejected_deadline", &StatsSnapshot::rejected_deadline},
    {"rejected_shutting_down", &StatsSnapshot::rejected_shutting_down},
    {"protocol_errors", &StatsSnapshot::protocol_errors},
    {"sessions_accepted", &StatsSnapshot::sessions_accepted},
    {"open_connections", &StatsSnapshot::open_connections},
    {"queue_depth", &StatsSnapshot::queue_depth},
    {"running", &StatsSnapshot::running},
    {"locks_broken", &StatsSnapshot::locks_broken},
};

} // namespace

Supervisor::Supervisor(SupervisorConfig config)
    : config_(std::move(config)), jitter_(config_.jitter_seed)
{
}

Supervisor::~Supervisor()
{
    // Covers start()-without-run() lifetimes (tests, failed startup):
    // never leak a shard process or a zombie.
    kill_everything();
    if (!config_.shard.unix_path.empty())
        std::remove(config_.shard.unix_path.c_str());
}

Endpoint
Supervisor::base_endpoint() const
{
    Endpoint base;
    base.unix_path = config_.shard.unix_path;
    base.tcp_host = config_.shard.tcp_host;
    base.tcp_port = config_.shard.listen_tcp ? config_.shard.tcp_port : 0;
    return base;
}

util::Status
Supervisor::start()
{
    if (config_.shards == 0) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "a fleet needs at least one shard");
    }
    if (config_.shard.unix_path.empty() && !config_.shard.listen_tcp) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "no listener configured: need a socket "
                            "path or a TCP port");
    }
    if (config_.shard.listen_tcp && config_.shard.tcp_port == 0) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "sharded TCP needs an explicit base port: "
                            "shard i listens on base + 1 + i, so a "
                            "kernel-assigned base cannot name them");
    }

    if (!config_.shard.unix_path.empty()) {
        auto listener = util::net::listen_unix(config_.shard.unix_path);
        if (!listener)
            return listener.status();
        control_unix_ = listener.take();
        if (util::Status made = util::net::set_nonblocking(control_unix_);
            !made.ok())
            return made;
    }
    if (config_.shard.listen_tcp) {
        auto listener = util::net::listen_tcp(config_.shard.tcp_host,
                                              config_.shard.tcp_port);
        if (!listener)
            return listener.status();
        control_tcp_ = listener.take();
        if (util::Status made = util::net::set_nonblocking(control_tcp_);
            !made.ok())
            return made;
    }

    started_at_ = Clock::now();
    shards_.resize(config_.shards);
    for (unsigned i = 0; i < config_.shards; ++i) {
        shards_[i].index = i;
        if (util::Status spawned = spawn(shards_[i]); !spawned.ok())
            return spawned;
    }
    started_ = true;
    return util::Status();
}

util::Status
Supervisor::spawn(Shard &shard)
{
    int pipe_fds[2];
    // Non-blocking on both ends: the shard's pulse write must never
    // stall its event loop, and the supervisor's drain read must never
    // stall supervision.  CLOEXEC is hygiene for any future exec.
    if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
        return util::Status(util::ErrorKind::IoError,
                            std::string("heartbeat pipe failed: ") +
                                std::strerror(errno));
    }

    // fork() duplicates stdio buffers; flush so a buffered line is
    // never printed twice.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        ::close(pipe_fds[0]);
        ::close(pipe_fds[1]);
        return util::Status(util::ErrorKind::IoError,
                            std::string("fork failed: ") +
                                std::strerror(saved));
    }
    if (pid == 0) {
        // ---- shard child ----
        ::close(pipe_fds[0]);
        control_unix_.close();
        control_tcp_.close();
        for (Shard &other : shards_) {
            if (other.heartbeat_fd >= 0) {
                ::close(other.heartbeat_fd);
                other.heartbeat_fd = -1;
            }
        }
        // A SIGTERM the supervisor already absorbed must not read as
        // "drain immediately" in a shard born after it.
        util::clear_interrupt();
        const int code =
            run_shard_process(config_, shard.index, pipe_fds[1]);
        // _Exit: the Server destructor already ran inside
        // run_shard_process; atexit handlers and stdio flushes belong
        // to the parent's lifetime, not this fork's.
        std::_Exit(code);
    }

    // ---- supervisor parent ----
    ::close(pipe_fds[1]);
    const auto now = Clock::now();
    shard.pid = pid;
    shard.heartbeat_fd = pipe_fds[0];
    shard.state = ShardState::Running;
    shard.started_at = now;
    shard.last_heartbeat = now;
    shard.health_failures = 0;
    if (config_.health_interval_ms > 0) {
        // Staggered first probe so N shards are not probed in one tick.
        shard.next_health_at =
            now + std::chrono::milliseconds(
                      config_.health_interval_ms +
                      static_cast<int>(jitter_.next_below(
                          static_cast<std::uint64_t>(
                              config_.health_interval_ms) +
                          1)));
    }
    return util::Status();
}

util::Status
Supervisor::run()
{
    if (!started_) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "run() before start()");
    }
    while (!util::interrupt_requested()) {
        poll_once();
        drain_heartbeats();
        reap();
        if (tripped_) {
            const std::string report =
                render_crash_report(shards_[tripped_shard_]);
            util::warn("crash-loop breaker tripped on shard ",
                       tripped_shard_, "; tearing the fleet down");
            kill_everything();
            return util::Status(util::ErrorKind::CrashLoop, report);
        }
        check_shards();
        chaos_probe();
        restart_due();
        handle_control(control_unix_);
        handle_control(control_tcp_);
    }
    return drain_fleet();
}

void
Supervisor::poll_once()
{
    // The poll is a tick-bounded sleep that ends early on any control
    // connection or heartbeat pulse; the work all happens afterwards
    // in the nonblocking drain/accept passes.
    std::vector<pollfd> fds;
    fds.reserve(shards_.size() + 2);
    if (control_unix_.valid())
        fds.push_back({control_unix_.fd(), POLLIN, 0});
    if (control_tcp_.valid())
        fds.push_back({control_tcp_.fd(), POLLIN, 0});
    for (const Shard &shard : shards_)
        if (shard.heartbeat_fd >= 0)
            fds.push_back({shard.heartbeat_fd, POLLIN, 0});
    (void)::poll(fds.data(), fds.size(),
                 std::max(config_.tick_ms, 1));
}

void
Supervisor::drain_heartbeats()
{
    char pulses[256];
    for (Shard &shard : shards_) {
        if (shard.heartbeat_fd < 0)
            continue;
        bool beat = false;
        for (;;) {
            const ssize_t n =
                ::read(shard.heartbeat_fd, pulses, sizeof(pulses));
            if (n > 0) {
                beat = true;
                continue;
            }
            // 0 = write end closed (death; reap() owns that), -1 with
            // EAGAIN = drained.  Either way this pass is done.
            break;
        }
        if (beat)
            shard.last_heartbeat = Clock::now();
    }
}

void
Supervisor::reap()
{
    for (;;) {
        int wait_status = 0;
        const pid_t pid = ::waitpid(-1, &wait_status, WNOHANG);
        if (pid <= 0)
            return;
        for (Shard &shard : shards_) {
            if (shard.pid == pid) {
                on_death(shard, wait_status);
                break;
            }
        }
    }
}

void
Supervisor::on_death(Shard &shard, int wait_status)
{
    if (shard.heartbeat_fd >= 0) {
        ::close(shard.heartbeat_fd);
        shard.heartbeat_fd = -1;
    }
    const auto now = Clock::now();
    const double uptime_ms = ms_between(shard.started_at, now);
    shard.pid = -1;
    shard.last_exit_status = wait_status;

    // Crash-loop window: prune, record, judge.
    const auto window_start =
        now - std::chrono::seconds(std::max(config_.restart_window_s, 1));
    while (!shard.deaths.empty() && shard.deaths.front() < window_start)
        shard.deaths.pop_front();
    shard.deaths.push_back(now);
    if (shard.deaths.size() > config_.restart_limit) {
        shard.state = ShardState::Failed;
        tripped_ = true;
        tripped_shard_ = shard.index;
        return;
    }

    // Backoff ladder, PR 4 shape: reset once an incarnation outlived
    // the cap (it was healthy; this death is fresh news), else climb.
    if (uptime_ms >
        static_cast<double>(std::max(config_.restart_backoff_cap_ms, 1)))
        shard.backoff_level = 0;
    const std::uint64_t initial = static_cast<std::uint64_t>(
        std::max(config_.restart_backoff_initial_ms, 1));
    const std::uint64_t cap = static_cast<std::uint64_t>(
        std::max(config_.restart_backoff_cap_ms, 1));
    const std::uint64_t base =
        std::min(initial << std::min(shard.backoff_level, 20u), cap);
    shard.backoff_level = std::min(shard.backoff_level + 1, 20u);
    const std::uint64_t delay_ms =
        base + jitter_.next_below(base / 2 + 1);

    shard.state = ShardState::Backoff;
    shard.restart_at = now + std::chrono::milliseconds(delay_ms);
    util::warn("shard ", shard.index, " died (",
               describe_exit(wait_status), ") after ",
               static_cast<std::uint64_t>(uptime_ms),
               " ms; restarting in ", delay_ms, " ms");
}

void
Supervisor::check_shards()
{
    const auto now = Clock::now();
    for (Shard &shard : shards_) {
        if (shard.state != ShardState::Running || shard.pid <= 0)
            continue;
        if (config_.heartbeat_timeout_ms > 0 &&
            ms_between(shard.last_heartbeat, now) >
                static_cast<double>(config_.heartbeat_timeout_ms)) {
            ++counters_.heartbeat_timeouts;
            ++counters_.wedge_kills;
            util::warn("shard ", shard.index, " (pid ", shard.pid,
                       ") went silent for over ",
                       config_.heartbeat_timeout_ms,
                       " ms; SIGKILLing the wedged process");
            ::kill(shard.pid, SIGKILL);
            // reap() sees the death next tick and schedules the restart.
            continue;
        }
        if (config_.health_interval_ms > 0 && now >= shard.next_health_at) {
            shard.next_health_at =
                now +
                std::chrono::milliseconds(config_.health_interval_ms);
            if (probe_health(shard)) {
                shard.health_failures = 0;
            } else {
                ++counters_.health_failures;
                if (++shard.health_failures >=
                    std::max(config_.health_failure_limit, 1u)) {
                    ++counters_.wedge_kills;
                    util::warn("shard ", shard.index, " (pid ",
                               shard.pid, ") failed ",
                               shard.health_failures,
                               " consecutive health probes; "
                               "SIGKILLing the wedged process");
                    ::kill(shard.pid, SIGKILL);
                }
            }
        }
    }
}

bool
Supervisor::probe_health(Shard &shard)
{
    auto socket =
        connect_endpoint(shard_endpoint(base_endpoint(), shard.index));
    if (!socket)
        return false;
    if (util::Status sent =
            send_frame(socket.value(), build_health_request(),
                       config_.shard.max_frame_bytes);
        !sent.ok())
        return false;
    auto frame = recv_frame_deadline(socket.value(),
                                     config_.shard.max_frame_bytes,
                                     std::max(config_.health_timeout_ms, 1));
    if (!frame)
        return false;
    auto parsed = util::json_parse(frame.value());
    if (!parsed || !parsed.value().is_object())
        return false;
    const util::JsonValue *status = parsed.value().find("status");
    return status != nullptr && status->is_string() &&
           status->string_value() == "ok";
}

void
Supervisor::chaos_probe()
{
    if (!util::fault::kEnabled)
        return;
    if (!util::fault::should_fail(util::fault::Site::KillShard))
        return;
    // Round-robin over live shards so repeated firings spread the
    // carnage deterministically.
    for (unsigned k = 0; k < shards_.size(); ++k) {
        Shard &shard = shards_[(chaos_cursor_ + k) %
                               static_cast<unsigned>(shards_.size())];
        if (shard.state == ShardState::Running && shard.pid > 0) {
            chaos_cursor_ = (shard.index + 1) %
                            static_cast<unsigned>(shards_.size());
            ++counters_.chaos_kills;
            util::warn("chaos: kill_shard seam SIGKILLs shard ",
                       shard.index, " (pid ", shard.pid, ")");
            ::kill(shard.pid, SIGKILL);
            return;
        }
    }
}

void
Supervisor::restart_due()
{
    const auto now = Clock::now();
    for (Shard &shard : shards_) {
        if (shard.state != ShardState::Backoff || now < shard.restart_at)
            continue;
        if (util::Status spawned = spawn(shard); !spawned.ok()) {
            // Treat a failed fork like a crash: back off and retry.
            util::warn("cannot respawn shard ", shard.index, ": ",
                       spawned.to_string());
            shard.restart_at =
                now + std::chrono::milliseconds(static_cast<std::uint64_t>(
                          std::max(config_.restart_backoff_cap_ms, 1)));
            continue;
        }
        ++shard.restarts;
        ++counters_.restarts_total;
        util::warn("shard ", shard.index, " restarted (pid ", shard.pid,
                   ", restart #", shard.restarts, ")");
    }
}

void
Supervisor::handle_control(const util::net::Socket &listener)
{
    if (!listener.valid())
        return;
    for (;;) {
        auto accepted = util::net::try_accept(listener);
        if (!accepted) {
            util::warn("control accept failed: ",
                       accepted.status().to_string());
            return;
        }
        if (!accepted.value().valid())
            return; // nothing pending
        util::net::Socket socket = accepted.take();
        // One bounded request/response exchange per connection.  The
        // short deadline caps how long a silent client can stall
        // supervision (heartbeats buffer in their pipes meanwhile).
        auto frame = recv_frame_deadline(
            socket, config_.shard.max_frame_bytes, 250);
        if (!frame)
            continue;
        const std::string reply = control_reply(frame.value());
        (void)send_frame(socket, reply, config_.shard.max_frame_bytes);
    }
}

std::string
Supervisor::control_reply(const std::string &payload)
{
    auto parsed = util::json_parse(payload);
    if (!parsed)
        return render_error(parsed.status());
    if (!parsed.value().is_object()) {
        return render_error(
            util::Status(util::ErrorKind::InvalidArgument,
                         "request must be a JSON object"));
    }
    const util::JsonValue *type = parsed.value().find("type");
    if (type == nullptr || !type->is_string()) {
        return render_error(
            util::Status(util::ErrorKind::InvalidArgument,
                         "request needs a string \"type\" member"));
    }
    const std::string &kind = type->string_value();
    if (kind == "ping")
        return render_pong();
    if (kind == "health")
        return render_fleet_health();
    if (kind == "stats")
        return render_fleet_stats();
    if (kind == "run") {
        return render_error(util::Status(
            util::ErrorKind::InvalidArgument,
            "this is the supervisor control endpoint; run requests go "
            "to the shard endpoints (unix \"<base>.<i>\", tcp base "
            "port + 1 + i) — use the client's --shards routing"));
    }
    return render_error(
        util::Status(util::ErrorKind::InvalidArgument,
                     "unknown request type \"" + kind + "\""));
}

std::string
Supervisor::render_fleet_health() const
{
    const auto now = Clock::now();
    unsigned live = 0;
    unsigned failed = 0;
    for (const Shard &shard : shards_) {
        if (shard.state == ShardState::Running)
            ++live;
        else if (shard.state == ShardState::Failed)
            ++failed;
    }
    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("type").value("health");
    w.key("role").value("supervisor");
    w.key("pid").value(static_cast<std::int64_t>(::getpid()));
    w.key("shards").value(static_cast<std::uint64_t>(shards_.size()));
    w.key("shards_live").value(static_cast<std::uint64_t>(live));
    w.key("shards_failed").value(static_cast<std::uint64_t>(failed));
    w.key("restarts_total").value(counters_.restarts_total);
    w.key("uptime_seconds")
        .value(std::chrono::duration<double>(now - started_at_).count());
    w.key("shard_details").begin_array();
    for (const Shard &shard : shards_) {
        w.begin_object();
        w.key("index").value(static_cast<std::uint64_t>(shard.index));
        w.key("pid").value(static_cast<std::int64_t>(shard.pid));
        w.key("state").value(
            state_name(static_cast<int>(shard.state)));
        w.key("restarts").value(shard.restarts);
        w.key("heartbeat_age_ms")
            .value(shard.state == ShardState::Running
                       ? ms_between(shard.last_heartbeat, now)
                       : -1.0);
        w.key("last_exit").value(describe_exit(shard.last_exit_status));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

std::string
Supervisor::render_fleet_stats()
{
    // Fan out to every live shard, sum the counters, max the latency
    // quantiles (a fleet's p99 is at least its worst shard's).
    StatsSnapshot merged;
    unsigned answered = 0;
    for (Shard &shard : shards_) {
        if (shard.state != ShardState::Running)
            continue;
        auto socket = connect_endpoint(
            shard_endpoint(base_endpoint(), shard.index));
        util::Expected<std::string> frame =
            util::Status(util::ErrorKind::IoError, "unreachable");
        if (socket &&
            send_frame(socket.value(), build_stats_request(),
                       config_.shard.max_frame_bytes)
                .ok()) {
            frame = recv_frame_deadline(
                socket.value(), config_.shard.max_frame_bytes,
                std::max(config_.health_timeout_ms, 1));
        }
        if (!frame) {
            ++counters_.stats_errors;
            continue;
        }
        auto parsed = util::json_parse(frame.value());
        if (!parsed || !parsed.value().is_object()) {
            ++counters_.stats_errors;
            continue;
        }
        const util::JsonValue &doc = parsed.value();
        for (const U64Field &field : kU64Fields) {
            const util::JsonValue *node = doc.find(field.key);
            if (node != nullptr && node->is_u64())
                merged.*(field.member) += node->u64_value();
        }
        for (const char *key : {"latency_p50_ms", "latency_p99_ms"}) {
            const util::JsonValue *node = doc.find(key);
            if (node == nullptr || !node->is_number())
                continue;
            double StatsSnapshot::*target =
                std::string_view(key) == "latency_p50_ms"
                    ? &StatsSnapshot::latency_p50_ms
                    : &StatsSnapshot::latency_p99_ms;
            merged.*target =
                std::max(merged.*target, node->number_value());
        }
        ++answered;
    }
    merged.uptime_seconds =
        std::chrono::duration<double>(Clock::now() - started_at_)
            .count();

    unsigned live = 0;
    for (const Shard &shard : shards_)
        if (shard.state == ShardState::Running)
            ++live;

    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("ok");
    w.key("type").value("stats");
    write_stats_fields(w, merged);
    w.key("fleet").begin_object();
    w.key("shards").value(static_cast<std::uint64_t>(shards_.size()));
    w.key("shards_live").value(static_cast<std::uint64_t>(live));
    w.key("shards_answered").value(static_cast<std::uint64_t>(answered));
    w.key("restarts_total").value(counters_.restarts_total);
    w.key("heartbeat_timeouts").value(counters_.heartbeat_timeouts);
    w.key("health_failures").value(counters_.health_failures);
    w.key("wedge_kills").value(counters_.wedge_kills);
    w.key("chaos_kills").value(counters_.chaos_kills);
    w.key("stats_errors").value(counters_.stats_errors);
    w.end_object();
    w.end_object();
    return w.str();
}

std::string
Supervisor::render_crash_report(const Shard &shard) const
{
    util::JsonWriter w;
    w.begin_object();
    w.key("status").value("error");
    w.key("kind").value(
        util::error_kind_name(util::ErrorKind::CrashLoop));
    w.key("message").value(
        "shard " + std::to_string(shard.index) + " died " +
        std::to_string(shard.deaths.size()) + " times inside " +
        std::to_string(config_.restart_window_s) +
        " s (limit " + std::to_string(config_.restart_limit) +
        " restarts); last death: " +
        describe_exit(shard.last_exit_status));
    w.key("shard").value(static_cast<std::uint64_t>(shard.index));
    w.key("deaths_in_window")
        .value(static_cast<std::uint64_t>(shard.deaths.size()));
    w.key("window_seconds")
        .value(static_cast<std::uint64_t>(
            std::max(config_.restart_window_s, 1)));
    w.key("restart_limit")
        .value(static_cast<std::uint64_t>(config_.restart_limit));
    w.key("restarts_total").value(counters_.restarts_total);
    w.key("last_exit").value(describe_exit(shard.last_exit_status));
    w.end_object();
    return w.str();
}

util::Status
Supervisor::drain_fleet()
{
    unsigned live = 0;
    for (Shard &shard : shards_) {
        if (shard.pid > 0) {
            ++live;
            ::kill(shard.pid, SIGTERM);
        }
    }
    util::warn("supervisor draining: SIGTERM fanned out to ", live,
               " shard(s), deadline ", config_.drain_deadline_ms, " ms");

    const auto deadline =
        Clock::now() +
        std::chrono::milliseconds(std::max(config_.drain_deadline_ms, 0));
    auto any_alive = [&] {
        for (const Shard &shard : shards_)
            if (shard.pid > 0)
                return true;
        return false;
    };
    bool dirty = false;
    while (any_alive() && Clock::now() < deadline) {
        for (Shard &shard : shards_) {
            if (shard.pid <= 0)
                continue;
            int wait_status = 0;
            const pid_t pid =
                ::waitpid(shard.pid, &wait_status, WNOHANG);
            if (pid == shard.pid) {
                if (!WIFEXITED(wait_status) ||
                    WEXITSTATUS(wait_status) != 0) {
                    dirty = true;
                    util::warn("shard ", shard.index,
                               " drained uncleanly (",
                               describe_exit(wait_status), ")");
                }
                shard.pid = -1;
                if (shard.heartbeat_fd >= 0) {
                    ::close(shard.heartbeat_fd);
                    shard.heartbeat_fd = -1;
                }
            }
        }
        if (any_alive())
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    unsigned killed = 0;
    for (Shard &shard : shards_) {
        if (shard.pid <= 0)
            continue;
        ++killed;
        util::warn("shard ", shard.index, " (pid ", shard.pid,
                   ") missed the drain deadline; SIGKILL");
        ::kill(shard.pid, SIGKILL);
        (void)::waitpid(shard.pid, nullptr, 0);
        shard.pid = -1;
        if (shard.heartbeat_fd >= 0) {
            ::close(shard.heartbeat_fd);
            shard.heartbeat_fd = -1;
        }
    }
    control_unix_.close();
    control_tcp_.close();
    if (!config_.shard.unix_path.empty())
        std::remove(config_.shard.unix_path.c_str());
    if (killed > 0) {
        return util::Status(
            util::ErrorKind::IoError,
            std::to_string(killed) +
                " shard(s) missed the drain deadline and were "
                "SIGKILLed");
    }
    if (dirty) {
        return util::Status(util::ErrorKind::IoError,
                            "at least one shard drained uncleanly");
    }
    return util::Status();
}

void
Supervisor::kill_everything()
{
    for (Shard &shard : shards_) {
        if (shard.pid > 0) {
            ::kill(shard.pid, SIGKILL);
            (void)::waitpid(shard.pid, nullptr, 0);
            shard.pid = -1;
        }
        if (shard.heartbeat_fd >= 0) {
            ::close(shard.heartbeat_fd);
            shard.heartbeat_fd = -1;
        }
    }
    control_unix_.close();
    control_tcp_.close();
}

} // namespace leakbound::serve
