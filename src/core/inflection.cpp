/**
 * @file
 * Implementation of the inflection point solver.
 */

#include "core/inflection.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace leakbound::core {

InflectionPoints
compute_inflection(const power::TechnologyParams &tech)
{
    return compute_inflection(EnergyModel(tech));
}

InflectionPoints
compute_inflection(const EnergyModel &model)
{
    using interval::IntervalKind;

    const auto &tech = model.tech();
    InflectionPoints points;
    points.active_drowsy = tech.timings.drowsy_overhead();

    const LinearEnergy drowsy =
        model.linear(Mode::Drowsy, IntervalKind::Inner);
    const LinearEnergy sleep =
        model.linear(Mode::Sleep, IntervalKind::Inner,
                     /*charge_refetch=*/true);

    // E_sleep(b) = E_drowsy(b):
    //   sleep.slope*b + sleep.intercept = drowsy.slope*b + drowsy.icept
    const double slope_gap = drowsy.slope - sleep.slope; // P_D - P_S
    if (slope_gap <= 0.0) {
        // Sleep never recovers its overhead against drowsy; the
        // crossing is at infinity.
        points.drowsy_sleep =
            std::numeric_limits<Cycles>::max();
        points.drowsy_sleep_exact =
            std::numeric_limits<double>::infinity();
        return points;
    }

    const double b = (sleep.intercept - drowsy.intercept) / slope_gap;
    points.drowsy_sleep_exact = b;
    if (b <= 0.0) {
        // Degenerate: sleep dominates everywhere it fits.
        points.drowsy_sleep = model.min_length(Mode::Sleep,
                                               IntervalKind::Inner);
    } else {
        points.drowsy_sleep = static_cast<Cycles>(std::llround(b));
    }

    LEAKBOUND_ASSERT(points.drowsy_sleep > points.active_drowsy,
                     "Lemma 1 violated: a=", points.active_drowsy,
                     " >= b=", points.drowsy_sleep, " for technology ",
                     tech.name);
    return points;
}

} // namespace leakbound::core
