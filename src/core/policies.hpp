/**
 * @file
 * The leakage management schemes the paper evaluates (Section 4.4):
 *
 *  - AlwaysActive     : baseline, no power saving
 *  - OPT-Drowsy       : oracle drowsy-only (drowsy whenever it wins)
 *  - OPT-Sleep(T)     : oracle sleep-only, sleeps any interval > T for
 *                       its whole duration
 *  - Sleep(T) (decay) : non-oracle cache-decay; stays active T cycles,
 *                       then sleeps the remainder; pays per-line
 *                       counter leakage (paper footnote 2)
 *  - Hybrid(T)        : sleep above T, drowsy in (a, T] (Fig. 7 sweep);
 *                       OPT-Hybrid is Hybrid(b), the paper's bound
 *  - Prefetch-A/B     : non-oracle; prefetchable intervals get the
 *                       optimal mode, non-prefetchable ones stay active
 *                       (A) or go drowsy (B) (Table 3)
 *
 * Every factory takes the energy model and returns an immutable Policy.
 * The paper's default accounting charges the re-fetch energy CD on all
 * slept Inner intervals; pass charge_refetch=false for the dead-block
 * ablation (skip CD when the closing access replaces the block anyway).
 */

#ifndef LEAKBOUND_CORE_POLICIES_HPP
#define LEAKBOUND_CORE_POLICIES_HPP

#include <vector>

#include "core/policy.hpp"

namespace leakbound::core {

/** Prefetch-guided policy flavour (paper Table 3). */
enum class PrefetchVariant {
    A, ///< performance-first: non-prefetchable intervals stay active
    B, ///< power-first: non-prefetchable intervals go drowsy
};

/** Baseline: every line fully active at all times (0% savings). */
PolicyPtr make_always_active(const EnergyModel &model);

/** Oracle drowsy-only: drowsy exactly where it beats active. */
PolicyPtr make_opt_drowsy(const EnergyModel &model,
                          bool charge_refetch = true);

/**
 * Oracle sleep-only: sleeps every interval longer than
 * @p min_sleep_length for its entire duration (paper's OPT-Sleep uses
 * the inflection point b; OPT-Sleep(10K) uses 10000).  Falls back to
 * active when sleep would cost more than staying active.
 */
PolicyPtr make_opt_sleep(const EnergyModel &model, Cycles min_sleep_length,
                         bool charge_refetch = true);

/**
 * Non-oracle cache decay (Kaxiras-style, paper's Sleep(10K)): the line
 * must stay active for @p decay_interval idle cycles, then sleeps for
 * the remainder if the sleep sequence fits.  Adds the always-on decay
 * counter overhead from the technology parameters.
 */
PolicyPtr make_decay_sleep(const EnergyModel &model, Cycles decay_interval,
                           bool charge_refetch = true);

/**
 * Oracle hybrid with a minimum sleepable length @p min_sleep_length
 * (Fig. 7 sweep): sleep above it, otherwise drowsy wherever drowsy
 * beats active, otherwise active.
 */
PolicyPtr make_hybrid(const EnergyModel &model, Cycles min_sleep_length,
                      bool charge_refetch = true);

/**
 * The paper's OPT-Hybrid bound: the exact lower envelope of the three
 * mode energies (equivalently Hybrid(b)).
 */
PolicyPtr make_opt_hybrid(const EnergyModel &model,
                          bool charge_refetch = true);

/**
 * Non-oracle periodic drowsy cache (Flautner/Kim et al. [8], the
 * "simple" policy): every @p window cycles, ALL lines are put into
 * drowsy mode; a line wakes on its next access (paying the d3
 * transition, hidden here as in [8]'s noaccess variant).  Modeled per
 * interval: the line stays active until the next window boundary —
 * W/2 cycles away on average — then drowses for the remainder.
 * Intervals shorter than W/2 never reach a boundary and stay active.
 */
PolicyPtr make_periodic_drowsy(const EnergyModel &model, Cycles window,
                               bool charge_refetch = true);

/**
 * Prefetch-guided scheme (paper Section 5.2, Table 3).  Intervals whose
 * prefetch class is in @p allowed get the optimal mode for their
 * length; the rest stay active (variant A) or go drowsy (variant B).
 * Leading/Untouched intervals sleep (an invalid frame needs no
 * prediction to be gated); Trailing intervals count as
 * non-prefetchable.
 */
PolicyPtr make_prefetch(const EnergyModel &model, PrefetchVariant variant,
                        std::vector<interval::PrefetchClass> allowed,
                        bool charge_refetch = true);

/**
 * The design space the paper leaves as future work ("the best design
 * trade-off of power and performance is somewhere in between
 * Prefetch-A and Prefetch-B"): prefetchable intervals get the optimal
 * mode as in both variants, and NON-prefetchable intervals go drowsy
 * only when longer than @p drowsy_threshold cycles — each such drowse
 * risks a 1-2 cycle wakeup stall, so the threshold dials power
 * against performance.  drowsy_threshold = a reproduces Prefetch-B;
 * an infinite threshold reproduces Prefetch-A.
 */
PolicyPtr make_prefetch_blend(const EnergyModel &model,
                              Cycles drowsy_threshold,
                              std::vector<interval::PrefetchClass> allowed,
                              bool charge_refetch = true);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_POLICIES_HPP
