/**
 * @file
 * Tests of the exact policy evaluator: the histogram path must equal
 * the raw-interval reference bit-for-bit (modulo float summation
 * order), threshold-coverage violations must be caught, and the
 * aggregate bookkeeping (baseline, overheads, mode tallies) must add
 * up.
 */

#include <gtest/gtest.h>

#include "core/inflection.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "interval/interval_histogram.hpp"
#include "power/technology.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::Interval;
using interval::IntervalHistogramSet;
using interval::IntervalKind;
using interval::PrefetchClass;

namespace {

const EnergyModel &
model70()
{
    static const EnergyModel m(power::node_params(power::TechNode::Nm70));
    return m;
}

/** A deterministic, messy synthetic interval population. */
std::vector<Interval>
synthetic_population(std::uint64_t seed, std::size_t n)
{
    util::Rng rng(seed);
    std::vector<Interval> out;
    out.reserve(n + 40);
    for (std::size_t i = 0; i < n; ++i) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        // Mix of regimes: short, drowsy-range, medium, long, huge.
        switch (rng.next_below(5)) {
          case 0:
            iv.length = rng.next_below(8);
            break;
          case 1:
            iv.length = rng.next_in(7, 1057);
            break;
          case 2:
            iv.length = rng.next_in(1058, 10'000);
            break;
          case 3:
            iv.length = rng.next_in(10'001, 103'084);
            break;
          default:
            iv.length = rng.next_in(103'085, 5'000'000);
            break;
        }
        iv.pf = static_cast<PrefetchClass>(rng.next_below(3));
        iv.ends_in_reuse = rng.next_bool(0.6);
        out.push_back(iv);
    }
    // Boundary kinds.
    for (int i = 0; i < 20; ++i) {
        Interval lead;
        lead.kind = IntervalKind::Leading;
        lead.length = rng.next_below(100'000);
        lead.ends_in_reuse = false;
        out.push_back(lead);
        Interval trail;
        trail.kind = IntervalKind::Trailing;
        trail.length = rng.next_below(200'000);
        trail.ends_in_reuse = false;
        out.push_back(trail);
    }
    Interval untouched;
    untouched.kind = IntervalKind::Untouched;
    untouched.length = 6'000'000;
    out.push_back(untouched);
    return out;
}

/** Histogram set loaded from a raw population. */
IntervalHistogramSet
load(const std::vector<Interval> &raw, const Policy &policy,
     std::uint64_t frames, Cycles cycles)
{
    IntervalHistogramSet set =
        IntervalHistogramSet::with_default_edges(policy.thresholds());
    for (const Interval &iv : raw)
        set.add(iv);
    set.set_run_info(frames, cycles);
    return set;
}

} // namespace

/** The headline property: histogram evaluation == raw evaluation. */
class HistogramExactness
    : public ::testing::TestWithParam<std::uint64_t /*seed*/>
{
};

TEST_P(HistogramExactness, MatchesRawForEveryStockPolicy)
{
    const auto raw = synthetic_population(GetParam(), 4000);
    const std::uint64_t frames = 1024;
    const Cycles cycles = 7'000'000;

    std::vector<PolicyPtr> policies;
    policies.push_back(make_always_active(model70()));
    policies.push_back(make_opt_drowsy(model70()));
    policies.push_back(make_opt_sleep(model70(), 1057));
    policies.push_back(make_opt_sleep(model70(), 10'000));
    policies.push_back(make_decay_sleep(model70(), 10'000));
    policies.push_back(make_opt_hybrid(model70()));
    policies.push_back(make_hybrid(model70(), 4000));
    policies.push_back(make_prefetch(model70(), PrefetchVariant::A,
                                     {PrefetchClass::NextLine}));
    policies.push_back(make_prefetch(
        model70(), PrefetchVariant::B,
        {PrefetchClass::NextLine, PrefetchClass::Stride}));
    // Dead-block accounting variants exercise the reuse split.
    policies.push_back(make_opt_hybrid(model70(), false));
    policies.push_back(make_decay_sleep(model70(), 10'000, false));

    for (const auto &p : policies) {
        const auto set = load(raw, *p, frames, cycles);
        const SavingsResult via_hist = evaluate_policy(*p, set);
        const SavingsResult via_raw =
            evaluate_policy_raw(*p, raw, frames, cycles);
        const double tol = 1e-9 * std::max(1.0, via_raw.total);
        EXPECT_NEAR(via_hist.total, via_raw.total, tol) << p->name();
        EXPECT_NEAR(via_hist.savings, via_raw.savings, 1e-10)
            << p->name();
        EXPECT_EQ(via_hist.sleep_intervals, via_raw.sleep_intervals)
            << p->name();
        EXPECT_EQ(via_hist.drowsy_intervals, via_raw.drowsy_intervals)
            << p->name();
        EXPECT_EQ(via_hist.induced_misses, via_raw.induced_misses)
            << p->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramExactness,
                         ::testing::Values(1, 42, 20260706, 777, 31337));

TEST(Savings, BaselineAndAlwaysActive)
{
    const auto raw = synthetic_population(9, 500);
    const auto p = make_always_active(model70());
    const auto set = load(raw, *p, 64, 1'000'000);
    const SavingsResult r = evaluate_policy(*p, set);
    EXPECT_DOUBLE_EQ(r.baseline, 64.0 * 1'000'000.0);
    // AlwaysActive saves exactly the baseline-minus-interval-time gap;
    // with a fully partitioned timeline that would be 0, and with this
    // synthetic population the policy energy equals total length.
    EXPECT_DOUBLE_EQ(
        r.total, static_cast<double>(set.total_length()));
    EXPECT_EQ(r.induced_misses, 0u);
}

TEST(Savings, MissingThresholdEdgePanics)
{
    // Build a set WITHOUT the decay policy's thresholds: the evaluator
    // must refuse rather than silently return approximate numbers.
    const auto raw = synthetic_population(3, 100);
    IntervalHistogramSet set(std::vector<std::uint64_t>{0, 10, 1000});
    for (const auto &iv : raw)
        set.add(iv);
    set.set_run_info(16, 100'000);
    const auto p = make_decay_sleep(model70(), 10'000);
    EXPECT_DEATH((void)evaluate_policy(*p, set), "miss");
}

TEST(Savings, OverheadScalesWithBaseline)
{
    const auto raw = synthetic_population(5, 200);
    const auto p = make_decay_sleep(model70(), 10'000);
    const auto set = load(raw, *p, 128, 500'000);
    const SavingsResult r = evaluate_policy(*p, set);
    EXPECT_DOUBLE_EQ(r.overhead,
                     model70().tech().decay_counter_overhead * 128.0 *
                         500'000.0);
    EXPECT_GT(r.total, r.overhead);
}

TEST(Savings, CombineAggregatesEnergies)
{
    const auto p = make_opt_hybrid(model70());
    const auto raw_a = synthetic_population(11, 300);
    const auto raw_b = synthetic_population(12, 600);
    const auto ra =
        evaluate_policy_raw(*p, raw_a, 1024, 1'000'000);
    const auto rb =
        evaluate_policy_raw(*p, raw_b, 1024, 3'000'000);
    const SavingsResult sum = combine_results({ra, rb});
    EXPECT_DOUBLE_EQ(sum.baseline, ra.baseline + rb.baseline);
    EXPECT_DOUBLE_EQ(sum.total, ra.total + rb.total);
    EXPECT_NEAR(sum.savings, 1.0 - sum.total / sum.baseline, 1e-12);
    // The pooled savings must lie between the per-run savings.
    EXPECT_GE(sum.savings,
              std::min(ra.savings, rb.savings) - 1e-12);
    EXPECT_LE(sum.savings,
              std::max(ra.savings, rb.savings) + 1e-12);
}

TEST(Savings, ModeTalliesCoverEveryInterval)
{
    const auto raw = synthetic_population(21, 1000);
    const auto p = make_opt_hybrid(model70());
    const auto set = load(raw, *p, 512, 7'000'000);
    const SavingsResult r = evaluate_policy(*p, set);
    EXPECT_EQ(r.active_intervals + r.drowsy_intervals + r.sleep_intervals,
              raw.size());
}

TEST(Savings, OracleOrderingOnRealisticPopulation)
{
    // Scheme dominance the paper's Fig. 8 rests on, evaluated on a
    // synthetic population: OPT-Hybrid >= OPT-Sleep(b) >=
    // OPT-Sleep(10K) >= Sleep(10K), and OPT-Hybrid >= OPT-Drowsy.
    const auto raw = synthetic_population(77, 5000);
    const auto points = compute_inflection(model70());

    auto eval = [&](const PolicyPtr &p) {
        return evaluate_policy_raw(*p, raw, 1024, 7'000'000).savings;
    };
    const double hybrid = eval(make_opt_hybrid(model70()));
    const double opt_sleep_b =
        eval(make_opt_sleep(model70(), points.drowsy_sleep));
    const double opt_sleep_10k = eval(make_opt_sleep(model70(), 10'000));
    const double decay_10k = eval(make_decay_sleep(model70(), 10'000));
    const double drowsy = eval(make_opt_drowsy(model70()));

    EXPECT_GE(hybrid, opt_sleep_b - 1e-12);
    EXPECT_GE(opt_sleep_b, opt_sleep_10k - 1e-12);
    EXPECT_GE(opt_sleep_10k, decay_10k - 1e-12);
    EXPECT_GE(hybrid, drowsy - 1e-12);
}
