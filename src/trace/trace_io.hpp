/**
 * @file
 * Binary trace file writer/reader.
 *
 * Lets users capture the timed access stream of a run and re-analyze
 * it offline (or feed externally captured traces into the interval
 * machinery).  Format: 16-byte magic+version header followed by
 * fixed-width little-endian records (see trace/record_codec.hpp); no
 * compression (traces are intermediate artifacts here, not archives).
 *
 * IO is block-buffered: records are encoded into / decoded out of a
 * kBlockRecords-record memory block and hit the file one fread/fwrite
 * per block instead of one per 32-byte record, which is the difference
 * between syscall-bound and memcpy-bound streaming.  The on-disk
 * format is byte-identical to the original record-at-a-time code.
 *
 * Error model: constructors never kill the process.  An unopenable
 * path or a bad header latches status() (NotFound / IoError /
 * CorruptData), subsequent operations become no-ops, and the caller
 * decides whether the failure is fatal (CLI tools) or just one failed
 * job in a suite (the isolated runner).
 */

#ifndef LEAKBOUND_TRACE_TRACE_IO_HPP
#define LEAKBOUND_TRACE_TRACE_IO_HPP

#include <cstdio>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/record_codec.hpp"
#include "util/status.hpp"

namespace leakbound::trace {

/** Records per IO block (64KB blocks at 32B per record). */
inline constexpr std::size_t kBlockRecords = 2048;

/** Streams TimedAccess records to a binary file (RAII close). */
class TraceWriter
{
  public:
    /** Open @p path; latches status() if it cannot be created. */
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Whether the writer is usable (opened and no write error yet). */
    bool ok() const { return status_.ok(); }

    /** The latched error, if any. */
    const util::Status &status() const { return status_; }

    /** Append one record (buffered; no-op once status() is bad). */
    void write(const TimedAccess &rec);

    /**
     * Push buffered records to the file.  A short write latches and
     * returns an IoError Status; further writes become no-ops.
     */
    util::Status flush();

    /** Records written so far. */
    std::uint64_t count() const { return count_; }

  private:
    std::FILE *file_;
    util::Status status_;
    std::uint64_t count_ = 0;
    std::vector<unsigned char> buffer_; ///< encoded, not yet written
};

/** Reads a trace file written by TraceWriter. */
class TraceReader
{
  public:
    /**
     * Open @p path; latches status() on a missing file (NotFound),
     * unreadable file (IoError), or bad magic (CorruptData).
     */
    explicit TraceReader(const std::string &path);
    ~TraceReader();

    TraceReader(const TraceReader &) = delete;
    TraceReader &operator=(const TraceReader &) = delete;

    /** Whether the reader opened and validated the header. */
    bool ok() const { return status_.ok(); }

    /** The latched error, if any. */
    const util::Status &status() const { return status_; }

    /**
     * Read the next record; false at end of file (a trailing partial
     * record — a truncated file — also reads as end of file, matching
     * the historical record-at-a-time behaviour) and false always when
     * status() is bad — check status() to tell the cases apart.
     */
    bool next(TimedAccess &rec);

    /** Records read so far. */
    std::uint64_t count() const { return count_; }

  private:
    /** Refill the block buffer; false when no full record remains. */
    bool refill();

    std::FILE *file_;
    util::Status status_;
    std::uint64_t count_ = 0;
    std::vector<unsigned char> buffer_; ///< raw bytes read ahead
    std::size_t pos_ = 0;               ///< consumed bytes in buffer_
    std::size_t avail_ = 0;             ///< valid bytes in buffer_
};

} // namespace leakbound::trace

#endif // LEAKBOUND_TRACE_TRACE_IO_HPP
