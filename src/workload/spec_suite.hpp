/**
 * @file
 * The benchmark suite of the paper (Section 4.1): six SPEC2000-like
 * synthetic programs — ammp, applu, mesa, vortex, gcc, gzip — plus the
 * Figure 2 human-resources loop demo.
 *
 * We cannot ship SPEC binaries or traces; each benchmark here is a
 * synthetic program tuned to the locality signature the paper's
 * results rest on (DESIGN.md §3).  In one line each:
 *
 *   ammp   : FP; huge array sweeps + neighbour lists — very long
 *            D-cache intervals, small hot code
 *   applu  : FP; deep loop nests over multi-dimensional arrays —
 *            stride-prefetchable D-cache traffic
 *   mesa   : FP; medium call graph + vertex streaming — mixed
 *   vortex : INT; large OO code + pointer chasing — big I-footprint,
 *            non-prefetchable data
 *   gcc    : INT; very large multi-phase code, irregular data — the
 *            hardest I-cache case
 *   gzip   : INT; tiny hot loops + buffer streaming — next-line
 *            heaven in the D-cache, trivial I-cache
 *
 * Three analytically-eligible extras — stream, stencil, chase — have
 * constant trip counts and deterministic data patterns, so the
 * analytic engine (src/analytic) can prove their periodicity and skip
 * ahead.  They are accepted by make_benchmark()/is_benchmark() but are
 * NOT in suite_names(): stock suite reports (and the committed bench
 * JSONs built from them) are unchanged.
 */

#ifndef LEAKBOUND_WORKLOAD_SPEC_SUITE_HPP
#define LEAKBOUND_WORKLOAD_SPEC_SUITE_HPP

#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace leakbound::workload {

/** The six benchmark names in the paper's plotting order. */
const std::vector<std::string> &suite_names();

/**
 * Build a benchmark by name ("ammp", "applu", "gcc", "gzip", "mesa",
 * "vortex", or the analytic extras "stream", "stencil", "chase");
 * fatal() on unknown names.
 * @param seed 0 selects the benchmark's default seed.
 */
WorkloadPtr make_benchmark(const std::string &name, std::uint64_t seed = 0);

/**
 * Whether make_benchmark() accepts @p name — a cheap validity probe
 * (no workload is constructed) for callers that want the unknown-name
 * fatal() on their own thread before fanning jobs out to workers.
 */
bool is_benchmark(const std::string &name);

/**
 * The paper's Figure 2 example: a yearly loop whose inner loop's trip
 * count (|high(i) - low(i)|) controls the re-access interval of the
 * `add` instruction.  @p inner_min / @p inner_max bound that count.
 */
WorkloadPtr make_hr_loop(std::uint64_t inner_min = 2,
                         std::uint64_t inner_max = 256,
                         std::uint64_t seed = 1);

} // namespace leakbound::workload

#endif // LEAKBOUND_WORKLOAD_SPEC_SUITE_HPP
