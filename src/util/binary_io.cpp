/**
 * @file
 * Implementation of the binary IO primitives.
 */

#include "util/binary_io.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "util/fault_injection.hpp"

namespace leakbound::util {

namespace {

/**
 * fsync the directory containing @p path so a just-renamed entry's
 * directory record survives power loss.  fsync on the file alone only
 * persists its *contents*; the rename that published it lives in the
 * directory, and until that is synced a crash can silently roll the
 * publish back.  Directories that refuse open/fsync (some network and
 * pseudo filesystems) are treated as an IoError the caller can degrade
 * on, like every other publication failure.
 */
bool
sync_parent_dir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace

void
BinaryWriter::put_u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
BinaryWriter::put_u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
BinaryWriter::put_double(double v)
{
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    put_u64(bits);
}

void
BinaryWriter::put_string(const std::string &s)
{
    put_u64(s.size());
    out_.append(s);
}

void
BinaryWriter::put_u64_vector(const std::vector<std::uint64_t> &v)
{
    put_u64(v.size());
    for (std::uint64_t x : v)
        put_u64(x);
}

bool
BinaryReader::want(std::size_t n)
{
    if (failed_ || n > size_ - pos_) {
        failed_ = true;
        return false;
    }
    return true;
}

std::uint8_t
BinaryReader::get_u8()
{
    if (!want(1))
        return 0;
    return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t
BinaryReader::get_u32()
{
    if (!want(4))
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t
BinaryReader::get_u64()
{
    if (!want(8))
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(data_[pos_ + i]))
             << (8 * i);
    pos_ += 8;
    return v;
}

double
BinaryReader::get_double()
{
    const std::uint64_t bits = get_u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
BinaryReader::get_string()
{
    const std::uint64_t n = get_u64();
    // The length prefix itself must be covered by the remaining bytes;
    // this rejects absurd lengths from corrupt input before allocating.
    if (failed_ || n > size_ - pos_) {
        failed_ = true;
        return {};
    }
    std::string s(data_ + pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
}

std::vector<std::uint64_t>
BinaryReader::get_u64_vector()
{
    const std::uint64_t n = get_u64();
    if (failed_ || n > (size_ - pos_) / 8) {
        failed_ = true;
        return {};
    }
    std::vector<std::uint64_t> v;
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i)
        v.push_back(get_u64());
    return v;
}

Status
write_file_atomic(const std::string &path, const std::string &contents)
{
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    std::FILE *file = fault::should_fail(fault::Site::OpenWrite, path)
                          ? nullptr
                          : std::fopen(tmp.c_str(), "wb");
    if (!file) {
        return Status(ErrorKind::IoError,
                      "cannot create file: " + tmp);
    }
    bool wrote =
        std::fwrite(contents.data(), 1, contents.size(), file) ==
        contents.size();
    if (wrote && fault::should_fail(fault::Site::ShortWrite, path))
        wrote = false;
    // Flush user buffers and the kernel page cache before the rename
    // publishes the file, so a crash never leaves a short entry under
    // the final name.
    bool synced = wrote && std::fflush(file) == 0 &&
                  ::fsync(::fileno(file)) == 0;
    if (synced && fault::should_fail(fault::Site::Enospc, path))
        synced = false;
    std::fclose(file);
    if (!synced) {
        std::remove(tmp.c_str());
        return Status(ErrorKind::IoError,
                      std::string(wrote ? "cannot flush " : "short write to ") +
                          tmp);
    }
    if (fault::should_fail(fault::Site::RenameTorn, path)) {
        // Model a torn publish: half the bytes land under the final
        // name, the temporary is gone, and the caller sees success.
        // Only content verification (the cache's length/checksum
        // checks) can catch this later — which is exactly the failure
        // mode this site exists to exercise.
        std::FILE *torn = std::fopen(path.c_str(), "wb");
        if (torn) {
            std::fwrite(contents.data(), 1, contents.size() / 2, torn);
            std::fclose(torn);
        }
        std::remove(tmp.c_str());
        return Status();
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return Status(ErrorKind::IoError,
                      "cannot rename " + tmp + " to " + path);
    }
    // The rename is only durable once the directory entry reaches the
    // disk; without this, a power cut after "successful" publication
    // can resurrect the old entry (or none at all).
    bool dir_synced = sync_parent_dir(path);
    if (dir_synced && fault::should_fail(fault::Site::Enospc, path))
        dir_synced = false;
    if (!dir_synced) {
        return Status(ErrorKind::IoError,
                      "cannot fsync directory of " + path);
    }
    return Status();
}

Status
read_file_bytes(const std::string &path, std::string &out)
{
    if (fault::should_fail(fault::Site::OpenRead, path))
        return Status(ErrorKind::IoError, "cannot open " + path);
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (!file) {
        if (errno == ENOENT) {
            return Status(ErrorKind::NotFound,
                          "no such file: " + path);
        }
        return Status(ErrorKind::IoError, "cannot open " + path);
    }
    out.clear();
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0)
        out.append(buf, n);
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok)
        return Status(ErrorKind::IoError, "read error on " + path);
    return Status();
}

} // namespace leakbound::util
