/**
 * @file
 * Closed-form per-interval leakage energy model (paper Eq. 1-3).
 *
 * For one cache frame resting for L cycles between accesses, each
 * operating mode costs:
 *
 *   E_active(L) = P_A * L
 *   E_drowsy(L) = P_A*(d1+d3) + P_D*(L-d1-d3)
 *   E_sleep(L)  = P_A*(s1+s3+s4) + P_S*(L-s1-s3-s4) + CD
 *
 * Transitions (and the s4 re-fetch wait) are charged at full active
 * power.  This matches the paper's definitions exactly: with it, the
 * active-drowsy inflection point is *precisely* a = d1 + d3 (the
 * length at which E_drowsy ties E_active), which is how Section 3.2
 * defines it.  CD is the dynamic energy of the induced-miss re-fetch.  Leading/Trailing/
 * Untouched intervals drop the overheads that don't apply to them
 * (see interval::IntervalKind).  Every formula is linear in L, which
 * core::evaluate_policy exploits for exact histogram evaluation.
 */

#ifndef LEAKBOUND_CORE_ENERGY_MODEL_HPP
#define LEAKBOUND_CORE_ENERGY_MODEL_HPP

#include "interval/interval.hpp"
#include "power/technology.hpp"
#include "util/types.hpp"

namespace leakbound::core {

/** The three operating modes of the paper's model (Fig. 6 states). */
enum class Mode : std::uint8_t { Active, Drowsy, Sleep };

/** Printable mode name. */
const char *mode_name(Mode mode);

/** Slope/intercept of a linear energy function E(L) = slope*L + icept. */
struct LinearEnergy
{
    double slope = 0.0;
    double intercept = 0.0;

    /** Evaluate at length @p length. */
    Energy at(Cycles length) const
    {
        return slope * static_cast<double>(length) + intercept;
    }
};

/**
 * Evaluates the mode energies of paper Eq. 1-2 for a technology node.
 * Immutable after construction; cheap to copy.
 */
class EnergyModel
{
  public:
    /** @param tech validated technology parameters. */
    explicit EnergyModel(const power::TechnologyParams &tech);

    /** The underlying technology parameters. */
    const power::TechnologyParams &tech() const { return tech_; }

    /**
     * Can @p mode be applied to an interval of @p length cycles of the
     * given @p kind?  A mode fits only if its transition durations fit
     * inside the interval.
     */
    bool applicable(Mode mode, Cycles length,
                    interval::IntervalKind kind) const;

    /** Minimum length at which @p mode fits a @p kind interval. */
    Cycles min_length(Mode mode, interval::IntervalKind kind) const;

    /**
     * Energy of one interval under @p mode.  Panics if the mode is not
     * applicable (policies must check first).
     *
     * @param charge_refetch charge CD on slept Inner intervals; pass
     *        false to model dead-block-aware accounting (ablation).
     */
    Energy energy(Mode mode, Cycles length, interval::IntervalKind kind,
                  bool charge_refetch = true) const;

    /** Slope/intercept of E_mode(L) for the given kind. */
    LinearEnergy linear(Mode mode, interval::IntervalKind kind,
                        bool charge_refetch = true) const;

    /**
     * The minimum-energy applicable mode for the interval (the lower
     * envelope of paper Fig. 10).  Ties resolve to the lower-power
     * mode (Sleep < Drowsy < Active).
     */
    Mode optimal_mode(Cycles length, interval::IntervalKind kind,
                      bool charge_refetch = true) const;

    /** Energy of the optimal mode. */
    Energy optimal_energy(Cycles length, interval::IntervalKind kind,
                          bool charge_refetch = true) const;

  private:
    power::TechnologyParams tech_;
};

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_ENERGY_MODEL_HPP
