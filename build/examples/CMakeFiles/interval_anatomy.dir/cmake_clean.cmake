file(REMOVE_RECURSE
  "CMakeFiles/interval_anatomy.dir/interval_anatomy.cpp.o"
  "CMakeFiles/interval_anatomy.dir/interval_anatomy.cpp.o.d"
  "interval_anatomy"
  "interval_anatomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interval_anatomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
