/**
 * @file
 * The paper's Figure 6 state model: Active / Drowsy / Sleep states with
 * per-state static power and per-edge transition energies, simulated
 * cycle by cycle.
 *
 * The closed forms in core::EnergyModel are derived from exactly this
 * machine; StateModel exists to *prove* that by brute force (the test
 * suite asserts per-cycle accumulation equals the closed form for
 * every mode, kind and a sweep of lengths), and to expose the Fig. 6
 * edge weights (E_AD, E_DA, E_AS, E_SA) programmatically.
 */

#ifndef LEAKBOUND_CORE_STATE_MODEL_HPP
#define LEAKBOUND_CORE_STATE_MODEL_HPP

#include <vector>

#include "core/energy_model.hpp"
#include "interval/interval.hpp"
#include "power/technology.hpp"

namespace leakbound::core {

/** The Fig. 6 edge weights (transition energy consumptions). */
struct TransitionEnergies
{
    Energy active_to_drowsy = 0.0; ///< E_AD: d1 cycles of ramp
    Energy drowsy_to_active = 0.0; ///< E_DA: d3 cycles of ramp
    Energy active_to_sleep = 0.0;  ///< E_AS: s1 cycles of ramp
    /** E_SA: s3+s4 cycles of wakeup + the induced-miss re-fetch CD. */
    Energy sleep_to_active = 0.0;
};

/** Derive the Fig. 6 edge weights from a technology node. */
TransitionEnergies transition_energies(const power::TechnologyParams &tech,
                                       bool charge_refetch = true);

/**
 * Cycle-accurate simulator of the three-state power model.
 */
class StateModel
{
  public:
    /** One stretch of residency in a state. */
    struct Segment
    {
        Mode mode;      ///< state occupied
        Cycles resident; ///< cycles spent in the state (excl. ramps)
    };

    explicit StateModel(const power::TechnologyParams &tech);

    /** Static power of a state (the P(...) node labels of Fig. 6). */
    Power state_power(Mode mode) const;

    /**
     * Per-cycle simulation of one access interval spent in @p mode,
     * including the entry/exit ramps and re-fetch the interval's kind
     * implies.  Equals EnergyModel::energy() (tested property).
     */
    Energy simulate_interval(Mode mode, Cycles length,
                             interval::IntervalKind kind,
                             bool charge_refetch = true) const;

    /**
     * Simulate an arbitrary schedule of residencies; transition edges
     * are charged between consecutive segments of different modes.
     * The schedule is assumed to start and end in Active (an access on
     * each side), so a leading/trailing non-Active segment pays its
     * entry/exit edges too.
     */
    Energy simulate_schedule(const std::vector<Segment> &schedule,
                             bool charge_refetch = true) const;

  private:
    power::TechnologyParams tech_;
};

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_STATE_MODEL_HPP
