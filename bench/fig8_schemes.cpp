/**
 * @file
 * Reproduces paper Figure 8: per-benchmark leakage power savings for
 * the six schemes — OPT-Drowsy, Sleep(10K), OPT-Sleep(10K),
 * OPT-Hybrid, Prefetch-A, Prefetch-B — on both L1 caches at 70nm,
 * plus the suite average.
 *
 * Paper reference (averages, 70nm): I-cache OPT-Hybrid 96.4%, 26
 * points above Sleep(10K), 16 above OPT-Sleep(10K), 30 above
 * OPT-Drowsy; D-cache OPT-Hybrid 99.1%, 15 above Sleep(10K);
 * Prefetch-B within 5.3 (I) / 6.7 (D) points of the bound.
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("fig8_schemes",
                        "Figure 8: scheme comparison per benchmark");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    struct Scheme
    {
        const char *column;
        core::PolicyPtr icache;
        core::PolicyPtr dcache;
    };
    using interval::PrefetchClass;
    const std::vector<PrefetchClass> icls = {PrefetchClass::NextLine};
    const std::vector<PrefetchClass> dcls = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};
    std::vector<Scheme> schemes;
    schemes.push_back({"OPT-Drowsy", core::make_opt_drowsy(model),
                       core::make_opt_drowsy(model)});
    schemes.push_back({"Sleep(10K)",
                       core::make_decay_sleep(model, 10'000),
                       core::make_decay_sleep(model, 10'000)});
    schemes.push_back({"OPT-Sleep(10K)",
                       core::make_opt_sleep(model, 10'000),
                       core::make_opt_sleep(model, 10'000)});
    schemes.push_back({"OPT-Hybrid", core::make_opt_hybrid(model),
                       core::make_opt_hybrid(model)});
    schemes.push_back(
        {"Prefetch-A",
         core::make_prefetch(model, core::PrefetchVariant::A, icls),
         core::make_prefetch(model, core::PrefetchVariant::A, dcls)});
    schemes.push_back(
        {"Prefetch-B",
         core::make_prefetch(model, core::PrefetchVariant::B, icls),
         core::make_prefetch(model, core::PrefetchVariant::B, dcls)});

    for (CacheSide side : {CacheSide::Instruction, CacheSide::Data}) {
        const bool icache = side == CacheSide::Instruction;
        util::Table table(icache
                              ? "Figure 8(a) Instruction Cache: leakage "
                                "power savings, 70nm"
                              : "Figure 8(b) Data Cache: leakage power "
                                "savings, 70nm");
        std::vector<std::string> header = {"benchmark"};
        for (const Scheme &s : schemes)
            header.push_back(s.column);
        table.set_header(header);

        // One pooled pass over the whole scheme x benchmark grid.
        std::vector<const core::Policy *> policies;
        for (const Scheme &s : schemes)
            policies.push_back(icache ? s.icache.get() : s.dcache.get());
        const GridEvaluation grid =
            evaluate_grid(policies, runs, side, cli);

        for (std::size_t r = 0; r < runs.size(); ++r) {
            std::vector<std::string> row = {runs[r].workload};
            for (std::size_t s = 0; s < schemes.size(); ++s)
                row.push_back(pct(grid.cells[s][r].savings));
            table.add_row(row);
        }
        table.add_separator();
        std::vector<std::string> avg = {"average"};
        for (std::size_t s = 0; s < schemes.size(); ++s)
            avg.push_back(pct(grid.averages[s].savings));
        table.add_row(avg);
        emit(table, cli, icache ? "fig8a_icache" : "fig8b_dcache");
        std::printf("paper averages (%s): OPT-Drowsy %s, Sleep(10K) %s, "
                    "OPT-Sleep(10K) %s, OPT-Hybrid %s, Prefetch-B %s\n\n",
                    icache ? "I-cache" : "D-cache",
                    icache ? "66.4%" : "66.1%",
                    icache ? "~70.4%" : "~84.1%",
                    icache ? "~80.4%" : "~87.0%",
                    icache ? "96.4%" : "99.1%",
                    icache ? "~91.1%" : "92.4%");
    }
    return bench::finish(cli);
}
