/**
 * @file
 * Call-graph walker workload.
 *
 * Models programs whose instruction working set far exceeds the L1I
 * (gcc, vortex): a population of functions of varying sizes laid out
 * contiguously, connected by a locality-biased random call graph.
 * Execution walks the graph, running each function's straight-line
 * body (optionally several times — a hot internal loop) before
 * calling out.  The walk keeps a hot neighbourhood while slowly
 * drifting, producing the broad I-cache interval spectra large codes
 * exhibit.
 */

#ifndef LEAKBOUND_WORKLOAD_CALLGRAPH_HPP
#define LEAKBOUND_WORKLOAD_CALLGRAPH_HPP

#include <vector>

#include "util/random.hpp"
#include "workload/data_pattern.hpp"
#include "workload/workload.hpp"

namespace leakbound::workload {

/** Shape of the synthetic call graph. */
struct CallGraphSpec
{
    std::uint32_t num_functions = 256;
    std::uint32_t min_instrs = 32;    ///< function body size range
    std::uint32_t max_instrs = 1024;
    std::uint32_t fanout = 4;         ///< callees per function
    double locality = 0.75;           ///< P(callee is a near neighbour)
    std::uint32_t neighbourhood = 12; ///< "near" = within this index gap
    std::uint32_t repeat_min = 1;     ///< body repeats per visit
    std::uint32_t repeat_max = 3;
    double mem_fraction = 0.3;        ///< memory instructions per body
    double store_fraction = 0.3;
};

/** The call-graph workload. */
class CallGraphProgram final : public Workload
{
  public:
    /**
     * @param name benchmark name
     * @param code_base PC of the first function
     * @param spec graph shape
     * @param patterns data-pattern pool; functions are assigned
     *        patterns round-robin with a seeded shuffle
     * @param seed drives layout and the walk
     */
    CallGraphProgram(std::string name, Pc code_base,
                     const CallGraphSpec &spec,
                     std::vector<DataPatternPtr> patterns,
                     std::uint64_t seed);

    std::string name() const override { return name_; }
    bool next(trace::MicroOp &op) override;
    std::size_t next_batch(trace::MicroOp *out, std::size_t max) override;
    void reset() override;

    /** Static code footprint in bytes. */
    std::uint64_t code_bytes() const { return code_bytes_; }

  private:
    struct Function
    {
        Pc base_pc = 0;
        std::vector<trace::InstrKind> kinds;
        std::vector<std::uint32_t> callees;
        int pattern = -1;
    };

    void start_run();
    void enter(std::uint32_t function);

    std::string name_;
    CallGraphSpec spec_;
    std::vector<Function> functions_;
    std::uint64_t code_bytes_ = 0;
    std::vector<DataPatternPtr> patterns_;
    std::uint64_t seed_;

    util::Rng run_rng_;
    std::uint32_t current_ = 0;
    std::uint32_t repeats_left_ = 0;
    std::uint32_t instr_idx_ = 0;
};

} // namespace leakbound::workload

#endif // LEAKBOUND_WORKLOAD_CALLGRAPH_HPP
