/**
 * @file
 * Tests of the extension features: the periodic-drowsy literature
 * baseline, next-line timeliness, and their interaction with the
 * evaluator.
 */

#include <gtest/gtest.h>

#include <limits>

#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/savings.hpp"
#include "power/technology.hpp"
#include "prefetch/next_line.hpp"
#include "util/random.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::Interval;
using interval::IntervalKind;
using interval::PrefetchClass;

namespace {

const EnergyModel &
model70()
{
    static const EnergyModel m(power::node_params(power::TechNode::Nm70));
    return m;
}

Energy
inner(const Policy &p, Cycles len)
{
    return p.interval_energy(len, IntervalKind::Inner,
                             PrefetchClass::NonPrefetchable, true);
}

} // namespace

// -------------------------------------------------------- periodic drowsy

TEST(PeriodicDrowsy, ActiveUntilWindowBoundary)
{
    const auto p = make_periodic_drowsy(model70(), 4000);
    // Shorter than the expected boundary wait (2000): fully active.
    EXPECT_DOUBLE_EQ(inner(*p, 1500), 1500.0);
    // Longer: 2000 active + drowsy remainder (with transitions).
    EXPECT_NEAR(inner(*p, 8000), 2000.0 + 6.0 + (6000.0 - 6.0) / 3.0,
                1e-9);
    EXPECT_FALSE(p->is_oracle());
    EXPECT_EQ(p->name(), "Drowsy(4K)");
}

TEST(PeriodicDrowsy, NeverBeatsOptDrowsy)
{
    // The oracle drowsy policy bounds the periodic heuristic pointwise.
    const auto opt = make_opt_drowsy(model70());
    for (Cycles window : {Cycles{500}, Cycles{4000}, Cycles{32000}}) {
        const auto periodic = make_periodic_drowsy(model70(), window);
        for (Cycles len = 0; len < 100'000; len += 331) {
            EXPECT_LE(inner(*opt, len), inner(*periodic, len) + 1e-9)
                << "window=" << window << " len=" << len;
        }
    }
}

TEST(PeriodicDrowsy, ShorterWindowSavesMore)
{
    const auto fast = make_periodic_drowsy(model70(), 1000);
    const auto slow = make_periodic_drowsy(model70(), 16000);
    for (Cycles len = 0; len < 100'000; len += 497)
        EXPECT_LE(inner(*fast, len), inner(*slow, len) + 1e-9) << len;
}

TEST(PeriodicDrowsy, InvalidFramesAlreadyDrowsed)
{
    const auto p = make_periodic_drowsy(model70(), 4000);
    EXPECT_NEAR(p->interval_energy(9000, IntervalKind::Untouched,
                                   PrefetchClass::NonPrefetchable, false),
                9000.0 / 3.0, 1e-9);
}

TEST(PeriodicDrowsy, HistogramEvaluationMatchesRaw)
{
    util::Rng rng(5);
    std::vector<Interval> raw;
    for (int i = 0; i < 3000; ++i) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = rng.next_below(1 << 17);
        raw.push_back(iv);
    }
    const auto p = make_periodic_drowsy(model70(), 4000);
    auto set = interval::IntervalHistogramSet::with_default_edges(
        p->thresholds());
    for (const auto &iv : raw)
        set.add(iv);
    set.set_run_info(256, 1'000'000);
    const auto hist = evaluate_policy(*p, set);
    const auto ref = evaluate_policy_raw(*p, raw, 256, 1'000'000);
    EXPECT_NEAR(hist.savings, ref.savings, 1e-10);
}

// ------------------------------------------------------ prefetch blend

TEST(PrefetchBlend, EndpointsReproduceAandB)
{
    const std::vector<PrefetchClass> both = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};
    const auto a = make_prefetch(model70(), PrefetchVariant::A, both);
    const auto b = make_prefetch(model70(), PrefetchVariant::B, both);
    const auto c_inf = make_prefetch_blend(
        model70(), std::numeric_limits<Cycles>::max(), both);
    const auto c_a = make_prefetch_blend(model70(), 6, both);

    for (Cycles len = 0; len < 50'000; len += 211) {
        for (PrefetchClass pf :
             {PrefetchClass::NonPrefetchable, PrefetchClass::NextLine,
              PrefetchClass::Stride}) {
            for (auto kind :
                 {IntervalKind::Inner, IntervalKind::Trailing}) {
                EXPECT_DOUBLE_EQ(
                    c_inf->interval_energy(len, kind, pf, true),
                    a->interval_energy(len, kind, pf, true))
                    << "len=" << len;
                EXPECT_DOUBLE_EQ(
                    c_a->interval_energy(len, kind, pf, true),
                    b->interval_energy(len, kind, pf, true))
                    << "len=" << len;
            }
        }
    }
}

TEST(PrefetchBlend, MonotoneInThreshold)
{
    // A smaller drowsy threshold can only save more energy.
    const std::vector<PrefetchClass> both = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};
    const auto tight = make_prefetch_blend(model70(), 100, both);
    const auto loose = make_prefetch_blend(model70(), 10'000, both);
    for (Cycles len = 0; len < 100'000; len += 379) {
        EXPECT_LE(tight->interval_energy(len, IntervalKind::Inner,
                                         PrefetchClass::NonPrefetchable,
                                         true),
                  loose->interval_energy(len, IntervalKind::Inner,
                                         PrefetchClass::NonPrefetchable,
                                         true) +
                      1e-9)
            << len;
    }
}

TEST(PrefetchBlend, NameEncodesThreshold)
{
    const std::vector<PrefetchClass> nl = {PrefetchClass::NextLine};
    EXPECT_EQ(make_prefetch_blend(model70(), 1000, nl)->name(),
              "Prefetch-C(1K)");
    EXPECT_EQ(make_prefetch_blend(model70(),
                                  std::numeric_limits<Cycles>::max(), nl)
                  ->name(),
              "Prefetch-C(inf)");
}

// ------------------------------------------------------- NL timeliness

TEST(NextLineTimeliness, LeadTimeTightensCoverage)
{
    prefetch::NextLineMonitor m;
    m.record(99, 995); // trigger lands 5 cycles before the close
    // Paper accounting (no lead time): covered.
    EXPECT_TRUE(m.covers(100, 900, 1000, 0));
    // The sleep exit path needs 7 cycles: too late.
    EXPECT_FALSE(m.covers(100, 900, 1000, 7));
    // A trigger early enough passes both.
    m.record(199, 950);
    EXPECT_TRUE(m.covers(200, 900, 1000, 7));
    EXPECT_TRUE(m.covers(200, 900, 1000, 50));
    // But not if the lead requirement exceeds its margin.
    EXPECT_FALSE(m.covers(200, 900, 1000, 51));
}

TEST(NextLineTimeliness, LegacyOverloadIsZeroLead)
{
    prefetch::NextLineMonitor m;
    m.record(7, 500);
    EXPECT_EQ(m.covers(8, 400), m.covers(8, 400, ~0ULL, 0));
}

TEST(NextLineTimeliness, ExperimentLeadReducesPrefetchability)
{
    // End to end: requiring lead time can only shrink (never grow) the
    // set of NL-covered intervals, so Prefetch-B can only lose savings.
    auto run_with_lead = [](Cycles lead) {
        ExperimentConfig config;
        config.instructions = 150'000;
        config.extra_edges = standard_extra_edges();
        config.nl_lead_time = lead;
        auto w = workload::make_benchmark("gzip");
        return run_experiment(*w, config);
    };
    const auto strict = run_with_lead(40);
    const auto paper = run_with_lead(0);

    const auto policy = make_prefetch(
        model70(), PrefetchVariant::B,
        {PrefetchClass::NextLine, PrefetchClass::Stride});
    const double strict_savings =
        evaluate_policy(*policy, strict.dcache.intervals).savings;
    const double paper_savings =
        evaluate_policy(*policy, paper.dcache.intervals).savings;
    EXPECT_LE(strict_savings, paper_savings + 1e-9);
}
