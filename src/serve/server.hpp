/**
 * @file
 * The leakboundd server: an edge-triggered epoll event loop over
 * non-blocking sockets, connection state machines, stats, drain.
 *
 * Threading/ownership model (DESIGN.md §6): the thread that calls
 * serve() runs the event loop and is the ONLY thread that ever touches
 * a connection — sockets, buffers, reply queues all live and die on
 * the loop.  Compute lives in the Scheduler's fixed worker pool; the
 * loop hands a decoded run request to Scheduler::submit_async and
 * moves on, so 10k idle-or-slow clients cost zero threads and zero
 * per-connection wakeups.  Workers deliver rendered response bytes
 * into a mutex-guarded completion queue and kick an eventfd; the loop
 * drains the queue, matches completions to their connection by
 * (connection id, reply sequence) — both survive the connection's
 * death, so a completion for a vanished client is dropped, never a
 * use-after-free — and resumes partial writes under EPOLLOUT.  On
 * SIGINT/SIGTERM or request_drain() the loop stops accepting, drains
 * the scheduler (in-flight experiments finish, queued ones fail with
 * ShuttingDown), flushes every answered connection within a bounded
 * grace period, and closes everything before serve() returns.
 */

#ifndef LEAKBOUND_SERVE_SERVER_HPP
#define LEAKBOUND_SERVE_SERVER_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/scheduler.hpp"
#include "util/net.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace leakbound::serve {

/** Shape of one daemon instance. */
struct ServerConfig
{
    /** Unix-domain socket path ("" = no unix listener). */
    std::string unix_path;
    /** TCP listen address; used when listen_tcp is true. */
    std::string tcp_host = "127.0.0.1";
    std::uint16_t tcp_port = 0; ///< 0 = kernel-assigned ephemeral port
    bool listen_tcp = false;
    /** Ceiling a request's "instructions" must stay under. */
    std::uint64_t max_instructions = core::kDefaultMaxRequestInstructions;
    /** Frame payload cap for both directions. */
    std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
    /** Concurrent connections; accepts beyond this are turned away. */
    unsigned max_sessions = 10'000;
    /** Event-loop wait ceiling (drain/interrupt latency upper bound). */
    int poll_interval_ms = 100;
    /** Grace period for flushing answered connections on drain. */
    int drain_flush_ms = 2'000;
    /**
     * Fleet position reported by /health (-1 = standalone daemon).
     * The supervisor stamps this when forking shards.
     */
    int shard_index = -1;
    /**
     * Write end of the supervisor's heartbeat pipe (-1 = none).  The
     * event loop writes one byte per interval from its own thread, so
     * a heartbeat proves the loop itself is turning, not merely that
     * the process exists.  Not owned: the supervisor child closes it
     * via process exit.
     */
    int heartbeat_fd = -1;
    int heartbeat_interval_ms = 250;
    SchedulerConfig scheduler;
};

/** One daemon: construct, start(), serve(); thread-safe stats/drain. */
class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the configured listeners (call once, before serve()). */
    util::Status start();

    /** The bound TCP port (after start(); 0 when no TCP listener). */
    std::uint16_t tcp_port() const { return tcp_port_; }

    /**
     * Run the event loop on the calling thread until an interrupt or
     * request_drain(), then drain and flush everything.  Returns ok on
     * a clean drain.
     */
    util::Status serve();

    /** Ask serve() to drain and return (thread-safe, idempotent). */
    void request_drain()
    {
        drain_requested_.store(true);
        wakeup_.signal();
    }

    /** Assemble the /stats view (also what sessions reply with). */
    StatsSnapshot stats() const;

    /** Assemble the /health view (cheap; never touches the scheduler). */
    HealthSnapshot health() const;

  private:
    /** One queued response frame, in request order. */
    struct Reply
    {
        std::uint64_t seq = 0;
        bool ready = false;
        /** Whether this reply's latency is recorded (run requests). */
        bool timed = false;
        std::chrono::steady_clock::time_point begun;
        std::shared_ptr<const std::string> frame;
    };

    /**
     * One client connection's entire state machine, owned by the
     * event loop: accumulate bytes → peel frames → dispatch → queue
     * replies in request order → write with partial-write resumption.
     */
    struct Connection
    {
        util::net::Socket socket;
        std::uint64_t id = 0;
        /** Unparsed inbound bytes ([inoff, size) is live). */
        std::string inbuf;
        std::size_t inoff = 0;
        /** Replies in request order; front is next on the wire. */
        std::deque<Reply> replies;
        std::uint64_t next_seq = 0;
        /** Outbound bytes mid-flight ([outoff, size) unsent). */
        std::string outbuf;
        std::size_t outoff = 0;
        bool want_write = false;      ///< EPOLLOUT armed
        bool peer_closed = false;     ///< read side saw EOF
        bool close_after_flush = false; ///< hang up once drained
        bool shed = false;            ///< overload-rejected; not live
    };

    /** A worker's finished response en route to the loop. */
    struct PendingCompletion
    {
        std::uint64_t connection_id = 0;
        std::uint64_t seq = 0;
        std::shared_ptr<const std::string> response;
    };

    void accept_pending(const util::net::Socket &listener);
    void handle_readable(Connection *connection);
    /** Peel complete frames off inbuf and dispatch each. */
    void parse_frames(Connection *connection);
    void dispatch(Connection *connection, const std::string &payload);
    /** Queue an already-rendered reply (ping/stats/errors). */
    void enqueue_ready(Connection *connection, std::string frame,
                       bool timed = false,
                       std::chrono::steady_clock::time_point begun = {});
    /** Move ready replies into outbuf and push bytes to the socket. */
    void flush_writes(Connection *connection);
    void update_write_interest(Connection *connection);
    void destroy(Connection *connection);
    void drain_completions();
    /** Thread-safe: workers (or the loop) post a finished response. */
    void queue_completion(std::uint64_t connection_id, std::uint64_t seq,
                          std::shared_ptr<const std::string> response);
    void note_protocol_error();
    /** Flush answered connections after drain, bounded by grace. */
    void drain_flush();
    /** Pulse the supervisor's heartbeat pipe when due (no-op unpiped). */
    void emit_heartbeat();

    ServerConfig config_;
    std::unique_ptr<Scheduler> scheduler_;
    util::net::Socket unix_listener_;
    util::net::Socket tcp_listener_;
    std::uint16_t tcp_port_ = 0;
    bool started_ = false;
    std::atomic<bool> drain_requested_{false};
    std::chrono::steady_clock::time_point started_at_;
    std::chrono::steady_clock::time_point next_heartbeat_at_;

    // ---- event loop state: touched only by the serve() thread ----
    util::net::Epoll epoll_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Connection>>
        connections_;
    std::uint64_t next_connection_id_ = 100; ///< ids < 100 are reserved tags
    /** Live (non-shed) connections; atomic only so stats() may read. */
    std::atomic<std::uint64_t> live_connections_{0};
    std::vector<util::net::EpollEvent> events_;

    // ---- worker → loop handoff ----
    util::net::WakeupFd wakeup_;
    std::mutex completions_mutex_;
    std::deque<PendingCompletion> completions_;

    mutable std::mutex mutex_; ///< guards the stats counters below
    std::uint64_t sessions_accepted_ = 0;
    std::uint64_t sessions_rejected_ = 0;
    std::uint64_t protocol_errors_ = 0;
    util::LatencyRecorder latency_ms_;
};

} // namespace leakbound::serve

#endif // LEAKBOUND_SERVE_SERVER_HPP
