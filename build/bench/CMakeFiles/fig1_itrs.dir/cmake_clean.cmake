file(REMOVE_RECURSE
  "CMakeFiles/fig1_itrs.dir/fig1_itrs.cpp.o"
  "CMakeFiles/fig1_itrs.dir/fig1_itrs.cpp.o.d"
  "fig1_itrs"
  "fig1_itrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_itrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
