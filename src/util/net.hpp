/**
 * @file
 * Thin, Status-returning wrapper over Unix-domain and TCP stream
 * sockets for the serve subsystem (serve/server, serve/client).
 *
 * Scope is deliberately narrow: blocking stream sockets, a poll-based
 * readiness wait so accept/read loops can observe the interrupt flag,
 * and byte-exact send/recv helpers.  Every failure path returns a
 * typed util::Status — library code never kills the process over a
 * flaky peer — and clean peer close is its own kind
 * (ErrorKind::ConnectionClosed) so protocol code can tell "client went
 * away" from "stream corrupted".
 *
 * Chaos builds compile net_accept / net_read / net_write fault seams
 * into the three syscall wrappers (see util/fault_injection.hpp), so
 * the daemon's robustness against vanishing peers and mid-frame write
 * failures is testable without a misbehaving network.
 */

#ifndef LEAKBOUND_UTIL_NET_HPP
#define LEAKBOUND_UTIL_NET_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace leakbound::util::net {

/** Owning file-descriptor handle; move-only, closes on destruction. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { close(); }

    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent; the destructor also calls this). */
    void close();

    /**
     * Half-close the read side: a peer blocked in recv on the other
     * end sees EOF, while responses still in flight keep flowing.
     * The drain path uses this to unstick idle sessions.
     */
    void shutdown_read();

  private:
    int fd_ = -1;
};

/**
 * Create, bind and listen on a Unix-domain stream socket at @p path.
 * A stale socket file at @p path is unlinked first (the daemon owns
 * its socket path; two daemons sharing one path is a config error the
 * second bind cannot detect portably anyway).
 */
Expected<Socket> listen_unix(const std::string &path, int backlog = 64);

/**
 * Create, bind and listen on a TCP socket at @p host:@p port.
 * @p host must be a numeric IPv4 address (e.g. "127.0.0.1"); port 0
 * lets the kernel pick — read it back with local_port().
 */
Expected<Socket> listen_tcp(const std::string &host, std::uint16_t port,
                            int backlog = 64);

/** Connect to a Unix-domain listener at @p path. */
Expected<Socket> connect_unix(const std::string &path);

/** Connect to a TCP listener at numeric @p host:@p port. */
Expected<Socket> connect_tcp(const std::string &host, std::uint16_t port);

/** The locally bound TCP port of @p socket (0 on failure). */
std::uint16_t local_port(const Socket &socket);

/**
 * Wait up to @p timeout_ms for @p socket to become readable.
 * @return 1 readable, 0 timed out, -1 error.  EINTR reports as a
 * timeout so callers re-check the interrupt flag and come back.
 */
int wait_readable(const Socket &socket, int timeout_ms);

/**
 * Wait up to @p timeout_ms for any of @p sockets to become readable.
 * @return the index of the first readable socket, -1 on timeout (or
 * EINTR — re-check the interrupt flag), -2 on poll error.
 */
int wait_any_readable(const std::vector<const Socket *> &sockets,
                      int timeout_ms);

/**
 * Accept one pending connection from @p listener (call after
 * wait_readable said so; blocks otherwise).  Transient accept
 * failures (aborted handshakes, fd pressure, the net_accept fault
 * seam) return IoError — the accept loop logs and keeps serving.
 */
Expected<Socket> accept_connection(const Socket &listener);

/**
 * Write all @p size bytes to @p socket (retrying short writes and
 * EINTR; SIGPIPE suppressed).  A dead peer returns
 * ConnectionClosed; other failures IoError.
 */
Status send_all(const Socket &socket, const void *data, std::size_t size);

/**
 * Read exactly @p size bytes into @p out (cleared first).  EOF before
 * the first byte is ConnectionClosed (the peer hung up between
 * frames); EOF mid-buffer is CorruptData (a truncated frame — the
 * peer died mid-message or lied in its length prefix).
 */
Status recv_exact(const Socket &socket, std::size_t size,
                  std::string &out);

} // namespace leakbound::util::net

#endif // LEAKBOUND_UTIL_NET_HPP
