/**
 * @file
 * Implementation of block-buffered binary trace IO.
 */

#include "trace/trace_io.hpp"

#include <cerrno>
#include <cstring>

#include "util/fault_injection.hpp"

namespace leakbound::trace {

using util::ErrorKind;
using util::Status;
namespace fault = util::fault;

TraceWriter::TraceWriter(const std::string &path)
    : file_(fault::should_fail(fault::Site::OpenWrite, path)
                ? nullptr
                : std::fopen(path.c_str(), "wb"))
{
    if (!file_) {
        status_ = Status(ErrorKind::IoError,
                         "cannot create trace file: " + path);
        return;
    }
    if (std::fwrite(kTraceMagic, 1, sizeof(kTraceMagic), file_) !=
        sizeof(kTraceMagic)) {
        status_ = Status(ErrorKind::IoError,
                         "cannot write trace header: " + path);
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    buffer_.reserve(kBlockRecords * kTraceRecordBytes);
}

TraceWriter::~TraceWriter()
{
    if (file_) {
        // Best-effort: a destructor cannot report, but the error was
        // already latched if a caller cares to check status() first.
        (void)flush();
        std::fclose(file_);
    }
}

void
TraceWriter::write(const TimedAccess &rec)
{
    if (!ok())
        return;
    unsigned char encoded[kTraceRecordBytes];
    encode_record(rec, encoded);
    buffer_.insert(buffer_.end(), encoded, encoded + kTraceRecordBytes);
    ++count_;
    if (buffer_.size() >= kBlockRecords * kTraceRecordBytes)
        (void)flush();
}

util::Status
TraceWriter::flush()
{
    if (!ok())
        return status_;
    if (buffer_.empty())
        return Status();
    bool wrote = std::fwrite(buffer_.data(), 1, buffer_.size(), file_) ==
                 buffer_.size();
    if (wrote && fault::should_fail(fault::Site::ShortWrite))
        wrote = false;
    if (!wrote) {
        status_ = Status(ErrorKind::IoError, "short write to trace file");
        return status_;
    }
    buffer_.clear();
    return Status();
}

TraceReader::TraceReader(const std::string &path)
    : file_(nullptr)
{
    if (fault::should_fail(fault::Site::OpenRead, path)) {
        status_ = Status(ErrorKind::IoError,
                         "cannot open trace file: " + path);
        return;
    }
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_) {
        status_ = errno == ENOENT
                      ? Status(ErrorKind::NotFound,
                               "no such trace file: " + path)
                      : Status(ErrorKind::IoError,
                               "cannot open trace file: " + path);
        return;
    }
    char magic[sizeof(kTraceMagic)];
    if (std::fread(magic, 1, sizeof(magic), file_) != sizeof(magic) ||
        std::memcmp(magic, kTraceMagic, sizeof(kTraceMagic)) != 0) {
        status_ = Status(ErrorKind::CorruptData,
                         "not a leakbound trace file: " + path);
        std::fclose(file_);
        file_ = nullptr;
        return;
    }
    buffer_.resize(kBlockRecords * kTraceRecordBytes);
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
TraceReader::refill()
{
    // Move any partial record left at the tail to the front, then top
    // the block up.  Records never straddle a refill boundary from the
    // decoder's point of view.
    const std::size_t leftover = avail_ - pos_;
    if (leftover > 0)
        std::memmove(buffer_.data(), buffer_.data() + pos_, leftover);
    pos_ = 0;
    avail_ = leftover;
    const std::size_t got = std::fread(buffer_.data() + avail_, 1,
                                       buffer_.size() - avail_, file_);
    avail_ += got;
    return avail_ - pos_ >= kTraceRecordBytes;
}

bool
TraceReader::next(TimedAccess &rec)
{
    if (!ok())
        return false;
    if (avail_ - pos_ < kTraceRecordBytes && !refill())
        return false;
    decode_record(buffer_.data() + pos_, rec);
    pos_ += kTraceRecordBytes;
    ++count_;
    return true;
}

} // namespace leakbound::trace
