/**
 * @file
 * Implementation of the exact interval histogram set.
 */

#include "interval/interval_histogram.hpp"

#include <algorithm>

#include "power/technology.hpp"
#include "util/logging.hpp"

namespace leakbound::interval {

namespace {

/** Slots: 6 Inner combinations + Leading + Trailing + Untouched. */
constexpr std::size_t kInnerSlots = kNumPrefetchClasses * 2;
constexpr std::size_t kLeadingSlot = kInnerSlots;
constexpr std::size_t kTrailingSlot = kInnerSlots + 1;
constexpr std::size_t kUntouchedSlot = kInnerSlots + 2;
constexpr std::size_t kNumSlots = kInnerSlots + 3;

} // namespace

IntervalHistogramSet::IntervalHistogramSet(std::vector<std::uint64_t> edges)
    : index_(util::EdgeIndex::make(std::move(edges)))
{
    LEAKBOUND_ASSERT(!index_->edges().empty() &&
                         index_->edges().front() == 0,
                     "interval histogram edges must start at 0");
    hists_.reserve(kNumSlots);
    for (std::size_t i = 0; i < kNumSlots; ++i)
        hists_.emplace_back(index_);
}

IntervalHistogramSet
IntervalHistogramSet::with_default_edges(
    const std::vector<Cycles> &extra_thresholds)
{
    return IntervalHistogramSet(default_edges(extra_thresholds));
}

void
IntervalHistogramSet::merge(const IntervalHistogramSet &other)
{
    LEAKBOUND_ASSERT(index_ == other.index_ || edges() == other.edges(),
                     "merging interval sets with different edges");
    for (std::size_t i = 0; i < hists_.size(); ++i)
        hists_[i].merge(other.hists_[i]);
    num_frames_ += other.num_frames_;
    // Runs are merged side by side (e.g. averaging benchmarks); the
    // cycle axis must match for baseline_energy to stay meaningful, so
    // keep the max and rely on per-frame totals via baseline_energy of
    // each component when exactness matters (Savings handles this by
    // aggregating energies, not sets, across benchmarks).
    total_cycles_ = std::max(total_cycles_, other.total_cycles_);
}

void
IntervalHistogramSet::add_scaled_diff(const IntervalHistogramSet &b,
                                      const IntervalHistogramSet &a,
                                      std::uint64_t k)
{
    LEAKBOUND_ASSERT(index_ == b.index_ || edges() == b.edges(),
                     "scaled diff over different edges");
    LEAKBOUND_ASSERT(index_ == a.index_ || edges() == a.edges(),
                     "scaled diff over different edges");
    for (std::size_t i = 0; i < hists_.size(); ++i)
        hists_[i].add_scaled_diff(b.hists_[i], a.hists_[i], k);
}

void
IntervalHistogramSet::set_run_info(std::uint64_t num_frames,
                                   Cycles total_cycles)
{
    num_frames_ = num_frames;
    total_cycles_ = total_cycles;
}

Energy
IntervalHistogramSet::baseline_energy() const
{
    return static_cast<Energy>(num_frames_) *
           static_cast<Energy>(total_cycles_);
}

void
IntervalHistogramSet::for_each_cell(
    const std::function<void(const CellRef &)> &fn) const
{
    auto emit = [&fn](const util::Histogram &h, IntervalKind kind,
                      PrefetchClass pf, bool reuse) {
        for (std::size_t i = 0; i < h.num_bins(); ++i) {
            const auto &b = h.bin(i);
            if (b.count == 0)
                continue;
            CellRef cell;
            cell.kind = kind;
            cell.pf = pf;
            cell.ends_in_reuse = reuse;
            cell.lower = h.lower_edge(i);
            cell.upper = h.upper_edge(i);
            cell.count = b.count;
            cell.sum = b.sum;
            fn(cell);
        }
    };

    for (std::size_t p = 0; p < kNumPrefetchClasses; ++p) {
        for (int reuse = 0; reuse < 2; ++reuse) {
            const auto pf = static_cast<PrefetchClass>(p);
            emit(hists_[slot(IntervalKind::Inner, pf, reuse != 0)],
                 IntervalKind::Inner, pf, reuse != 0);
        }
    }
    emit(hists_[kLeadingSlot], IntervalKind::Leading,
         PrefetchClass::NonPrefetchable, false);
    emit(hists_[kTrailingSlot], IntervalKind::Trailing,
         PrefetchClass::NonPrefetchable, false);
    emit(hists_[kUntouchedSlot], IntervalKind::Untouched,
         PrefetchClass::NonPrefetchable, false);
}

std::uint64_t
IntervalHistogramSet::total_intervals() const
{
    std::uint64_t total = 0;
    for (const auto &h : hists_)
        total += h.total_count();
    return total;
}

std::uint64_t
IntervalHistogramSet::total_inner_intervals() const
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kInnerSlots; ++i)
        total += hists_[i].total_count();
    return total;
}

std::uint64_t
IntervalHistogramSet::total_length() const
{
    std::uint64_t total = 0;
    for (const auto &h : hists_)
        total += h.total_sum();
    return total;
}

std::uint64_t
IntervalHistogramSet::inner_count_in(PrefetchClass pf, Cycles lo,
                                     Cycles hi) const
{
    std::uint64_t total = 0;
    for (int reuse = 0; reuse < 2; ++reuse) {
        const auto &h = hists_[slot(IntervalKind::Inner, pf, reuse != 0)];
        for (std::size_t i = 0; i < h.num_bins(); ++i) {
            if (h.lower_edge(i) >= lo && h.upper_edge(i) <= hi)
                total += h.bin(i).count;
        }
    }
    return total;
}

std::uint64_t
IntervalHistogramSet::inner_count_in(Cycles lo, Cycles hi) const
{
    std::uint64_t total = 0;
    for (std::size_t p = 0; p < kNumPrefetchClasses; ++p)
        total += inner_count_in(static_cast<PrefetchClass>(p), lo, hi);
    return total;
}

void
IntervalHistogramSet::serialize(util::BinaryWriter &w) const
{
    w.put_u64_vector(index_->edges());
    w.put_u64(hists_.size());
    for (const util::Histogram &h : hists_)
        h.write_bins(w);
    w.put_u64(num_frames_);
    w.put_u64(total_cycles_);
}

std::optional<IntervalHistogramSet>
IntervalHistogramSet::deserialize(util::BinaryReader &r)
{
    std::vector<std::uint64_t> edges = r.get_u64_vector();
    if (r.failed() || edges.empty() || edges.front() != 0)
        return std::nullopt;
    for (std::size_t i = 1; i < edges.size(); ++i)
        if (edges[i] <= edges[i - 1])
            return std::nullopt;

    IntervalHistogramSet set(std::move(edges));
    if (r.get_u64() != set.hists_.size() || r.failed())
        return std::nullopt;
    for (util::Histogram &h : set.hists_)
        if (!h.read_bins(r))
            return std::nullopt;
    set.num_frames_ = r.get_u64();
    set.total_cycles_ = r.get_u64();
    if (r.failed())
        return std::nullopt;
    return set;
}

std::vector<std::uint64_t>
IntervalHistogramSet::default_edges(const std::vector<Cycles> &extra)
{
    std::vector<std::uint64_t> edges;
    // Fine-grained small lengths: the active-drowsy point (6), the
    // transition overheads (3, 30, 33, 37) and everything nearby.
    for (std::uint64_t e = 0; e <= 64; ++e)
        edges.push_back(e);
    // Log2-ish coverage for distribution reporting.
    for (std::uint64_t e = 128; e <= (1ULL << 40); e <<= 1)
        edges.push_back(e);

    // Every decision threshold T any stock experiment uses, with T+1
    // (the "> T" boundary) and T+overhead boundaries for decay-style
    // piecewise policies.
    std::vector<std::uint64_t> thresholds = {
        // paper Table 1 inflection points
        1057, 5088, 10328, 103084,
        // Fig. 7 sweep values
        1200, 1500, 2000, 3000, 4000, 5000, 6000, 7000, 8000, 9000, 10000,
        // decay sweep (ablation): 1K..64K
        1000, 16000, 32000, 64000,
    };
    thresholds.insert(thresholds.end(), extra.begin(), extra.end());

    // Decay-style policies sleep a frame only after the threshold plus
    // the node's sleep transition overhead has elapsed, so those
    // boundaries must be exact bin edges too.  Derive the overhead
    // offsets from the actual technology parameters (historically a
    // hardcoded 37 = the 70nm s1+s3+s4) so custom timings keep landing
    // on exact edges at every node.
    std::vector<std::uint64_t> overheads;
    for (power::TechNode node : power::all_nodes())
        overheads.push_back(
            power::node_params(node).timings.sleep_overhead());
    std::sort(overheads.begin(), overheads.end());
    overheads.erase(std::unique(overheads.begin(), overheads.end()),
                    overheads.end());

    for (std::uint64_t t : thresholds) {
        edges.push_back(t);
        edges.push_back(t + 1);
        for (std::uint64_t o : overheads) {
            edges.push_back(t + o);
            edges.push_back(t + o + 1);
        }
    }

    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

} // namespace leakbound::interval
