# Empty compiler generated dependencies file for test_belady.
# This may be replaced when dependencies are built.
