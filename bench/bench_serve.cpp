/**
 * @file
 * Throughput/latency bench of the leakboundd service, in-process.
 *
 * Starts a daemon on an ephemeral loopback port, performs one cold
 * run (which populates the artifact cache when --cache-dir is set),
 * then fires --requests identical run requests from --concurrency
 * client threads — the warm phase, where responses come from the
 * dedup scheduler and the artifact cache rather than fresh
 * simulations.  Emits BENCH_serve.json with the cold/warm wall times,
 * warm throughput, client-observed latency percentiles and the
 * daemon's own /stats counters, so service-layer perf trajectories can
 * be tracked across commits like the simulator's.
 *
 * Flags come from the shared core/suite_flags.hpp family
 * (--instructions/--jobs/--cache-dir/--json) plus the load shape
 * (--requests/--concurrency/--workers), so the bench, the daemon and
 * the client all spell their knobs the same way.
 *
 * With --shards N the daemon side becomes a supervised fleet: a
 * supervisor process (forked before this process grows threads) runs
 * N shard children on a shared artifact cache, and the warm load is
 * fingerprint-routed across them with failover — the sharded
 * configuration must hold the single-daemon throughput line.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/artifact_cache.hpp"
#include "core/suite_flags.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/supervisor.hpp"
#include "util/binary_io.hpp"
#include "util/cli.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"
#include "workload/spec_suite.hpp"

using namespace leakbound;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point begun)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - begun)
        .count();
}

/** Lift the daemon's /stats JSON back into a StatsSnapshot (fleet
 *  mode, where the counters arrive merged over the wire). */
serve::StatsSnapshot
snapshot_from_json(const util::JsonValue &document)
{
    serve::StatsSnapshot stats;
    auto u64 = [&](const char *key) -> std::uint64_t {
        const util::JsonValue *field = document.find(key);
        return field != nullptr && field->is_u64() ? field->u64_value()
                                                   : 0;
    };
    stats.requests_served = u64("requests_served");
    stats.dedup_hits = u64("dedup_hits");
    stats.response_lru_hits = u64("response_lru_hits");
    stats.response_lru_evictions = u64("response_lru_evictions");
    stats.cache_hits = u64("cache_hits");
    stats.rejected_overloaded = u64("rejected_overloaded");
    stats.rejected_deadline = u64("rejected_deadline");
    stats.protocol_errors = u64("protocol_errors");
    stats.sessions_accepted = u64("sessions_accepted");
    stats.open_connections = u64("open_connections");
    return stats;
}

std::string
render_report(const util::Cli &cli, const serve::ServerConfig &config,
              unsigned shards, double cold_seconds,
              bool lru_probe_identical, const serve::LoadReport &load,
              const serve::StatsSnapshot &stats)
{
    util::JsonWriter w;
    w.begin_object();
    w.key("bench").value("bench_serve");
    w.key("description")
        .value("leakboundd warm throughput and latency under "
               "held-open connections (epoll event loop + response "
               "LRU)");
    w.key("shards").value(static_cast<std::uint64_t>(shards));
    w.key("flags").begin_object();
    for (const auto &[name, value] : cli.snapshot())
        w.key(name).value(value);
    w.end_object();
    w.key("workers")
        .value(static_cast<std::uint64_t>(config.scheduler.workers));
    w.key("suite_jobs")
        .value(static_cast<std::uint64_t>(config.scheduler.suite_jobs));
    w.key("cache_dir").value(config.scheduler.cache_dir);
    w.key("cold_seconds").value(cold_seconds);
    // The response-LRU contract, measured: a warm hit's bytes against
    // the cold render's bytes.
    w.key("lru_hit_byte_identical").value(lru_probe_identical);
    w.key("load").begin_object();
    w.key("sent").value(load.sent);
    w.key("ok").value(load.ok);
    w.key("overloaded").value(load.overloaded);
    w.key("errors").value(load.other_errors + load.shutting_down);
    w.key("idle_connections_held").value(load.idle_connections_held);
    w.key("wall_seconds").value(load.wall_seconds);
    w.key("throughput_rps")
        .value(load.wall_seconds > 0.0
                   ? static_cast<double>(load.ok) / load.wall_seconds
                   : 0.0);
    w.key("latency_p50_ms").value(load.latency_ms.p50());
    w.key("latency_p99_ms").value(load.latency_ms.p99());
    w.key("latency_max_ms").value(load.latency_ms.max());
    w.key("distinct_fingerprints").value(load.distinct_fingerprints);
    w.key("distinct_responses").value(load.distinct_responses);
    w.key("failovers").value(load.failovers);
    w.end_object();
    w.key("stats").begin_object();
    w.key("requests_served").value(stats.requests_served);
    w.key("dedup_hits").value(stats.dedup_hits);
    w.key("response_lru_hits").value(stats.response_lru_hits);
    w.key("response_lru_evictions").value(stats.response_lru_evictions);
    w.key("cache_hits").value(stats.cache_hits);
    w.key("rejected_overloaded").value(stats.rejected_overloaded);
    w.key("rejected_deadline").value(stats.rejected_deadline);
    w.key("protocol_errors").value(stats.protocol_errors);
    w.key("sessions_accepted").value(stats.sessions_accepted);
    w.key("open_connections").value(stats.open_connections);
    w.end_object();
    // The single-daemon epoll configuration this sharded run is
    // measured against (PR 7: one process, TCP loopback, same load
    // shape) — the fleet must not cost warm throughput.
    w.key("baseline_single_daemon").begin_object();
    w.key("io_model").value("one epoll process, TCP loopback");
    w.key("throughput_rps").value(52749.23);
    w.key("latency_p50_ms").value(0.541);
    w.key("latency_p99_ms").value(1.107);
    w.key("requests").value(static_cast<std::uint64_t>(4000));
    w.key("concurrency").value(static_cast<std::uint64_t>(8));
    w.key("idle_connections_held").value(
        static_cast<std::uint64_t>(1000));
    w.end_object();
    // The session-per-thread baseline this bench replaced (PR 5:
    // blocking I/O, no response LRU, 32 requests over 8 fresh
    // connections) — kept verbatim so before/after rides in one file.
    w.key("baseline_pr5").begin_object();
    w.key("io_model").value("thread-per-session, blocking sockets");
    w.key("throughput_rps").value(1098.84);
    w.key("latency_p50_ms").value(7.477);
    w.key("latency_p99_ms").value(14.320);
    w.key("requests").value(static_cast<std::uint64_t>(32));
    w.key("concurrency").value(static_cast<std::uint64_t>(8));
    w.key("idle_connections_held").value(static_cast<std::uint64_t>(0));
    w.end_object();
    w.end_object();
    return w.str();
}

} // namespace

int
main(int argc, char **argv)
{
    util::install_signal_handlers();
    util::fault::configure_from_env();

    util::Cli cli("bench_serve",
                  "leakboundd warm-cache throughput and latency");
    core::SuiteFlagSpec spec;
    spec.csv_dir = false;
    spec.suite_passes = false;
    spec.engine = false; // requests pin the default engine
    spec.default_instructions = 200'000;
    core::register_suite_flags(cli, spec);
    cli.add_flag("benchmarks",
                 "comma-separated suite benchmarks per request", "gzip");
    cli.add_flag("requests", "warm-phase run requests", "64");
    cli.add_flag("concurrency", "client threads for the warm phase",
                 "8");
    cli.add_flag("workers", "scheduler suite workers in the daemon",
                 "2");
    cli.add_flag("connections",
                 "idle connections held open through the warm phase",
                 "1000");
    cli.add_flag("pipeline",
                 "requests each warm client keeps in flight on its "
                 "connection",
                 "8");
    cli.add_flag("shards",
                 "benchmark a supervised fleet of N shard processes "
                 "instead of one in-process daemon (0 = single daemon)",
                 "0");
    cli.parse(argc, argv);

    serve::ServerConfig config;
    config.scheduler.workers =
        static_cast<unsigned>(cli.get_u64("workers"));
    config.scheduler.suite_jobs = core::suite_jobs(cli);
    config.scheduler.cache_dir =
        core::resolve_cache_dir(cli.get("cache-dir"));
    config.scheduler.max_queue = cli.get_u64("requests");

    const unsigned shards =
        static_cast<unsigned>(cli.get_u64("shards"));
    serve::Endpoint endpoint;
    std::vector<serve::Endpoint> fleet;
    std::unique_ptr<serve::Server> server;
    std::thread serving;
    pid_t fleet_pid = -1;
    if (shards > 0) {
        // Fleet mode: the supervisor must fork its shards, so it runs
        // in a child forked NOW, while this process is still
        // single-threaded; the bench process stays a pure client.
        config.unix_path = "/tmp/bench_serve_fleet_" +
                           std::to_string(::getpid()) + ".sock";
        serve::SupervisorConfig fc;
        fc.shards = shards;
        fc.shard = config;
        std::fflush(stdout);
        std::fflush(stderr);
        fleet_pid = ::fork();
        if (fleet_pid == 0) {
            serve::Supervisor supervisor(std::move(fc));
            if (util::Status started = supervisor.start();
                !started.ok()) {
                util::warn("cannot start fleet: ",
                           started.to_string());
                std::_Exit(1);
            }
            std::_Exit(supervisor.run().ok() ? 0 : 1);
        }
        if (fleet_pid < 0)
            util::fatal("cannot fork the fleet supervisor");
        endpoint.unix_path = config.unix_path;
        fleet = serve::fleet_endpoints(endpoint, shards);
        // Wait until the control plane answers ping.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(15);
        bool up = false;
        while (std::chrono::steady_clock::now() < deadline) {
            if (serve::call_endpoint(endpoint,
                                     serve::build_ping_request(),
                                     serve::kDefaultMaxFrameBytes,
                                     nullptr)) {
                up = true;
                break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
        }
        if (!up)
            util::fatal("fleet never became ready");
    } else {
        config.listen_tcp = true; // ephemeral loopback port
        server = std::make_unique<serve::Server>(config);
        if (util::Status started = server->start(); !started.ok())
            util::fatal("cannot start the daemon: ",
                        started.to_string());
        serving = std::thread([&server] {
            if (util::Status served = server->serve(); !served.ok())
                util::warn("serve failed: ", served.to_string());
        });
        endpoint.tcp_port = server->tcp_port();
    }

    serve::RunRequest request;
    request.benchmarks = util::split(cli.get("benchmarks"), ',');
    for (const std::string &name : request.benchmarks)
        if (!workload::is_benchmark(name))
            util::fatal("unknown benchmark \"", name, "\"");
    request.instructions = cli.get_u64("instructions");

    // One run request, fingerprint-routed in fleet mode.
    auto call_once = [&](std::string *raw) {
        if (shards > 0)
            return serve::call_fleet(fleet, request,
                                     serve::FailoverPolicy{},
                                     serve::kDefaultMaxFrameBytes, raw,
                                     nullptr);
        return serve::call_endpoint(endpoint,
                                    serve::build_run_request(request),
                                    serve::kDefaultMaxFrameBytes, raw);
    };
    auto teardown = [&] {
        if (fleet_pid > 0) {
            ::kill(fleet_pid, SIGTERM);
            (void)::waitpid(fleet_pid, nullptr, 0);
            fleet_pid = -1;
        }
        if (server) {
            server->request_drain();
            serving.join();
        }
    };

    // Cold pass: one request simulates (and seeds both the artifact
    // cache and the response LRU).
    const auto cold_begun = std::chrono::steady_clock::now();
    std::string cold_raw;
    auto cold = call_once(&cold_raw);
    const double cold_seconds = seconds_since(cold_begun);
    if (!cold) {
        teardown();
        util::fatal("cold request failed: ",
                    cold.status().to_string());
    }

    // LRU probe: the very next identical request must be answered
    // from the response LRU with the cold render's exact bytes.
    std::string probe_raw;
    auto probe = call_once(&probe_raw);
    const bool lru_probe_identical = probe && probe_raw == cold_raw;

    // Warm phase: every response should come from the response LRU (or
    // at worst the in-flight dedup group), while --connections idle
    // sockets sit on the daemon costing nothing.
    serve::LoadOptions options;
    options.total = cli.get_u64("requests");
    options.concurrency =
        static_cast<unsigned>(cli.get_u64("concurrency"));
    options.idle_connections =
        static_cast<unsigned>(cli.get_u64("connections"));
    options.persistent = true;
    options.pipeline = static_cast<unsigned>(cli.get_u64("pipeline"));
    if (shards > 0)
        options.fleet = fleet;
    const serve::LoadReport load =
        serve::run_load(endpoint, request, options);

    serve::StatsSnapshot stats;
    if (shards > 0) {
        // The supervisor's control endpoint answers with the shard
        // counters already merged (plus the fleet block, which the
        // flags snapshot records implicitly via --shards).
        auto merged = serve::call_endpoint(
            endpoint, serve::build_stats_request(),
            serve::kDefaultMaxFrameBytes, nullptr);
        if (merged)
            stats = snapshot_from_json(merged.value());
        else
            util::warn("fleet stats unavailable: ",
                       merged.status().to_string());
    } else {
        stats = server->stats();
    }
    teardown();

    std::printf(
        "cold: %.3fs   warm: %llu/%llu ok in %.3fs (%.0f req/s) with "
        "%llu idle conns\n"
        "latency: p50 %.2f ms, p99 %.2f ms   dedup %llu, lru %llu "
        "(byte-identical: %s), cache %llu\n",
        cold_seconds, static_cast<unsigned long long>(load.ok),
        static_cast<unsigned long long>(load.sent), load.wall_seconds,
        load.wall_seconds > 0.0
            ? static_cast<double>(load.ok) / load.wall_seconds
            : 0.0,
        static_cast<unsigned long long>(load.idle_connections_held),
        load.latency_ms.p50(), load.latency_ms.p99(),
        static_cast<unsigned long long>(stats.dedup_hits),
        static_cast<unsigned long long>(stats.response_lru_hits),
        lru_probe_identical ? "yes" : "NO",
        static_cast<unsigned long long>(stats.cache_hits));

    const std::string contents =
        render_report(cli, config, shards, cold_seconds,
                      lru_probe_identical, load, stats) +
        "\n";
    const std::string path = cli.get("json");
    if (!path.empty()) {
        if (util::Status wrote = util::write_file_atomic(path, contents);
            !wrote.ok())
            util::warn("cannot write report: ", wrote.to_string());
    }

    const bool clean = load.ok == load.sent &&
                       load.distinct_responses <= 1 &&
                       lru_probe_identical &&
                       stats.response_lru_hits >= 1;
    return clean ? 0 : 3;
}
