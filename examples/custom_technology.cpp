/**
 * @file
 * The generalized model on a user-defined technology (paper
 * Section 3.3): derive leakage ratios for a hypothetical node from the
 * HotLeakage-style subthreshold model, derive the re-fetch energy from
 * the CACTI-lite geometry model, then compute the node's inflection
 * points and optimal savings on a simulated benchmark.
 *
 * Usage: custom_technology [--vdd 0.8] [--vth 0.15] [--vdd-low 0.25]
 *                          [--feature-nm 50] [--l2-kb 2048]
 *                          [--benchmark mesa] [--instructions 2000000]
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "core/generalized_model.hpp"
#include "power/cacti_lite.hpp"
#include "power/hotleakage.hpp"
#include "util/cli.hpp"
#include "util/string_utils.hpp"
#include "util/table.hpp"
#include "workload/spec_suite.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;

    util::Cli cli("custom_technology",
                  "generalized model on a user-defined node");
    cli.add_flag("vdd", "supply voltage (V)", "0.8");
    cli.add_flag("vth", "threshold voltage (V)", "0.15");
    cli.add_flag("vdd-low", "drowsy retention voltage (V)", "0.25");
    cli.add_flag("feature-nm", "feature size (nm)", "50");
    cli.add_flag("l2-kb", "L2 capacity in KiB (re-fetch energy source)",
                 "2048");
    cli.add_flag("benchmark", "suite benchmark", "mesa");
    cli.add_flag("instructions", "dynamic instructions", "2000000");
    cli.parse(argc, argv);

    // 1. Circuit modeling: leakage ratios from the subthreshold model.
    power::LeakageInputs inputs;
    inputs.vdd = cli.get_double("vdd");
    inputs.vth = cli.get_double("vth");
    const double drowsy =
        power::drowsy_ratio(inputs, cli.get_double("vdd-low"));

    // 2. Re-fetch energy: scale the calibrated 70nm CD by the user's
    //    L2 geometry and an exponential leakage trend toward the new
    //    node (smaller feature -> leakier lines -> smaller relative CD).
    const auto &anchor = power::node_params(power::TechNode::Nm70);
    power::CactiGeometry geom;
    geom.size_bytes = cli.get_u64("l2-kb") * 1024;
    const double feature = cli.get_double("feature-nm");
    const double leakage_trend =
        power::line_leakage_power(inputs) /
        power::line_leakage_power(power::LeakageInputs{}); // 70nm default
    const Energy cd =
        power::scaled_refetch_energy(geom, anchor) / leakage_trend;

    power::TechnologyParams tech = power::derive_technology(
        cli.get("feature-nm") + "nm-custom", feature, inputs,
        cli.get_double("vdd-low"), cd);
    tech.drowsy_power = drowsy;
    tech.validate();

    std::printf("derived node '%s': P_D/P_A = %.3f, CD = %.1f LU-cycles\n",
                tech.name.c_str(), tech.drowsy_power, tech.refetch_energy);

    // 3. The generalized model against a simulated benchmark.
    core::GeneralizedModelInputs gm;
    gm.tech = tech;

    core::ExperimentConfig config;
    config.instructions = cli.get_u64("instructions");
    config.extra_edges = core::standard_extra_edges();
    for (Cycles t : core::generalized_model_thresholds(gm))
        config.extra_edges.push_back(t);

    workload::WorkloadPtr bench =
        workload::make_benchmark(cli.get("benchmark"));
    const core::ExperimentResult run =
        core::run_experiment(*bench, config);

    util::Table table("generalized model outputs for " + tech.name +
                      " on " + run.workload);
    table.set_header({"quantity", "I-cache", "D-cache"});
    const auto icache = core::run_generalized_model(gm,
                                                    run.icache.intervals);
    const auto dcache = core::run_generalized_model(gm,
                                                    run.dcache.intervals);
    table.add_row({"active-drowsy point a (cycles)",
                   std::to_string(icache.points.active_drowsy), "same"});
    table.add_row({"drowsy-sleep point b (cycles)",
                   util::format_commas(icache.points.drowsy_sleep),
                   "same"});
    table.add_row({"OPT-Drowsy savings",
                   util::format_percent(icache.opt_drowsy.savings),
                   util::format_percent(dcache.opt_drowsy.savings)});
    table.add_row({"OPT-Sleep savings",
                   util::format_percent(icache.opt_sleep.savings),
                   util::format_percent(dcache.opt_sleep.savings)});
    table.add_row({"OPT-Hybrid savings",
                   util::format_percent(icache.opt_hybrid.savings),
                   util::format_percent(dcache.opt_hybrid.savings)});
    table.print();

    std::printf("sweep --vth or --vdd-low to watch the inflection point\n"
                "and the drowsy/sleep balance move (paper Section 4.5).\n");
    return 0;
}
