# Empty compiler generated dependencies file for fig9_prefetchability.
# This may be replaced when dependencies are built.
