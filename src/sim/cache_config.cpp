/**
 * @file
 * Implementation of cache configuration checks and presets.
 */

#include "sim/cache_config.hpp"

#include <bit>

#include "util/logging.hpp"

namespace leakbound::sim {

namespace {

bool
is_pow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

const char *
replacement_name(ReplacementKind kind)
{
    switch (kind) {
      case ReplacementKind::Lru:
        return "LRU";
      case ReplacementKind::Fifo:
        return "FIFO";
      case ReplacementKind::Random:
        return "Random";
    }
    return "?";
}

std::uint64_t
CacheConfig::num_sets() const
{
    return size_bytes /
           (static_cast<std::uint64_t>(line_bytes) * associativity);
}

std::uint64_t
CacheConfig::num_frames() const
{
    return num_sets() * associativity;
}

std::uint64_t
CacheConfig::set_of_block(Addr block) const
{
    return block & set_mask();
}

std::uint32_t
CacheConfig::line_shift() const
{
    return static_cast<std::uint32_t>(
        std::countr_zero(static_cast<std::uint64_t>(line_bytes)));
}

std::uint64_t
CacheConfig::set_mask() const
{
    return num_sets() - 1;
}

void
CacheConfig::validate() const
{
    using util::fatal;
    if (!is_pow2(line_bytes))
        fatal("cache '", name, "': line_bytes must be a power of two");
    if (associativity == 0)
        fatal("cache '", name, "': associativity must be nonzero");
    if (size_bytes == 0 ||
        size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                      associativity) != 0) {
        fatal("cache '", name,
              "': size must be a nonzero multiple of line*assoc");
    }
    if (!is_pow2(num_sets()))
        fatal("cache '", name, "': number of sets must be a power of two");
    if (hit_latency == 0)
        fatal("cache '", name, "': hit latency must be at least 1 cycle");
}

CacheConfig
CacheConfig::alpha_l1i()
{
    CacheConfig c;
    c.name = "l1i";
    c.size_bytes = 64 * 1024;
    c.line_bytes = 64;
    c.associativity = 2;
    c.hit_latency = 1;
    c.replacement = ReplacementKind::Lru;
    return c;
}

CacheConfig
CacheConfig::alpha_l1d()
{
    CacheConfig c;
    c.name = "l1d";
    c.size_bytes = 64 * 1024;
    c.line_bytes = 64;
    c.associativity = 2;
    c.hit_latency = 3;
    c.replacement = ReplacementKind::Lru;
    return c;
}

CacheConfig
CacheConfig::alpha_l2()
{
    CacheConfig c;
    c.name = "l2";
    c.size_bytes = 2 * 1024 * 1024;
    c.line_bytes = 64;
    c.associativity = 1;
    c.hit_latency = 7;
    c.replacement = ReplacementKind::Lru;
    return c;
}

} // namespace leakbound::sim
