/**
 * @file
 * Tests of the leakage management schemes (paper Section 4.4 +
 * Table 3): per-scheme decision semantics at the regime boundaries,
 * threshold publication, overheads, and cross-scheme dominance
 * properties on synthetic interval populations.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/inflection.hpp"
#include "core/policies.hpp"
#include "power/technology.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::IntervalKind;
using interval::PrefetchClass;

namespace {

const EnergyModel &
model70()
{
    static const EnergyModel m(power::node_params(power::TechNode::Nm70));
    return m;
}

Energy
inner(const Policy &p, Cycles len,
      PrefetchClass pf = PrefetchClass::NonPrefetchable, bool reuse = true)
{
    return p.interval_energy(len, IntervalKind::Inner, pf, reuse);
}

} // namespace

TEST(AlwaysActive, EnergyEqualsLength)
{
    const auto p = make_always_active(model70());
    EXPECT_DOUBLE_EQ(inner(*p, 0), 0.0);
    EXPECT_DOUBLE_EQ(inner(*p, 12345), 12345.0);
    EXPECT_FALSE(p->is_oracle());
    EXPECT_EQ(p->standing_overhead(), 0.0);
}

TEST(OptDrowsy, ActiveBelowADrowsyAbove)
{
    const auto p = make_opt_drowsy(model70());
    EXPECT_DOUBLE_EQ(inner(*p, 5), 5.0);           // too short
    EXPECT_DOUBLE_EQ(inner(*p, 6), 6.0);           // exact tie
    EXPECT_NEAR(inner(*p, 306), 106.0, 1e-9);      // drowsy
    EXPECT_TRUE(p->is_oracle());
    EXPECT_EQ(p->dominant_mode(306, IntervalKind::Inner,
                               PrefetchClass::NonPrefetchable, true),
              Mode::Drowsy);
}

TEST(OptDrowsy, NeverSleeps)
{
    const auto p = make_opt_drowsy(model70());
    // Even an enormous interval only gets the drowsy slope.
    const double savings = 1.0 - inner(*p, 9'000'000) / 9'000'000.0;
    EXPECT_NEAR(savings, 2.0 / 3.0, 1e-4);
}

TEST(OptSleep, SleepsOnlyAboveThreshold)
{
    const auto points = compute_inflection(model70());
    const auto p = make_opt_sleep(model70(), 10'000);
    EXPECT_DOUBLE_EQ(inner(*p, 10'000), 10'000.0); // not "greater than"
    const double cd = model70().tech().refetch_energy;
    EXPECT_NEAR(inner(*p, 10'001), 37.0 + cd, 1e-9);
    EXPECT_EQ(p->name(), "OPT-Sleep(10K)");
    (void)points;
}

TEST(OptSleep, NeverWorseThanActive)
{
    // Even with a low threshold the scheme must not sleep where CD
    // makes sleep cost more than staying active.
    const auto p = make_opt_sleep(model70(), 40);
    for (Cycles len = 0; len < 2000; len += 11)
        EXPECT_LE(inner(*p, len), static_cast<double>(len) + 1e-9);
}

TEST(OptSleep, DeadBlockAccountingSkipsCd)
{
    const auto p = make_opt_sleep(model70(), 1057, /*charge_refetch=*/false);
    const double cd = model70().tech().refetch_energy;
    // Reuse-ending interval still pays CD...
    EXPECT_NEAR(inner(*p, 5000, PrefetchClass::NonPrefetchable, true),
                37.0 + cd, 1e-9);
    // ...but an eviction-ending interval sleeps for free.
    EXPECT_NEAR(inner(*p, 5000, PrefetchClass::NonPrefetchable, false),
                37.0, 1e-9);
}

TEST(DecaySleep, ActivePrefixThenSleep)
{
    const auto p = make_decay_sleep(model70(), 10'000);
    const double cd = model70().tech().refetch_energy;
    // Below decay + sleep-overhead: fully active.
    EXPECT_DOUBLE_EQ(inner(*p, 10'020), 10'020.0);
    // Above: 10K active, remainder slept, CD paid.
    EXPECT_NEAR(inner(*p, 30'000), 10'000.0 + 37.0 + cd, 1e-9);
    EXPECT_FALSE(p->is_oracle());
    EXPECT_EQ(p->name(), "Sleep(10K)");
}

TEST(DecaySleep, ChargesCounterOverhead)
{
    const auto p = make_decay_sleep(model70(), 10'000);
    EXPECT_DOUBLE_EQ(p->standing_overhead(),
                     model70().tech().decay_counter_overhead);
    EXPECT_GT(p->standing_overhead(), 0.0);
}

TEST(DecaySleep, AlwaysWorseOrEqualToOptSleepSameThreshold)
{
    // OPT-Sleep(T) sleeps the whole interval; decay burns T cycles
    // active first.  Pointwise dominance (ignoring the counter, which
    // only widens the gap).
    const auto opt = make_opt_sleep(model70(), 10'000);
    const auto decay = make_decay_sleep(model70(), 10'000);
    for (Cycles len = 0; len < 100'000; len += 977)
        EXPECT_LE(inner(*opt, len), inner(*decay, len) + 1e-9) << len;
}

TEST(OptHybrid, FollowsFigure5Regimes)
{
    const auto p = make_opt_hybrid(model70());
    const double cd = model70().tech().refetch_energy;
    EXPECT_DOUBLE_EQ(inner(*p, 4), 4.0);                    // active
    EXPECT_NEAR(inner(*p, 500), 6.0 + 494.0 / 3.0, 1e-9);   // drowsy
    EXPECT_NEAR(inner(*p, 2000), 37.0 + cd, 1e-9);          // sleep
    EXPECT_EQ(p->name(), "OPT-Hybrid");
}

TEST(OptHybrid, IsPointwiseLowerEnvelopeOfAllSchemes)
{
    // The Appendix theorem, policy-level: OPT-Hybrid never costs more
    // than any other scheme on any single interval.
    std::vector<PolicyPtr> rivals;
    rivals.push_back(make_always_active(model70()));
    rivals.push_back(make_opt_drowsy(model70()));
    rivals.push_back(make_opt_sleep(model70(), 1057));
    rivals.push_back(make_opt_sleep(model70(), 10'000));
    rivals.push_back(make_hybrid(model70(), 5000));
    const auto hybrid = make_opt_hybrid(model70());

    for (IntervalKind kind :
         {IntervalKind::Inner, IntervalKind::Leading,
          IntervalKind::Trailing, IntervalKind::Untouched}) {
        for (Cycles len = 0; len < 20'000; len += 191) {
            const Energy best = hybrid->interval_energy(
                len, kind, PrefetchClass::NonPrefetchable, true);
            for (const auto &r : rivals) {
                EXPECT_LE(best,
                          r->interval_energy(
                              len, kind, PrefetchClass::NonPrefetchable,
                              true) +
                              1e-9)
                    << r->name() << " len=" << len << " kind="
                    << interval::kind_name(kind);
            }
        }
    }
}

TEST(Hybrid, MinSleepLengthGatesSleep)
{
    const auto h5000 = make_hybrid(model70(), 5000);
    const double cd = model70().tech().refetch_energy;
    // 2000 > b but below the gate: drowsy.
    EXPECT_NEAR(inner(*h5000, 2000), 6.0 + 1994.0 / 3.0, 1e-9);
    // Above the gate: sleep.
    EXPECT_NEAR(inner(*h5000, 5001), 37.0 + cd, 1e-9);
}

TEST(Hybrid, TighterGateNeverHurts)
{
    // Fig. 7 property: lowering the minimum sleep length toward b can
    // only reduce energy.
    const auto tight = make_hybrid(model70(), 1057);
    const auto loose = make_hybrid(model70(), 9000);
    for (Cycles len = 0; len < 30'000; len += 313)
        EXPECT_LE(inner(*tight, len), inner(*loose, len) + 1e-9) << len;
}

TEST(Prefetch, VariantSemanticsMatchTable3)
{
    const std::vector<PrefetchClass> both = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};
    const auto a = make_prefetch(model70(), PrefetchVariant::A, both);
    const auto b = make_prefetch(model70(), PrefetchVariant::B, both);
    const double cd = model70().tech().refetch_energy;

    // Prefetchable long interval: both sleep (optimal mode).
    EXPECT_NEAR(inner(*a, 5000, PrefetchClass::NextLine), 37.0 + cd, 1e-9);
    EXPECT_NEAR(inner(*b, 5000, PrefetchClass::Stride), 37.0 + cd, 1e-9);

    // Non-prefetchable: A stays active, B goes drowsy.
    EXPECT_DOUBLE_EQ(inner(*a, 5000, PrefetchClass::NonPrefetchable),
                     5000.0);
    EXPECT_NEAR(inner(*b, 5000, PrefetchClass::NonPrefetchable),
                6.0 + 4994.0 / 3.0, 1e-9);

    EXPECT_FALSE(a->is_oracle());
    EXPECT_FALSE(b->is_oracle());
    EXPECT_EQ(a->name(), "Prefetch-A");
    EXPECT_EQ(b->name(), "Prefetch-B");
}

TEST(Prefetch, RespectsAllowedClasses)
{
    // An instruction-cache flavoured policy only honours next-line.
    const auto p = make_prefetch(model70(), PrefetchVariant::A,
                                 {PrefetchClass::NextLine});
    const double cd = model70().tech().refetch_energy;
    EXPECT_NEAR(inner(*p, 5000, PrefetchClass::NextLine), 37.0 + cd, 1e-9);
    EXPECT_DOUBLE_EQ(inner(*p, 5000, PrefetchClass::Stride), 5000.0);
}

TEST(Prefetch, InvalidFramesSleepRegardless)
{
    const auto a = make_prefetch(model70(), PrefetchVariant::A,
                                 {PrefetchClass::NextLine});
    EXPECT_DOUBLE_EQ(
        a->interval_energy(100'000, IntervalKind::Untouched,
                           PrefetchClass::NonPrefetchable, false),
        0.0);
    EXPECT_DOUBLE_EQ(
        a->interval_energy(100'000, IntervalKind::Leading,
                           PrefetchClass::NonPrefetchable, false),
        0.0);
    // Trailing counts as non-prefetchable: A keeps it active.
    EXPECT_DOUBLE_EQ(
        a->interval_energy(100'000, IntervalKind::Trailing,
                           PrefetchClass::NonPrefetchable, false),
        100'000.0);
}

TEST(Prefetch, BDominatesAOnEnergy)
{
    const std::vector<PrefetchClass> both = {PrefetchClass::NextLine,
                                             PrefetchClass::Stride};
    const auto a = make_prefetch(model70(), PrefetchVariant::A, both);
    const auto b = make_prefetch(model70(), PrefetchVariant::B, both);
    for (Cycles len = 0; len < 20'000; len += 173) {
        for (PrefetchClass pf :
             {PrefetchClass::NonPrefetchable, PrefetchClass::NextLine}) {
            EXPECT_LE(inner(*b, len, pf), inner(*a, len, pf) + 1e-9);
        }
    }
}

TEST(Policies, PublishedThresholdsCoverDecisionChanges)
{
    // Property: between consecutive published thresholds every
    // policy's energy is exactly linear (sampled check).  This is the
    // contract the exact histogram evaluation rests on.
    std::vector<PolicyPtr> policies;
    policies.push_back(make_opt_drowsy(model70()));
    policies.push_back(make_opt_sleep(model70(), 1057));
    policies.push_back(make_decay_sleep(model70(), 10'000));
    policies.push_back(make_opt_hybrid(model70()));
    policies.push_back(make_hybrid(model70(), 4000));
    policies.push_back(make_prefetch(model70(), PrefetchVariant::B,
                                     {PrefetchClass::NextLine}));

    for (const auto &p : policies) {
        std::vector<Cycles> edges = p->thresholds();
        // Kind/applicability boundaries below 64 are implicit edges of
        // the default histogram; include them in the linearity check.
        for (Cycles e = 0; e <= 130; ++e)
            edges.push_back(e);
        edges.push_back(0);
        std::sort(edges.begin(), edges.end());
        edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

        for (IntervalKind kind :
             {IntervalKind::Inner, IntervalKind::Trailing}) {
            for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
                const Cycles lo = edges[i];
                const Cycles hi = edges[i + 1];
                if (hi - lo < 3)
                    continue;
                const Cycles mid = lo + (hi - lo) / 2;
                const Energy f0 = p->interval_energy(
                    lo, kind, PrefetchClass::NonPrefetchable, true);
                const Energy f1 = p->interval_energy(
                    lo + 1, kind, PrefetchClass::NonPrefetchable, true);
                const Energy fm = p->interval_energy(
                    mid, kind, PrefetchClass::NonPrefetchable, true);
                const double slope = f1 - f0;
                EXPECT_NEAR(fm,
                            f0 + slope * static_cast<double>(mid - lo),
                            1e-6)
                    << p->name() << " kind=" << interval::kind_name(kind)
                    << " segment [" << lo << "," << hi << ")";
            }
        }
    }
}
