/**
 * @file
 * Tests of the generalized model facade (paper Section 3.3): threshold
 * publication, agreement with directly constructed policies, custom
 * technologies derived from the HotLeakage-style model, and the
 * accounting-variant plumbing.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/generalized_model.hpp"
#include "core/policies.hpp"
#include "power/hotleakage.hpp"
#include "power/technology.hpp"
#include "util/random.hpp"

using namespace leakbound;
using namespace leakbound::core;
using interval::Interval;
using interval::IntervalHistogramSet;
using interval::IntervalKind;

namespace {

IntervalHistogramSet
population_for(const GeneralizedModelInputs &inputs, std::uint64_t seed)
{
    IntervalHistogramSet set = IntervalHistogramSet::with_default_edges(
        generalized_model_thresholds(inputs));
    util::Rng rng(seed);
    for (int i = 0; i < 3000; ++i) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = rng.next_below(1 << (6 + rng.next_below(16)));
        iv.ends_in_reuse = rng.next_bool(0.7);
        set.add(iv);
    }
    set.set_run_info(1024, 2'000'000);
    return set;
}

} // namespace

TEST(GeneralizedModel, ThresholdsCoverItsThreePolicies)
{
    for (power::TechNode node : power::all_nodes()) {
        GeneralizedModelInputs inputs;
        inputs.tech = power::node_params(node);
        auto edges = generalized_model_thresholds(inputs);
        std::sort(edges.begin(), edges.end());

        const EnergyModel model(inputs.tech);
        const auto points = compute_inflection(model);
        for (const auto &policy :
             {make_opt_drowsy(model),
              make_opt_sleep(model, points.drowsy_sleep),
              make_opt_hybrid(model)}) {
            for (Cycles t : policy->thresholds()) {
                EXPECT_TRUE(
                    std::binary_search(edges.begin(), edges.end(), t))
                    << inputs.tech.name << " " << policy->name()
                    << " threshold " << t;
            }
        }
    }
}

TEST(GeneralizedModel, AgreesWithDirectPolicyEvaluation)
{
    GeneralizedModelInputs inputs;
    inputs.tech = power::node_params(power::TechNode::Nm100);
    const auto set = population_for(inputs, 5);
    const GeneralizedModelResult r = run_generalized_model(inputs, set);

    const EnergyModel model(inputs.tech);
    const auto points = compute_inflection(model);
    EXPECT_DOUBLE_EQ(
        r.opt_drowsy.savings,
        evaluate_policy(*make_opt_drowsy(model), set).savings);
    EXPECT_DOUBLE_EQ(
        r.opt_sleep.savings,
        evaluate_policy(*make_opt_sleep(model, points.drowsy_sleep), set)
            .savings);
    EXPECT_DOUBLE_EQ(
        r.opt_hybrid.savings,
        evaluate_policy(*make_opt_hybrid(model), set).savings);
}

TEST(GeneralizedModel, HybridDominatesComponentsEverywhere)
{
    for (power::TechNode node : power::all_nodes()) {
        GeneralizedModelInputs inputs;
        inputs.tech = power::node_params(node);
        const auto set = population_for(inputs, 17);
        const GeneralizedModelResult r =
            run_generalized_model(inputs, set);
        EXPECT_GE(r.opt_hybrid.savings, r.opt_drowsy.savings - 1e-12)
            << inputs.tech.name;
        EXPECT_GE(r.opt_hybrid.savings, r.opt_sleep.savings - 1e-12)
            << inputs.tech.name;
        EXPECT_GE(r.opt_drowsy.savings, 0.0);
        EXPECT_LE(r.opt_hybrid.savings, 1.0);
    }
}

TEST(GeneralizedModel, WorksOnDerivedCustomTechnology)
{
    power::LeakageInputs leak;
    leak.vdd = 0.8;
    leak.vth = 0.16;
    GeneralizedModelInputs inputs;
    inputs.tech =
        power::derive_technology("55nm", 55.0, leak, 0.26, 250.0);
    const auto set = population_for(inputs, 23);
    const GeneralizedModelResult r = run_generalized_model(inputs, set);
    EXPECT_EQ(r.points.active_drowsy, 6u);
    EXPECT_GT(r.points.drowsy_sleep, 6u);
    EXPECT_GT(r.opt_hybrid.savings, r.opt_drowsy.savings - 1e-12);
}

TEST(GeneralizedModel, DeadBlockAccountingNeverHurts)
{
    GeneralizedModelInputs paper;
    paper.tech = power::node_params(power::TechNode::Nm70);
    paper.charge_refetch = true;
    GeneralizedModelInputs aware = paper;
    aware.charge_refetch = false;

    // One population with edges for both variants.
    auto edges = generalized_model_thresholds(paper);
    for (Cycles t : generalized_model_thresholds(aware))
        edges.push_back(t);
    IntervalHistogramSet set =
        IntervalHistogramSet::with_default_edges(edges);
    util::Rng rng(31);
    for (int i = 0; i < 2000; ++i) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = rng.next_below(1 << 18);
        iv.ends_in_reuse = rng.next_bool(0.5);
        set.add(iv);
    }
    set.set_run_info(512, 1'000'000);

    const auto with_cd = run_generalized_model(paper, set);
    const auto without_cd = run_generalized_model(aware, set);
    // Skipping CD on eviction-ending intervals can only save more.
    EXPECT_GE(without_cd.opt_hybrid.savings,
              with_cd.opt_hybrid.savings - 1e-12);
    EXPECT_GE(without_cd.opt_sleep.savings,
              with_cd.opt_sleep.savings - 1e-12);
}
