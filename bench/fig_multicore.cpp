/**
 * @file
 * Multicore extension: the paper's limit argument under shared-L2
 * contention.
 *
 * Sweeps core count {1, 2, 4, 8} x workload mix (homogeneous stream /
 * stencil / chase plus heterogeneous blends, each pattern cycled to
 * the core count) through the deterministic multicore engine
 * (multicore::run_multicore) and reports, per cell:
 *
 *   - aggregate IPC and the coherence traffic the MSI-style
 *     invalidation filter generated (invalidations, invalidating
 *     stores, L2 intervals closed by invalidation instead of touch);
 *   - the 70nm per-level oracle bounds: OPT-Drowsy / OPT-Sleep /
 *     OPT-Hybrid pooled across every core's private L1s, and the same
 *     bounds on the shared L2's merged per-bank interval population.
 *
 * The committed BENCH_multicore.json is this binary's --json report.
 * The default --l2-assoc of 16 deliberately exceeds the kernel's 8-way
 * ceiling so the shared L2 runs on the reference decision logic and
 * the report's "sim_path" column shows the surfaced "mixed" lane;
 * --l2-assoc 1 restores the stock direct-mapped geometry (all-kernel).
 *
 * Results are byte-identical across --jobs values and across runs:
 * the interleaver is a pure function of the configuration (see
 * DESIGN.md, "Multi-core hierarchy").
 */

#include <chrono>

#include "bench_common.hpp"
#include "core/generalized_model.hpp"
#include "multicore/multicore.hpp"

namespace {

std::string
join_names(const std::vector<std::string> &names)
{
    std::string out;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (i != 0)
            out += "+";
        out += names[i];
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("fig_multicore",
                        "shared-L2 multicore sweep: per-level oracle "
                        "bounds vs core count and workload mix");
    cli.add_flag("max-cores",
                 "largest core count in the sweep (of 1,2,4,8)", "8");
    cli.add_flag("l2-assoc",
                 "shared-L2 associativity (16 exceeds the kernel's "
                 "8-way ceiling, exercising the mixed lane; 1 is the "
                 "stock geometry)",
                 "16");
    cli.parse(argc, argv);

    core::ExperimentConfig base;
    apply_suite_flags(base, cli);
    base.extra_edges = core::standard_extra_edges();
    base.collect_l2 = true;
    base.hierarchy.l2.associativity =
        static_cast<unsigned>(cli.get_u64("l2-assoc"));
    base.hierarchy.validate();

    const std::uint64_t max_cores = cli.get_u64("max-cores");
    const std::vector<std::uint32_t> counts = {1, 2, 4, 8};
    // Each pattern is cycled to the core count; the first three rows
    // are the homogeneous baselines, the last two shared-heavy blends.
    const std::vector<std::vector<std::string>> patterns = {
        {"stream"},
        {"stencil"},
        {"chase"},
        {"stream", "chase"},
        {"stream", "stencil", "chase", "gzip"},
    };

    util::Table sweep("multicore sweep: IPC and coherence traffic "
                      "(shared L2, MSI invalidation filter)");
    sweep.set_header({"cores", "mix", "IPC", "invalidations",
                      "inval stores", "L2 inval closes", "sim path"});
    util::Table bounds("per-level 70nm oracle bounds (L1 pooled over "
                       "all cores; L2 = merged bank population)");
    bounds.set_header({"cores", "mix", "L1 OPT-Drowsy", "L1 OPT-Sleep",
                       "L1 OPT-Hybrid", "L2 OPT-Drowsy", "L2 OPT-Sleep",
                       "L2 OPT-Hybrid"});

    core::GeneralizedModelInputs inputs;
    inputs.tech = power::node_params(power::TechNode::Nm70);

    for (const std::uint32_t cores : counts) {
        if (cores > max_cores)
            continue;
        for (const auto &pattern : patterns) {
            core::ExperimentConfig config = base;
            config.core_count = cores;
            config.workload_mix.clear();
            for (std::uint32_t i = 0; i < cores; ++i)
                config.workload_mix.push_back(
                    pattern[i % pattern.size()]);

            const auto begun = std::chrono::steady_clock::now();
            const multicore::MulticoreResult run = multicore::
                run_multicore(config.workload_mix.front(), config);
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - begun)
                    .count();
            const core::ExperimentResult merged =
                run.to_experiment_result();

            BenchReport::RunTiming timing;
            timing.benchmark = run.label;
            timing.wall_seconds = wall;
            timing.instructions = merged.core.instructions;
            timing.cycles = merged.core.cycles;
            timing.ipc = merged.core.ipc();
            timing.sim_path = run.sim_path_effective;
            report().runs.push_back(std::move(timing));

            const std::string mix = join_names(pattern);
            char ipc[32];
            std::snprintf(ipc, sizeof ipc, "%.3f", merged.core.ipc());
            sweep.add_row({std::to_string(cores), mix, ipc,
                           std::to_string(run.invalidations),
                           std::to_string(run.invalidating_stores),
                           std::to_string(run.l2_interval_closes),
                           run.sim_path_effective});

            std::vector<core::SavingsResult> drowsy, sleep, hybrid;
            for (const multicore::CoreOutcome &core : run.cores) {
                for (const interval::IntervalHistogramSet *set :
                     {&core.icache.intervals, &core.dcache.intervals}) {
                    const auto r =
                        core::run_generalized_model(inputs, *set);
                    drowsy.push_back(r.opt_drowsy);
                    sleep.push_back(r.opt_sleep);
                    hybrid.push_back(r.opt_hybrid);
                }
            }
            const auto l2 = core::run_generalized_model(
                inputs, run.l2cache->intervals);
            bounds.add_row(
                {std::to_string(cores), mix,
                 pct(core::combine_results(drowsy).savings),
                 pct(core::combine_results(sleep).savings),
                 pct(core::combine_results(hybrid).savings),
                 pct(l2.opt_drowsy.savings), pct(l2.opt_sleep.savings),
                 pct(l2.opt_hybrid.savings)});
        }
    }

    emit(sweep, cli, "fig_multicore_sweep");
    emit(bounds, cli, "fig_multicore_bounds");

    std::printf("\nThe shared L2's bound survives contention: every\n"
                "invalidation closes a sleep interval early, but the\n"
                "L2 is touched only on L1 misses, so its frames still\n"
                "idle almost always even with 8 cores hammering it.\n");
    return bench::finish(cli);
}
