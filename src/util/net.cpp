/**
 * @file
 * Implementation of the socket wrapper.
 */

#include "util/net.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/fault_injection.hpp"

namespace leakbound::util::net {

namespace {

Status
errno_status(const std::string &what)
{
    return Status(ErrorKind::IoError,
                  what + ": " + std::strerror(errno));
}

/**
 * Turn Nagle off.  Framed request/response traffic over persistent
 * connections is exactly the pattern Nagle + delayed ACK turns into
 * ~40 ms stalls.  A no-op (EOPNOTSUPP) on unix-domain sockets.
 */
void
disable_nagle(int fd)
{
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Socket::shutdown_read()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RD);
}

Expected<Socket>
listen_unix(const std::string &path, int backlog)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        return Status(ErrorKind::InvalidArgument,
                      "socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create unix socket");
    ::unlink(path.c_str()); // stale socket file from a dead daemon
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return errno_status("cannot bind " + path);
    if (::listen(sock.fd(), backlog) != 0)
        return errno_status("cannot listen on " + path);
    return sock;
}

Expected<Socket>
listen_tcp(const std::string &host, std::uint16_t port, int backlog)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status(ErrorKind::InvalidArgument,
                      "not a numeric IPv4 address: " + host);
    }

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create tcp socket");
    const int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        return errno_status("cannot bind " + host + ":" +
                            std::to_string(port));
    }
    if (::listen(sock.fd(), backlog) != 0)
        return errno_status("cannot listen on " + host);
    return sock;
}

Expected<Socket>
connect_unix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        return Status(ErrorKind::InvalidArgument,
                      "socket path too long: " + path);
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create unix socket");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0)
        return errno_status("cannot connect to " + path);
    return sock;
}

Expected<Socket>
connect_tcp(const std::string &host, std::uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        return Status(ErrorKind::InvalidArgument,
                      "not a numeric IPv4 address: " + host);
    }

    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return errno_status("cannot create tcp socket");
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        return errno_status("cannot connect to " + host + ":" +
                            std::to_string(port));
    }
    disable_nagle(sock.fd());
    return sock;
}

std::uint16_t
local_port(const Socket &socket)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(socket.fd(), reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
wait_readable(const Socket &socket, int timeout_ms)
{
    pollfd pfd{};
    pfd.fd = socket.fd();
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0)
        return errno == EINTR ? 0 : -1;
    return rc > 0 ? 1 : 0;
}

int
wait_any_readable(const std::vector<const Socket *> &sockets,
                  int timeout_ms)
{
    std::vector<pollfd> pfds;
    pfds.reserve(sockets.size());
    for (const Socket *socket : sockets)
        pfds.push_back(pollfd{socket->fd(), POLLIN, 0});
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
    if (rc < 0)
        return errno == EINTR ? -1 : -2;
    if (rc == 0)
        return -1;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents != 0)
            return static_cast<int>(i);
    }
    return -1;
}

Expected<Socket>
accept_connection(const Socket &listener)
{
    if (fault::should_fail(fault::Site::NetAccept))
        return Status(ErrorKind::FaultInjected, "injected accept fault");
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            disable_nagle(fd);
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        return errno_status("accept failed");
    }
}

Status
set_nonblocking(const Socket &socket, bool on)
{
    const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
    if (flags < 0)
        return errno_status("fcntl(F_GETFL) failed");
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    if (want != flags && ::fcntl(socket.fd(), F_SETFL, want) < 0)
        return errno_status("fcntl(F_SETFL) failed");
    return Status();
}

Expected<Socket>
try_accept(const Socket &listener)
{
    if (fault::should_fail(fault::Site::NetAccept))
        return Status(ErrorKind::FaultInjected, "injected accept fault");
    for (;;) {
        const int fd = ::accept(listener.fd(), nullptr, nullptr);
        if (fd >= 0) {
            disable_nagle(fd);
            return Socket(fd);
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return Socket(); // nothing pending
        return errno_status("accept failed");
    }
}

Expected<IoResult>
read_some(const Socket &socket, void *buffer, std::size_t size)
{
    if (fault::should_fail(fault::Site::NetRead)) {
        return Status(ErrorKind::FaultInjected,
                      "injected socket read fault");
    }
    IoResult result;
    for (;;) {
        const ssize_t n = ::recv(socket.fd(), buffer, size, 0);
        if (n > 0) {
            result.bytes = static_cast<std::size_t>(n);
            return result;
        }
        if (n == 0) {
            result.closed = true;
            return result;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            result.would_block = true;
            return result;
        }
        if (errno == ECONNRESET) {
            return Status(ErrorKind::ConnectionClosed,
                          "connection reset by peer");
        }
        return errno_status("socket read failed");
    }
}

Expected<IoResult>
write_some(const Socket &socket, const void *data, std::size_t size)
{
    if (fault::should_fail(fault::Site::NetWrite)) {
        return Status(ErrorKind::FaultInjected,
                      "injected socket write fault");
    }
    // Partial-write injection: attempt only half the bytes, so
    // resume-from-offset paths are exercised deterministically.
    if (size > 1 && fault::should_fail(fault::Site::NetShortWrite))
        size = size / 2;
    IoResult result;
    for (;;) {
        const ssize_t n = ::send(socket.fd(), data, size, MSG_NOSIGNAL);
        if (n >= 0) {
            result.bytes = static_cast<std::size_t>(n);
            return result;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
            result.would_block = true;
            return result;
        }
        if (errno == EPIPE || errno == ECONNRESET) {
            return Status(ErrorKind::ConnectionClosed,
                          "peer closed the connection mid-write");
        }
        return errno_status("socket write failed");
    }
}

Status
send_all(const Socket &socket, const void *data, std::size_t size)
{
    // Built on write_some so blocking and non-blocking callers share
    // one EINTR/short-write/chaos-seam story; EAGAIN (a non-blocking
    // socket with a full buffer) parks in poll until writable instead
    // of silently dropping the tail of the frame.
    const char *bytes = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < size) {
        auto wrote = write_some(socket, bytes + sent, size - sent);
        if (!wrote)
            return wrote.status();
        sent += wrote.value().bytes;
        if (wrote.value().would_block) {
            pollfd pfd{};
            pfd.fd = socket.fd();
            pfd.events = POLLOUT;
            if (::poll(&pfd, 1, -1) < 0 && errno != EINTR)
                return errno_status("poll for writability failed");
        }
    }
    return Status();
}

Status
recv_exact(const Socket &socket, std::size_t size, std::string &out)
{
    out.clear();
    out.reserve(size);
    char buf[1 << 16];
    while (out.size() < size) {
        const std::size_t want =
            std::min(size - out.size(), sizeof(buf));
        auto got = read_some(socket, buf, want);
        if (!got) {
            if (got.status().kind() == ErrorKind::ConnectionClosed &&
                !out.empty()) {
                return Status(ErrorKind::CorruptData,
                              "truncated read: got " +
                                  std::to_string(out.size()) + " of " +
                                  std::to_string(size) + " bytes");
            }
            return got.status();
        }
        const IoResult &result = got.value();
        if (result.bytes > 0) {
            out.append(buf, result.bytes);
            continue;
        }
        if (result.closed) {
            if (out.empty()) {
                return Status(ErrorKind::ConnectionClosed,
                              "peer closed the connection");
            }
            return Status(ErrorKind::CorruptData,
                          "truncated read: got " +
                              std::to_string(out.size()) + " of " +
                              std::to_string(size) + " bytes");
        }
        // EAGAIN on a non-blocking socket: wait for readability.
        pollfd pfd{};
        pfd.fd = socket.fd();
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR)
            return errno_status("poll for readability failed");
    }
    return Status();
}

Status
recv_exact_deadline(const Socket &socket, std::size_t size,
                    std::string &out, int deadline_ms)
{
    using Clock = std::chrono::steady_clock;
    out.clear();
    out.reserve(size);
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(std::max(deadline_ms, 0));
    char buf[1 << 16];
    while (out.size() < size) {
        const auto now = Clock::now();
        if (now >= deadline) {
            return Status(ErrorKind::IoError,
                          "read deadline expired: got " +
                              std::to_string(out.size()) + " of " +
                              std::to_string(size) + " bytes");
        }
        const auto left = std::chrono::duration_cast<
            std::chrono::milliseconds>(deadline - now).count();
        const int ready =
            wait_readable(socket, static_cast<int>(left) + 1);
        if (ready < 0)
            return errno_status("poll for readability failed");
        if (ready == 0)
            continue; // timeout or EINTR; the deadline check above exits
        const std::size_t want =
            std::min(size - out.size(), sizeof(buf));
        auto got = read_some(socket, buf, want);
        if (!got) {
            if (got.status().kind() == ErrorKind::ConnectionClosed &&
                !out.empty()) {
                return Status(ErrorKind::CorruptData,
                              "truncated read: got " +
                                  std::to_string(out.size()) + " of " +
                                  std::to_string(size) + " bytes");
            }
            return got.status();
        }
        const IoResult &result = got.value();
        if (result.bytes > 0) {
            out.append(buf, result.bytes);
            continue;
        }
        if (result.closed) {
            if (out.empty()) {
                return Status(ErrorKind::ConnectionClosed,
                              "peer closed the connection");
            }
            return Status(ErrorKind::CorruptData,
                          "truncated read: got " +
                              std::to_string(out.size()) + " of " +
                              std::to_string(size) + " bytes");
        }
        // Spurious readability (another reader raced us): loop.
    }
    return Status();
}

// ------------------------------------------------------------------ epoll

Epoll::Epoll() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

Epoll::~Epoll()
{
    if (fd_ >= 0)
        ::close(fd_);
}

Status
Epoll::control(int op, int fd, std::uint64_t tag, bool want_read,
               bool want_write, bool edge_triggered)
{
    epoll_event ev{};
    ev.events = EPOLLRDHUP;
    if (want_read)
        ev.events |= EPOLLIN;
    if (want_write)
        ev.events |= EPOLLOUT;
    if (edge_triggered)
        ev.events |= EPOLLET;
    ev.data.u64 = tag;
    if (::epoll_ctl(fd_, op, fd, &ev) != 0)
        return errno_status("epoll_ctl failed");
    return Status();
}

Status
Epoll::add(int fd, std::uint64_t tag, bool want_read, bool want_write,
           bool edge_triggered)
{
    return control(EPOLL_CTL_ADD, fd, tag, want_read, want_write,
                   edge_triggered);
}

Status
Epoll::modify(int fd, std::uint64_t tag, bool want_read, bool want_write,
              bool edge_triggered)
{
    return control(EPOLL_CTL_MOD, fd, tag, want_read, want_write,
                   edge_triggered);
}

Status
Epoll::remove(int fd)
{
    if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr) != 0)
        return errno_status("epoll_ctl(DEL) failed");
    return Status();
}

Expected<std::size_t>
Epoll::wait(std::vector<EpollEvent> &out, int timeout_ms,
            std::size_t max_events)
{
    out.clear();
    std::vector<epoll_event> events(max_events);
    const int n = ::epoll_wait(fd_, events.data(),
                               static_cast<int>(events.size()),
                               timeout_ms);
    if (n < 0) {
        if (errno == EINTR)
            return std::size_t{0};
        return errno_status("epoll_wait failed");
    }
    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        EpollEvent event;
        event.tag = events[static_cast<std::size_t>(i)].data.u64;
        const std::uint32_t mask =
            events[static_cast<std::size_t>(i)].events;
        event.readable = (mask & EPOLLIN) != 0;
        event.writable = (mask & EPOLLOUT) != 0;
        event.error = (mask & EPOLLERR) != 0;
        event.hangup = (mask & (EPOLLHUP | EPOLLRDHUP)) != 0;
        out.push_back(event);
    }
    return static_cast<std::size_t>(n);
}

// ----------------------------------------------------------------- wakeup

WakeupFd::WakeupFd()
    : fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK))
{
}

WakeupFd::~WakeupFd()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
WakeupFd::signal()
{
    const std::uint64_t one = 1;
    ssize_t rc;
    do {
        rc = ::write(fd_, &one, sizeof(one));
    } while (rc < 0 && errno == EINTR);
    // EAGAIN means the counter is already saturated: the loop is
    // guaranteed to wake, which is all a wakeup line promises.
}

void
WakeupFd::consume()
{
    std::uint64_t count = 0;
    ssize_t rc;
    do {
        rc = ::read(fd_, &count, sizeof(count));
    } while (rc < 0 && errno == EINTR);
}

} // namespace leakbound::util::net
