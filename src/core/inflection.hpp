/**
 * @file
 * Inflection point computation (paper Section 3.2 / Table 1).
 *
 * Two interval lengths partition the optimal policy:
 *
 *  - the active-drowsy point `a = d1 + d3`: below it the drowsy
 *    transitions do not fit, so the line must stay active;
 *  - the drowsy-sleep point `b`, the length at which a sleep interval
 *    and a drowsy interval dissipate the same energy (Eq. 3).
 *
 * With the linear forms of core::EnergyModel,
 *    b = (K_S + CD - K_D) / (P_D - P_S).
 */

#ifndef LEAKBOUND_CORE_INFLECTION_HPP
#define LEAKBOUND_CORE_INFLECTION_HPP

#include <limits>

#include "core/energy_model.hpp"
#include "power/technology.hpp"
#include "util/types.hpp"

namespace leakbound::core {

/** The two inflection points of one technology node. */
struct InflectionPoints
{
    /** Active-drowsy point `a` in cycles (paper value: 6). */
    Cycles active_drowsy = 0;
    /** Drowsy-sleep point `b`, rounded to the nearest cycle. */
    Cycles drowsy_sleep = 0;
    /** Exact real-valued solution of Eq. 3 (infinite if sleep never
     *  beats drowsy, i.e. P_S >= P_D). */
    double drowsy_sleep_exact = std::numeric_limits<double>::infinity();
};

/** Solve paper Eq. 3 for a technology node's inflection points. */
InflectionPoints compute_inflection(const power::TechnologyParams &tech);

/** Convenience overload on an already-built energy model. */
InflectionPoints compute_inflection(const EnergyModel &model);

} // namespace leakbound::core

#endif // LEAKBOUND_CORE_INFLECTION_HPP
