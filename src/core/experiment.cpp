/**
 * @file
 * Implementation of the end-to-end experiment runner.
 */

#include "core/experiment.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <utility>

#include "analytic/engine.hpp"
#include "core/artifact_cache.hpp"
#include "core/collecting_listener.hpp"
#include "core/inflection.hpp"
#include "core/policies.hpp"
#include "interval/collector.hpp"
#include "multicore/multicore.hpp"
#include "prefetch/next_line.hpp"
#include "util/fault_injection.hpp"
#include "util/interrupt.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"
#include "workload/spec_suite.hpp"

namespace leakbound::core {

namespace {

// CollectingListener itself lives in core/collecting_listener.hpp now,
// shared verbatim with the multicore engine.

/**
 * The devirtualized twin of CollectingListener for the kernel run
 * path (InOrderCore::run_with): same classification logic, concrete
 * methods that inline into the templated run loop, and histogram
 * additions staged in a small per-group buffer flushed at group end.
 * Staging is byte-transparent: histogram adds commute and the sinks
 * are only read after finalize(), while the frame/monitor/stride state
 * a later access in the same group may consult is updated immediately
 * (IntervalCollector::observe()).  Only built for the configuration
 * it supports: no raw-interval retention, no L2 collection.
 */
class KernelRunListener
{
  public:
    KernelRunListener(const sim::HierarchyConfig &config,
                      interval::IntervalCollector *icollector,
                      interval::IntervalCollector *dcollector,
                      prefetch::StridePredictor *stride,
                      Cycles nl_lead_time,
                      interval::IntervalHistogramSet *isink,
                      interval::IntervalHistogramSet *dsink)
        : iline_shift_(config.l1i.line_shift()),
          dline_shift_(config.l1d.line_shift()),
          dline_(config.l1d.line_bytes), icollector_(icollector),
          dcollector_(dcollector), stride_(stride), nl_lead_(nl_lead_time),
          isink_(isink), dsink_(dsink)
    {
        staged_.reserve(kStagedReserve);
    }

    void
    on_instr(Cycle cycle, Pc pc, const sim::HierarchyResult &result)
    {
        const Addr block = pc >> iline_shift_;
        bool nl = false;
        Cycle since;
        if (icollector_->open_since(result.l1.frame, since))
            nl = imonitor_.covers(block, since, cycle, nl_lead_);
        staged_.push_back({isink_, icollector_->observe(
                                       result.l1.frame, cycle, result.l1.hit,
                                       /*stride_predicted=*/false, nl)});
        imonitor_.record(block, cycle);
    }

    void
    on_data(Cycle cycle, Pc pc, Addr addr, bool /*is_store*/,
            const sim::HierarchyResult &result)
    {
        const Addr block = addr >> dline_shift_;
        const bool stride_hit = stride_->access(pc, addr, dline_);
        bool nl = false;
        Cycle since;
        if (dcollector_->open_since(result.l1.frame, since))
            nl = dmonitor_.covers(block, since, cycle, nl_lead_);
        staged_.push_back({dsink_, dcollector_->observe(
                                       result.l1.frame, cycle, result.l1.hit,
                                       stride_hit, nl)});
        dmonitor_.record(block, cycle);
    }

    void
    on_group_end()
    {
        for (const StagedAdd &s : staged_)
            s.sink->add(s.iv);
        staged_.clear();
    }

  private:
    struct StagedAdd
    {
        interval::IntervalHistogramSet *sink;
        interval::Interval iv;
    };

    /** One instr access plus a full-width group of data accesses. */
    static constexpr std::size_t kStagedReserve = 8;

    std::uint32_t iline_shift_;
    std::uint32_t dline_shift_;
    std::uint32_t dline_;
    interval::IntervalCollector *icollector_;
    interval::IntervalCollector *dcollector_;
    prefetch::StridePredictor *stride_;
    Cycles nl_lead_;
    interval::IntervalHistogramSet *isink_;
    interval::IntervalHistogramSet *dsink_;
    std::vector<StagedAdd> staged_;
    prefetch::NextLineMonitor imonitor_;
    prefetch::NextLineMonitor dmonitor_;
};

} // namespace

namespace {

/**
 * The actual enumeration behind standard_extra_edges().  Walks every
 * stock policy at every tech node, which costs ~0.3 ms — fine for a
 * bench binary's startup, fatal on a daemon's per-request decode
 * path, hence the memoized wrapper below.
 */
std::vector<Cycles>
compute_standard_extra_edges()
{
    std::vector<Cycles> edges;
    auto absorb = [&edges](const PolicyPtr &policy) {
        for (Cycles t : policy->thresholds())
            edges.push_back(t);
    };

    for (power::TechNode node : power::all_nodes()) {
        const EnergyModel model(power::node_params(node));
        const InflectionPoints points = compute_inflection(model);
        for (bool cd : {true, false}) {
            absorb(make_opt_drowsy(model, cd));
            absorb(make_opt_sleep(model, points.drowsy_sleep, cd));
            absorb(make_opt_sleep(model, 10'000, cd));
            absorb(make_decay_sleep(model, 10'000, cd));
            absorb(make_opt_hybrid(model, cd));
            absorb(make_prefetch(model, PrefetchVariant::A,
                                 {interval::PrefetchClass::NextLine,
                                  interval::PrefetchClass::Stride},
                                 cd));
            absorb(make_prefetch(model, PrefetchVariant::B,
                                 {interval::PrefetchClass::NextLine,
                                  interval::PrefetchClass::Stride},
                                 cd));
            // Fig. 7 sweep and the decay-sweep ablation.
            for (Cycles t : {points.drowsy_sleep, Cycles{1200},
                             Cycles{1500}, Cycles{2000}, Cycles{3000},
                             Cycles{4000}, Cycles{5000}, Cycles{6000},
                             Cycles{7000}, Cycles{8000}, Cycles{9000},
                             Cycles{10000}}) {
                absorb(make_hybrid(model, t, cd));
                absorb(make_opt_sleep(model, t, cd));
            }
            for (Cycles t : {Cycles{1000}, Cycles{2000}, Cycles{4000},
                             Cycles{8000}, Cycles{16000}, Cycles{32000},
                             Cycles{64000}}) {
                absorb(make_decay_sleep(model, t, cd));
            }
            // Periodic drowsy windows (policy-zoo ablation).
            for (Cycles w : {Cycles{2000}, Cycles{4000}, Cycles{32000}}) {
                absorb(make_periodic_drowsy(model, w, cd));
            }
        }
    }
    // The node x CD x sweep nesting revisits many thresholds; return
    // the canonical sorted+unique form so downstream consumers (edge
    // construction, config fingerprinting) see a stable minimal list.
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return edges;
}

} // namespace

const std::vector<Cycles> &
standard_extra_edges()
{
    // The edge set is a pure function of the compiled-in policy zoo;
    // enumerate once (thread-safe static init) and hand out the one
    // immutable instance (the serve daemon consults it per request).
    static const std::vector<Cycles> edges =
        compute_standard_extra_edges();
    return edges;
}

const char *
engine_name(Engine engine)
{
    switch (engine) {
      case Engine::Auto:
        return "auto";
      case Engine::Analytic:
        return "analytic";
      case Engine::Sim:
        return "sim";
    }
    LEAKBOUND_PANIC("unreachable: bad Engine");
}

std::optional<Engine>
parse_engine(const std::string &name)
{
    if (name == "auto")
        return Engine::Auto;
    if (name == "analytic")
        return Engine::Analytic;
    if (name == "sim")
        return Engine::Sim;
    return std::nullopt;
}

const char *
sim_path_effective_name(std::size_t kernel_caches, std::size_t num_caches)
{
    if (kernel_caches == num_caches)
        return "kernel";
    if (kernel_caches == 0)
        return "reference";
    return "mixed";
}

util::Status
ExperimentConfig::validate() const
{
    if (util::Status s = core.validate(); !s.ok())
        return s;
    if (core_count == 0) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "core_count must be at least 1");
    }
    if (core_count > kMaxCoreCount) {
        return util::Status(util::ErrorKind::InvalidArgument,
                            "core_count " + std::to_string(core_count) +
                                " exceeds the maximum of " +
                                std::to_string(kMaxCoreCount));
    }
    if (!workload_mix.empty() && workload_mix.size() != core_count) {
        return util::Status(
            util::ErrorKind::InvalidArgument,
            "workload_mix has " + std::to_string(workload_mix.size()) +
                " entries but core_count is " + std::to_string(core_count));
    }
    for (const std::string &name : workload_mix) {
        if (!workload::is_benchmark(name)) {
            return util::Status(util::ErrorKind::InvalidArgument,
                                "workload_mix names unknown benchmark '" +
                                    name + "'");
        }
    }
    return util::Status();
}

namespace {

/**
 * The kernelized lane of run_one(): plain simulation (no fast path, no
 * raw-interval retention, no L2 collection) through the devirtualized
 * batch pipeline — templated run loop over KernelRunListener, batched
 * fetch, kernel cache decision logic.  Kept as its own function so the
 * reference body in run_one() stays textually untouched; the two are
 * proved byte-identical by the differential fuzzer (test_kernel_
 * equivalence) and the fixed-workload smoke test.
 */
ExperimentResult
run_one_kernel(workload::Workload &workload, const ExperimentConfig &config)
{
    const auto wall_start = std::chrono::steady_clock::now();
    config.hierarchy.validate();

    auto edges =
        interval::IntervalHistogramSet::default_edges(config.extra_edges);

    sim::Hierarchy hierarchy(config.hierarchy, sim::SimMode::Kernel);
    ExperimentResult result{
        CacheObservation(interval::IntervalHistogramSet(edges)),
        CacheObservation(interval::IntervalHistogramSet(edges))};
    result.workload = workload.name();

    interval::IntervalCollector icollector(hierarchy.l1i().num_frames(),
                                           &result.icache.intervals);
    interval::IntervalCollector dcollector(hierarchy.l1d().num_frames(),
                                           &result.dcache.intervals);
    prefetch::StridePredictor stride(config.stride);

    KernelRunListener listener(config.hierarchy, &icollector, &dcollector,
                               &stride, config.nl_lead_time,
                               &result.icache.intervals,
                               &result.dcache.intervals);

    cpu::InOrderCore core(config.core, &hierarchy, &workload);
    result.core = core.run_with(config.instructions, listener);

    icollector.finalize(result.core.cycles);
    dcollector.finalize(result.core.cycles);

    result.icache.stats = hierarchy.l1i().stats();
    result.dcache.stats = hierarchy.l1d().stats();
    result.l2 = hierarchy.l2().stats();
    result.sim_path_effective = sim_path_effective_name(
        static_cast<std::size_t>(hierarchy.l1i().kernel_active()) +
            static_cast<std::size_t>(hierarchy.l1d().kernel_active()) +
            static_cast<std::size_t>(hierarchy.l2().kernel_active()),
        3);
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    util::debug("experiment '", result.workload, "': ",
                result.core.instructions, " instrs, ", result.core.cycles,
                " cycles, ipc=", result.core.ipc(), " (kernel)");
    return result;
}

/**
 * One full experiment over an already-positioned workload.
 * @param use_analytic arm the periodic fast path (the caller has
 *        verified eligibility); the run still completes as a plain
 *        simulation when no recurrence is proven.
 */
ExperimentResult
run_one(workload::Workload &workload, const ExperimentConfig &config,
        bool use_analytic)
{
    // Plain simulation of the common collection shape takes the
    // devirtualized kernel lane; everything else (fast-path runs,
    // keep_raw, L2 collection, explicit Reference selection) runs the
    // reference pipeline below, byte-identical by construction.
    if (!use_analytic && !config.keep_raw && !config.collect_l2 &&
        config.sim_path == sim::SimMode::Kernel) {
        return run_one_kernel(workload, config);
    }

    const auto wall_start = std::chrono::steady_clock::now();
    config.hierarchy.validate();

    auto edges =
        interval::IntervalHistogramSet::default_edges(config.extra_edges);

    sim::Hierarchy hierarchy(config.hierarchy, config.sim_path);
    ExperimentResult result{
        CacheObservation(interval::IntervalHistogramSet(edges)),
        CacheObservation(interval::IntervalHistogramSet(edges))};
    result.workload = workload.name();

    interval::IntervalCollector icollector(
        hierarchy.l1i().num_frames(), &result.icache.intervals,
        config.keep_raw);
    interval::IntervalCollector dcollector(
        hierarchy.l1d().num_frames(), &result.dcache.intervals,
        config.keep_raw);
    prefetch::StridePredictor stride(config.stride);

    CollectingListener listener(config.hierarchy, &icollector, &dcollector,
                                &stride, config.nl_lead_time);

    std::unique_ptr<interval::IntervalCollector> l2collector;
    if (config.collect_l2) {
        result.l2cache.emplace(interval::IntervalHistogramSet(edges));
        l2collector = std::make_unique<interval::IntervalCollector>(
            hierarchy.l2().num_frames(), &result.l2cache->intervals,
            config.keep_raw);
        listener.set_l2_collector(l2collector.get());
    }

    cpu::InOrderCore core(config.core, &hierarchy, &workload, &listener);
    if (config.sim_path == sim::SimMode::Reference) {
        // The reference arm of the differential proof exercises the
        // legacy one-virtual-call-per-µop fetch path too.
        core.set_batch_fetch(false);
    }

    std::optional<analytic::PeriodicFastPath> fastpath;
    if (use_analytic) {
        const auto profile = analytic::analyzable_profile(
            workload, config.hierarchy, config.keep_raw);
        LEAKBOUND_ASSERT(profile.has_value(),
                         "fast path armed for an ineligible workload");
        analytic::FastPathRefs refs;
        refs.workload = &workload;
        refs.core = &core;
        refs.hierarchy = &hierarchy;
        refs.icollector = &icollector;
        refs.dcollector = &dcollector;
        refs.l2collector = l2collector.get();
        refs.imonitor = &listener.imonitor();
        refs.dmonitor = &listener.dmonitor();
        refs.stride = &stride;
        refs.isink = &result.icache.intervals;
        refs.dsink = &result.dcache.intervals;
        refs.l2sink =
            result.l2cache ? &result.l2cache->intervals : nullptr;
        fastpath.emplace(refs, config.instructions,
                         profile->period_instructions);
        const cpu::CoreRunStats s1 =
            core.run(config.instructions, fastpath->hook());
        result.core = fastpath->finish(s1);
        result.analytic = fastpath->committed();
    } else {
        result.core = core.run(config.instructions);
    }

    icollector.finalize(result.core.cycles);
    dcollector.finalize(result.core.cycles);
    if (l2collector) {
        l2collector->finalize(result.core.cycles);
        if (config.keep_raw)
            result.l2cache->raw = l2collector->raw();
    }
    if (config.keep_raw) {
        result.icache.raw = icollector.raw();
        result.dcache.raw = dcollector.raw();
    }

    result.icache.stats = hierarchy.l1i().stats();
    result.dcache.stats = hierarchy.l1d().stats();
    result.l2 = hierarchy.l2().stats();
    result.sim_path_effective = sim_path_effective_name(
        static_cast<std::size_t>(hierarchy.l1i().kernel_active()) +
            static_cast<std::size_t>(hierarchy.l1d().kernel_active()) +
            static_cast<std::size_t>(hierarchy.l2().kernel_active()),
        3);
    if (fastpath) {
        fastpath->add_skipped(result.icache.stats, result.dcache.stats,
                              result.l2);
    }
    if (result.l2cache)
        result.l2cache->stats = result.l2;
    result.wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - wall_start)
                              .count();

    util::debug("experiment '", result.workload, "': ",
                result.core.instructions, " instrs, ", result.core.cycles,
                " cycles, ipc=", result.core.ipc(),
                result.analytic ? " (analytic)" : "");
    return result;
}

} // namespace

ExperimentResult
run_experiment(workload::Workload &workload, const ExperimentConfig &config)
{
    // Multicore configurations take the interleaved shared-L2 engine;
    // its N=1 output is byte-identical to the single-core path below
    // (test_multicore_equivalence), so the dispatch is purely a matter
    // of which knobs were set.
    if (config.core_count != 1 || !config.workload_mix.empty()) {
        return multicore::run_multicore_summary(workload.name(), config);
    }

    const bool use_analytic =
        config.engine != Engine::Sim &&
        analytic::is_analyzable(workload, config.hierarchy,
                                config.keep_raw);
    ExperimentResult result = run_one(workload, config, use_analytic);

#ifndef NDEBUG
    // Debug builds promote the classifier from debug-checked to
    // always-verified: every committed fast-path run is replayed as a
    // plain simulation and the serialized payloads must match byte for
    // byte.  Release builds trust the commit-time equality proof.
    if (result.analytic) {
        workload.reset();
        const ExperimentResult reference =
            run_one(workload, config, /*use_analytic=*/false);
        LEAKBOUND_ASSERT(serialize_result(result) ==
                             serialize_result(reference),
                         "analytic fast path diverged from simulation on '",
                         result.workload, "'");
    }
#endif
    return result;
}

std::vector<ExperimentResult>
SuiteOutcome::surviving() &&
{
    std::vector<ExperimentResult> results;
    results.reserve(slots.size());
    for (auto &slot : slots) {
        if (slot)
            results.push_back(std::move(*slot));
    }
    return results;
}

namespace {

/** What one isolated job attempt chain produced. */
struct JobOutcome
{
    std::optional<ExperimentResult> result;
    util::ErrorKind kind = util::ErrorKind::None;
    std::string message;
    unsigned retries = 0;
};

/** Failure kinds worth a retry (transient by nature). */
bool
retryable(util::ErrorKind kind)
{
    return kind == util::ErrorKind::IoError ||
           kind == util::ErrorKind::LockTimeout ||
           kind == util::ErrorKind::FaultInjected;
}

} // namespace

SuiteOutcome
run_suite_isolated(const std::vector<std::string> &names,
                   const ExperimentConfig &config,
                   const SuiteJobHook &before_job)
{
    const unsigned jobs =
        std::min<std::size_t>(util::ThreadPool::effective_jobs(config.jobs),
                              std::max<std::size_t>(names.size(), 1));

    SuiteOutcome outcome;
    outcome.slots.resize(names.size());

    // The artifact cache turns repeat replays of a (workload, config)
    // pair into loads; keep_raw runs bypass it because raw intervals
    // are never persisted.  The config is fingerprinted once and
    // per-benchmark keys derived from it.
    const bool use_cache = !config.cache_dir.empty() && !config.keep_raw;
    std::optional<ArtifactCache> cache;
    std::uint64_t config_fp = 0;
    if (use_cache) {
        cache.emplace(config.cache_dir);
        config_fp = fingerprint_config(config);
    }

    auto run_one = [&config, &cache,
                    config_fp](workload::Workload &workload) {
        if (!cache)
            return run_experiment(workload, config);
        return cache->load_or_run(
            fingerprint_entry(config_fp, workload.name()),
            workload.name(),
            [&workload, &config] {
                return run_experiment(workload, config);
            });
    };

    // One isolated job: every failure mode funnels into a JobOutcome —
    // never an escaping exception — so the thread-pool boundary stays
    // quiet and sibling jobs are untouched.  Transient failures retry
    // with a fresh workload instance (the previous attempt may have
    // half-consumed it).
    auto attempt_job = [&run_one, &before_job,
                        &config](const std::string &name) -> JobOutcome {
        JobOutcome out;
        for (unsigned attempt = 0;; ++attempt) {
            if (!config.ignore_interrupts && util::interrupt_requested()) {
                out.kind = util::ErrorKind::Interrupted;
                out.message = "interrupted before " + name;
                out.retries = attempt;
                return out;
            }
            try {
                if (before_job)
                    before_job(name);
                if (util::fault::should_fail(util::fault::Site::Simulate,
                                             name)) {
                    throw util::StatusError(util::Status(
                        util::ErrorKind::FaultInjected,
                        "injected simulation fault: " + name));
                }
                workload::WorkloadPtr w = workload::make_benchmark(name);
                util::inform("simulating ", name, " (",
                             config.instructions, " instructions)");
                out.result = run_one(*w);
                out.retries = attempt;
                return out;
            } catch (const util::StatusError &e) {
                out.kind = e.status().kind();
                out.message = e.status().message();
            } catch (const std::exception &e) {
                out.kind = util::ErrorKind::Internal;
                out.message = e.what();
            }
            if (!retryable(out.kind) || attempt >= kMaxJobRetries) {
                out.retries = attempt;
                return out;
            }
            util::warn("suite job '", name, "' failed (", out.message,
                       "); retry ", attempt + 1, "/", kMaxJobRetries);
        }
    };

    std::vector<JobOutcome> job_outcomes(names.size());
    if (jobs <= 1) {
        for (std::size_t i = 0; i < names.size(); ++i)
            job_outcomes[i] = attempt_job(names[i]);
    } else {
        // Collecting futures in submission order makes the merge
        // deterministic: the output is bit-identical to the serial
        // loop for any jobs value.  Cache probes run inside the
        // workers too — distinct benchmarks map to distinct entries,
        // so the per-entry lock files never contend within one suite.
        // Names are validated on this thread first: an unknown
        // benchmark is a user error (fatal) and should die before any
        // worker spawns, exactly like the serial path.
        for (const std::string &name : names) {
            if (!workload::is_benchmark(name))
                (void)workload::make_benchmark(name); // fatal()s
        }
        util::inform("simulating ", names.size(), " benchmarks on ",
                     jobs, " threads (", config.instructions,
                     " instructions each)");
        util::ThreadPool pool(jobs);
        std::vector<std::future<JobOutcome>> futures;
        futures.reserve(names.size());
        for (const std::string &name : names) {
            futures.push_back(
                pool.submit([&attempt_job, &name] {
                    return attempt_job(name);
                }));
        }
        for (std::size_t i = 0; i < futures.size(); ++i)
            job_outcomes[i] = futures[i].get();
    }

    for (std::size_t i = 0; i < names.size(); ++i) {
        JobOutcome &out = job_outcomes[i];
        if (out.result) {
            outcome.slots[i] = std::move(out.result);
            continue;
        }
        if (out.kind == util::ErrorKind::Interrupted)
            outcome.interrupted = true;
        outcome.failures.push_back(SuiteJobFailure{
            i, names[i], out.kind, std::move(out.message), out.retries});
    }
    if (!config.ignore_interrupts && util::interrupt_requested())
        outcome.interrupted = true;
    if (cache)
        outcome.cache = cache->health();
    return outcome;
}

std::vector<ExperimentResult>
run_suite(const std::vector<std::string> &names,
          const ExperimentConfig &config)
{
    SuiteOutcome outcome = run_suite_isolated(names, config);
    if (!outcome.failures.empty()) {
        const SuiteJobFailure &first = outcome.failures.front();
        throw util::StatusError(util::Status(
            first.kind,
            "suite job '" + first.workload + "' failed: " + first.message));
    }
    return std::move(outcome).surviving();
}

} // namespace leakbound::core
