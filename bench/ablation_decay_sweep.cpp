/**
 * @file
 * Ablation: cache-decay interval sweep (Kaxiras-style), 1K-64K cycles.
 *
 * The paper fixes the decay scheme at 10K cycles (its Sleep(10K)
 * baseline, footnote 2); this bench sweeps the decay interval to show
 * where that baseline sits on its own trade-off curve and how far the
 * whole curve stays from the oracle bound — the gap no decay setting
 * can close (the paper's motivating observation).
 */

#include "bench_common.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_decay_sweep",
                        "ablation: decay interval sweep");
    cli.parse(argc, argv);

    const auto runs = run_standard_suite(cli);
    const core::EnergyModel model(
        power::node_params(power::TechNode::Nm70));

    const Cycles sweep[] = {1000, 2000, 4000, 8000, 10000,
                            16000, 32000, 64000};

    util::Table table("decay interval sweep, 70nm (suite average)");
    table.set_header({"decay interval", "I-cache", "D-cache",
                      "I induced misses", "D induced misses"});
    for (Cycles decay : sweep) {
        const auto policy = core::make_decay_sleep(model, decay);
        const auto icache =
            suite_average(*policy, runs, CacheSide::Instruction);
        const auto dcache = suite_average(*policy, runs, CacheSide::Data);
        table.add_row({util::format_commas(decay), pct(icache.savings),
                       pct(dcache.savings),
                       util::format_commas(icache.induced_misses),
                       util::format_commas(dcache.induced_misses)});
    }
    table.add_separator();
    const auto bound = core::make_opt_hybrid(model);
    table.add_row(
        {"OPT-Hybrid bound",
         pct(suite_average(*bound, runs, CacheSide::Instruction).savings),
         pct(suite_average(*bound, runs, CacheSide::Data).savings), "-",
         "-"});
    emit(table, cli, "decay_sweep");

    std::printf("shorter decay sleeps more but induces more re-fetches\n"
                "(and every setting keeps paying the per-line counter);\n"
                "no setting reaches the oracle bound.\n");
    return bench::finish(cli);
}
