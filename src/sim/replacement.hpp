/**
 * @file
 * Replacement policy machinery for the set-associative cache model.
 *
 * Policies track recency/insertion metadata per frame and pick victims
 * per set.  They are driven by the Cache (sim/cache.hpp): on_hit() per
 * hit, on_fill() per fill, victim_way() per replacement decision.
 */

#ifndef LEAKBOUND_SIM_REPLACEMENT_HPP
#define LEAKBOUND_SIM_REPLACEMENT_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/cache_config.hpp"
#include "util/random.hpp"
#include "util/types.hpp"

namespace leakbound::sim {

/** Abstract replacement policy over a sets x ways frame grid. */
class ReplacementPolicy
{
  public:
    /** @param sets number of sets; @param ways associativity. */
    ReplacementPolicy(std::uint64_t sets, std::uint32_t ways)
        : sets_(sets), ways_(ways)
    {
    }
    virtual ~ReplacementPolicy() = default;

    /** A resident block in (set, way) was re-accessed. */
    virtual void on_hit(std::uint64_t set, std::uint32_t way) = 0;

    /** A block was filled into (set, way). */
    virtual void on_fill(std::uint64_t set, std::uint32_t way) = 0;

    /** Pick the victim way in @p set (all ways are valid). */
    virtual std::uint32_t victim_way(std::uint64_t set) = 0;

    /**
     * Append a canonical snapshot of the policy's decision state to
     * @p out; @return false when the policy's future decisions are not
     * a pure function of appendable state (Random draws an RNG), which
     * disqualifies the cache from the analytic fast path.  Stamp-based
     * policies append per-set way permutations in recency-rank order:
     * absolute stamp values are irrelevant, only their order decides
     * victims.
     */
    virtual bool
    append_state(std::vector<std::uint64_t> &out) const
    {
        (void)out;
        return false;
    }

  protected:
    std::uint64_t sets_;
    std::uint32_t ways_;
};

/**
 * Construct the policy selected by @p kind.
 * @param seed used only by Random.
 */
std::unique_ptr<ReplacementPolicy>
make_replacement(ReplacementKind kind, std::uint64_t sets,
                 std::uint32_t ways, std::uint64_t seed = 1);

} // namespace leakbound::sim

#endif // LEAKBOUND_SIM_REPLACEMENT_HPP
