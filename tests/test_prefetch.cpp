/**
 * @file
 * Tests of the prefetch substrate: the Farkas twice-confirmed stride
 * rule, table-collision behaviour, next-line coverage windows, and the
 * Figure 9 prefetchability analysis.
 */

#include <gtest/gtest.h>

#include "core/inflection.hpp"
#include "interval/interval_histogram.hpp"
#include "power/technology.hpp"
#include "prefetch/next_line.hpp"
#include "prefetch/prefetchability.hpp"
#include "prefetch/stride.hpp"

using namespace leakbound;
using namespace leakbound::prefetch;

// --------------------------------------------------------------- stride

TEST(Stride, RequiresTwoConfirmations)
{
    StridePredictor p;
    const Pc pc = 0x4000;
    // a, a+64, a+128: the second access *sets* the stride, the third
    // confirms it once; only the fourth access is covered.
    EXPECT_FALSE(p.access(pc, 0x1000));
    EXPECT_FALSE(p.access(pc, 0x1040)); // stride=64, conf=1
    EXPECT_FALSE(p.access(pc, 0x1080)); // conf=2 after, not before
    EXPECT_TRUE(p.access(pc, 0x10c0));  // predicted
    EXPECT_TRUE(p.access(pc, 0x1100));
    EXPECT_EQ(p.covered(), 2u);
    EXPECT_EQ(p.observed(), 5u);
}

TEST(Stride, BrokenStrideResetsConfidence)
{
    StridePredictor p;
    const Pc pc = 0x4000;
    p.access(pc, 0x1000);
    p.access(pc, 0x1040);
    p.access(pc, 0x1080);
    EXPECT_TRUE(p.access(pc, 0x10c0));
    // Jump: breaks the run.
    EXPECT_FALSE(p.access(pc, 0x9000));
    // New stride must be re-confirmed twice.
    EXPECT_FALSE(p.access(pc, 0x9040));
    EXPECT_FALSE(p.access(pc, 0x9080));
    EXPECT_TRUE(p.access(pc, 0x90c0));
}

TEST(Stride, NegativeStridesWork)
{
    StridePredictor p;
    const Pc pc = 0x4000;
    p.access(pc, 0x5000);
    p.access(pc, 0x4f00);
    p.access(pc, 0x4e00);
    EXPECT_TRUE(p.access(pc, 0x4d00));
}

TEST(Stride, SubLinePredictionCountsByLine)
{
    // An 8-byte stride predicts the right line almost always; the
    // check is at line granularity (the prefetcher fetches lines).
    StridePredictor p;
    const Pc pc = 0x4000;
    p.access(pc, 0x1000);
    p.access(pc, 0x1008);
    p.access(pc, 0x1010);
    EXPECT_TRUE(p.access(pc, 0x1018, 64));
}

TEST(Stride, DistinctPcsTrackIndependently)
{
    StridePredictor p;
    p.access(0x4000, 0x1000);
    p.access(0x4004, 0x20000);
    p.access(0x4000, 0x1040);
    p.access(0x4004, 0x20010);
    p.access(0x4000, 0x1080);
    p.access(0x4004, 0x20020);
    EXPECT_TRUE(p.access(0x4000, 0x10c0));
    EXPECT_TRUE(p.access(0x4004, 0x20030));
}

TEST(Stride, TableCollisionEvicts)
{
    // Two PCs that alias in a tiny table fight over the entry, so
    // neither ever reaches two confirmations.
    StrideConfig cfg;
    cfg.table_entries = 1;
    StridePredictor p(cfg);
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(p.access(0x4000, 0x1000 + 64 * i));
        EXPECT_FALSE(p.access(0x8000, 0x90000 + 64 * i));
    }
}

TEST(Stride, ResetForgets)
{
    StridePredictor p;
    const Pc pc = 0x4000;
    p.access(pc, 0x1000);
    p.access(pc, 0x1040);
    p.access(pc, 0x1080);
    p.reset();
    EXPECT_FALSE(p.access(pc, 0x10c0));
    EXPECT_EQ(p.observed(), 1u);
}

// ------------------------------------------------------------ next-line

TEST(NextLine, CoversWhenPreviousLineTouchedInWindow)
{
    NextLineMonitor m;
    m.record(99, 500); // block 99 touched at cycle 500
    // Interval of block 100 opened at 400: 99 touched inside -> cover.
    EXPECT_TRUE(m.covers(100, 400));
    // Opened at 600: the touch predates the interval.
    EXPECT_FALSE(m.covers(100, 600));
    // Exactly at the boundary: "within" is strict.
    EXPECT_FALSE(m.covers(100, 500));
}

TEST(NextLine, UnknownPreviousBlockDoesNotCover)
{
    NextLineMonitor m;
    EXPECT_FALSE(m.covers(100, 0));
    EXPECT_FALSE(m.covers(0, 0)); // block 0 has no predecessor
}

TEST(NextLine, LatestTouchWins)
{
    NextLineMonitor m;
    m.record(7, 100);
    m.record(7, 900);
    EXPECT_TRUE(m.covers(8, 500));
    m.reset();
    EXPECT_FALSE(m.covers(8, 0));
}

// ------------------------------------------------- prefetchability (Fig 9)

TEST(Prefetchability, BucketsAndHeadlineFractions)
{
    using interval::Interval;
    using interval::IntervalKind;
    using interval::PrefetchClass;

    auto set = interval::IntervalHistogramSet::with_default_edges();
    auto add = [&set](Cycles len, PrefetchClass pf) {
        Interval iv;
        iv.kind = IntervalKind::Inner;
        iv.length = len;
        iv.pf = pf;
        set.add(iv);
    };
    // Short bucket (always non-prefetchable, even if flagged).
    add(3, PrefetchClass::NextLine);
    add(6, PrefetchClass::NonPrefetchable);
    // Drowsy bucket.
    add(500, PrefetchClass::NextLine);
    add(900, PrefetchClass::NonPrefetchable);
    // Sleep bucket.
    add(5000, PrefetchClass::Stride);
    add(50'000, PrefetchClass::NextLine);
    add(70'000, PrefetchClass::NonPrefetchable);
    // Non-inner intervals are ignored entirely.
    Interval trail;
    trail.kind = IntervalKind::Trailing;
    trail.length = 1'000'000;
    set.add(trail);

    const auto points = core::compute_inflection(
        power::node_params(power::TechNode::Nm70));
    const PrefetchabilityReport r = analyze_prefetchability(set, points);

    EXPECT_EQ(r.short_bucket.total(), 2u);
    EXPECT_EQ(r.short_bucket.next_line, 0u); // reclassified as NP
    EXPECT_EQ(r.drowsy_bucket.next_line, 1u);
    EXPECT_EQ(r.drowsy_bucket.non_prefetchable, 1u);
    EXPECT_EQ(r.sleep_bucket.stride, 1u);
    EXPECT_EQ(r.sleep_bucket.next_line, 1u);
    EXPECT_EQ(r.sleep_bucket.non_prefetchable, 1u);

    // Fractions over all 7 inner intervals.
    EXPECT_NEAR(r.next_line_fraction, 2.0 / 7.0, 1e-12);
    EXPECT_NEAR(r.stride_fraction, 1.0 / 7.0, 1e-12);
    EXPECT_NEAR(r.total_fraction, 3.0 / 7.0, 1e-12);
}

TEST(Prefetchability, EmptySetYieldsZeros)
{
    auto set = interval::IntervalHistogramSet::with_default_edges();
    const auto points = core::compute_inflection(
        power::node_params(power::TechNode::Nm70));
    const PrefetchabilityReport r = analyze_prefetchability(set, points);
    EXPECT_EQ(r.total_fraction, 0.0);
    EXPECT_EQ(r.short_bucket.total(), 0u);
}
