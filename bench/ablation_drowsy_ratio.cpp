/**
 * @file
 * Ablation: sensitivity to the drowsy leakage ratio P_D/P_A.
 *
 * The paper's calibration pins P_D/P_A = 1/3 (DESIGN.md §2).  Circuit
 * papers report anywhere from ~6x to ~12x drowsy leakage reduction;
 * this bench sweeps the ratio to show how the inflection point and
 * the three optimal bounds respond — i.e., how robust the paper's
 * conclusions are to this single calibrated constant.
 */

#include "bench_common.hpp"
#include "core/generalized_model.hpp"

int
main(int argc, char **argv)
{
    using namespace leakbound;
    using namespace leakbound::bench;

    auto cli = make_cli("ablation_drowsy_ratio",
                        "ablation: drowsy leakage ratio sweep");
    cli.parse(argc, argv);

    const double ratios[] = {0.10, 0.20, 1.0 / 3.0, 0.45, 0.60};

    // One simulation serves every ratio: gather all thresholds first.
    std::vector<Cycles> extra;
    std::vector<power::TechnologyParams> techs;
    for (double ratio : ratios) {
        power::TechnologyParams tech =
            power::node_params(power::TechNode::Nm70);
        tech.drowsy_power = ratio;
        techs.push_back(tech);
        core::GeneralizedModelInputs inputs;
        inputs.tech = tech;
        for (Cycles t : core::generalized_model_thresholds(inputs))
            extra.push_back(t);
    }
    const auto runs =
        run_standard_suite(cli, extra);

    util::Table table(
        "drowsy ratio ablation, 70nm geometry (suite average)");
    table.set_header({"P_D/P_A", "inflection b", "OPT-Drowsy I/D",
                      "OPT-Hybrid I/D"});
    for (const auto &tech : techs) {
        core::GeneralizedModelInputs inputs;
        inputs.tech = tech;
        const auto points = core::compute_inflection(tech);

        auto pooled = [&](CacheSide side, bool hybrid) {
            std::vector<core::SavingsResult> parts;
            for (const auto &run : runs) {
                const auto r = core::run_generalized_model(
                    inputs, population(run, side));
                parts.push_back(hybrid ? r.opt_hybrid : r.opt_drowsy);
            }
            return core::combine_results(parts).savings;
        };
        table.add_row(
            {util::format_fixed(tech.drowsy_power, 3),
             util::format_commas(points.drowsy_sleep),
             pct(pooled(CacheSide::Instruction, false)) + " / " +
                 pct(pooled(CacheSide::Data, false)),
             pct(pooled(CacheSide::Instruction, true)) + " / " +
                 pct(pooled(CacheSide::Data, true))});
    }
    emit(table, cli, "drowsy_ratio");

    std::printf("a leakier drowsy mode (larger ratio) pulls b down —\n"
                "sleep takes over earlier — and caps OPT-Drowsy at\n"
                "1 - P_D/P_A; the hybrid bound degrades only mildly\n"
                "because sleep absorbs the slack.\n");
    return bench::finish(cli);
}
